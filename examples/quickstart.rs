//! Quickstart: a tenant VM talks to a remote server through NetKernel.
//!
//! The VM's application uses plain BSD-style socket calls (the `SocketApi`
//! trait); GuestLib turns them into NQEs, CoreEngine switches them to a
//! kernel-stack NSM, and the NSM's TCP stack carries the bytes across the
//! virtual fabric to a remote host.
//!
//! Run with: `cargo run --example quickstart`

use netkernel::host::NetKernelHost;
use netkernel::types::{
    HostConfig, NsmConfig, NsmId, SockAddr, SocketApi, VmConfig, VmId, VmToNsmPolicy,
};

const REMOTE_IP: u32 = 0x0A00_0200;

fn main() {
    // One VM served by one kernel-stack NSM.
    let cfg = HostConfig::new()
        .with_vm(VmConfig::new(VmId(1)))
        .with_nsm(NsmConfig::kernel(NsmId(1)))
        .with_mapping(VmToNsmPolicy::All(NsmId(1)));
    let mut host = NetKernelHost::new(cfg).expect("valid host configuration");

    // A remote machine runs an ordinary TCP server on port 7.
    let remote = host.add_remote(REMOTE_IP);
    let listener = remote.socket();
    remote.bind(listener, SockAddr::new(0, 7)).unwrap();
    remote.listen(listener, 16).unwrap();

    // The guest application: socket → connect → send → recv.
    let guest = host.guest_mut(VmId(1)).unwrap();
    let sock = guest.socket().unwrap();
    guest.connect(sock, SockAddr::new(REMOTE_IP, 7)).unwrap();
    host.run(20, 100_000);

    let guest = host.guest_mut(VmId(1)).unwrap();
    assert!(
        guest.poll(sock).writable(),
        "connection should be established"
    );
    guest.send(sock, b"hello, netkernel!").unwrap();
    host.run(20, 100_000);

    // The remote echoes the message back.
    let remote = host.remote_mut(REMOTE_IP).unwrap();
    let (conn, peer) = remote.accept(listener).unwrap();
    let mut buf = [0u8; 64];
    let n = remote.recv(conn, &mut buf).unwrap();
    println!(
        "remote received {:?} from {peer}",
        String::from_utf8_lossy(&buf[..n])
    );
    remote.send(conn, &buf[..n]).unwrap();
    host.run(20, 100_000);

    let guest = host.guest_mut(VmId(1)).unwrap();
    let n = guest.recv(sock, &mut buf).unwrap();
    println!(
        "guest received echo: {:?}",
        String::from_utf8_lossy(&buf[..n])
    );
    println!(
        "CoreEngine switched {} NQEs; NSM moved {} bytes into its stack",
        host.engine_stats().nqes_switched,
        host.nsm_service_stats(NsmId(1)).unwrap().bytes_tx
    );
}
