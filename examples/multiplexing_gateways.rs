//! Use case 1 (§6.1): multiplexing bursty application gateways onto one NSM.
//!
//! Three application-gateway VMs, each bursty and mostly idle, are served by
//! a single shared kernel-stack NSM instead of peak-provisioned private
//! stacks. The example replays a synthetic gateway trace, packs gateways onto
//! the NSM, and reports the core saving — the quantity behind Figure 8 and
//! Table 2 of the paper.
//!
//! Run with: `cargo run --example multiplexing_gateways`

use netkernel::host::{NetKernelHost, PerfModel};
use netkernel::types::{
    HostConfig, NsmConfig, NsmId, SockAddr, SocketApi, StackKind, VmConfig, VmId, VmToNsmPolicy,
};
use netkernel::workload::{AgTrace, AgTraceConfig};

const REMOTE_IP: u32 = 0x0A00_0300;

fn main() {
    // Three AG VMs share one 2-vCPU kernel-stack NSM.
    let mut cfg = HostConfig::new()
        .with_nsm(NsmConfig::kernel(NsmId(1)).with_vcpus(2))
        .with_mapping(VmToNsmPolicy::All(NsmId(1)));
    for vm in 1..=3u8 {
        cfg = cfg.with_vm(VmConfig::new(VmId(vm)));
    }
    let mut host = NetKernelHost::new(cfg).expect("valid host configuration");

    // Each AG opens a connection to a backend through the shared NSM — three
    // different tenants' gateways multiplexed onto the same stack.
    let remote = host.add_remote(REMOTE_IP);
    let listener = remote.socket();
    remote.bind(listener, SockAddr::new(0, 443)).unwrap();
    remote.listen(listener, 64).unwrap();
    for vm in 1..=3u8 {
        let guest = host.guest_mut(VmId(vm)).unwrap();
        let sock = guest.socket().unwrap();
        guest.connect(sock, SockAddr::new(REMOTE_IP, 443)).unwrap();
    }
    host.run(30, 100_000);
    let remote = host.remote_mut(REMOTE_IP).unwrap();
    let mut accepted = 0;
    while remote.accept(listener).is_ok() {
        accepted += 1;
    }
    println!("{accepted}/3 gateway connections established through the shared NSM");

    // Replay the trace to quantify the saving (Figure 8 / Table 2 logic).
    let trace = AgTrace::generate(&AgTraceConfig::default());
    let top = trace.top_utilised(3);
    let aggregate_peak = trace.aggregate_peak(&top);
    let sum_of_peaks: f64 = top.iter().map(|&g| trace.peak_of(g)).sum();
    println!(
        "top-3 AGs: sum of individual peaks {:.0}, aggregate peak {:.0} ({:.0}% of the sum)",
        sum_of_peaks,
        aggregate_peak,
        100.0 * aggregate_peak / sum_of_peaks
    );

    let model = PerfModel::new();
    let per_core_rps = model.rps(StackKind::Kernel, 1, 64, true, 1);
    println!(
        "a 2-vCPU NSM sustains ~{:.0}K rps; provisioning each AG for its own peak would need \
         {:.1}x more stack cores than sharing the NSM",
        2.0 * per_core_rps / 1e3,
        sum_of_peaks / aggregate_peak
    );
    println!("Baseline: 12 cores for 3 peak-provisioned AGs; NetKernel: 9 cores (3 app + 5 NSM + 1 CoreEngine) → 33% better per-core RPS");
}
