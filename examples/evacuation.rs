//! Planned, revertible host evacuation: a whole host clears out mid-stream.
//!
//! Host 1 runs two tenants, each exclusively on its own NSM and each
//! holding one *long-lived* connection to a ToR-attached echo server. At
//! the scripted instant the host is evacuated: the control plane compiles
//! a typed plan — freeze, export, reroute, install, thaw per VM, emptied
//! shares scaled to zero at the tail — and executes it in paced waves.
//! Both VMs qualify for the warm path (the exclusivity guard holds), so
//! their pinned connections are transplanted byte-contiguously; neither
//! tenant reconnects. Had any action failed, every completed action would
//! have been reverted in reverse order and the cluster restored
//! byte-identically — that guarantee is pinned by the test suite; this
//! example shows the committing path end to end.
//!
//! The run is fully deterministic: the printed event-log digest is the
//! fingerprint CI compares across two executions (and across a forced
//! `NK_CLUSTER_THREADS=4` run).
//!
//! ```text
//! cargo run --release --example evacuation
//! ```

use netkernel::ctrl::PlanEventKind;
use netkernel::types::{
    ClusterAction, ClusterConfig, HostConfig, HostId, NsmConfig, NsmId, VmConfig, VmId,
    VmToNsmPolicy,
};
use netkernel::workload::cluster::{ClusterScenario, ClusterScenarioConfig, ClusterTenant};

fn empty_host(id: u8) -> HostConfig {
    HostConfig::new()
        .with_host_id(HostId(id))
        .with_nsm(NsmConfig::kernel(NsmId(1)))
        .with_mapping(VmToNsmPolicy::All(NsmId(1)))
}

fn main() {
    // Host 1 maps each VM to its own NSM — the exclusive mapping is what
    // makes both evacuation moves warm instead of drained.
    let evac_host = HostConfig::new()
        .with_host_id(HostId(1))
        .with_nsm(NsmConfig::kernel(NsmId(1)))
        .with_nsm(NsmConfig::kernel(NsmId(2)))
        .with_mapping(VmToNsmPolicy::Static(vec![
            (VmId(1), NsmId(1)),
            (VmId(2), NsmId(2)),
        ]))
        .with_vm(VmConfig::new(VmId(1)))
        .with_vm(VmConfig::new(VmId(2)));
    let cluster = ClusterConfig::new()
        .with_host(evac_host)
        .with_host(empty_host(2))
        .with_host(empty_host(3))
        .with_uplink_latency_us(2);
    let report = ClusterScenario::new(
        ClusterScenarioConfig::new(cluster)
            .with_seed(11)
            .with_tenant(
                ClusterTenant::new(VmId(1), 0)
                    .with_total_bytes(96 * 1024)
                    .long_lived(),
            )
            .with_tenant(
                ClusterTenant::new(VmId(2), 0)
                    .with_total_bytes(64 * 1024)
                    .long_lived(),
            )
            .with_evacuation(2_000_000, HostId(1), 2),
    )
    .run()
    .expect("evacuation scenario runs");

    assert!(report.completed, "transfers must complete: {report:?}");
    assert_eq!(
        report.reconnects, 0,
        "warm evacuation must not break a single connection"
    );
    assert_eq!(report.stats.evac_plans, 1);
    assert_eq!(report.stats.evac_commits, 1);
    assert_eq!(report.stats.evac_rollbacks, 0);
    println!(
        "evacuation: {} bytes verified over {} steps, 0 reconnects",
        report.bytes_verified, report.steps
    );
    println!(
        "plans {} · commits {} · warm moves {} · connections transplanted {} · shares retired {}",
        report.stats.evac_plans,
        report.stats.evac_commits,
        report.stats.warm_migrations,
        report.stats.conns_transplanted,
        report.stats.shares_retired
    );

    println!("\nplan event log:");
    for ev in &report.plan_events {
        println!(
            "  t={:>9}ns epoch {:>2} seq {:>2}  {:?}",
            ev.at_ns, ev.epoch, ev.seq, ev.kind
        );
    }
    assert!(matches!(
        report.plan_events.last().map(|e| e.kind),
        Some(PlanEventKind::PlanCommitted { host: HostId(1) })
    ));

    println!("\ncluster event log:");
    for ev in &report.events {
        println!(
            "  t={:>9}ns epoch {:>2}  {:?}",
            ev.at_ns, ev.epoch, ev.action
        );
    }
    let evacuated = report
        .events
        .iter()
        .find(|e| matches!(e.action, ClusterAction::HostEvacuated { .. }))
        .expect("commit logged as one cluster event");
    let retirements = report
        .events
        .iter()
        .filter(|e| matches!(e.action, ClusterAction::ScaleToZero { .. }))
        .count();
    println!(
        "\nhost 1 evacuated at t={}ns; {} source shares scaled to zero",
        evacuated.at_ns, retirements
    );
    assert_eq!(retirements, 2, "both emptied shares must retire");

    for (vm, home) in &report.final_homes {
        println!("final home: {vm} on {home}");
    }
    assert_ne!(report.final_homes[&VmId(1)], HostId(1));
    assert_ne!(report.final_homes[&VmId(2)], HostId(1));
    assert_eq!(report.final_nsm_cores[&(HostId(1), NsmId(1))], 0);
    assert_eq!(report.final_nsm_cores[&(HostId(1), NsmId(2))], 0);
    println!("\nevent-log digest: {:#018x}", report.event_digest);
}
