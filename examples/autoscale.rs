//! The operator control plane in action: NSM autoscaling + VM rebalancing.
//!
//! Three tenant VMs share one kernel-stack NSM while a second NSM stands
//! by. Tenants join one after another, so offered load ramps up; the
//! control plane watches per-NSM utilisation each epoch, grows the hot NSM,
//! live-migrates a tenant onto the standby when the skew persists, and
//! shrinks the allocation back once the burst is over. Every decision is
//! printed from the host's control-event log — the same log the control
//! tests assert on.
//!
//! Run with: cargo run --example autoscale

use netkernel::types::{
    ControlAction, ControlPolicy, ControlTarget, HostConfig, NsmConfig, NsmId, VmConfig, VmId,
    VmToNsmPolicy,
};
use netkernel::workload::bursty::{BurstyClient, BurstyConfig, BurstyScenario};

fn main() {
    let policy = ControlPolicy::new()
        .with_epoch_ns(1_000_000)
        .with_window(2)
        .with_watermarks(0.10, 0.60)
        .with_core_bounds(1, 2)
        .with_cooldown(1)
        .with_rebalance(0.50, 1)
        .with_pool_clock_hz(1_000_000);
    let host = HostConfig::new()
        .with_vm(VmConfig::new(VmId(1)))
        .with_vm(VmConfig::new(VmId(2)))
        .with_vm(VmConfig::new(VmId(3)))
        .with_nsm(NsmConfig::kernel(NsmId(1)))
        .with_nsm(NsmConfig::kernel(NsmId(2)))
        .with_mapping(VmToNsmPolicy::Static(vec![
            (VmId(1), NsmId(1)),
            (VmId(2), NsmId(1)),
            (VmId(3), NsmId(1)),
        ]))
        .with_control(policy);

    let report = BurstyScenario::new(
        BurstyConfig::new(host)
            .with_seed(11)
            .with_client(BurstyClient::new(VmId(1), 0).with_total_bytes(96 * 1024))
            .with_client(BurstyClient::new(VmId(2), 1_000_000).with_total_bytes(96 * 1024))
            .with_client(BurstyClient::new(VmId(3), 2_000_000).with_total_bytes(96 * 1024)),
    )
    .run()
    .expect("scenario runs");

    println!("== control decision log ==");
    for ev in &report.control {
        let t_ms = ev.at_ns as f64 / 1e6;
        match ev.action {
            ControlAction::ScaleUp {
                target,
                from_cores,
                to_cores,
                utilisation,
            } => println!(
                "t={t_ms:7.2} ms  epoch {:3}  scale-up   {}: {from_cores} -> {to_cores} cores (util {:.0}%)",
                ev.epoch,
                target_name(target),
                utilisation * 100.0,
            ),
            ControlAction::ScaleDown {
                target,
                from_cores,
                to_cores,
                utilisation,
            } => println!(
                "t={t_ms:7.2} ms  epoch {:3}  scale-down {}: {from_cores} -> {to_cores} cores (util {:.0}%)",
                ev.epoch,
                target_name(target),
                utilisation * 100.0,
            ),
            ControlAction::Rebalance { vm, from, to } => println!(
                "t={t_ms:7.2} ms  epoch {:3}  rebalance  {vm} migrates {from} -> {to}",
                ev.epoch,
            ),
        }
    }

    println!("\n== outcome ==");
    println!(
        "tenants completed: {} ({} bytes verified, {} control actions)",
        report.completed,
        report.bytes_verified,
        report.control.len(),
    );
    for (vm, nsm) in &report.final_mapping {
        println!("{vm} now served by {nsm}");
    }
    for (nsm, cores) in &report.final_nsm_cores {
        println!("{nsm} back to {cores} core(s)");
    }

    assert!(report.completed, "transfers must complete");
    assert!(
        report.control.iter().any(|e| matches!(
            e.action,
            ControlAction::ScaleUp {
                target: ControlTarget::Nsm(NsmId(1)),
                ..
            }
        )),
        "the loaded NSM must have been scaled up"
    );
    assert!(
        report
            .control
            .iter()
            .any(|e| matches!(e.action, ControlAction::Rebalance { .. })),
        "a tenant must have been rebalanced"
    );
}

fn target_name(target: ControlTarget) -> String {
    match target {
        ControlTarget::Engine => "CoreEngine".to_string(),
        ControlTarget::Nsm(id) => format!("{id}"),
    }
}
