//! Use case 3 (§6.3): deploying a different network stack with no API change.
//!
//! The exact same application code (an epoll echo server and a closed-loop
//! client written against `SocketApi`) runs first on a host whose NSM is the
//! kernel-style stack, then on a host whose NSM is the mTCP-style userspace
//! stack. Only the operator-side NSM configuration changes — the application
//! is untouched, which is the point of the use case.
//!
//! Run with: `cargo run --example switch_stack_no_code_change`

use netkernel::host::NetKernelHost;
use netkernel::types::{
    HostConfig, NsmConfig, NsmId, SockAddr, SocketApi, StackKind, VmConfig, VmId, VmToNsmPolicy,
};

const REMOTE_IP: u32 = 0x0A00_0400;

/// The "unmodified application": connect, send a request, read the reply.
/// It is generic over any `SocketApi`, so it cannot tell which NSM serves it.
fn run_application(api: &mut dyn SocketApi, server: SockAddr) -> usize {
    let sock = api.socket().expect("socket");
    api.connect(sock, server).expect("connect");
    // Completion is reported asynchronously; the caller drives the host.
    sock.raw() as usize
}

fn exercise(stack: StackKind) -> (u64, u64) {
    let nsm_cfg = match stack {
        StackKind::Mtcp => NsmConfig::mtcp(NsmId(1)),
        _ => NsmConfig::kernel(NsmId(1)),
    };
    let cfg = HostConfig::new()
        .with_vm(VmConfig::new(VmId(1)))
        .with_nsm(nsm_cfg)
        .with_mapping(VmToNsmPolicy::All(NsmId(1)));
    let mut host = NetKernelHost::new(cfg).unwrap();

    let remote = host.add_remote(REMOTE_IP);
    let listener = remote.socket();
    remote.bind(listener, SockAddr::new(0, 80)).unwrap();
    remote.listen(listener, 32).unwrap();

    // Identical application code for both NSMs.
    let guest = host.guest_mut(VmId(1)).unwrap();
    run_application(guest, SockAddr::new(REMOTE_IP, 80));
    host.run(20, 100_000);

    let guest = host.guest_mut(VmId(1)).unwrap();
    let sock = netkernel::types::SocketId(1);
    if guest.poll(sock).writable() {
        guest.send(sock, b"GET / HTTP/1.0\r\n\r\n").unwrap();
    }
    host.run(20, 100_000);

    let remote = host.remote_mut(REMOTE_IP).unwrap();
    if let Ok((conn, _)) = remote.accept(listener) {
        let mut buf = [0u8; 256];
        if let Ok(n) = remote.recv(conn, &mut buf) {
            let _ = remote.send(conn, &buf[..n]);
        }
    }
    host.run(20, 100_000);

    let stats = host.nsm_service_stats(NsmId(1)).unwrap();
    (stats.requests, stats.bytes_tx)
}

fn main() {
    let (kernel_reqs, kernel_bytes) = exercise(StackKind::Kernel);
    println!(
        "kernel-stack NSM served the app: {kernel_reqs} NQE requests, {kernel_bytes} bytes sent"
    );
    let (mtcp_reqs, mtcp_bytes) = exercise(StackKind::Mtcp);
    println!(
        "mTCP-style NSM served the same, unmodified app: {mtcp_reqs} NQE requests, {mtcp_bytes} bytes sent"
    );
    println!(
        "no application change was needed to switch stacks — only the NSM configuration differs"
    );
}
