//! The cluster flight recorder: one deterministic dump of everything.
//!
//! Two hosts behind a top-of-rack switch run tenants against a ToR-attached
//! echo server while an incident unfolds: a standby NSM on host 1 crashes
//! and is re-provisioned (scripted fault plan), and mid-stream the
//! long-lived tenant is *warm*-migrated to host 2. The cluster's flight
//! recorder captures all of it — the merged event ring (cluster, control,
//! fault and decision events), per-epoch request-latency quantiles, the
//! warm migration's freeze/export/reroute/install/thaw phase timeline, and
//! the hot-flow table — without the workload doing anything special.
//!
//! The run is fully deterministic: the serialized [`ObsDump`] printed at
//! the end is byte-identical across repeated runs *and* across datapath
//! thread counts (`NK_CLUSTER_THREADS=1` vs `=4`), which is exactly what
//! the CI `flight-recorder-determinism` job diffs.
//!
//! ```text
//! cargo run --release --example flight_recorder
//! ```

use netkernel::obs::{EventClass, ObsFilter};
use netkernel::types::{
    ClusterConfig, FaultAction, FaultPlan, HostConfig, HostId, NsmConfig, NsmId, VmConfig, VmId,
    VmToNsmPolicy,
};
use netkernel::workload::cluster::{ClusterScenario, ClusterScenarioConfig, ClusterTenant};

fn main() {
    // Host 1 carries the tenant VM on a primary NSM plus an idle standby;
    // host 2 starts with its own tenant and later receives the migrant.
    let host1 = HostConfig::new()
        .with_host_id(HostId(1))
        .with_nsm(NsmConfig::kernel(NsmId(1)))
        .with_nsm(NsmConfig::kernel(NsmId(2)))
        .with_mapping(VmToNsmPolicy::All(NsmId(1)))
        .with_vm(VmConfig::new(VmId(1)));
    let host2 = HostConfig::new()
        .with_host_id(HostId(2))
        .with_nsm(NsmConfig::kernel(NsmId(1)))
        .with_mapping(VmToNsmPolicy::All(NsmId(1)))
        .with_vm(VmConfig::new(VmId(2)));

    // The incident script: the standby NSM dies at t = 1.5 ms and is
    // re-provisioned at t = 3 ms. No tenant traffic rides it, so the
    // transfers are untouched — but the recorder logs both fault events.
    let faults = FaultPlan::new()
        .at(1_500_000, FaultAction::CrashNsm(NsmId(2)))
        .at(3_000_000, FaultAction::RestartNsm(NsmId(2)));

    let cluster = ClusterConfig::new()
        .with_host(host1)
        .with_host(host2)
        .with_uplink_latency_us(2);
    let report = ClusterScenario::new(
        ClusterScenarioConfig::new(cluster)
            .with_seed(23)
            .with_tenant(
                ClusterTenant::new(VmId(1), 0)
                    .with_total_bytes(96 * 1024)
                    .long_lived(),
            )
            .with_tenant(ClusterTenant::new(VmId(2), 500_000).with_total_bytes(64 * 1024))
            .with_fault_plan(HostId(1), faults)
            .with_warm_migration(2_000_000, VmId(1), HostId(2)),
    )
    .run()
    .expect("flight recorder scenario runs");

    assert!(report.completed, "transfers must complete: {report:?}");
    assert_eq!(report.reconnects, 0, "the warm handover must be seamless");
    println!(
        "run: {} bytes verified over {} steps · {} warm migration(s)",
        report.bytes_verified, report.steps, report.stats.warm_migrations
    );

    let dump = &report.obs;
    println!(
        "recorder: {} events captured ({} retained) · {} latency epochs · {} phase windows · {} hot flows",
        dump.events_captured,
        dump.events.len(),
        dump.epochs.len(),
        dump.phases.len(),
        dump.flows.len()
    );

    // The warm migration's phase timeline, attributed to the VM.
    println!("\nwarm migration timeline for {:?}:", VmId(1));
    for w in dump.phases.iter().filter(|w| w.vm == Some(VmId(1))) {
        println!(
            "  {:>8?} [{:>9} .. {:>9}]ns width {:>6}ns ok={}",
            w.phase,
            w.start_ns,
            w.end_ns,
            w.width_ns(),
            w.ok
        );
    }

    // Filter queries slice the same ring without re-running anything.
    let fault_events = ObsFilter::new().with_class(EventClass::Fault);
    println!("\nfault events on {:?}:", HostId(1));
    for ev in dump.events.iter().filter(|e| fault_events.matches(e)) {
        println!("  t={:>9}ns epoch {:>2}  {:?}", ev.at_ns, ev.epoch, ev.kind);
    }
    assert!(
        dump.events.iter().any(|e| fault_events.matches(e)),
        "the scripted NSM crash/restart must land in the ring"
    );

    // Cluster-wide latency quantiles from the last sealed epoch.
    if let Some(epoch) = dump.epochs.iter().rev().find(|e| e.cluster.count > 0) {
        println!(
            "\nlatency (epoch {}): {} samples · p50 {}ns · p99 {}ns · max {}ns",
            epoch.epoch,
            epoch.cluster.count,
            epoch.cluster.p50_ns,
            epoch.cluster.p99_ns,
            epoch.cluster.max_ns
        );
    }

    // The serialized dump is the CI determinism fingerprint: byte-identical
    // across runs and across NK_CLUSTER_THREADS settings.
    let json = serde_json::to_string(dump).expect("dump serializes");
    println!("\nOBS_DUMP {json}");
    println!("flight recorder dump: {} bytes serialized, OK", json.len());
}
