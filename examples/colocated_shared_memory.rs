//! Use case 4 (§6.4): shared-memory networking between colocated VMs.
//!
//! Two VMs of the same tenant on the same host exchange data through the
//! shared-memory NSM: payload is copied hugepage-to-hugepage and never
//! touches a TCP stack.
//!
//! Run with: `cargo run --example colocated_shared_memory`

use netkernel::host::NetKernelHost;
use netkernel::types::{
    HostConfig, NsmConfig, NsmId, SockAddr, SocketApi, VmConfig, VmId, VmToNsmPolicy,
};

fn main() {
    let cfg = HostConfig::new()
        .with_vm(VmConfig::new(VmId(1)).with_tenant(42))
        .with_vm(VmConfig::new(VmId(2)).with_tenant(42))
        .with_nsm(NsmConfig::shared_mem(NsmId(1)))
        .with_mapping(VmToNsmPolicy::All(NsmId(1)));
    let mut host = NetKernelHost::new(cfg).expect("valid host configuration");

    // VM1 listens; VM2 connects — both through ordinary socket calls.
    let g1 = host.guest_mut(VmId(1)).unwrap();
    let listener = g1.socket().unwrap();
    g1.bind(listener, SockAddr::new(0, 6379)).unwrap();
    g1.listen(listener, 8).unwrap();
    host.run(5, 100_000);

    let g2 = host.guest_mut(VmId(2)).unwrap();
    let client = g2.socket().unwrap();
    g2.connect(client, SockAddr::new(0, 6379)).unwrap();
    host.run(5, 100_000);

    // Move a burst of messages from VM2 to VM1.
    let message = vec![0xABu8; 8192];
    let mut sent = 0u64;
    for _ in 0..64 {
        let g2 = host.guest_mut(VmId(2)).unwrap();
        if let Ok(n) = g2.send(client, &message) {
            sent += n as u64;
        }
        host.run(2, 100_000);
    }

    let g1 = host.guest_mut(VmId(1)).unwrap();
    let (conn, _) = g1.accept(listener).unwrap();
    let mut received = 0u64;
    let mut buf = vec![0u8; 16 * 1024];
    loop {
        match g1.recv(conn, &mut buf) {
            Ok(0) | Err(_) => break,
            Ok(n) => received += n as u64,
        }
    }
    let stats = host.shm_stats(NsmId(1)).unwrap();
    println!("VM2 sent {sent} bytes; VM1 received {received} bytes");
    println!(
        "shared-memory NSM matched {} connection pair(s) and copied {} bytes hugepage-to-hugepage, bypassing TCP entirely",
        stats.pairs, stats.bytes_copied
    );
}
