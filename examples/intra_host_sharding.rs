//! Intra-host sharding: one big host saturating many worker threads.
//!
//! Host-granularity sharding (PR 6) caps parallel speedup at the host
//! count — and the NetKernel consolidation argument produces exactly the
//! shape that hurts: one machine, many tenant VMs, several NSM shares.
//! With [`netkernel::types::ClusterConfig::with_shard_within_hosts`] the
//! executor deals each NSM share *lane* (engine slice + service + queues)
//! onto worker threads separately and runs the host hub — resident engine,
//! ledger charges, vNIC switch — serially at the round barrier, so a single
//! 8-share host fills 4 threads.
//!
//! Determinism is the point of the exercise: everything this example prints
//! is byte-identical for any `NK_CLUSTER_THREADS` value, fault plan and
//! all. The CI determinism job replays it at 1 and 4 threads and diffs the
//! full stdout.
//!
//! Run with: `cargo run --example intra_host_sharding`

use netkernel::types::{
    HostConfig, HostId, LinkFault, NsmConfig, NsmId, SockAddr, VmConfig, VmId, VmToNsmPolicy,
};
use netkernel::{Cluster, ClusterConfig, FaultAction, FaultPlan, NkError, SocketApi};

const SERVER_IP: u32 = 0xC0A8_0001; // 192.168.0.1, outside the host block

fn main() {
    // One host, eight NSM shares, one VM pinned on each share: eight
    // independent lanes for the executor to deal across its threads.
    let mut host = HostConfig::new().with_host_id(HostId(1));
    let mut mapping = Vec::new();
    for n in 1u8..=8 {
        host = host
            .with_nsm(NsmConfig::kernel(NsmId(n)))
            .with_vm(VmConfig::new(VmId(n)));
        mapping.push((VmId(n), NsmId(n)));
    }
    let cfg = ClusterConfig::new()
        .with_host(host.with_mapping(VmToNsmPolicy::Static(mapping)))
        .with_uplink_latency_us(2)
        .with_threads(4)
        .with_shard_within_hosts(true);
    let mut cluster = Cluster::new(cfg).expect("valid cluster");

    // An active fault plan, mid-transfer: share 3 crashes (its VM hops to
    // share 4, fusing those two lanes), comes back later, and share 5's
    // vNIC link degrades. Faults apply in the serial begin phase, so lane
    // mode replays them exactly like the serial path.
    let plan = FaultPlan::new()
        .at(800_000, FaultAction::CrashNsm(NsmId(3)))
        .at(
            800_000,
            FaultAction::MigrateVm {
                vm: VmId(3),
                to: NsmId(4),
            },
        )
        .at(1_600_000, FaultAction::RestartNsm(NsmId(3)))
        .at(
            2_400_000,
            FaultAction::DegradeLink {
                nsm: NsmId(5),
                link: LinkFault::healthy().with_latency_us(50),
            },
        );
    cluster
        .host_mut(HostId(1))
        .unwrap()
        .install_fault_plan(&plan)
        .unwrap();

    let server = cluster.add_remote(SERVER_IP);
    let ls = server.socket();
    server.bind(ls, SockAddr::new(0, 7)).unwrap();
    server.listen(ls, 16).unwrap();

    // Every tenant streams chunks at the echo server and reads the echo
    // back, reconnecting on reset — plain socket code, no lane awareness.
    let chunk = [0x5Au8; 1024];
    let mut buf = [0u8; 2048];
    let mut socks = [None; 8];
    let mut bytes = [0u64; 8];
    let mut reconnects = 0u64;
    let mut server_conns = Vec::new();
    for _ in 0..40 {
        for i in 0..8usize {
            let vm = VmId(i as u8 + 1);
            let Some(guest) = cluster.guest_on(HostId(1), vm) else {
                continue;
            };
            if let Some(s) = socks[i] {
                let mut dead = false;
                if guest.poll(s).writable() && guest.send(s, &chunk).is_err() {
                    dead = true;
                }
                loop {
                    match guest.recv(s, &mut buf) {
                        Ok(0) => break,
                        Ok(n) => bytes[i] += n as u64,
                        Err(NkError::WouldBlock) => break,
                        Err(_) => {
                            dead = true;
                            break;
                        }
                    }
                }
                if dead {
                    let _ = guest.close(s);
                    socks[i] = None;
                    reconnects += 1;
                }
            }
            if socks[i].is_none() {
                if let Ok(s) = guest.socket() {
                    if guest.connect(s, SockAddr::new(SERVER_IP, 7)).is_ok() {
                        socks[i] = Some(s);
                    }
                }
            }
        }
        let server = cluster.remote_mut(SERVER_IP).unwrap();
        while let Ok((c, _)) = server.accept(ls) {
            server_conns.push(c);
        }
        for &c in &server_conns {
            while let Ok(n) = server.recv(c, &mut buf) {
                if n == 0 {
                    break;
                }
                let _ = server.send(c, &buf[..n]);
            }
        }
        cluster.step(100_000);
    }

    // Everything below is part of the determinism contract: identical
    // bytes at any thread count. (Thread-dependent numbers — per-shard
    // work, modeled speedup — deliberately stay out of this output.)
    let stats = cluster.stats();
    let dump = cluster.obs_dump();
    println!("intra-host sharding:  {}", cluster.shard_within_hosts());
    println!("steps:                {}", stats.steps);
    println!("rounds:               {}", stats.rounds);
    println!("quiescent exits:      {}", stats.quiescent_exits);
    println!("poll work:            {}", stats.poll_work);
    println!("begin work:           {}", stats.begin_work);
    println!("control work:         {}", stats.control_work);
    println!("barrier frames:       {}", stats.barrier_frames);
    println!("reconnects:           {}", reconnects);
    for (i, b) in bytes.iter().enumerate() {
        println!("vm {} echoed bytes:    {b}", i + 1);
    }
    println!("recorder events:      {}", dump.events.len());
    // The cluster event log is empty here (the faults are host-internal),
    // so the obs-dump digest carries the real signal: it folds every
    // recorder event, latency epoch and hot flow into one comparable word.
    let obs_json = serde_json::to_string(&dump).expect("dump serializes");
    let mut obs_digest: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in obs_json.as_bytes() {
        obs_digest ^= u64::from(*byte);
        obs_digest = obs_digest.wrapping_mul(0x0000_0100_0000_01B3);
    }
    println!("event digest:         {:#018x}", cluster.event_digest());
    println!("obs dump digest:      {obs_digest:#018x}");

    assert!(bytes.iter().all(|&b| b > 0), "every tenant must move bytes");
    assert!(reconnects >= 1, "the share crash must reset one connection");
    println!("\n8 lanes, 1 hub, any thread count: same bytes.");
}
