//! Cluster-scale operation: cross-host VM migration with connection
//! draining.
//!
//! Two NetKernel hosts sit behind a top-of-rack switch; tenants on both
//! stream byte-verified payloads to a ToR-attached echo server, so every
//! byte crosses the inter-host fabric. Mid-transfer, one VM is live-migrated
//! to the other host: new connections immediately open on the destination
//! host's NSM while the pinned connection finishes on the source, whose NSM
//! share then drains to zero connections and scales to zero cores.
//!
//! The run is fully deterministic: the printed event-log digest is the
//! fingerprint CI compares across two executions (the seeded-determinism
//! job fails on any divergence).
//!
//! ```text
//! cargo run --release --example cluster_migration
//! ```

use netkernel::types::{
    ClusterConfig, HostConfig, HostId, NsmConfig, NsmId, VmConfig, VmId, VmToNsmPolicy,
};
use netkernel::workload::cluster::{ClusterScenario, ClusterScenarioConfig, ClusterTenant};

fn host(id: u8, vms: &[u8]) -> HostConfig {
    let mut cfg = HostConfig::new()
        .with_host_id(HostId(id))
        .with_nsm(NsmConfig::kernel(NsmId(1)))
        .with_mapping(VmToNsmPolicy::All(NsmId(1)));
    for vm in vms {
        cfg = cfg.with_vm(VmConfig::new(VmId(*vm)));
    }
    cfg
}

fn main() {
    let cluster = ClusterConfig::new()
        .with_host(host(1, &[1]))
        .with_host(host(2, &[2]))
        .with_uplink_latency_us(2);
    let report = ClusterScenario::new(
        ClusterScenarioConfig::new(cluster)
            .with_seed(11)
            .with_tenant(ClusterTenant::new(VmId(1), 0).with_total_bytes(96 * 1024))
            .with_tenant(ClusterTenant::new(VmId(2), 500_000).with_total_bytes(64 * 1024))
            .with_migration(2_000_000, VmId(1), HostId(2)),
    )
    .run()
    .expect("cluster scenario runs");

    assert!(report.completed, "transfer must complete: {report:?}");
    println!(
        "cross-host transfer: {} bytes verified over {} steps",
        report.bytes_verified, report.steps
    );
    println!(
        "migrations {} · drains completed {} · shares retired {}",
        report.stats.migrations, report.stats.drains_completed, report.stats.shares_retired
    );
    println!("\ncluster event log:");
    for ev in &report.events {
        println!(
            "  t={:>9}ns epoch {:>2}  {:?}",
            ev.at_ns, ev.epoch, ev.action
        );
    }
    for ((host, nsm), cores) in &report.final_nsm_cores {
        println!("final share: {host}/{nsm} = {cores} cores");
    }
    assert_eq!(
        report.final_nsm_cores[&(HostId(1), NsmId(1))],
        0,
        "the drained source share must be at zero cores"
    );
    println!("\nevent-log digest: {:#018x}", report.event_digest);
}
