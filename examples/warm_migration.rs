//! Warm cross-host migration: the pinned connection moves, nothing drains.
//!
//! A tenant holds one *long-lived* connection to a ToR-attached echo server
//! — it never reconnects, so a drained migration would sit blocked until
//! the transfer ends. Mid-stream the VM is warm-migrated: a short freeze
//! window quiesces in-flight frames, the connection's full stack state
//! (sequence numbers, windows, buffered bytes, the ephemeral-port binding)
//! is exported, the top-of-rack switch reroutes the connection's address to
//! the destination host, and the destination installs and resumes it. The
//! byte stream continues without a reconnect and the source NSM share
//! scales to zero in the same instant.
//!
//! The run is fully deterministic: the printed event-log digest is the
//! fingerprint CI compares across two executions.
//!
//! ```text
//! cargo run --release --example warm_migration
//! ```

use netkernel::types::{
    ClusterAction, ClusterConfig, HostConfig, HostId, NsmConfig, NsmId, VmConfig, VmId,
    VmToNsmPolicy,
};
use netkernel::workload::cluster::{ClusterScenario, ClusterScenarioConfig, ClusterTenant};

fn host(id: u8, vms: &[u8]) -> HostConfig {
    let mut cfg = HostConfig::new()
        .with_host_id(HostId(id))
        .with_nsm(NsmConfig::kernel(NsmId(1)))
        .with_mapping(VmToNsmPolicy::All(NsmId(1)));
    for vm in vms {
        cfg = cfg.with_vm(VmConfig::new(VmId(*vm)));
    }
    cfg
}

fn main() {
    let cluster = ClusterConfig::new()
        .with_host(host(1, &[1]))
        .with_host(host(2, &[2]))
        .with_uplink_latency_us(2);
    let report = ClusterScenario::new(
        ClusterScenarioConfig::new(cluster)
            .with_seed(11)
            .with_tenant(
                ClusterTenant::new(VmId(1), 0)
                    .with_total_bytes(96 * 1024)
                    .long_lived(),
            )
            .with_tenant(ClusterTenant::new(VmId(2), 500_000).with_total_bytes(64 * 1024))
            .with_warm_migration(2_000_000, VmId(1), HostId(2)),
    )
    .run()
    .expect("warm scenario runs");

    assert!(report.completed, "transfer must complete: {report:?}");
    assert_eq!(
        report.reconnects, 0,
        "the long-lived connection must survive the move"
    );
    println!(
        "warm handover: {} bytes verified over {} steps, 0 reconnects",
        report.bytes_verified, report.steps
    );
    println!(
        "warm migrations {} · connections transplanted {} · drains completed {} (none needed)",
        report.stats.warm_migrations,
        report.stats.conns_transplanted,
        report.stats.drains_completed
    );
    println!("\ncluster event log:");
    for ev in &report.events {
        println!(
            "  t={:>9}ns epoch {:>2}  {:?}",
            ev.at_ns, ev.epoch, ev.action
        );
    }
    let warm_at = report
        .events
        .iter()
        .find(|e| matches!(e.action, ClusterAction::WarmMigrateVm { .. }))
        .expect("warm event logged")
        .at_ns;
    let retired_at = report
        .events
        .iter()
        .find(|e| matches!(e.action, ClusterAction::ScaleToZero { .. }))
        .expect("scale-to-zero logged")
        .at_ns;
    assert_eq!(
        warm_at, retired_at,
        "the source share must retire in the same control epoch"
    );
    for ((host, nsm), cores) in &report.final_nsm_cores {
        println!("final share: {host}/{nsm} = {cores} cores");
    }
    assert_eq!(report.final_nsm_cores[&(HostId(1), NsmId(1))], 0);
    println!("\nevent-log digest: {:#018x}", report.event_digest);
}
