//! NSM failover: a VM survives its network stack crashing underneath it.
//!
//! NetKernel's core promise is that the stack is *infrastructure*: the
//! operator can crash, replace or restart an NSM while tenant VMs keep
//! running. This example installs a fault plan that hard-crashes the serving
//! NSM in the middle of a 128 KiB transfer, live-migrates the VM to a
//! standby NSM in the same instant, and restarts the crashed NSM later. The
//! application code is the scenario runner's ordinary reliable-transfer
//! client — plain BSD-style socket calls with reconnect-on-error, no
//! NetKernel-specific handling at all — and the transfer completes with
//! every byte verified.
//!
//! Run with: `cargo run --example nsm_failover`

use netkernel::types::{HostConfig, NsmConfig, NsmId, VmConfig, VmId, VmToNsmPolicy};
use netkernel::{FaultAction, FaultPlan, Scenario, ScenarioConfig};

fn main() {
    // One VM, a primary NSM and a standby NSM.
    let host = HostConfig::new()
        .with_vm(VmConfig::new(VmId(1)))
        .with_nsm(NsmConfig::kernel(NsmId(1)))
        .with_nsm(NsmConfig::kernel(NsmId(2)))
        .with_mapping(VmToNsmPolicy::All(NsmId(1)));

    // The operator's incident script: crash the primary at t = 2 ms (the
    // transfer is mid-flight), point the VM at the standby in the same
    // instant, bring the primary back at t = 6 ms.
    let plan = FaultPlan::new()
        .at(2_000_000, FaultAction::CrashNsm(NsmId(1)))
        .at(
            2_000_000,
            FaultAction::MigrateVm {
                vm: VmId(1),
                to: NsmId(2),
            },
        )
        .at(6_000_000, FaultAction::RestartNsm(NsmId(1)));

    let report = Scenario::new(
        ScenarioConfig::new(host)
            .with_total_bytes(128 * 1024)
            .with_faults(plan),
    )
    .run()
    .expect("scenario runs");

    println!("transfer completed:      {}", report.completed);
    println!("bytes verified:          {}", report.bytes_verified);
    println!("socket errors observed:  {}", report.errors_observed);
    println!("reconnects:              {}", report.reconnects);
    println!(
        "faults applied:          {} ({} crash, {} migration, {} restart)",
        report.faults.applied,
        report.faults.crashes,
        report.faults.migrations,
        report.faults.restarts
    );
    println!("connections reset:       {}", report.engine.conn_resets);
    println!("host steps:              {}", report.steps);

    assert!(report.completed, "the VM must survive the NSM crash");
    assert!(report.errors_observed >= 1 && report.reconnects >= 1);
    println!("\nVM survived an NSM crash + live migration with zero app changes.");
}
