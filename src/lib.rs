//! NetKernel: making the network stack part of the virtualized infrastructure.
//!
//! This is the facade crate of the NetKernel reproduction. It re-exports the
//! public API of every workspace crate so applications (and the examples in
//! `examples/`) can depend on a single crate:
//!
//! * [`types`] — NQEs, ids, errors, configuration, the [`types::SocketApi`] trait.
//! * [`queue`] — lockless SPSC queues, queue sets and NK devices.
//! * [`shmem`] — the shared hugepage region and its allocator.
//! * [`sim`] — the deterministic discrete-event engine and cost model.
//! * [`fabric`] — virtual NICs, links and the virtual switch.
//! * [`netstack`] — the from-scratch TCP stack and congestion control.
//! * [`guest`] — GuestLib: transparent BSD socket redirection.
//! * [`service`] — ServiceLib and the Network Stack Modules.
//! * [`engine`] — CoreEngine: NQE switching, connection table, isolation.
//! * [`ctrl`] — the operator control plane: load monitoring, autoscaling,
//!   VM rebalancing, and the cluster-scope placer.
//! * [`host`] — host orchestration (threaded and simulated) and metrics.
//! * [`cluster`] — the cluster fabric: hosts behind a top-of-rack switch,
//!   cross-host VM migration with connection draining.
//! * [`obs`] — the deterministic flight recorder: event ring, latency
//!   epochs, migration phase timelines, hot-flow table.
//! * [`workload`] — workload generators used by the evaluation.

pub use nk_cluster as cluster;
pub use nk_ctrl as ctrl;
pub use nk_engine as engine;
pub use nk_fabric as fabric;
pub use nk_guest as guest;
pub use nk_host as host;
pub use nk_netstack as netstack;
pub use nk_obs as obs;
pub use nk_queue as queue;
pub use nk_service as service;
pub use nk_shmem as shmem;
pub use nk_sim as sim;
pub use nk_types as types;
pub use nk_workload as workload;

pub use nk_cluster::Cluster;
pub use nk_obs::{FlightRecorder, ObsDump, ObsFilter};
pub use nk_types::{
    ClusterAction, ClusterConfig, ClusterEvent, ClusterPolicy, ControlAction, ControlEvent,
    ControlPolicy, ControlTarget, FaultAction, FaultEvent, FaultPlan, LinkFault, NkError, NkResult,
    SocketApi,
};
pub use nk_workload::{
    random_fault_plan, BurstyClient, BurstyConfig, BurstyScenario, ClusterScenario,
    ClusterScenarioConfig, ClusterTenant, Scenario, ScenarioConfig, ScenarioReport,
};
