//! Per-socket send/receive buffer accounting.
//!
//! GuestLib "increases the send buffer usage for this socket similar to the
//! send buffer size maintained in an OS" when it copies payload into the
//! hugepages, and decreases it when the NSM reports the send result; the NSM
//! does the same for the receive direction (paper §4.5, §4.6). A
//! [`BufferBudget`] captures that accounting.

use nk_types::{NkError, NkResult};

/// A byte budget with reserve/release semantics.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BufferBudget {
    capacity: usize,
    used: usize,
}

impl BufferBudget {
    /// A budget of `capacity` bytes, initially empty.
    pub fn new(capacity: usize) -> Self {
        BufferBudget { capacity, used: 0 }
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Bytes currently reserved.
    pub fn used(&self) -> usize {
        self.used
    }

    /// Bytes still available.
    pub fn available(&self) -> usize {
        self.capacity.saturating_sub(self.used)
    }

    /// True when nothing can be reserved.
    pub fn is_full(&self) -> bool {
        self.used >= self.capacity
    }

    /// Reserve exactly `bytes`; fails with [`NkError::BufferFull`] when the
    /// budget cannot cover it.
    pub fn reserve(&mut self, bytes: usize) -> NkResult<()> {
        if bytes > self.available() {
            return Err(NkError::BufferFull);
        }
        self.used += bytes;
        Ok(())
    }

    /// Reserve up to `bytes`, returning how many were actually reserved
    /// (possibly zero). This matches `send()` semantics where a partial write
    /// is acceptable.
    pub fn reserve_up_to(&mut self, bytes: usize) -> usize {
        let granted = bytes.min(self.available());
        self.used += granted;
        granted
    }

    /// Release `bytes` back to the budget. Releasing more than is reserved is
    /// a protocol error and is clamped (the extra is ignored) so a misbehaving
    /// peer cannot drive the accounting negative.
    pub fn release(&mut self, bytes: usize) {
        self.used = self.used.saturating_sub(bytes);
    }

    /// Grow or shrink the capacity (e.g. via `SO_SNDBUF`). Shrinking below
    /// the current usage keeps the usage; new reservations are blocked until
    /// enough bytes are released.
    pub fn resize(&mut self, capacity: usize) {
        self.capacity = capacity;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reserve_and_release() {
        let mut b = BufferBudget::new(100);
        assert_eq!(b.available(), 100);
        b.reserve(40).unwrap();
        assert_eq!(b.used(), 40);
        assert_eq!(b.reserve(70), Err(NkError::BufferFull));
        b.release(40);
        assert_eq!(b.used(), 0);
        b.reserve(100).unwrap();
        assert!(b.is_full());
    }

    #[test]
    fn reserve_up_to_grants_partial() {
        let mut b = BufferBudget::new(10);
        assert_eq!(b.reserve_up_to(4), 4);
        assert_eq!(b.reserve_up_to(100), 6);
        assert_eq!(b.reserve_up_to(1), 0);
    }

    #[test]
    fn release_is_clamped() {
        let mut b = BufferBudget::new(10);
        b.reserve(5).unwrap();
        b.release(50);
        assert_eq!(b.used(), 0);
        assert_eq!(b.available(), 10);
    }

    #[test]
    fn resize_below_usage_blocks_new_reservations() {
        let mut b = BufferBudget::new(100);
        b.reserve(80).unwrap();
        b.resize(50);
        assert_eq!(b.capacity(), 50);
        assert!(b.is_full());
        assert_eq!(b.reserve(1), Err(NkError::BufferFull));
        b.release(40);
        assert_eq!(b.used(), 40);
        assert_eq!(b.available(), 10);
        b.reserve(10).unwrap();
    }
}
