//! The shared hugepage region and its chunk allocator.

// nk-lint: allow-file(cross-shard-locks) — the region is shared between a
// guest and the NSMs of one host, all members of the same share lane (lane
// grouping unions over exactly these edges), so the Mutexes serialise
// same-lane borrows only; no cross-shard data ever crosses them.

use nk_types::constants::HUGEPAGE_SIZE;
use nk_types::{DataHandle, NkError, NkResult};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Allocation granularity: chunks are rounded up to one cache line so
/// adjacent payloads never share a line (false sharing would defeat the
/// lockless design).
const ALIGN: usize = 64;

/// Statistics about a hugepage region.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct RegionStats {
    /// Total capacity in bytes.
    pub capacity: usize,
    /// Bytes currently allocated (after alignment rounding).
    pub used: usize,
    /// Number of live chunks.
    pub chunks: usize,
    /// Total allocations performed over the region's lifetime.
    pub total_allocs: u64,
    /// Allocation failures (region exhausted or fragmented).
    pub failed_allocs: u64,
}

struct Allocator {
    /// Free extents keyed by offset → length. Invariant: extents are
    /// non-overlapping, non-adjacent (coalesced) and aligned.
    free: BTreeMap<usize, usize>,
    /// Live chunks keyed by offset → rounded length.
    live: BTreeMap<usize, usize>,
    used: usize,
    total_allocs: u64,
    failed_allocs: u64,
}

impl Allocator {
    fn new(capacity: usize) -> Self {
        let mut free = BTreeMap::new();
        free.insert(0, capacity);
        Allocator {
            free,
            live: BTreeMap::new(),
            used: 0,
            total_allocs: 0,
            failed_allocs: 0,
        }
    }

    fn alloc(&mut self, len: usize) -> Option<usize> {
        let rounded = round_up(len.max(1));
        // First fit over the free extents.
        let slot = self
            .free
            .iter()
            .find(|(_, &flen)| flen >= rounded)
            .map(|(&off, &flen)| (off, flen));
        let (off, flen) = match slot {
            Some(s) => s,
            None => {
                self.failed_allocs += 1;
                return None;
            }
        };
        self.free.remove(&off);
        if flen > rounded {
            self.free.insert(off + rounded, flen - rounded);
        }
        self.live.insert(off, rounded);
        self.used += rounded;
        self.total_allocs += 1;
        Some(off)
    }

    fn free(&mut self, off: usize) -> NkResult<usize> {
        let len = self.live.remove(&off).ok_or(NkError::NotFound)?;
        self.used -= len;
        // Insert and coalesce with neighbours.
        let mut start = off;
        let mut end = off + len;
        if let Some((&prev_off, &prev_len)) = self.free.range(..off).next_back() {
            if prev_off + prev_len == start {
                self.free.remove(&prev_off);
                start = prev_off;
            }
        }
        if let Some(&next_len) = self.free.get(&end) {
            self.free.remove(&end);
            end += next_len;
        }
        self.free.insert(start, end - start);
        Ok(len)
    }
}

fn round_up(len: usize) -> usize {
    len.div_ceil(ALIGN) * ALIGN
}

struct Inner {
    data: Mutex<Box<[u8]>>,
    alloc: Mutex<Allocator>,
    capacity: usize,
}

/// A shared hugepage region between one VM and one NSM.
///
/// The region is cheaply clonable (`Arc` inside); GuestLib and ServiceLib each
/// hold a clone, mirroring the paper's mmap of the same IVSHMEM pages into
/// both guests.
#[derive(Clone)]
pub struct HugepageRegion {
    inner: Arc<Inner>,
}

impl HugepageRegion {
    /// Create a region of `pages` hugepages of 2 MB each.
    pub fn new(pages: usize) -> Self {
        Self::with_capacity(pages * HUGEPAGE_SIZE)
    }

    /// Create a region with an explicit byte capacity (useful for tests).
    pub fn with_capacity(capacity: usize) -> Self {
        let capacity = round_up(capacity.max(ALIGN));
        HugepageRegion {
            inner: Arc::new(Inner {
                data: Mutex::new(vec![0u8; capacity].into_boxed_slice()),
                alloc: Mutex::new(Allocator::new(capacity)),
                capacity,
            }),
        }
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.inner.capacity
    }

    /// Allocate a chunk of at least `len` bytes.
    pub fn alloc(&self, len: usize) -> NkResult<DataHandle> {
        if len > self.inner.capacity {
            return Err(NkError::OutOfHugepages);
        }
        let mut a = self.inner.alloc.lock();
        a.alloc(len)
            .map(|off| DataHandle::from_offset(off as u64))
            .ok_or(NkError::OutOfHugepages)
    }

    /// Free a chunk previously returned by [`HugepageRegion::alloc`].
    pub fn free(&self, handle: DataHandle) -> NkResult<()> {
        if handle.is_null() {
            return Err(NkError::NotFound);
        }
        self.inner.alloc.lock().free(handle.offset() as usize)?;
        Ok(())
    }

    /// Copy `data` into the chunk at `handle`.
    ///
    /// Fails when the handle is unknown or the data is larger than the chunk.
    pub fn write(&self, handle: DataHandle, data: &[u8]) -> NkResult<()> {
        let off = handle.offset() as usize;
        let len = {
            let a = self.inner.alloc.lock();
            *a.live.get(&off).ok_or(NkError::NotFound)?
        };
        if data.len() > len {
            return Err(NkError::InvalidState);
        }
        let mut buf = self.inner.data.lock();
        buf[off..off + data.len()].copy_from_slice(data);
        Ok(())
    }

    /// Copy `out.len()` bytes from the chunk at `handle` into `out`.
    pub fn read(&self, handle: DataHandle, out: &mut [u8]) -> NkResult<()> {
        let off = handle.offset() as usize;
        let len = {
            let a = self.inner.alloc.lock();
            *a.live.get(&off).ok_or(NkError::NotFound)?
        };
        if out.len() > len {
            return Err(NkError::InvalidState);
        }
        let buf = self.inner.data.lock();
        out.copy_from_slice(&buf[off..off + out.len()]);
        Ok(())
    }

    /// Allocate a chunk, copy `data` into it and return the handle — the
    /// common GuestLib `send()` path (§4.5 "Sending Data").
    pub fn alloc_and_write(&self, data: &[u8]) -> NkResult<DataHandle> {
        let handle = self.alloc(data.len())?;
        // Write cannot fail: the chunk was just allocated with sufficient
        // length, but free it defensively if it somehow does.
        if let Err(e) = self.write(handle, data) {
            let _ = self.free(handle);
            return Err(e);
        }
        Ok(handle)
    }

    /// Read `len` bytes from `handle` into a fresh vector and free the chunk —
    /// the common receive path once the application consumed the data.
    pub fn read_and_free(&self, handle: DataHandle, len: usize) -> NkResult<Vec<u8>> {
        let mut out = vec![0u8; len];
        self.read(handle, &mut out)?;
        self.free(handle)?;
        Ok(out)
    }

    /// Copy `len` bytes from a chunk in this region into a chunk of another
    /// region (or the same one). This is the shared-memory NSM's fast path
    /// (§6.4): payload moves hugepage-to-hugepage without touching a TCP
    /// stack.
    pub fn copy_to(
        &self,
        src: DataHandle,
        dst_region: &HugepageRegion,
        dst: DataHandle,
        len: usize,
    ) -> NkResult<()> {
        let mut tmp = vec![0u8; len];
        self.read(src, &mut tmp)?;
        dst_region.write(dst, &tmp)
    }

    /// Current statistics.
    pub fn stats(&self) -> RegionStats {
        let a = self.inner.alloc.lock();
        RegionStats {
            capacity: self.inner.capacity,
            used: a.used,
            chunks: a.live.len(),
            total_allocs: a.total_allocs,
            failed_allocs: a.failed_allocs,
        }
    }

    /// Bytes currently available for allocation.
    pub fn available(&self) -> usize {
        let a = self.inner.alloc.lock();
        self.inner.capacity - a.used
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_write_read_roundtrip() {
        let region = HugepageRegion::with_capacity(4096);
        let payload = b"hello netkernel".to_vec();
        let h = region.alloc_and_write(&payload).unwrap();
        let mut out = vec![0u8; payload.len()];
        region.read(h, &mut out).unwrap();
        assert_eq!(out, payload);
        region.free(h).unwrap();
        assert_eq!(region.stats().chunks, 0);
    }

    #[test]
    fn read_and_free_returns_data_and_releases() {
        let region = HugepageRegion::with_capacity(4096);
        let h = region.alloc_and_write(b"abc").unwrap();
        let data = region.read_and_free(h, 3).unwrap();
        assert_eq!(data, b"abc");
        assert_eq!(region.available(), region.capacity());
        assert_eq!(region.read(h, &mut [0u8; 1]), Err(NkError::NotFound));
    }

    #[test]
    fn exhaustion_reports_out_of_hugepages() {
        let region = HugepageRegion::with_capacity(256);
        let _a = region.alloc(128).unwrap();
        let _b = region.alloc(128).unwrap();
        assert_eq!(region.alloc(64), Err(NkError::OutOfHugepages));
        assert_eq!(region.stats().failed_allocs, 1);
        assert_eq!(region.alloc(1 << 30), Err(NkError::OutOfHugepages));
    }

    #[test]
    fn free_coalesces_neighbours() {
        let region = HugepageRegion::with_capacity(1024);
        let a = region.alloc(256).unwrap();
        let b = region.alloc(256).unwrap();
        let c = region.alloc(256).unwrap();
        region.free(b).unwrap();
        region.free(a).unwrap();
        region.free(c).unwrap();
        // After freeing everything a full-size allocation must succeed again.
        let big = region.alloc(1024).unwrap();
        region.free(big).unwrap();
    }

    #[test]
    fn double_free_is_rejected() {
        let region = HugepageRegion::with_capacity(1024);
        let a = region.alloc(64).unwrap();
        region.free(a).unwrap();
        assert_eq!(region.free(a), Err(NkError::NotFound));
        assert_eq!(region.free(DataHandle::NULL), Err(NkError::NotFound));
    }

    #[test]
    fn oversized_write_and_read_are_rejected() {
        let region = HugepageRegion::with_capacity(1024);
        let h = region.alloc(64).unwrap();
        assert_eq!(region.write(h, &[0u8; 100]), Err(NkError::InvalidState));
        assert_eq!(region.read(h, &mut [0u8; 100]), Err(NkError::InvalidState));
    }

    #[test]
    fn cross_region_copy() {
        let src_region = HugepageRegion::with_capacity(4096);
        let dst_region = HugepageRegion::with_capacity(4096);
        let src = src_region.alloc_and_write(b"colocated vm payload").unwrap();
        let dst = dst_region.alloc(32).unwrap();
        src_region.copy_to(src, &dst_region, dst, 20).unwrap();
        let mut out = vec![0u8; 20];
        dst_region.read(dst, &mut out).unwrap();
        assert_eq!(&out, b"colocated vm payload");
    }

    #[test]
    fn clones_share_the_same_storage() {
        let guest_side = HugepageRegion::with_capacity(4096);
        let nsm_side = guest_side.clone();
        let h = guest_side.alloc_and_write(b"shared").unwrap();
        let mut out = vec![0u8; 6];
        nsm_side.read(h, &mut out).unwrap();
        assert_eq!(&out, b"shared");
    }

    #[test]
    fn default_region_matches_paper_sizing() {
        let region = HugepageRegion::new(2);
        assert_eq!(region.capacity(), 2 * HUGEPAGE_SIZE);
    }
}
