//! Shared hugepage memory for application payload.
//!
//! "A unique set of hugepages are shared between each VM–NSM tuple for
//! application data exchange" (paper §4). GuestLib copies `send()` payload
//! from the application into the hugepage region and puts a *data pointer*
//! into the NQE; ServiceLib reads the payload out of the region (and vice
//! versa for received data). This crate provides:
//!
//! * [`region::HugepageRegion`] — the shared region (2 MB pages, paper §5)
//!   with a first-fit chunk allocator and copy-in/copy-out accessors keyed by
//!   [`nk_types::DataHandle`];
//! * [`budget::BufferBudget`] — the per-socket send/receive buffer accounting
//!   GuestLib and ServiceLib maintain on top of the region (§4.5).

pub mod budget;
pub mod region;

pub use budget::BufferBudget;
pub use region::{HugepageRegion, RegionStats};
