//! CUBIC congestion control (the Linux default).

use super::{CongestionControl, INITIAL_CWND, MIN_CWND};
use nk_types::constants::MSS;

/// CUBIC scaling constant.
const C: f64 = 0.4;
/// Multiplicative decrease factor.
const BETA: f64 = 0.7;

/// CUBIC: window growth follows a cubic function of the time since the last
/// congestion event, anchored at the window size where congestion occurred.
#[derive(Clone, Debug)]
pub struct Cubic {
    cwnd: f64,
    ssthresh: f64,
    /// Window size (in MSS) just before the last reduction.
    w_max: f64,
    /// Time of the last congestion event in seconds.
    epoch_start: Option<f64>,
    /// Time offset at which the cubic curve crosses `w_max`.
    k: f64,
}

impl Cubic {
    /// A new connection's CUBIC state.
    pub fn new() -> Self {
        Cubic {
            cwnd: INITIAL_CWND as f64,
            ssthresh: f64::MAX,
            w_max: INITIAL_CWND as f64,
            epoch_start: None,
            k: 0.0,
        }
    }

    fn mss() -> f64 {
        MSS as f64
    }

    fn reduce(&mut self) {
        self.w_max = self.cwnd;
        self.cwnd = (self.cwnd * BETA).max(MIN_CWND as f64);
        self.ssthresh = self.cwnd;
        self.epoch_start = None;
    }
}

impl Default for Cubic {
    fn default() -> Self {
        Self::new()
    }
}

impl CongestionControl for Cubic {
    fn cwnd(&self) -> usize {
        self.cwnd as usize
    }

    fn on_ack(&mut self, acked: usize, _rtt_ns: u64, ecn_echo: bool, now_ns: u64) {
        if ecn_echo {
            self.on_fast_retransmit(now_ns);
            return;
        }
        let now = now_ns as f64 / 1e9;
        if self.cwnd < self.ssthresh {
            // Slow start.
            self.cwnd += acked as f64;
            return;
        }
        let epoch = *self.epoch_start.get_or_insert_with(|| {
            // Start of a new congestion-avoidance epoch: compute K, the time
            // the cubic needs to climb back to w_max.
            let w_max_mss = self.w_max / Self::mss();
            let cwnd_mss = self.cwnd / Self::mss();
            self.k = ((w_max_mss - cwnd_mss).max(0.0) / C).cbrt();
            now
        });
        let t = now - epoch;
        let w_cubic_mss = C * (t - self.k).powi(3) + self.w_max / Self::mss();
        let target = (w_cubic_mss * Self::mss()).max(MIN_CWND as f64);
        if target > self.cwnd {
            // Approach the cubic target gradually (per-ACK step proportional
            // to the gap, as the Linux implementation does per RTT).
            self.cwnd += ((target - self.cwnd) / self.cwnd * acked as f64).max(1.0);
        } else {
            // TCP-friendly floor: at least Reno-like growth.
            self.cwnd += acked as f64 * Self::mss() / self.cwnd;
        }
    }

    fn on_fast_retransmit(&mut self, _now_ns: u64) {
        self.reduce();
    }

    fn on_timeout(&mut self, _now_ns: u64) {
        self.reduce();
        self.cwnd = MIN_CWND as f64;
    }

    fn name(&self) -> &'static str {
        "cubic"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drive_acks(cc: &mut Cubic, n: usize, start_ns: u64, step_ns: u64) -> u64 {
        let mut now = start_ns;
        for _ in 0..n {
            now += step_ns;
            cc.on_ack(MSS, 100_000, false, now);
        }
        now
    }

    #[test]
    fn slow_start_then_cubic_growth() {
        let mut cc = Cubic::new();
        let initial = cc.cwnd();
        let now = drive_acks(&mut cc, 50, 0, 1_000_000);
        assert!(cc.cwnd() > initial, "slow start must grow the window");
        cc.on_fast_retransmit(now);
        let reduced = cc.cwnd();
        let _ = drive_acks(&mut cc, 500, now, 1_000_000);
        assert!(cc.cwnd() > reduced, "cubic must regrow after a reduction");
    }

    #[test]
    fn reduction_is_beta_fraction() {
        let mut cc = Cubic::new();
        let now = drive_acks(&mut cc, 200, 0, 1_000_000);
        let before = cc.cwnd() as f64;
        cc.on_fast_retransmit(now);
        let after = cc.cwnd() as f64;
        assert!(
            (after / before - BETA).abs() < 0.05,
            "ratio {}",
            after / before
        );
    }

    #[test]
    fn concave_then_convex_growth_around_wmax() {
        let mut cc = Cubic::new();
        // Build a decent window, then cause a reduction.
        let now = drive_acks(&mut cc, 300, 0, 500_000);
        let w_max = cc.cwnd() as f64;
        cc.on_fast_retransmit(now);
        // Shortly after the reduction growth is fast (concave region), and it
        // flattens as the window approaches the old maximum.
        let w0 = cc.cwnd();
        let now = drive_acks(&mut cc, 50, now, 2_000_000);
        let early_growth = cc.cwnd() - w0;
        let _ = drive_acks(&mut cc, 50, now, 2_000_000);
        assert!(early_growth > 0);
        // Shortly after a reduction CUBIC stays in the concave region: the
        // window creeps back towards w_max but must not overshoot it wildly.
        assert!(
            (cc.cwnd() as f64) < w_max * 1.5,
            "window should not explode past w_max quickly"
        );
    }

    #[test]
    fn timeout_collapses_window() {
        let mut cc = Cubic::new();
        let now = drive_acks(&mut cc, 200, 0, 1_000_000);
        cc.on_timeout(now);
        assert_eq!(cc.cwnd(), MIN_CWND);
    }
}
