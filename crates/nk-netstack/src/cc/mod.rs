//! Pluggable congestion control.
//!
//! "We do not enforce a single transport design" (paper §1): every NSM picks
//! its own stack and congestion control. The [`CongestionControl`] trait is
//! the seam: the connection state machine asks it for the current window and
//! feeds it ACK/loss/ECN signals. Four algorithms are provided:
//!
//! * [`reno::Reno`] — NewReno-style AIMD;
//! * [`cubic::Cubic`] — the Linux default the paper's Baseline runs;
//! * [`dctcp::Dctcp`] — proportional ECN response, the stack the community
//!   "is still finding ways to deploy in the public cloud" (§1);
//! * [`vmshared::VmSharedCc`] — one congestion window per VM shared by all of
//!   its flows (Seawall-style), powering the fair-bandwidth-sharing NSM of
//!   use case 2 (§6.2).

pub mod cubic;
pub mod dctcp;
pub mod reno;
pub mod vmshared;

pub use cubic::Cubic;
pub use dctcp::Dctcp;
pub use reno::Reno;
pub use vmshared::{SharedVmWindow, VmSharedCc};

use nk_types::constants::MSS;
use nk_types::CcKind;

/// Initial congestion window (10 segments, as in modern Linux).
pub const INITIAL_CWND: usize = 10 * MSS;
/// Minimum congestion window (2 segments).
pub const MIN_CWND: usize = 2 * MSS;

/// Congestion-control algorithm driven by the connection state machine.
pub trait CongestionControl: Send {
    /// Current congestion window in bytes.
    fn cwnd(&self) -> usize;

    /// Called for every ACK that advances the cumulative acknowledgement.
    ///
    /// `acked` is the number of newly acknowledged bytes, `rtt_ns` the RTT
    /// sample for this ACK (0 when unavailable), and `ecn_echo` whether the
    /// ACK carried an ECN echo.
    fn on_ack(&mut self, acked: usize, rtt_ns: u64, ecn_echo: bool, now_ns: u64);

    /// Called on a fast-retransmit (triple duplicate ACK) loss signal.
    fn on_fast_retransmit(&mut self, now_ns: u64);

    /// Called on a retransmission timeout (a stronger loss signal).
    fn on_timeout(&mut self, now_ns: u64);

    /// Human-readable algorithm name (mirrors `TCP_CONGESTION`).
    fn name(&self) -> &'static str;
}

/// Factory for congestion-control instances.
#[derive(Clone)]
pub enum CcAlgorithm {
    /// NewReno.
    Reno,
    /// CUBIC.
    Cubic,
    /// DCTCP.
    Dctcp,
    /// Seawall-style VM-shared window; all connections built from the same
    /// [`SharedVmWindow`] share one congestion window.
    VmShared(SharedVmWindow),
}

impl CcAlgorithm {
    /// Build an instance for a new connection.
    pub fn build(&self) -> Box<dyn CongestionControl> {
        match self {
            CcAlgorithm::Reno => Box::new(Reno::new()),
            CcAlgorithm::Cubic => Box::new(Cubic::new()),
            CcAlgorithm::Dctcp => Box::new(Dctcp::new()),
            CcAlgorithm::VmShared(shared) => Box::new(VmSharedCc::new(shared.clone())),
        }
    }

    /// Map a [`CcKind`] configuration value to an algorithm. `VmShared`
    /// requires a shared window, created fresh here; callers that want
    /// several connections to share a window should construct
    /// [`CcAlgorithm::VmShared`] themselves.
    pub fn from_kind(kind: CcKind) -> CcAlgorithm {
        match kind {
            CcKind::Reno => CcAlgorithm::Reno,
            CcKind::Cubic => CcAlgorithm::Cubic,
            CcKind::Dctcp => CcAlgorithm::Dctcp,
            CcKind::VmShared => CcAlgorithm::VmShared(SharedVmWindow::new()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factory_builds_every_algorithm() {
        for (kind, name) in [
            (CcKind::Reno, "reno"),
            (CcKind::Cubic, "cubic"),
            (CcKind::Dctcp, "dctcp"),
            (CcKind::VmShared, "vm-shared"),
        ] {
            let algo = CcAlgorithm::from_kind(kind);
            let cc = algo.build();
            assert_eq!(cc.name(), name);
            assert!(cc.cwnd() >= MIN_CWND);
        }
    }

    #[test]
    fn all_algorithms_grow_on_acks_and_shrink_on_loss() {
        for kind in [CcKind::Reno, CcKind::Cubic, CcKind::Dctcp, CcKind::VmShared] {
            let algo = CcAlgorithm::from_kind(kind);
            let mut cc = algo.build();
            let initial = cc.cwnd();
            let mut now = 0u64;
            for _ in 0..200 {
                now += 1_000_000;
                cc.on_ack(MSS, 100_000, false, now);
            }
            let grown = cc.cwnd();
            assert!(
                grown > initial,
                "{} did not grow: {initial} -> {grown}",
                cc.name()
            );
            cc.on_timeout(now);
            assert!(
                cc.cwnd() < grown,
                "{} did not shrink on timeout: {grown} -> {}",
                cc.name(),
                cc.cwnd()
            );
            assert!(cc.cwnd() >= MIN_CWND);
        }
    }
}
