//! TCP NewReno congestion control.

use super::{CongestionControl, INITIAL_CWND, MIN_CWND};
use nk_types::constants::MSS;

/// NewReno: slow start, AIMD congestion avoidance, multiplicative decrease on
/// loss.
#[derive(Clone, Debug)]
pub struct Reno {
    cwnd: usize,
    ssthresh: usize,
    /// Byte accumulator for congestion-avoidance growth (one MSS per RTT,
    /// approximated as one MSS per cwnd of acknowledged bytes).
    acked_accum: usize,
}

impl Reno {
    /// A new connection's NewReno state.
    pub fn new() -> Self {
        Reno {
            cwnd: INITIAL_CWND,
            ssthresh: usize::MAX,
            acked_accum: 0,
        }
    }

    /// True while in slow start.
    pub fn in_slow_start(&self) -> bool {
        self.cwnd < self.ssthresh
    }
}

impl Default for Reno {
    fn default() -> Self {
        Self::new()
    }
}

impl CongestionControl for Reno {
    fn cwnd(&self) -> usize {
        self.cwnd
    }

    fn on_ack(&mut self, acked: usize, _rtt_ns: u64, ecn_echo: bool, now_ns: u64) {
        if ecn_echo {
            // Classic ECN response is the same as a fast retransmit.
            self.on_fast_retransmit(now_ns);
            return;
        }
        if self.in_slow_start() {
            self.cwnd += acked;
        } else {
            self.acked_accum += acked;
            while self.acked_accum >= self.cwnd {
                self.acked_accum -= self.cwnd;
                self.cwnd += MSS;
            }
        }
    }

    fn on_fast_retransmit(&mut self, _now_ns: u64) {
        self.ssthresh = (self.cwnd / 2).max(MIN_CWND);
        self.cwnd = self.ssthresh;
        self.acked_accum = 0;
    }

    fn on_timeout(&mut self, _now_ns: u64) {
        self.ssthresh = (self.cwnd / 2).max(MIN_CWND);
        self.cwnd = MIN_CWND;
        self.acked_accum = 0;
    }

    fn name(&self) -> &'static str {
        "reno"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slow_start_doubles_per_rtt() {
        let mut cc = Reno::new();
        let start = cc.cwnd();
        // Acknowledge one full window: slow start should double it.
        let mut acked = 0;
        while acked < start {
            cc.on_ack(MSS, 0, false, 0);
            acked += MSS;
        }
        assert!(cc.cwnd() >= 2 * start - MSS);
        assert!(cc.in_slow_start());
    }

    #[test]
    fn congestion_avoidance_grows_linearly() {
        let mut cc = Reno::new();
        cc.on_fast_retransmit(0); // leave slow start
        let w = cc.cwnd();
        assert!(!cc.in_slow_start());
        // One window of ACKs grows cwnd by about one MSS.
        let mut acked = 0;
        while acked < w {
            cc.on_ack(MSS, 0, false, 0);
            acked += MSS;
        }
        assert!(cc.cwnd() >= w + MSS && cc.cwnd() <= w + 2 * MSS);
    }

    #[test]
    fn timeout_collapses_to_minimum() {
        let mut cc = Reno::new();
        for _ in 0..100 {
            cc.on_ack(MSS, 0, false, 0);
        }
        cc.on_timeout(0);
        assert_eq!(cc.cwnd(), MIN_CWND);
    }

    #[test]
    fn fast_retransmit_halves() {
        let mut cc = Reno::new();
        for _ in 0..100 {
            cc.on_ack(MSS, 0, false, 0);
        }
        let before = cc.cwnd();
        cc.on_fast_retransmit(0);
        assert!(cc.cwnd() >= before / 2 - MSS && cc.cwnd() <= before / 2 + MSS);
    }

    #[test]
    fn ecn_echo_acts_like_fast_retransmit() {
        let mut cc = Reno::new();
        for _ in 0..100 {
            cc.on_ack(MSS, 0, false, 0);
        }
        let before = cc.cwnd();
        cc.on_ack(MSS, 0, true, 0);
        assert!(cc.cwnd() < before);
    }
}
