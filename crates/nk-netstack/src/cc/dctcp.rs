//! DCTCP: Data Center TCP.
//!
//! DCTCP reacts *proportionally* to the fraction of ECN-marked packets
//! instead of halving on any congestion signal. The paper's motivation
//! section cites deploying DCTCP in the public cloud as a canonical example
//! of a stack improvement the operator cannot roll out today (§1); with
//! NetKernel it is just another NSM configuration.

use super::{CongestionControl, INITIAL_CWND, MIN_CWND};
use nk_types::constants::MSS;

/// EWMA weight for the marked fraction (RFC 8257 recommends 1/16).
const G: f64 = 1.0 / 16.0;

/// DCTCP congestion control.
#[derive(Clone, Debug)]
pub struct Dctcp {
    cwnd: usize,
    ssthresh: usize,
    /// Smoothed fraction of marked bytes.
    alpha: f64,
    /// Bytes acknowledged in the current observation window.
    acked_window: usize,
    /// Size of the current observation window (cwnd snapshot at its start).
    window_target: usize,
    /// Of which, bytes acknowledged with an ECN echo.
    marked_window: usize,
    /// Congestion-avoidance accumulator.
    acked_accum: usize,
    /// Whether the window was already reduced in this observation window.
    reduced_this_window: bool,
}

impl Dctcp {
    /// A new connection's DCTCP state.
    pub fn new() -> Self {
        Dctcp {
            cwnd: INITIAL_CWND,
            ssthresh: usize::MAX,
            alpha: 1.0,
            acked_window: 0,
            window_target: INITIAL_CWND,
            marked_window: 0,
            acked_accum: 0,
            reduced_this_window: false,
        }
    }

    /// Current smoothed marked fraction (exposed for tests and telemetry).
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    fn maybe_close_window(&mut self) {
        // An observation window is one window's worth of acknowledged bytes,
        // measured against the cwnd captured at the start of the window so a
        // growing cwnd cannot keep the window open forever.
        if self.acked_window >= self.window_target {
            let fraction = if self.acked_window == 0 {
                0.0
            } else {
                self.marked_window as f64 / self.acked_window as f64
            };
            self.alpha = (1.0 - G) * self.alpha + G * fraction;
            self.acked_window = 0;
            self.marked_window = 0;
            self.window_target = self.cwnd;
            self.reduced_this_window = false;
        }
    }
}

impl Default for Dctcp {
    fn default() -> Self {
        Self::new()
    }
}

impl CongestionControl for Dctcp {
    fn cwnd(&self) -> usize {
        self.cwnd
    }

    fn on_ack(&mut self, acked: usize, _rtt_ns: u64, ecn_echo: bool, _now_ns: u64) {
        self.acked_window += acked;
        if ecn_echo {
            self.marked_window += acked;
            if !self.reduced_this_window {
                // Proportional decrease: cwnd ← cwnd · (1 − α/2), once per
                // observation window.
                let factor = 1.0 - self.alpha / 2.0;
                self.cwnd = ((self.cwnd as f64 * factor) as usize).max(MIN_CWND);
                self.ssthresh = self.cwnd;
                self.reduced_this_window = true;
            }
        } else if self.cwnd < self.ssthresh {
            self.cwnd += acked;
        } else {
            self.acked_accum += acked;
            while self.acked_accum >= self.cwnd {
                self.acked_accum -= self.cwnd;
                self.cwnd += MSS;
            }
        }
        self.maybe_close_window();
    }

    fn on_fast_retransmit(&mut self, _now_ns: u64) {
        self.ssthresh = (self.cwnd / 2).max(MIN_CWND);
        self.cwnd = self.ssthresh;
    }

    fn on_timeout(&mut self, _now_ns: u64) {
        self.ssthresh = (self.cwnd / 2).max(MIN_CWND);
        self.cwnd = MIN_CWND;
    }

    fn name(&self) -> &'static str {
        "dctcp"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alpha_tracks_marking_fraction() {
        let mut cc = Dctcp::new();
        // Run many windows with ~50% marks: alpha should converge near 0.5.
        for i in 0..20_000 {
            cc.on_ack(MSS, 0, i % 2 == 0, 0);
        }
        assert!((cc.alpha() - 0.5).abs() < 0.15, "alpha {}", cc.alpha());
    }

    #[test]
    fn no_marks_drive_alpha_to_zero_and_window_grows() {
        let mut cc = Dctcp::new();
        // Leave slow start so observation windows have a stable size.
        cc.on_fast_retransmit(0);
        let initial = cc.cwnd();
        for _ in 0..20_000 {
            cc.on_ack(MSS, 0, false, 0);
        }
        assert!(cc.alpha() < 0.05, "alpha {}", cc.alpha());
        assert!(cc.cwnd() > initial);
    }

    #[test]
    fn light_marking_causes_gentle_reduction() {
        // With a small alpha, a marked window reduces cwnd by much less than
        // half — DCTCP's defining property.
        let mut cc = Dctcp::new();
        // Leave slow start, then drive alpha low with unmarked traffic.
        cc.on_fast_retransmit(0);
        for _ in 0..20_000 {
            cc.on_ack(MSS, 0, false, 0);
        }
        let before = cc.cwnd();
        // One marked ACK.
        cc.on_ack(MSS, 0, true, 0);
        let after = cc.cwnd();
        assert!(after < before);
        assert!(
            (before - after) < before / 4,
            "reduction {} out of {} too aggressive",
            before - after,
            before
        );
    }

    #[test]
    fn timeout_still_collapses() {
        let mut cc = Dctcp::new();
        for _ in 0..1000 {
            cc.on_ack(MSS, 0, false, 0);
        }
        cc.on_timeout(0);
        assert_eq!(cc.cwnd(), MIN_CWND);
    }
}
