//! Seawall-style VM-level congestion control.
//!
//! Use case 2 of the paper (§6.2): "One VM maintains a global congestion
//! window shared among all its connections to different destinations. Each
//! individual flow's ACK advances the shared congestion window, and when
//! sending data, each flow cannot send more than 1/n of the shared window
//! where n is the number of active flows." This gives *VM-level* fairness —
//! a selfish VM opening many flows gets no more bandwidth than a well-behaved
//! one (Figure 9).

// nk-lint: allow-file(cross-shard-locks) — the shared VM window is cloned
// only into connections of one VM, which all live on that VM's NSM stack
// and are ticked by a single lane; the Mutex is same-thread interior
// mutability, never contended across shards.

use super::{CongestionControl, INITIAL_CWND, MIN_CWND};
use nk_types::constants::MSS;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

struct SharedState {
    cwnd: usize,
    ssthresh: usize,
    acked_accum: usize,
}

/// The per-VM shared congestion window. Clone it into every connection of the
/// same VM (the fair-share NSM does this keyed by VM id).
#[derive(Clone)]
pub struct SharedVmWindow {
    state: Arc<Mutex<SharedState>>,
    active_flows: Arc<AtomicUsize>,
}

impl SharedVmWindow {
    /// A fresh shared window for one VM.
    pub fn new() -> Self {
        SharedVmWindow {
            state: Arc::new(Mutex::new(SharedState {
                cwnd: INITIAL_CWND,
                ssthresh: usize::MAX,
                acked_accum: 0,
            })),
            active_flows: Arc::new(AtomicUsize::new(0)),
        }
    }

    /// Total shared window in bytes.
    pub fn total_cwnd(&self) -> usize {
        self.state.lock().unwrap().cwnd
    }

    /// Number of flows currently sharing the window.
    pub fn active_flows(&self) -> usize {
        self.active_flows.load(Ordering::Relaxed).max(1)
    }

    fn register(&self) {
        self.active_flows.fetch_add(1, Ordering::Relaxed);
    }

    fn unregister(&self) {
        self.active_flows.fetch_sub(1, Ordering::Relaxed);
    }

    fn on_ack(&self, acked: usize, ecn_echo: bool) {
        let mut s = self.state.lock().unwrap();
        if ecn_echo {
            s.ssthresh = (s.cwnd / 2).max(MIN_CWND);
            s.cwnd = s.ssthresh;
            s.acked_accum = 0;
            return;
        }
        if s.cwnd < s.ssthresh {
            s.cwnd += acked;
        } else {
            s.acked_accum += acked;
            while s.acked_accum >= s.cwnd {
                let w = s.cwnd;
                s.acked_accum -= w;
                s.cwnd += MSS;
            }
        }
    }

    fn on_loss(&self, timeout: bool) {
        let mut s = self.state.lock().unwrap();
        s.ssthresh = (s.cwnd / 2).max(MIN_CWND);
        s.cwnd = if timeout { MIN_CWND } else { s.ssthresh };
        s.acked_accum = 0;
    }
}

impl Default for SharedVmWindow {
    fn default() -> Self {
        Self::new()
    }
}

/// Per-connection view of a [`SharedVmWindow`].
pub struct VmSharedCc {
    shared: SharedVmWindow,
}

impl VmSharedCc {
    /// Join the given VM's shared window.
    pub fn new(shared: SharedVmWindow) -> Self {
        shared.register();
        VmSharedCc { shared }
    }
}

impl Drop for VmSharedCc {
    fn drop(&mut self) {
        self.shared.unregister();
    }
}

impl CongestionControl for VmSharedCc {
    fn cwnd(&self) -> usize {
        // Each flow may use at most 1/n of the shared window.
        let share = self.shared.total_cwnd() / self.shared.active_flows();
        share.max(MSS)
    }

    fn on_ack(&mut self, acked: usize, _rtt_ns: u64, ecn_echo: bool, _now_ns: u64) {
        self.shared.on_ack(acked, ecn_echo);
    }

    fn on_fast_retransmit(&mut self, _now_ns: u64) {
        self.shared.on_loss(false);
    }

    fn on_timeout(&mut self, _now_ns: u64) {
        self.shared.on_loss(true);
    }

    fn name(&self) -> &'static str {
        "vm-shared"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flows_split_the_shared_window_equally() {
        let shared = SharedVmWindow::new();
        let a = VmSharedCc::new(shared.clone());
        let b = VmSharedCc::new(shared.clone());
        let c = VmSharedCc::new(shared.clone());
        assert_eq!(shared.active_flows(), 3);
        let total = shared.total_cwnd();
        assert!(a.cwnd() <= total / 3 + MSS);
        assert_eq!(a.cwnd(), b.cwnd());
        assert_eq!(b.cwnd(), c.cwnd());
    }

    #[test]
    fn adding_flows_does_not_grow_the_total() {
        let shared = SharedVmWindow::new();
        let flows: Vec<VmSharedCc> = (0..8).map(|_| VmSharedCc::new(shared.clone())).collect();
        let total_before = shared.total_cwnd();
        let more: Vec<VmSharedCc> = (0..16).map(|_| VmSharedCc::new(shared.clone())).collect();
        assert_eq!(shared.total_cwnd(), total_before);
        // Per-flow share shrinks instead.
        assert!(more[0].cwnd() < total_before / 8 + MSS);
        drop(flows);
        drop(more);
        assert_eq!(shared.active_flows(), 1); // clamped to at least 1
    }

    #[test]
    fn any_flows_ack_advances_the_shared_window() {
        let shared = SharedVmWindow::new();
        let mut a = VmSharedCc::new(shared.clone());
        let _b = VmSharedCc::new(shared.clone());
        let before = shared.total_cwnd();
        for _ in 0..50 {
            a.on_ack(MSS, 0, false, 0);
        }
        assert!(shared.total_cwnd() > before);
    }

    #[test]
    fn loss_on_one_flow_halves_the_shared_window() {
        let shared = SharedVmWindow::new();
        let mut a = VmSharedCc::new(shared.clone());
        let mut b = VmSharedCc::new(shared.clone());
        for _ in 0..100 {
            a.on_ack(MSS, 0, false, 0);
            b.on_ack(MSS, 0, false, 0);
        }
        let before = shared.total_cwnd();
        b.on_fast_retransmit(0);
        let after = shared.total_cwnd();
        assert!(after <= before / 2 + MSS);
        assert!(after >= MIN_CWND);
        a.on_timeout(0);
        assert_eq!(shared.total_cwnd(), MIN_CWND);
    }

    #[test]
    fn unregister_restores_share() {
        let shared = SharedVmWindow::new();
        let a = VmSharedCc::new(shared.clone());
        {
            let _b = VmSharedCc::new(shared.clone());
            assert_eq!(shared.active_flows(), 2);
        }
        assert_eq!(shared.active_flows(), 1);
        assert!(a.cwnd() >= shared.total_cwnd());
    }
}
