//! The socket layer: listeners, demultiplexing, readiness and the stack API.
//!
//! A [`TcpStack`] is what a Network Stack Module actually runs: it owns a
//! port on the virtual fabric, a socket table, and the per-connection state
//! machines. ServiceLib (NetKernel) or the in-guest baseline translate socket
//! calls into the methods of this type. The stack is driven by
//! [`TcpStack::tick`], which ingests frames from the fabric, runs the
//! connection state machines, and emits outgoing frames.

use crate::cc::CcAlgorithm;
use crate::conn::{ConnState, TcpConnection};
use crate::segment::Segment;
use nk_fabric::nic::symmetric_flow_hash;
use nk_fabric::port::{Frame, Port};
use nk_types::api::sockopt;
use nk_types::{NkError, NkResult, PollEvents, ShutdownHow, SockAddr, SocketId};
use std::collections::{BTreeMap, VecDeque};

/// Configuration of one stack instance.
#[derive(Clone)]
pub struct StackConfig {
    /// Local IP address of the endpoint this stack serves.
    pub local_ip: u32,
    /// Congestion control used for new connections.
    pub cc: CcAlgorithm,
    /// Per-socket send buffer capacity in bytes.
    pub send_buf: usize,
    /// Per-socket receive buffer capacity in bytes.
    pub recv_buf: usize,
    /// First ephemeral port handed out for active opens. Real stacks
    /// randomize this per boot; a restarted NSM stack must use a different
    /// start so its fresh connections cannot collide with a peer's stale
    /// pre-crash state for the same 4-tuple.
    pub ephemeral_start: u16,
}

/// Bottom of the ephemeral port range.
pub const EPHEMERAL_LOW: u16 = 40_000;
/// Top (exclusive) of the ephemeral port range.
pub const EPHEMERAL_HIGH: u16 = 65_000;

impl StackConfig {
    /// A stack bound to `local_ip` using CUBIC and default buffer sizes.
    pub fn new(local_ip: u32) -> Self {
        StackConfig {
            local_ip,
            cc: CcAlgorithm::Cubic,
            send_buf: nk_types::constants::DEFAULT_SEND_BUF,
            recv_buf: nk_types::constants::DEFAULT_RECV_BUF,
            ephemeral_start: EPHEMERAL_LOW,
        }
    }

    /// Select a congestion-control algorithm (builder style).
    pub fn with_cc(mut self, cc: CcAlgorithm) -> Self {
        self.cc = cc;
        self
    }

    /// Start the ephemeral port scan at `port` (builder style). Values
    /// outside the ephemeral range are wrapped into it.
    pub fn with_ephemeral_start(mut self, port: u16) -> Self {
        let span = EPHEMERAL_HIGH - EPHEMERAL_LOW;
        self.ephemeral_start = EPHEMERAL_LOW + port % span;
        self
    }

    /// Start the ephemeral port scan at the canonical offset for restart
    /// `generation` (builder style).
    ///
    /// The offset is computed as `generation * 4099 mod span` in 64-bit
    /// arithmetic. Doing the multiply in `u16` first (as a caller stacking
    /// [`StackConfig::with_ephemeral_start`] on a scaled generation would)
    /// silently wraps at 65536, which aliases different generations onto
    /// the same start long before the range is exhausted. 4099 is coprime
    /// with the range size, so this walks all `span` distinct starts before
    /// any repeat — a restarted stack's fresh connections cannot reuse the
    /// previous life's port sequence for `span` generations.
    pub fn with_ephemeral_generation(mut self, generation: u32) -> Self {
        let span = u64::from(EPHEMERAL_HIGH - EPHEMERAL_LOW);
        self.ephemeral_start = EPHEMERAL_LOW + (u64::from(generation) * 4099 % span) as u16;
        self
    }
}

/// Events produced while ticking the stack, consumed by ServiceLib to build
/// completion / data NQEs without scanning every socket.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum StackEvent {
    /// An active open completed (connect succeeded).
    Connected(SocketId),
    /// An active open failed.
    ConnectFailed(SocketId),
    /// A listener has at least one connection ready to accept.
    Acceptable(SocketId),
    /// New in-order data is available on a connection.
    Readable(SocketId),
    /// Send-buffer space became available again.
    Writable(SocketId),
    /// The peer closed its write side (EOF after draining data).
    PeerClosed(SocketId),
}

/// Aggregate statistics of a stack instance.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StackStats {
    /// Segments received from the fabric.
    pub segments_in: u64,
    /// Segments emitted to the fabric.
    pub segments_out: u64,
    /// Payload bytes received in order.
    pub bytes_in: u64,
    /// Payload bytes queued for transmission by applications.
    pub bytes_out: u64,
    /// Connections accepted by listeners.
    pub accepted: u64,
    /// Connections actively opened.
    pub connected: u64,
    /// Segments dropped because no socket matched.
    pub no_socket_drops: u64,
}

enum SocketEntry {
    /// Created but neither listening nor connected.
    Idle {
        bound: Option<SockAddr>,
        reuseport: bool,
    },
    /// Passive listener.
    Listener {
        local: SockAddr,
        backlog: usize,
        /// Established connections awaiting `accept()`.
        ready: VecDeque<SocketId>,
    },
    /// An in-progress or established connection.
    Conn(Box<TcpConnection>),
}

/// A TCP stack instance attached to one fabric port.
pub struct TcpStack {
    cfg: StackConfig,
    port: Port<Segment>,
    /// Ordered map: `transmit` and `reap_closed` walk every socket, and the
    /// walk order must match across runs for seeded scenarios to replay
    /// exactly (a `HashMap` would emit segments in a per-instance order).
    sockets: BTreeMap<SocketId, SocketEntry>,
    /// (local, remote) → connection socket. Ordered for the same reason:
    /// `serves_ip` and [`TcpStack::four_tuples`] walk it, and a hash-seeded
    /// walk would leak per-instance order into replay-sensitive output.
    demux: BTreeMap<(SockAddr, SockAddr), SocketId>,
    /// Listening sockets per local port (more than one with SO_REUSEPORT).
    listeners: BTreeMap<u16, Vec<SocketId>>,
    /// Embryonic connections (arrived via SYN) → their parent listener.
    embryonic: BTreeMap<SocketId, SocketId>,
    /// Sockets whose previous tick state was not yet writable/readable, for
    /// edge detection.
    was_writable: BTreeMap<SocketId, bool>,
    next_socket: u32,
    next_ephemeral: u16,
    iss: u32,
    rr_listener: usize,
    events: VecDeque<StackEvent>,
    stats: StackStats,
}

impl TcpStack {
    /// Create a stack attached to the given fabric port.
    pub fn new(cfg: StackConfig, port: Port<Segment>) -> Self {
        let ephemeral_start = cfg.ephemeral_start;
        TcpStack {
            cfg,
            port,
            sockets: BTreeMap::new(),
            demux: BTreeMap::new(),
            listeners: BTreeMap::new(),
            embryonic: BTreeMap::new(),
            was_writable: BTreeMap::new(),
            next_socket: 1,
            next_ephemeral: ephemeral_start,
            iss: 0x1000,
            rr_listener: 0,
            events: VecDeque::new(),
            stats: StackStats::default(),
        }
    }

    /// The stack's local IP.
    pub fn local_ip(&self) -> u32 {
        self.cfg.local_ip
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> StackStats {
        self.stats
    }

    /// Number of live sockets (of any kind).
    pub fn socket_count(&self) -> usize {
        self.sockets.len()
    }

    fn alloc_socket_id(&mut self) -> SocketId {
        let id = SocketId(self.next_socket);
        self.next_socket += 1;
        id
    }

    fn next_iss(&mut self) -> u32 {
        self.iss = self.iss.wrapping_add(64_000).wrapping_add(1);
        self.iss
    }

    fn alloc_ephemeral(&mut self) -> u16 {
        for _ in 0..25_000 {
            let p = self.next_ephemeral;
            // EPHEMERAL_HIGH is exclusive: wrap before the scan reaches it,
            // so every generation covers exactly the same range.
            self.next_ephemeral = if p + 1 >= EPHEMERAL_HIGH {
                EPHEMERAL_LOW
            } else {
                p + 1
            };
            if !self.listeners.contains_key(&p) {
                return p;
            }
        }
        0
    }

    // ---- Socket API ---------------------------------------------------------

    /// Create a new socket.
    pub fn socket(&mut self) -> SocketId {
        let id = self.alloc_socket_id();
        self.sockets.insert(
            id,
            SocketEntry::Idle {
                bound: None,
                reuseport: false,
            },
        );
        id
    }

    /// Bind a socket to a local address.
    pub fn bind(&mut self, sock: SocketId, addr: SockAddr) -> NkResult<()> {
        // Reject the bind when the port is taken by a listener without
        // SO_REUSEPORT on either side.
        let reuse_requested = matches!(
            self.sockets.get(&sock),
            Some(SocketEntry::Idle {
                reuseport: true,
                ..
            })
        );
        if let Some(existing) = self.listeners.get(&addr.port) {
            if !existing.is_empty() && !reuse_requested {
                return Err(NkError::AddrInUse);
            }
        }
        match self.sockets.get_mut(&sock) {
            Some(SocketEntry::Idle { bound, .. }) => {
                *bound = Some(SockAddr::new(self.cfg.local_ip, addr.port));
                Ok(())
            }
            Some(_) => Err(NkError::InvalidState),
            None => Err(NkError::BadSocket),
        }
    }

    /// Put a bound socket into the listening state.
    pub fn listen(&mut self, sock: SocketId, backlog: u32) -> NkResult<()> {
        let entry = self.sockets.get_mut(&sock).ok_or(NkError::BadSocket)?;
        match entry {
            SocketEntry::Idle {
                bound: Some(addr), ..
            } => {
                let local = *addr;
                *entry = SocketEntry::Listener {
                    local,
                    backlog: backlog.max(1) as usize,
                    ready: VecDeque::new(),
                };
                self.listeners.entry(local.port).or_default().push(sock);
                Ok(())
            }
            SocketEntry::Idle { bound: None, .. } => Err(NkError::InvalidState),
            _ => Err(NkError::InvalidState),
        }
    }

    /// Accept one pending connection from a listener.
    pub fn accept(&mut self, sock: SocketId) -> NkResult<(SocketId, SockAddr)> {
        match self.sockets.get_mut(&sock) {
            Some(SocketEntry::Listener { ready, .. }) => {
                let conn_id = ready.pop_front().ok_or(NkError::WouldBlock)?;
                let peer = match self.sockets.get(&conn_id) {
                    Some(SocketEntry::Conn(c)) => c.remote(),
                    _ => return Err(NkError::InvalidState),
                };
                self.stats.accepted += 1;
                Ok((conn_id, peer))
            }
            Some(_) => Err(NkError::InvalidState),
            None => Err(NkError::BadSocket),
        }
    }

    /// Start an active open towards `remote` using the stack's default
    /// congestion control.
    pub fn connect(&mut self, sock: SocketId, remote: SockAddr, now_ns: u64) -> NkResult<()> {
        self.connect_with_cc(sock, remote, now_ns, None)
    }

    /// Start an active open with an explicit congestion-control instance.
    ///
    /// The fair-share NSM uses this to give every connection of a VM the same
    /// Seawall-style shared window (paper §6.2); passing `None` uses the
    /// stack's configured algorithm.
    pub fn connect_with_cc(
        &mut self,
        sock: SocketId,
        remote: SockAddr,
        now_ns: u64,
        cc: Option<Box<dyn crate::cc::CongestionControl>>,
    ) -> NkResult<()> {
        let entry = self.sockets.get_mut(&sock).ok_or(NkError::BadSocket)?;
        let local_port = match entry {
            SocketEntry::Idle { bound, .. } => bound.map(|a| a.port),
            SocketEntry::Conn(_) => return Err(NkError::AlreadyConnected),
            SocketEntry::Listener { .. } => return Err(NkError::InvalidState),
        };
        let local_port = match local_port {
            Some(p) => p,
            None => self.alloc_ephemeral(),
        };
        let local = SockAddr::new(self.cfg.local_ip, local_port);
        let iss = self.next_iss();
        let cc = cc.unwrap_or_else(|| self.cfg.cc.build());
        let mut conn = TcpConnection::connect(local, remote, iss, cc, now_ns);
        conn.set_send_buf_cap(self.cfg.send_buf);
        conn.set_recv_buf_cap(self.cfg.recv_buf);
        self.demux.insert((local, remote), sock);
        self.sockets.insert(sock, SocketEntry::Conn(Box::new(conn)));
        self.stats.connected += 1;
        Ok(())
    }

    /// Queue data for transmission.
    pub fn send(&mut self, sock: SocketId, data: &[u8]) -> NkResult<usize> {
        match self.sockets.get_mut(&sock) {
            Some(SocketEntry::Conn(c)) => {
                if c.is_closed() {
                    return Err(NkError::Closed);
                }
                let n = c.write(data);
                if n == 0 {
                    if !c.is_established() && c.state() != ConnState::SynSent {
                        Err(NkError::NotConnected)
                    } else {
                        Err(NkError::WouldBlock)
                    }
                } else {
                    self.stats.bytes_out += n as u64;
                    Ok(n)
                }
            }
            Some(_) => Err(NkError::NotConnected),
            None => Err(NkError::BadSocket),
        }
    }

    /// Read received data.
    pub fn recv(&mut self, sock: SocketId, buf: &mut [u8]) -> NkResult<usize> {
        match self.sockets.get_mut(&sock) {
            Some(SocketEntry::Conn(c)) => {
                let n = c.read(buf);
                if n > 0 {
                    self.stats.bytes_in += n as u64;
                    Ok(n)
                } else if c.peer_closed() || c.is_closed() {
                    Ok(0)
                } else {
                    Err(NkError::WouldBlock)
                }
            }
            Some(_) => Err(NkError::NotConnected),
            None => Err(NkError::BadSocket),
        }
    }

    /// Set a socket option.
    pub fn set_sockopt(&mut self, sock: SocketId, opt: u32, value: u32) -> NkResult<()> {
        let entry = self.sockets.get_mut(&sock).ok_or(NkError::BadSocket)?;
        match (entry, opt) {
            (SocketEntry::Idle { reuseport, .. }, sockopt::REUSEPORT) => {
                *reuseport = value != 0;
                Ok(())
            }
            (SocketEntry::Conn(c), sockopt::SNDBUF) => {
                c.set_send_buf_cap(value as usize);
                Ok(())
            }
            (SocketEntry::Conn(c), sockopt::RCVBUF) => {
                c.set_recv_buf_cap(value as usize);
                Ok(())
            }
            (_, sockopt::NODELAY) => Ok(()),
            (_, sockopt::CONGESTION) => Ok(()),
            (_, sockopt::SNDBUF) | (_, sockopt::RCVBUF) | (_, sockopt::REUSEPORT) => Ok(()),
            _ => Err(NkError::Unsupported),
        }
    }

    /// Shut down one or both directions of a connection.
    pub fn shutdown(&mut self, sock: SocketId, how: ShutdownHow) -> NkResult<()> {
        match self.sockets.get_mut(&sock) {
            Some(SocketEntry::Conn(c)) => {
                match how {
                    ShutdownHow::Write | ShutdownHow::Both => c.close(),
                    ShutdownHow::Read => {}
                }
                Ok(())
            }
            Some(_) => Err(NkError::NotConnected),
            None => Err(NkError::BadSocket),
        }
    }

    /// Close a socket. Connections close gracefully; listeners stop
    /// accepting.
    pub fn close(&mut self, sock: SocketId) -> NkResult<()> {
        match self.sockets.get_mut(&sock) {
            Some(SocketEntry::Conn(c)) => {
                c.close();
                Ok(())
            }
            Some(SocketEntry::Listener { local, .. }) => {
                let port = local.port;
                if let Some(v) = self.listeners.get_mut(&port) {
                    v.retain(|s| *s != sock);
                    if v.is_empty() {
                        self.listeners.remove(&port);
                    }
                }
                self.sockets.remove(&sock);
                Ok(())
            }
            Some(SocketEntry::Idle { .. }) => {
                self.sockets.remove(&sock);
                Ok(())
            }
            None => Err(NkError::BadSocket),
        }
    }

    /// Current readiness of a socket.
    pub fn poll(&self, sock: SocketId) -> PollEvents {
        let mut ev = PollEvents::NONE;
        match self.sockets.get(&sock) {
            Some(SocketEntry::Conn(c)) => {
                if c.readable() {
                    ev |= PollEvents::READABLE;
                }
                if c.writable() {
                    ev |= PollEvents::WRITABLE;
                }
                if c.peer_closed() || c.is_closed() {
                    ev |= PollEvents::HUP;
                }
            }
            Some(SocketEntry::Listener { ready, .. }) => {
                if !ready.is_empty() {
                    ev |= PollEvents::READABLE;
                }
            }
            Some(SocketEntry::Idle { .. }) => {}
            None => ev |= PollEvents::ERROR,
        }
        ev
    }

    /// Drain the stack events generated since the last call.
    pub fn take_events(&mut self) -> Vec<StackEvent> {
        self.events.drain(..).collect()
    }

    // ---- Warm-migration export / install ------------------------------------

    /// True when `sock` is a connection with nothing in flight (every byte
    /// it transmitted has been acknowledged). Non-connection sockets and
    /// unknown ids read as quiet — the freeze window only waits on live
    /// connections.
    pub fn conn_quiet(&self, sock: SocketId) -> bool {
        match self.sockets.get(&sock) {
            Some(SocketEntry::Conn(c)) => c.in_flight() == 0,
            _ => true,
        }
    }

    /// True when `sock` is a connection [`TcpStack::export_conn`] would
    /// accept — post-handshake, not dying. Used to pre-validate a warm
    /// export before anything destructive happens.
    pub fn conn_transplantable(&self, sock: SocketId) -> bool {
        match self.sockets.get(&sock) {
            Some(SocketEntry::Conn(c)) => c.transplantable(),
            _ => false,
        }
    }

    /// True while any connection in this stack has `ip` as its local
    /// address. Hosts use this to decide when an adopted (warm-migrated)
    /// address alias is no longer serving anyone and can be dropped.
    pub fn serves_ip(&self, ip: u32) -> bool {
        self.demux.keys().any(|(local, _)| local.ip == ip)
    }

    /// Every live connection 4-tuple with its socket id, in (local, remote)
    /// address order. Diagnostics and warm-migration pre-validation walk
    /// this; the order is deterministic (and pinned by a regression test)
    /// because the demultiplexer is an ordered map.
    pub fn four_tuples(&self) -> Vec<((SockAddr, SockAddr), SocketId)> {
        self.demux.iter().map(|(k, v)| (*k, *v)).collect()
    }

    /// Tear a connection out of this stack for a warm migration, returning
    /// its serializable state. The socket, its demultiplexer entry and its
    /// edge-detection state all go; stray segments that still arrive for
    /// the tuple are dropped (counted as `no_socket_drops`), never answered
    /// with a reset — the connection lives on elsewhere.
    pub fn export_conn(&mut self, sock: SocketId) -> NkResult<nk_types::TcpConnSnapshot> {
        let snap = match self.sockets.get(&sock) {
            Some(SocketEntry::Conn(c)) => c.snapshot()?,
            Some(_) => return Err(NkError::InvalidState),
            None => return Err(NkError::BadSocket),
        };
        self.demux.remove(&(snap.local, snap.remote));
        self.sockets.remove(&sock);
        self.was_writable.remove(&sock);
        self.embryonic.remove(&sock);
        Ok(snap)
    }

    /// Install a warm-migrated connection into this stack under a fresh
    /// socket id. The connection keeps its original 4-tuple — the local
    /// address is the *source* NSM's, which the fabric reroutes here — so
    /// the demultiplexer matches the peer's frames even though the address
    /// differs from this stack's own. Congestion control starts fresh from
    /// this stack's configured algorithm.
    pub fn install_conn(&mut self, snap: &nk_types::TcpConnSnapshot) -> NkResult<SocketId> {
        if self.demux.contains_key(&(snap.local, snap.remote)) {
            return Err(NkError::AlreadyRegistered);
        }
        let conn = TcpConnection::restore(snap, self.cfg.cc.build());
        let id = self.alloc_socket_id();
        self.demux.insert((snap.local, snap.remote), id);
        self.sockets.insert(id, SocketEntry::Conn(Box::new(conn)));
        Ok(id)
    }

    // ---- Datapath -----------------------------------------------------------

    /// Process incoming frames, run timers, and transmit outgoing segments.
    /// Returns the number of segments processed (in + out).
    pub fn tick(&mut self, now_ns: u64) -> usize {
        let mut work = 0;
        work += self.process_incoming(now_ns);
        work += self.transmit(now_ns);
        self.reap_closed();
        work
    }

    fn process_incoming(&mut self, now_ns: u64) -> usize {
        let mut count = 0;
        while let Some(frame) = self.port.recv() {
            count += 1;
            self.stats.segments_in += 1;
            let seg = frame.payload;
            let local = seg.dst;
            let remote = seg.src;
            // Established / embryonic connection?
            if let Some(&sock) = self.demux.get(&(local, remote)) {
                let was_established;
                let was_readable;
                let was_fin;
                {
                    let Some(SocketEntry::Conn(c)) = self.sockets.get_mut(&sock) else {
                        continue;
                    };
                    was_established = c.is_established();
                    was_readable = c.recv_available() > 0;
                    was_fin = c.fin_received();
                    c.on_segment(&seg, now_ns);
                }
                self.after_segment(sock, was_established, was_readable, was_fin);
                continue;
            }
            // New connection request towards a listener?
            if seg.flags.syn && !seg.flags.ack {
                if let Some(listener_id) = self.pick_listener(local.port) {
                    self.handle_syn(listener_id, &seg, now_ns);
                    continue;
                }
            }
            // No socket: drop (and count). A RST in response to a SYN gives
            // the remote a crisp "connection refused".
            self.stats.no_socket_drops += 1;
            if seg.flags.syn && !seg.flags.ack {
                let mut rst = Segment::control(local, remote, crate::segment::SegmentFlags::rst());
                rst.seq = 0;
                rst.ack = seg.seq.wrapping_add(1);
                self.emit(rst);
            }
        }
        count
    }

    fn pick_listener(&mut self, port: u16) -> Option<SocketId> {
        let v = self.listeners.get(&port)?;
        if v.is_empty() {
            return None;
        }
        // Round-robin across SO_REUSEPORT listeners, like the kernel's
        // reuseport group balancing.
        let idx = self.rr_listener % v.len();
        self.rr_listener = self.rr_listener.wrapping_add(1);
        Some(v[idx])
    }

    fn handle_syn(&mut self, listener_id: SocketId, syn: &Segment, now_ns: u64) {
        // Enforce the backlog across embryonic + ready connections.
        let (local, backlog, ready_len) = match self.sockets.get(&listener_id) {
            Some(SocketEntry::Listener {
                local,
                backlog,
                ready,
            }) => (*local, *backlog, ready.len()),
            _ => return,
        };
        let embryonic_count = self
            .embryonic
            .values()
            .filter(|&&l| l == listener_id)
            .count();
        if ready_len + embryonic_count >= backlog {
            return; // silently drop, the client will retransmit its SYN
        }
        let local_addr = SockAddr::new(self.cfg.local_ip, local.port);
        let remote = syn.src;
        let iss = self.next_iss();
        let mut conn =
            TcpConnection::accept(local_addr, remote, iss, syn, self.cfg.cc.build(), now_ns);
        conn.set_send_buf_cap(self.cfg.send_buf);
        conn.set_recv_buf_cap(self.cfg.recv_buf);
        let id = self.alloc_socket_id();
        self.demux.insert((local_addr, remote), id);
        self.sockets.insert(id, SocketEntry::Conn(Box::new(conn)));
        self.embryonic.insert(id, listener_id);
    }

    fn after_segment(
        &mut self,
        sock: SocketId,
        was_established: bool,
        was_readable: bool,
        was_fin: bool,
    ) {
        let (established, readable, fin, closed) = match self.sockets.get(&sock) {
            Some(SocketEntry::Conn(c)) => (
                c.is_established(),
                c.recv_available() > 0,
                c.fin_received(),
                c.is_closed(),
            ),
            _ => return,
        };
        // Embryonic connection finished its handshake: hand it to the
        // listener's accept queue.
        if established && !was_established {
            if let Some(listener_id) = self.embryonic.remove(&sock) {
                if let Some(SocketEntry::Listener { ready, .. }) =
                    self.sockets.get_mut(&listener_id)
                {
                    ready.push_back(sock);
                    self.events.push_back(StackEvent::Acceptable(listener_id));
                }
            } else {
                self.events.push_back(StackEvent::Connected(sock));
            }
        }
        // A connection that died before establishing is a failed open
        // (refused by RST or aborted); drop any embryonic bookkeeping.
        if closed && !established && !was_established {
            self.embryonic.remove(&sock);
            self.events.push_back(StackEvent::ConnectFailed(sock));
        }
        if readable && !was_readable {
            self.events.push_back(StackEvent::Readable(sock));
        }
        if fin && !was_fin {
            self.events.push_back(StackEvent::PeerClosed(sock));
        }
    }

    fn transmit(&mut self, now_ns: u64) -> usize {
        let mut count = 0;
        let ids: Vec<SocketId> = self
            .sockets
            .iter()
            .filter(|(_, e)| matches!(e, SocketEntry::Conn(_)))
            .map(|(id, _)| *id)
            .collect();
        for id in ids {
            let (segs, writable) = {
                let Some(SocketEntry::Conn(c)) = self.sockets.get_mut(&id) else {
                    continue;
                };
                (c.poll_transmit(now_ns), c.writable())
            };
            for seg in segs {
                count += 1;
                self.emit(seg);
            }
            // Edge-detect the writable transition for Writable events.
            let was = self.was_writable.insert(id, writable).unwrap_or(false);
            if writable && !was {
                self.events.push_back(StackEvent::Writable(id));
            }
        }
        count
    }

    fn emit(&mut self, seg: Segment) {
        self.stats.segments_out += 1;
        let frame = Frame {
            src: seg.src.ip,
            dst: seg.dst.ip,
            flow_hash: symmetric_flow_hash(seg.src.ip, seg.src.port, seg.dst.ip, seg.dst.port),
            wire_bytes: seg.wire_bytes(),
            payload: seg,
        };
        self.port.send(frame);
    }

    fn reap_closed(&mut self) {
        let dead: Vec<SocketId> = self
            .sockets
            .iter()
            .filter_map(|(id, e)| match e {
                SocketEntry::Conn(c) if c.is_closed() && c.recv_available() == 0 => Some(*id),
                _ => None,
            })
            .collect();
        for id in dead {
            if let Some(SocketEntry::Conn(c)) = self.sockets.get(&id) {
                // Keep the entry if the application has not consumed EOF yet;
                // only reap connections nobody is waiting on.
                let key = (c.local(), c.remote());
                // Accepted-but-never-accepted embryonic entries are dropped too.
                if self.embryonic.contains_key(&id) {
                    self.embryonic.remove(&id);
                }
                self.demux.remove(&key);
                self.sockets.remove(&id);
                self.was_writable.remove(&id);
            }
        }
    }
}

impl nk_sim::Pollable for TcpStack {
    /// Protocol work only. The inherent `TcpStack::poll(sock)` readiness
    /// query is unrelated; this is the scheduler-facing entry point.
    fn poll(&mut self, now_ns: u64) -> usize {
        self.tick(now_ns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nk_fabric::switch::VirtualSwitch;

    const SERVER_IP: u32 = 0x0A00_0001;
    const CLIENT_IP: u32 = 0x0A00_0002;

    /// The per-generation ephemeral start stays in range for arbitrarily
    /// large restart generations and never aliases two generations within a
    /// full sweep of the range — the u16 wraparound regression guard.
    #[test]
    fn ephemeral_generation_starts_are_in_range_and_collision_free() {
        let span = (EPHEMERAL_HIGH - EPHEMERAL_LOW) as usize;
        let mut seen = std::collections::BTreeSet::new();
        for generation in 0..span as u32 {
            let start = StackConfig::new(1)
                .with_ephemeral_generation(generation)
                .ephemeral_start;
            assert!((EPHEMERAL_LOW..EPHEMERAL_HIGH).contains(&start));
            assert!(
                seen.insert(start),
                "generation {generation} reuses start {start}"
            );
        }
        // The old computation multiplied in u16 and wrapped at 65536:
        // generation 16 aliased to offset 48 instead of its canonical slot.
        let old_wrapped = StackConfig::new(1)
            .with_ephemeral_start(16u16.wrapping_mul(4099))
            .ephemeral_start;
        let guarded = StackConfig::new(1)
            .with_ephemeral_generation(16)
            .ephemeral_start;
        assert_ne!(old_wrapped, guarded, "u16 wraparound would alias gen 16");

        // Extreme generations stay in range (no panic, no out-of-range port).
        for generation in [span as u32, u32::MAX / 2, u32::MAX] {
            let start = StackConfig::new(1)
                .with_ephemeral_generation(generation)
                .ephemeral_start;
            assert!((EPHEMERAL_LOW..EPHEMERAL_HIGH).contains(&start));
        }
    }

    struct World {
        switch: VirtualSwitch<Segment>,
        server: TcpStack,
        client: TcpStack,
        now: u64,
    }

    impl World {
        fn new() -> Self {
            let mut switch = VirtualSwitch::new();
            let sp = switch.attach(SERVER_IP);
            let cp = switch.attach(CLIENT_IP);
            World {
                switch,
                server: TcpStack::new(StackConfig::new(SERVER_IP), sp),
                client: TcpStack::new(StackConfig::new(CLIENT_IP), cp),
                now: 0,
            }
        }

        fn run(&mut self, iterations: usize) {
            for _ in 0..iterations {
                self.now += 100_000; // 100 µs per round
                self.client.tick(self.now);
                self.server.tick(self.now);
                self.switch.step(self.now);
            }
        }
    }

    fn listening_server(w: &mut World, port: u16) -> SocketId {
        let ls = w.server.socket();
        w.server.bind(ls, SockAddr::new(0, port)).unwrap();
        w.server.listen(ls, 128).unwrap();
        ls
    }

    #[test]
    fn connect_accept_and_exchange_data() {
        let mut w = World::new();
        let ls = listening_server(&mut w, 80);

        let cs = w.client.socket();
        w.client
            .connect(cs, SockAddr::new(SERVER_IP, 80), w.now)
            .unwrap();
        w.run(10);

        let (conn, peer) = w.server.accept(ls).unwrap();
        assert_eq!(peer.ip, CLIENT_IP);
        assert!(w.client.poll(cs).writable());

        assert_eq!(w.client.send(cs, b"hello netkernel").unwrap(), 15);
        w.run(10);
        let mut buf = [0u8; 64];
        assert_eq!(w.server.recv(conn, &mut buf).unwrap(), 15);
        assert_eq!(&buf[..15], b"hello netkernel");

        assert_eq!(w.server.send(conn, b"pong").unwrap(), 4);
        w.run(10);
        assert_eq!(w.client.recv(cs, &mut buf).unwrap(), 4);
        assert_eq!(&buf[..4], b"pong");

        assert!(w.client.stats().segments_out > 0);
        assert!(w.server.stats().accepted == 1);
    }

    /// Iteration-order pin for the demultiplexer: connections arriving in
    /// scrambled port order must walk back in (local, remote) address
    /// order. A regression to a hash-ordered demux would scramble this
    /// walk per instance and leak nondeterminism into everything that
    /// iterates live connections (`serves_ip`, warm-migration
    /// pre-validation, diagnostics).
    #[test]
    fn four_tuples_walk_in_address_order_regardless_of_arrival() {
        let mut w = World::new();
        for port in [90u16, 70, 80] {
            listening_server(&mut w, port);
        }
        // Arrival order 90, 70, 80 — deliberately not sorted.
        for port in [90u16, 70, 80] {
            let cs = w.client.socket();
            w.client
                .connect(cs, SockAddr::new(SERVER_IP, port), w.now)
                .unwrap();
            w.run(10);
        }
        let tuples = w.server.four_tuples();
        assert_eq!(tuples.len(), 3);
        let local_ports: Vec<u16> = tuples.iter().map(|((l, _), _)| l.port).collect();
        assert_eq!(
            local_ports,
            vec![70, 80, 90],
            "demux must walk in (local, remote) order, not arrival order"
        );
        for ((l, r), _) in &tuples {
            assert_eq!(l.ip, SERVER_IP);
            assert_eq!(r.ip, CLIENT_IP);
        }
    }

    #[test]
    fn accept_before_connection_would_block() {
        let mut w = World::new();
        let ls = listening_server(&mut w, 80);
        assert_eq!(w.server.accept(ls), Err(NkError::WouldBlock));
    }

    #[test]
    fn connect_to_closed_port_fails() {
        let mut w = World::new();
        let cs = w.client.socket();
        w.client
            .connect(cs, SockAddr::new(SERVER_IP, 9999), w.now)
            .unwrap();
        w.run(20);
        let ev = w.client.poll(cs);
        assert!(ev.hup() || ev.error(), "events {ev:?}");
        assert!(w.server.stats().no_socket_drops > 0);
    }

    #[test]
    fn bulk_transfer_larger_than_one_window() {
        let mut w = World::new();
        let ls = listening_server(&mut w, 80);
        let cs = w.client.socket();
        w.client
            .connect(cs, SockAddr::new(SERVER_IP, 80), w.now)
            .unwrap();
        w.run(10);
        let (conn, _) = w.server.accept(ls).unwrap();

        let payload: Vec<u8> = (0..200_000u32).map(|i| (i % 251) as u8).collect();
        let mut sent = 0;
        let mut received = Vec::new();
        let mut buf = vec![0u8; 16 * 1024];
        for _ in 0..2_000 {
            if sent < payload.len() {
                if let Ok(n) = w.client.send(cs, &payload[sent..]) {
                    sent += n;
                }
            }
            w.run(1);
            while let Ok(n) = w.server.recv(conn, &mut buf) {
                if n == 0 {
                    break;
                }
                received.extend_from_slice(&buf[..n]);
            }
            if received.len() == payload.len() {
                break;
            }
        }
        assert_eq!(received.len(), payload.len());
        assert_eq!(received, payload);
    }

    #[test]
    fn events_report_readable_and_acceptable() {
        let mut w = World::new();
        let ls = listening_server(&mut w, 80);
        let cs = w.client.socket();
        w.client
            .connect(cs, SockAddr::new(SERVER_IP, 80), w.now)
            .unwrap();
        w.run(10);
        let events = w.server.take_events();
        assert!(events.contains(&StackEvent::Acceptable(ls)), "{events:?}");
        let (conn, _) = w.server.accept(ls).unwrap();

        w.client.send(cs, b"ping").unwrap();
        w.run(10);
        let events = w.server.take_events();
        assert!(events.contains(&StackEvent::Readable(conn)), "{events:?}");

        let client_events = w.client.take_events();
        assert!(
            client_events.contains(&StackEvent::Connected(cs)),
            "{client_events:?}"
        );
    }

    #[test]
    fn reuseport_spreads_connections_over_listeners() {
        let mut w = World::new();
        let mut listeners = Vec::new();
        for _ in 0..4 {
            let ls = w.server.socket();
            w.server.set_sockopt(ls, sockopt::REUSEPORT, 1).unwrap();
            w.server.bind(ls, SockAddr::new(0, 80)).unwrap();
            w.server.listen(ls, 64).unwrap();
            listeners.push(ls);
        }
        for _ in 0..16 {
            let cs = w.client.socket();
            w.client
                .connect(cs, SockAddr::new(SERVER_IP, 80), w.now)
                .unwrap();
        }
        w.run(30);
        let mut accepted = 0;
        let mut busy_listeners = 0;
        for &ls in &listeners {
            let mut n = 0;
            while w.server.accept(ls).is_ok() {
                n += 1;
            }
            if n > 0 {
                busy_listeners += 1;
            }
            accepted += n;
        }
        assert_eq!(accepted, 16);
        assert!(
            busy_listeners >= 3,
            "connections concentrated on {busy_listeners} listeners"
        );
    }

    #[test]
    fn bind_conflict_without_reuseport() {
        let mut w = World::new();
        let a = w.server.socket();
        w.server.bind(a, SockAddr::new(0, 80)).unwrap();
        w.server.listen(a, 8).unwrap();
        let b = w.server.socket();
        assert_eq!(
            w.server.bind(b, SockAddr::new(0, 80)),
            Err(NkError::AddrInUse)
        );
    }

    #[test]
    fn graceful_close_propagates_eof() {
        let mut w = World::new();
        let ls = listening_server(&mut w, 80);
        let cs = w.client.socket();
        w.client
            .connect(cs, SockAddr::new(SERVER_IP, 80), w.now)
            .unwrap();
        w.run(10);
        let (conn, _) = w.server.accept(ls).unwrap();
        w.client.send(cs, b"last words").unwrap();
        w.client.close(cs).unwrap();
        w.run(20);
        let mut buf = [0u8; 32];
        assert_eq!(w.server.recv(conn, &mut buf).unwrap(), 10);
        assert_eq!(w.server.recv(conn, &mut buf).unwrap(), 0, "EOF expected");
        let events = w.server.take_events();
        assert!(events
            .iter()
            .any(|e| matches!(e, StackEvent::PeerClosed(_))));
    }

    #[test]
    fn closed_connections_are_reaped() {
        let mut w = World::new();
        let ls = listening_server(&mut w, 80);
        let cs = w.client.socket();
        w.client
            .connect(cs, SockAddr::new(SERVER_IP, 80), w.now)
            .unwrap();
        w.run(10);
        let (conn, _) = w.server.accept(ls).unwrap();
        let before = w.server.socket_count();
        // Both sides close; after the exchange the server connection should
        // eventually disappear from the table.
        w.client.close(cs).unwrap();
        w.run(5);
        let mut buf = [0u8; 4];
        let _ = w.server.recv(conn, &mut buf);
        w.server.close(conn).unwrap();
        // Run long enough for FIN exchange plus TIME-WAIT to expire.
        for _ in 0..30 {
            w.run(10);
            w.now += 10_000_000;
        }
        assert!(w.server.socket_count() < before, "connection not reaped");
    }

    /// A connection exported from one stack instance and installed into
    /// another (standing on a different host, with a different local IP)
    /// keeps streaming: the 4-tuple survives, the new stack demultiplexes
    /// the peer's frames, and every byte arrives.
    #[test]
    fn export_install_moves_a_live_connection_between_stacks() {
        let mut w = World::new();
        let ls = listening_server(&mut w, 80);
        let cs = w.client.socket();
        w.client
            .connect(cs, SockAddr::new(SERVER_IP, 80), w.now)
            .unwrap();
        w.run(10);
        let (conn, _) = w.server.accept(ls).unwrap();
        assert_eq!(w.client.send(cs, b"before the move").unwrap(), 15);
        w.run(10);
        let mut buf = [0u8; 64];
        assert_eq!(w.server.recv(conn, &mut buf).unwrap(), 15);

        // Transplant: the client IP's switch port is re-homed (the fabric
        // reroute) and a stack with a *different* local IP adopts the
        // connection.
        assert!(w.client.conn_quiet(cs));
        let snap = w.client.export_conn(cs).unwrap();
        assert_eq!(snap.local.ip, CLIENT_IP);
        let new_port = w.switch.attach(CLIENT_IP);
        let mut migrated = TcpStack::new(StackConfig::new(0x0A00_0009), new_port);
        let new_sock = migrated.install_conn(&snap).unwrap();

        // Stray frames for the tuple at the old stack are dropped, not
        // reset.
        assert_eq!(w.client.export_conn(cs), Err(NkError::BadSocket));

        migrated.send(new_sock, b"after the move").unwrap();
        for _ in 0..10 {
            w.now += 100_000;
            migrated.tick(w.now);
            w.server.tick(w.now);
            w.switch.step(w.now);
        }
        assert_eq!(w.server.recv(conn, &mut buf).unwrap(), 14);
        assert_eq!(&buf[..14], b"after the move");

        // And the reverse direction reaches the migrated stack.
        w.server.send(conn, b"pong").unwrap();
        for _ in 0..10 {
            w.now += 100_000;
            migrated.tick(w.now);
            w.server.tick(w.now);
            w.switch.step(w.now);
        }
        assert_eq!(migrated.recv(new_sock, &mut buf).unwrap(), 4);

        // Installing the same tuple twice is refused.
        assert_eq!(
            migrated.install_conn(&snap),
            Err(NkError::AlreadyRegistered)
        );
    }

    #[test]
    fn invalid_socket_operations_report_errors() {
        let mut w = World::new();
        let bogus = SocketId(999);
        assert_eq!(w.client.send(bogus, b"x"), Err(NkError::BadSocket));
        assert_eq!(w.client.recv(bogus, &mut [0u8; 4]), Err(NkError::BadSocket));
        assert_eq!(w.client.close(bogus), Err(NkError::BadSocket));
        assert!(w.client.poll(bogus).error());

        let s = w.client.socket();
        assert_eq!(w.client.send(s, b"x"), Err(NkError::NotConnected));
        assert_eq!(w.client.listen(s, 4), Err(NkError::InvalidState));
    }
}
