//! TCP segments exchanged over the virtual fabric.

use nk_types::SockAddr;

/// TCP header flags (only the ones the stack uses).
#[derive(Clone, Copy, PartialEq, Eq, Default, Debug)]
pub struct SegmentFlags {
    /// Connection request / sequence-number synchronisation.
    pub syn: bool,
    /// Acknowledgement field is valid.
    pub ack: bool,
    /// Sender has finished sending.
    pub fin: bool,
    /// Abort the connection.
    pub rst: bool,
    /// ECN: congestion experienced was echoed by the receiver.
    pub ece: bool,
    /// ECN: congestion window reduced (sender response to ECE).
    pub cwr: bool,
}

impl SegmentFlags {
    /// Flags for a SYN.
    pub fn syn() -> Self {
        SegmentFlags {
            syn: true,
            ..Default::default()
        }
    }

    /// Flags for a SYN-ACK.
    pub fn syn_ack() -> Self {
        SegmentFlags {
            syn: true,
            ack: true,
            ..Default::default()
        }
    }

    /// Flags for a plain ACK.
    pub fn ack() -> Self {
        SegmentFlags {
            ack: true,
            ..Default::default()
        }
    }

    /// Flags for a FIN-ACK.
    pub fn fin_ack() -> Self {
        SegmentFlags {
            fin: true,
            ack: true,
            ..Default::default()
        }
    }

    /// Flags for an RST.
    pub fn rst() -> Self {
        SegmentFlags {
            rst: true,
            ..Default::default()
        }
    }
}

/// Fixed per-segment header overhead on the wire (Ethernet + IPv4 + TCP).
pub const HEADER_BYTES: usize = 14 + 20 + 20;

/// A TCP segment.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Segment {
    /// Source endpoint.
    pub src: SockAddr,
    /// Destination endpoint.
    pub dst: SockAddr,
    /// Sequence number of the first payload byte (or of the SYN/FIN).
    pub seq: u32,
    /// Cumulative acknowledgement number (valid when `flags.ack`).
    pub ack: u32,
    /// Advertised receive window in bytes.
    pub window: u32,
    /// Header flags.
    pub flags: SegmentFlags,
    /// Set by the network when the segment experienced congestion (ECN CE).
    pub ce_mark: bool,
    /// Application payload.
    pub payload: Vec<u8>,
}

impl Segment {
    /// An empty control segment.
    pub fn control(src: SockAddr, dst: SockAddr, flags: SegmentFlags) -> Self {
        Segment {
            src,
            dst,
            seq: 0,
            ack: 0,
            window: 0,
            flags,
            ce_mark: false,
            payload: Vec::new(),
        }
    }

    /// Payload length in bytes.
    pub fn len(&self) -> usize {
        self.payload.len()
    }

    /// True when the segment carries no payload.
    pub fn is_empty(&self) -> bool {
        self.payload.is_empty()
    }

    /// Size of the segment on the wire, including header overhead.
    pub fn wire_bytes(&self) -> usize {
        HEADER_BYTES + self.payload.len()
    }

    /// Sequence space consumed by this segment (payload plus one for SYN and
    /// one for FIN).
    pub fn seq_len(&self) -> u32 {
        self.payload.len() as u32 + u32::from(self.flags.syn) + u32::from(self.flags.fin)
    }

    /// The sequence number immediately after this segment.
    pub fn seq_end(&self) -> u32 {
        self.seq.wrapping_add(self.seq_len())
    }
}

/// Wrapping sequence-number comparison: true when `a < b` in sequence space.
pub fn seq_lt(a: u32, b: u32) -> bool {
    (a.wrapping_sub(b) as i32) < 0
}

/// Wrapping sequence-number comparison: true when `a <= b` in sequence space.
pub fn seq_le(a: u32, b: u32) -> bool {
    a == b || seq_lt(a, b)
}

/// Wrapping sequence-number comparison: true when `a > b` in sequence space.
pub fn seq_gt(a: u32, b: u32) -> bool {
    seq_lt(b, a)
}

/// Wrapping sequence-number comparison: true when `a >= b` in sequence space.
pub fn seq_ge(a: u32, b: u32) -> bool {
    seq_le(b, a)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(p: u16) -> SockAddr {
        SockAddr::v4(10, 0, 0, 1, p)
    }

    #[test]
    fn seq_space_accounting() {
        let mut s = Segment::control(addr(1), addr(2), SegmentFlags::syn());
        assert_eq!(s.seq_len(), 1);
        s.flags = SegmentFlags::ack();
        s.payload = vec![0u8; 100];
        assert_eq!(s.seq_len(), 100);
        assert_eq!(s.len(), 100);
        assert!(!s.is_empty());
        s.flags.fin = true;
        assert_eq!(s.seq_len(), 101);
        s.seq = u32::MAX - 50;
        assert_eq!(s.seq_end(), 50); // wraps around
    }

    #[test]
    fn wire_bytes_include_headers() {
        let mut s = Segment::control(addr(1), addr(2), SegmentFlags::ack());
        assert_eq!(s.wire_bytes(), HEADER_BYTES);
        s.payload = vec![0u8; 1460];
        assert_eq!(s.wire_bytes(), HEADER_BYTES + 1460);
    }

    #[test]
    fn wrapping_comparisons() {
        assert!(seq_lt(1, 2));
        assert!(!seq_lt(2, 2));
        assert!(seq_le(2, 2));
        assert!(seq_gt(2, 1));
        assert!(seq_ge(2, 2));
        // Near the wrap point: u32::MAX is "before" 5.
        assert!(seq_lt(u32::MAX - 2, 5));
        assert!(seq_gt(5, u32::MAX - 2));
    }

    #[test]
    fn flag_constructors() {
        assert!(SegmentFlags::syn().syn);
        assert!(!SegmentFlags::syn().ack);
        assert!(SegmentFlags::syn_ack().syn && SegmentFlags::syn_ack().ack);
        assert!(SegmentFlags::fin_ack().fin && SegmentFlags::fin_ack().ack);
        assert!(SegmentFlags::rst().rst);
    }
}
