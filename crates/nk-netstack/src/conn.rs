//! The per-connection TCP state machine.
//!
//! Implements the subset of TCP the evaluation exercises: three-way
//! handshake, cumulative-ACK sliding-window data transfer, receiver flow
//! control, retransmission (RTO with exponential backoff and fast retransmit
//! on three duplicate ACKs), out-of-order reassembly, ECN echo, and orderly
//! FIN / abortive RST teardown. Congestion control is delegated to a
//! [`CongestionControl`] implementation chosen per NSM.

use crate::cc::CongestionControl;
use crate::segment::{seq_ge, seq_gt, seq_le, seq_lt, Segment, SegmentFlags};
use nk_types::constants::{DEFAULT_RECV_BUF, DEFAULT_SEND_BUF, MSS};
use nk_types::migrate::{TcpConnSnapshot, TcpPhase};
use nk_types::{NkError, NkResult, SockAddr};
use std::collections::{BTreeMap, VecDeque};

/// TCP connection states (RFC 793 names).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ConnState {
    /// SYN sent, waiting for SYN-ACK (active open).
    SynSent,
    /// SYN received, SYN-ACK sent, waiting for the final ACK (passive open).
    SynReceived,
    /// Data transfer.
    Established,
    /// We closed first; FIN sent, waiting for its ACK.
    FinWait1,
    /// Our FIN was acknowledged; waiting for the peer's FIN.
    FinWait2,
    /// Peer closed first; waiting for the application to close.
    CloseWait,
    /// Both sides closed simultaneously.
    Closing,
    /// Peer closed, we sent our FIN, waiting for its ACK.
    LastAck,
    /// Connection fully closed, lingering briefly.
    TimeWait,
    /// Connection is gone.
    Closed,
}

/// Default retransmission timeout before an RTT estimate exists.
const INITIAL_RTO_NS: u64 = 50_000_000;
/// Lower bound on the RTO.
const MIN_RTO_NS: u64 = 10_000_000;
/// Upper bound on the RTO.
const MAX_RTO_NS: u64 = 2_000_000_000;
/// How long a connection lingers in TIME-WAIT (shortened 2MSL).
const TIME_WAIT_NS: u64 = 50_000_000;
/// Duplicate-ACK threshold for fast retransmit.
const DUPACK_THRESHOLD: u32 = 3;

/// Per-connection statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ConnStats {
    /// Payload bytes handed to the peer (acknowledged).
    pub bytes_acked: u64,
    /// Payload bytes delivered to the application.
    pub bytes_received: u64,
    /// Segments retransmitted (timeouts plus fast retransmits).
    pub retransmits: u64,
    /// Retransmission timeouts fired.
    pub timeouts: u64,
    /// Fast retransmits triggered.
    pub fast_retransmits: u64,
}

/// A TCP connection.
pub struct TcpConnection {
    local: SockAddr,
    remote: SockAddr,
    state: ConnState,

    // ---- Send side ----
    /// First unacknowledged sequence number.
    snd_una: u32,
    /// Next sequence number to send.
    snd_nxt: u32,
    /// Send buffer: bytes from `snd_una` onwards (unacked + unsent).
    send_buf: VecDeque<u8>,
    /// Maximum bytes the send buffer accepts.
    send_buf_cap: usize,
    /// Peer's advertised receive window.
    snd_wnd: u32,
    /// Application asked to close the write side.
    fin_queued: bool,
    /// Sequence number our FIN occupies once sent.
    fin_seq: Option<u32>,

    // ---- Receive side ----
    /// Next expected sequence number.
    rcv_nxt: u32,
    /// In-order data ready for the application.
    recv_buf: VecDeque<u8>,
    /// Maximum bytes buffered for the application.
    recv_buf_cap: usize,
    /// Out-of-order segments awaiting the gap to fill.
    ooo: BTreeMap<u32, Vec<u8>>,
    /// Sequence number of the peer's FIN, once seen.
    peer_fin_seq: Option<u32>,
    /// The peer's FIN has been consumed (rcv_nxt advanced past it).
    peer_fin_received: bool,
    /// An ACK should be emitted.
    ack_pending: bool,
    /// Immediate duplicate ACKs owed for out-of-order arrivals (one per
    /// out-of-order segment, so the sender's fast-retransmit logic sees them).
    dup_ack_burst: u32,
    /// Echo ECN congestion experienced back to the sender.
    ece_pending: bool,

    // ---- Timers and RTT ----
    rto_ns: u64,
    srtt_ns: Option<u64>,
    rttvar_ns: u64,
    /// Retransmission timer deadline (armed while data or FIN is in flight).
    rto_deadline: Option<u64>,
    /// One in-flight RTT measurement: (sequence that completes it, send time).
    rtt_sample: Option<(u32, u64)>,
    /// Consecutive duplicate ACKs observed.
    dup_acks: u32,
    /// Time at which TIME-WAIT expires.
    time_wait_deadline: Option<u64>,

    cc: Box<dyn CongestionControl>,
    stats: ConnStats,
    /// A reset must be emitted to the peer.
    rst_pending: bool,
}

impl TcpConnection {
    /// Start an active open (client side): the first `poll_transmit` emits a
    /// SYN.
    pub fn connect(
        local: SockAddr,
        remote: SockAddr,
        iss: u32,
        cc: Box<dyn CongestionControl>,
        now_ns: u64,
    ) -> Self {
        let mut c = Self::new_common(local, remote, iss, cc);
        c.state = ConnState::SynSent;
        c.snd_nxt = iss; // SYN not yet emitted; poll_transmit sends it.
        c.rto_deadline = Some(now_ns + c.rto_ns);
        c
    }

    /// Start a passive open (server side) in response to a received SYN: the
    /// first `poll_transmit` emits the SYN-ACK.
    pub fn accept(
        local: SockAddr,
        remote: SockAddr,
        iss: u32,
        syn: &Segment,
        cc: Box<dyn CongestionControl>,
        now_ns: u64,
    ) -> Self {
        debug_assert!(syn.flags.syn);
        let mut c = Self::new_common(local, remote, iss, cc);
        c.state = ConnState::SynReceived;
        c.rcv_nxt = syn.seq.wrapping_add(1);
        c.snd_wnd = syn.window.max(MSS as u32);
        c.ack_pending = true;
        c.rto_deadline = Some(now_ns + c.rto_ns);
        c
    }

    fn new_common(
        local: SockAddr,
        remote: SockAddr,
        iss: u32,
        cc: Box<dyn CongestionControl>,
    ) -> Self {
        TcpConnection {
            local,
            remote,
            state: ConnState::Closed,
            snd_una: iss,
            snd_nxt: iss,
            send_buf: VecDeque::new(),
            send_buf_cap: DEFAULT_SEND_BUF,
            snd_wnd: 64 * 1024,
            fin_queued: false,
            fin_seq: None,
            rcv_nxt: 0,
            recv_buf: VecDeque::new(),
            recv_buf_cap: DEFAULT_RECV_BUF,
            ooo: BTreeMap::new(),
            peer_fin_seq: None,
            peer_fin_received: false,
            ack_pending: false,
            dup_ack_burst: 0,
            ece_pending: false,
            rto_ns: INITIAL_RTO_NS,
            srtt_ns: None,
            rttvar_ns: 0,
            rto_deadline: None,
            rtt_sample: None,
            dup_acks: 0,
            time_wait_deadline: None,
            cc,
            stats: ConnStats::default(),
            rst_pending: false,
        }
    }

    // ---- Accessors -------------------------------------------------------

    /// Local endpoint address.
    pub fn local(&self) -> SockAddr {
        self.local
    }

    /// Remote endpoint address.
    pub fn remote(&self) -> SockAddr {
        self.remote
    }

    /// Current state.
    pub fn state(&self) -> ConnState {
        self.state
    }

    /// True once the handshake completed.
    pub fn is_established(&self) -> bool {
        matches!(
            self.state,
            ConnState::Established
                | ConnState::FinWait1
                | ConnState::FinWait2
                | ConnState::CloseWait
        )
    }

    /// True when the connection is fully closed and can be reaped.
    pub fn is_closed(&self) -> bool {
        self.state == ConnState::Closed
    }

    /// True when the application can read data (or observe EOF).
    pub fn readable(&self) -> bool {
        !self.recv_buf.is_empty() || self.peer_fin_received || self.state == ConnState::Closed
    }

    /// True when the application can write more data.
    pub fn writable(&self) -> bool {
        self.is_established()
            && !self.fin_queued
            && self.send_buf.len() < self.send_buf_cap
            && !matches!(self.state, ConnState::CloseWait if self.fin_queued)
    }

    /// True once the peer has closed its write side and all data was read.
    pub fn peer_closed(&self) -> bool {
        self.peer_fin_received && self.recv_buf.is_empty()
    }

    /// True once the peer's FIN has been received, even if unread data is
    /// still buffered (the `EPOLLRDHUP`-style signal).
    pub fn fin_received(&self) -> bool {
        self.peer_fin_received
    }

    /// Connection statistics.
    pub fn stats(&self) -> ConnStats {
        self.stats
    }

    /// Bytes queued but not yet acknowledged.
    pub fn send_buffered(&self) -> usize {
        self.send_buf.len()
    }

    /// Bytes sent and not yet acknowledged (in flight on the wire). Zero
    /// means the peer has confirmed everything we transmitted — the
    /// wire-quiet condition a warm-migration freeze window waits for.
    pub fn in_flight(&self) -> usize {
        self.snd_nxt.wrapping_sub(self.snd_una) as usize
    }

    /// True when the connection is in a phase [`TcpConnection::snapshot`]
    /// accepts — post-handshake and not yet dying.
    pub fn transplantable(&self) -> bool {
        matches!(
            self.state,
            ConnState::Established
                | ConnState::FinWait1
                | ConnState::FinWait2
                | ConnState::CloseWait
                | ConnState::Closing
                | ConnState::LastAck
        )
    }

    /// Bytes available to read right now.
    pub fn recv_available(&self) -> usize {
        self.recv_buf.len()
    }

    /// The congestion window currently granted by the CC algorithm.
    pub fn cwnd(&self) -> usize {
        self.cc.cwnd()
    }

    /// Resize the send buffer (SO_SNDBUF).
    pub fn set_send_buf_cap(&mut self, cap: usize) {
        self.send_buf_cap = cap.max(MSS);
    }

    /// Resize the receive buffer (SO_RCVBUF).
    pub fn set_recv_buf_cap(&mut self, cap: usize) {
        self.recv_buf_cap = cap.max(MSS);
    }

    // ---- Application interface -------------------------------------------

    /// Queue up to `data.len()` bytes for transmission; returns the number of
    /// bytes accepted (possibly zero when the send buffer is full or the
    /// write side is closed).
    pub fn write(&mut self, data: &[u8]) -> usize {
        if self.fin_queued || !self.is_established() && self.state != ConnState::SynSent {
            return 0;
        }
        let room = self.send_buf_cap.saturating_sub(self.send_buf.len());
        let n = room.min(data.len());
        self.send_buf.extend(&data[..n]);
        n
    }

    /// Read up to `buf.len()` bytes of in-order data. Returns 0 when no data
    /// is available (check [`TcpConnection::peer_closed`] to distinguish EOF).
    pub fn read(&mut self, buf: &mut [u8]) -> usize {
        let n = buf.len().min(self.recv_buf.len());
        for b in buf.iter_mut().take(n) {
            *b = self.recv_buf.pop_front().expect("length checked");
        }
        if n > 0 {
            self.stats.bytes_received += n as u64;
            // Window update for the peer.
            self.ack_pending = true;
        }
        n
    }

    /// Close the write side (graceful FIN after queued data drains).
    pub fn close(&mut self) {
        if !self.fin_queued {
            self.fin_queued = true;
            match self.state {
                ConnState::Established => self.state = ConnState::FinWait1,
                ConnState::CloseWait => self.state = ConnState::LastAck,
                ConnState::SynSent | ConnState::SynReceived => {
                    self.state = ConnState::Closed;
                }
                _ => {}
            }
        }
    }

    /// Abort the connection: an RST is sent and the state drops to `Closed`.
    pub fn abort(&mut self) {
        if !matches!(self.state, ConnState::Closed | ConnState::TimeWait) {
            self.rst_pending = true;
        }
        self.state = ConnState::Closed;
        self.send_buf.clear();
        self.recv_buf.clear();
        self.ooo.clear();
    }

    // ---- Segment processing -----------------------------------------------

    /// Process an incoming segment addressed to this connection.
    pub fn on_segment(&mut self, seg: &Segment, now_ns: u64) {
        if seg.flags.rst {
            // A reset kills the connection immediately.
            self.state = ConnState::Closed;
            self.send_buf.clear();
            self.peer_fin_received = true;
            return;
        }
        if seg.ce_mark {
            self.ece_pending = true;
        }

        match self.state {
            ConnState::SynSent => {
                if seg.flags.syn && seg.flags.ack && seg.ack == self.snd_nxt {
                    self.rcv_nxt = seg.seq.wrapping_add(1);
                    self.snd_una = seg.ack;
                    self.snd_wnd = seg.window.max(MSS as u32);
                    self.state = ConnState::Established;
                    self.ack_pending = true;
                    self.rto_deadline = None;
                    self.take_rtt_sample(seg.ack, now_ns);
                }
                return;
            }
            ConnState::SynReceived if seg.flags.ack && seg.ack == self.snd_nxt => {
                self.snd_una = seg.ack;
                self.snd_wnd = seg.window.max(MSS as u32);
                self.state = ConnState::Established;
                self.rto_deadline = None;
            }
            // Fall through: the ACK may carry data.
            ConnState::TimeWait | ConnState::Closed => {
                return;
            }
            _ => {}
        }

        if seg.flags.ack {
            self.process_ack(seg, now_ns);
        }
        if !seg.payload.is_empty() || seg.flags.fin {
            self.process_payload(seg);
        }
    }

    fn process_ack(&mut self, seg: &Segment, now_ns: u64) {
        let ack = seg.ack;
        self.snd_wnd = seg.window;
        if seq_gt(ack, self.snd_una) && seq_le(ack, self.snd_nxt) {
            let acked = ack.wrapping_sub(self.snd_una) as usize;
            // Remove acknowledged bytes (the FIN consumes one sequence number
            // but no buffer byte).
            let mut data_acked = acked;
            if let Some(fin_seq) = self.fin_seq {
                if seq_gt(ack, fin_seq) {
                    data_acked -= 1;
                }
            }
            for _ in 0..data_acked.min(self.send_buf.len()) {
                self.send_buf.pop_front();
            }
            self.snd_una = ack;
            self.dup_acks = 0;
            self.stats.bytes_acked += data_acked as u64;
            self.take_rtt_sample(ack, now_ns);
            let rtt = self.srtt_ns.unwrap_or(0);
            self.cc
                .on_ack(data_acked.max(1), rtt, seg.flags.ece, now_ns);

            // Re-arm or clear the retransmission timer.
            if self.snd_una == self.snd_nxt {
                self.rto_deadline = None;
            } else {
                self.rto_deadline = Some(now_ns + self.rto_ns);
            }

            // FIN acknowledged?
            if let Some(fin_seq) = self.fin_seq {
                if seq_ge(self.snd_una, fin_seq.wrapping_add(1)) {
                    match self.state {
                        ConnState::FinWait1 => self.state = ConnState::FinWait2,
                        ConnState::Closing => {
                            self.state = ConnState::TimeWait;
                            self.time_wait_deadline = Some(now_ns + TIME_WAIT_NS);
                        }
                        ConnState::LastAck => self.state = ConnState::Closed,
                        _ => {}
                    }
                }
            }
        } else if ack == self.snd_una && self.snd_nxt != self.snd_una && seg.payload.is_empty() {
            // Duplicate ACK.
            self.dup_acks += 1;
            if self.dup_acks == DUPACK_THRESHOLD {
                self.fast_retransmit(now_ns);
            }
        }
    }

    fn process_payload(&mut self, seg: &Segment) {
        let seq = seg.seq;
        if seg.flags.fin {
            let fin_seq = seq.wrapping_add(seg.payload.len() as u32);
            self.peer_fin_seq = Some(fin_seq);
        }
        if !seg.payload.is_empty() {
            if seq_le(seq, self.rcv_nxt) {
                // Overlapping or exactly in-order: take the part we miss.
                let skip = self.rcv_nxt.wrapping_sub(seq) as usize;
                if skip < seg.payload.len() {
                    let fresh = &seg.payload[skip..];
                    let room = self.recv_buf_cap.saturating_sub(self.recv_buf.len());
                    let take = fresh.len().min(room);
                    self.recv_buf.extend(&fresh[..take]);
                    self.rcv_nxt = self.rcv_nxt.wrapping_add(take as u32);
                    self.drain_ooo();
                }
            } else if seq_lt(seq, self.rcv_nxt.wrapping_add(self.recv_window() as u32)) {
                // Out of order but within the window: stash it and owe the
                // sender an immediate duplicate ACK so it can fast-retransmit.
                self.ooo.entry(seq).or_insert_with(|| seg.payload.clone());
                self.dup_ack_burst += 1;
            }
            self.ack_pending = true;
        }
        // Consume the peer's FIN once all data before it has arrived.
        if let Some(fin_seq) = self.peer_fin_seq {
            if self.rcv_nxt == fin_seq && !self.peer_fin_received {
                self.rcv_nxt = self.rcv_nxt.wrapping_add(1);
                self.peer_fin_received = true;
                self.ack_pending = true;
                match self.state {
                    ConnState::Established => self.state = ConnState::CloseWait,
                    ConnState::FinWait1 => self.state = ConnState::Closing,
                    ConnState::FinWait2 => {
                        self.state = ConnState::TimeWait;
                        self.time_wait_deadline = None; // set on next tick
                    }
                    _ => {}
                }
            }
        }
    }

    fn drain_ooo(&mut self) {
        while let Some((&seq, _)) = self.ooo.iter().next() {
            if seq_gt(seq, self.rcv_nxt) {
                break;
            }
            let payload = self.ooo.remove(&seq).expect("key just observed");
            let skip = self.rcv_nxt.wrapping_sub(seq) as usize;
            if skip < payload.len() {
                let fresh = &payload[skip..];
                let room = self.recv_buf_cap.saturating_sub(self.recv_buf.len());
                let take = fresh.len().min(room);
                self.recv_buf.extend(&fresh[..take]);
                self.rcv_nxt = self.rcv_nxt.wrapping_add(take as u32);
                if take < fresh.len() {
                    break;
                }
            }
        }
    }

    fn take_rtt_sample(&mut self, ack: u32, now_ns: u64) {
        if let Some((seq_end, sent_at)) = self.rtt_sample {
            if seq_ge(ack, seq_end) {
                let rtt = now_ns.saturating_sub(sent_at).max(1);
                match self.srtt_ns {
                    None => {
                        self.srtt_ns = Some(rtt);
                        self.rttvar_ns = rtt / 2;
                    }
                    Some(srtt) => {
                        let diff = srtt.abs_diff(rtt);
                        self.rttvar_ns = (3 * self.rttvar_ns + diff) / 4;
                        self.srtt_ns = Some((7 * srtt + rtt) / 8);
                    }
                }
                let srtt = self.srtt_ns.unwrap();
                self.rto_ns = (srtt + 4 * self.rttvar_ns).clamp(MIN_RTO_NS, MAX_RTO_NS);
                self.rtt_sample = None;
            }
        }
    }

    fn fast_retransmit(&mut self, now_ns: u64) {
        self.stats.fast_retransmits += 1;
        self.stats.retransmits += 1;
        self.cc.on_fast_retransmit(now_ns);
        // Go back to the first unacknowledged byte.
        self.snd_nxt = self.snd_una;
        if self.fin_seq.is_some() {
            self.fin_seq = None; // will be re-assigned when re-sent
        }
        self.rto_deadline = Some(now_ns + self.rto_ns);
    }

    /// Receive window to advertise.
    pub fn recv_window(&self) -> usize {
        self.recv_buf_cap.saturating_sub(self.recv_buf.len())
    }

    // ---- Output ------------------------------------------------------------

    /// Run timers and produce the segments that should be transmitted now.
    pub fn poll_transmit(&mut self, now_ns: u64) -> Vec<Segment> {
        let mut out = Vec::new();

        if self.rst_pending {
            self.rst_pending = false;
            let mut rst = Segment::control(self.local, self.remote, SegmentFlags::rst());
            rst.seq = self.snd_nxt;
            out.push(rst);
            return out;
        }

        // TIME-WAIT expiry.
        if self.state == ConnState::TimeWait {
            match self.time_wait_deadline {
                None => self.time_wait_deadline = Some(now_ns + TIME_WAIT_NS),
                Some(d) if now_ns >= d => self.state = ConnState::Closed,
                _ => {}
            }
        }

        // Retransmission timeout.
        if let Some(deadline) = self.rto_deadline {
            if now_ns >= deadline {
                self.on_rto(now_ns);
            }
        }

        match self.state {
            ConnState::SynSent => {
                // Send the SYN once; it is re-sent only after an RTO rewinds
                // `snd_nxt` back to `snd_una`.
                if self.snd_nxt == self.snd_una {
                    let mut syn = Segment::control(self.local, self.remote, SegmentFlags::syn());
                    syn.seq = self.snd_una;
                    syn.window = self.recv_window() as u32;
                    self.snd_nxt = self.snd_una.wrapping_add(1);
                    self.arm_rto(now_ns);
                    out.push(syn);
                }
                return out;
            }
            ConnState::SynReceived => {
                if self.snd_nxt == self.snd_una {
                    let mut synack =
                        Segment::control(self.local, self.remote, SegmentFlags::syn_ack());
                    synack.seq = self.snd_una;
                    synack.ack = self.rcv_nxt;
                    synack.window = self.recv_window() as u32;
                    self.snd_nxt = self.snd_una.wrapping_add(1);
                    self.arm_rto(now_ns);
                    self.ack_pending = false;
                    out.push(synack);
                }
                return out;
            }
            ConnState::Closed => return out,
            _ => {}
        }

        // Data transmission, bounded by congestion and peer windows.
        let in_flight = self.snd_nxt.wrapping_sub(self.snd_una) as usize;
        let window = self.cc.cwnd().min(self.snd_wnd as usize);
        let mut budget = window.saturating_sub(in_flight);
        // Offset of snd_nxt into the send buffer.
        let mut offset = self.snd_nxt.wrapping_sub(self.snd_una) as usize;
        // Exclude a previously sent FIN from buffer indexing.
        if let Some(fin_seq) = self.fin_seq {
            if seq_ge(self.snd_nxt, fin_seq.wrapping_add(1)) {
                offset = offset.saturating_sub(1);
            }
        }

        while budget > 0 && offset < self.send_buf.len() {
            let chunk = MSS.min(self.send_buf.len() - offset).min(budget);
            let payload: Vec<u8> = self
                .send_buf
                .iter()
                .skip(offset)
                .take(chunk)
                .copied()
                .collect();
            let mut seg = Segment::control(self.local, self.remote, SegmentFlags::ack());
            seg.seq = self.snd_nxt;
            seg.ack = self.rcv_nxt;
            seg.window = self.recv_window() as u32;
            seg.flags.ece = self.ece_pending;
            seg.payload = payload;
            if self.rtt_sample.is_none() {
                self.rtt_sample = Some((seg.seq_end(), now_ns));
            }
            self.snd_nxt = self.snd_nxt.wrapping_add(chunk as u32);
            offset += chunk;
            budget -= chunk;
            self.ack_pending = false;
            self.ece_pending = false;
            out.push(seg);
        }
        if !out.is_empty() {
            self.arm_rto(now_ns);
        }

        // FIN once all buffered data has been transmitted.
        if self.fin_queued
            && self.fin_seq.is_none()
            && offset >= self.send_buf.len()
            && matches!(
                self.state,
                ConnState::FinWait1 | ConnState::LastAck | ConnState::Closing
            )
        {
            let mut fin = Segment::control(self.local, self.remote, SegmentFlags::fin_ack());
            fin.seq = self.snd_nxt;
            fin.ack = self.rcv_nxt;
            fin.window = self.recv_window() as u32;
            self.fin_seq = Some(self.snd_nxt);
            self.snd_nxt = self.snd_nxt.wrapping_add(1);
            self.ack_pending = false;
            self.arm_rto(now_ns);
            out.push(fin);
        }

        // Standalone ACKs: one per out-of-order arrival (duplicate ACKs for
        // fast retransmit) plus at most one regular ACK.
        let standalone = self.dup_ack_burst.max(u32::from(self.ack_pending));
        for _ in 0..standalone {
            let mut ack = Segment::control(self.local, self.remote, SegmentFlags::ack());
            ack.seq = self.snd_nxt;
            ack.ack = self.rcv_nxt;
            ack.window = self.recv_window() as u32;
            ack.flags.ece = self.ece_pending;
            out.push(ack);
        }
        if standalone > 0 {
            self.ack_pending = false;
            self.dup_ack_burst = 0;
            self.ece_pending = false;
        }

        out
    }

    fn arm_rto(&mut self, now_ns: u64) {
        if self.snd_nxt != self.snd_una {
            self.rto_deadline = Some(now_ns + self.rto_ns);
        }
    }

    fn on_rto(&mut self, now_ns: u64) {
        if self.snd_una == self.snd_nxt
            && !matches!(self.state, ConnState::SynSent | ConnState::SynReceived)
        {
            self.rto_deadline = None;
            return;
        }
        self.stats.timeouts += 1;
        self.stats.retransmits += 1;
        self.cc.on_timeout(now_ns);
        // Go-back-N: rewind to the first unacknowledged byte.
        self.snd_nxt = self.snd_una;
        self.fin_seq = None;
        self.rtt_sample = None;
        // Exponential backoff.
        self.rto_ns = (self.rto_ns * 2).min(MAX_RTO_NS);
        self.rto_deadline = Some(now_ns + self.rto_ns);
        self.dup_acks = 0;
    }

    // ---- Warm-migration snapshot and restore -------------------------------

    /// Export this connection's transferable state for a warm migration.
    ///
    /// Only post-handshake connections snapshot: an embryonic connection has
    /// no state worth moving and a closed one has none left. The send side
    /// is rewound to `snd_una` (go-back-N), so whatever was in flight when
    /// the freeze window closed is retransmitted by the destination instead
    /// of being chased across the fabric.
    pub fn snapshot(&self) -> NkResult<TcpConnSnapshot> {
        let phase = match self.state {
            ConnState::Established => TcpPhase::Established,
            ConnState::FinWait1 => TcpPhase::FinWait1,
            ConnState::FinWait2 => TcpPhase::FinWait2,
            ConnState::CloseWait => TcpPhase::CloseWait,
            ConnState::Closing => TcpPhase::Closing,
            ConnState::LastAck => TcpPhase::LastAck,
            ConnState::SynSent
            | ConnState::SynReceived
            | ConnState::TimeWait
            | ConnState::Closed => return Err(NkError::InvalidState),
        };
        Ok(TcpConnSnapshot {
            local: self.local,
            remote: self.remote,
            phase,
            snd_una: self.snd_una,
            send_buf: self.send_buf.iter().copied().collect(),
            send_buf_cap: self.send_buf_cap,
            snd_wnd: self.snd_wnd,
            fin_queued: self.fin_queued,
            rcv_nxt: self.rcv_nxt,
            recv_buf: self.recv_buf.iter().copied().collect(),
            recv_buf_cap: self.recv_buf_cap,
            ooo: self.ooo.iter().map(|(s, p)| (*s, p.clone())).collect(),
            peer_fin_seq: self.peer_fin_seq,
            peer_fin_received: self.peer_fin_received,
            srtt_ns: self.srtt_ns,
            rttvar_ns: self.rttvar_ns,
            rto_ns: self.rto_ns,
        })
    }

    /// Rebuild a connection from a warm-migration snapshot.
    ///
    /// `cc` is a *fresh* congestion-control instance: the network path
    /// changed with the host, so the window is re-probed rather than
    /// carried over. The send side resumes at `snd_una` and retransmits
    /// everything unacknowledged; `ack_pending` is armed so the first tick
    /// announces the receive window to the peer — the handover's "I am
    /// alive here now" signal.
    pub fn restore(snap: &TcpConnSnapshot, cc: Box<dyn CongestionControl>) -> Self {
        let state = match snap.phase {
            TcpPhase::Established => ConnState::Established,
            TcpPhase::FinWait1 => ConnState::FinWait1,
            TcpPhase::FinWait2 => ConnState::FinWait2,
            TcpPhase::CloseWait => ConnState::CloseWait,
            TcpPhase::Closing => ConnState::Closing,
            TcpPhase::LastAck => ConnState::LastAck,
        };
        TcpConnection {
            local: snap.local,
            remote: snap.remote,
            state,
            snd_una: snap.snd_una,
            // Go-back-N: the destination re-sends everything unacked.
            snd_nxt: snap.snd_una,
            send_buf: snap.send_buf.iter().copied().collect(),
            send_buf_cap: snap.send_buf_cap,
            snd_wnd: snap.snd_wnd,
            fin_queued: snap.fin_queued,
            // A FIN the source had in flight is re-sent after the data.
            fin_seq: None,
            rcv_nxt: snap.rcv_nxt,
            recv_buf: snap.recv_buf.iter().copied().collect(),
            recv_buf_cap: snap.recv_buf_cap,
            ooo: snap.ooo.iter().map(|(s, p)| (*s, p.clone())).collect(),
            peer_fin_seq: snap.peer_fin_seq,
            peer_fin_received: snap.peer_fin_received,
            ack_pending: true,
            dup_ack_burst: 0,
            ece_pending: false,
            rto_ns: snap.rto_ns.clamp(MIN_RTO_NS, MAX_RTO_NS),
            srtt_ns: snap.srtt_ns,
            rttvar_ns: snap.rttvar_ns,
            rto_deadline: None,
            rtt_sample: None,
            dup_acks: 0,
            time_wait_deadline: None,
            cc,
            stats: ConnStats::default(),
            rst_pending: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cc::{CcAlgorithm, Reno};

    fn addr(port: u16) -> SockAddr {
        SockAddr::v4(10, 0, 0, 1, port)
    }

    fn peer(port: u16) -> SockAddr {
        SockAddr::v4(10, 0, 0, 2, port)
    }

    fn pair(now: u64) -> (TcpConnection, TcpConnection) {
        let client_cc = CcAlgorithm::Reno.build();
        let mut client = TcpConnection::connect(addr(5000), peer(80), 1000, client_cc, now);
        let syns = client.poll_transmit(now);
        assert_eq!(syns.len(), 1);
        assert!(syns[0].flags.syn && !syns[0].flags.ack);

        let server_cc = CcAlgorithm::Reno.build();
        let mut server =
            TcpConnection::accept(peer(80), addr(5000), 9000, &syns[0], server_cc, now);
        let synacks = server.poll_transmit(now);
        assert_eq!(synacks.len(), 1);
        assert!(synacks[0].flags.syn && synacks[0].flags.ack);

        client.on_segment(&synacks[0], now);
        assert_eq!(client.state(), ConnState::Established);
        let acks = client.poll_transmit(now);
        assert!(!acks.is_empty());
        server.on_segment(&acks[0], now);
        assert_eq!(server.state(), ConnState::Established);
        (client, server)
    }

    /// Shuttle segments between the two ends until both go quiet.
    fn pump(a: &mut TcpConnection, b: &mut TcpConnection, mut now: u64, step: u64) -> u64 {
        for _ in 0..200 {
            let mut quiet = true;
            for seg in a.poll_transmit(now) {
                quiet = false;
                b.on_segment(&seg, now);
            }
            for seg in b.poll_transmit(now) {
                quiet = false;
                a.on_segment(&seg, now);
            }
            now += step;
            if quiet {
                break;
            }
        }
        now
    }

    #[test]
    fn three_way_handshake() {
        let (c, s) = pair(0);
        assert!(c.is_established());
        assert!(s.is_established());
    }

    #[test]
    fn data_transfer_in_both_directions() {
        let (mut c, mut s) = pair(0);
        let msg = vec![7u8; 10_000];
        assert_eq!(c.write(&msg), 10_000);
        let now = pump(&mut c, &mut s, 1_000, 1_000);
        assert_eq!(s.recv_available(), 10_000);
        let mut buf = vec![0u8; 10_000];
        assert_eq!(s.read(&mut buf), 10_000);
        assert_eq!(buf, msg);

        // Server replies.
        assert_eq!(s.write(b"response"), 8);
        pump(&mut c, &mut s, now, 1_000);
        let mut buf = [0u8; 32];
        assert_eq!(c.read(&mut buf), 8);
        assert_eq!(&buf[..8], b"response");
        assert_eq!(c.stats().bytes_acked, 10_000);
    }

    #[test]
    fn segmentation_respects_mss() {
        let (mut c, mut s) = pair(0);
        c.write(&vec![1u8; 5 * MSS]);
        let segs = c.poll_transmit(1_000);
        assert!(segs.iter().all(|s| s.len() <= MSS));
        assert!(segs.len() >= 5);
        for seg in &segs {
            s.on_segment(seg, 1_000);
        }
        assert_eq!(s.recv_available(), 5 * MSS);
    }

    #[test]
    fn out_of_order_segments_are_reassembled() {
        let (mut c, mut s) = pair(0);
        c.write(&vec![9u8; 3 * MSS]);
        let segs = c.poll_transmit(1_000);
        assert_eq!(segs.len(), 3);
        // Deliver in reverse order.
        for seg in segs.iter().rev() {
            s.on_segment(seg, 1_000);
        }
        assert_eq!(s.recv_available(), 3 * MSS);
        let mut buf = vec![0u8; 3 * MSS];
        s.read(&mut buf);
        assert!(buf.iter().all(|&b| b == 9));
    }

    #[test]
    fn lost_segment_is_retransmitted_on_timeout() {
        let (mut c, mut s) = pair(0);
        c.write(b"important");
        // First transmission is lost (never delivered).
        let lost = c.poll_transmit(1_000);
        assert_eq!(lost.len(), 1);
        // After the RTO fires the data is retransmitted.
        let retrans = c.poll_transmit(1_000 + INITIAL_RTO_NS + 1);
        assert_eq!(retrans.len(), 1);
        assert_eq!(retrans[0].payload, b"important");
        assert_eq!(c.stats().timeouts, 1);
        s.on_segment(&retrans[0], 1_000 + INITIAL_RTO_NS + 2);
        assert_eq!(s.recv_available(), 9);
    }

    #[test]
    fn triple_duplicate_acks_trigger_fast_retransmit() {
        let (mut c, mut s) = pair(0);
        c.write(&vec![5u8; 4 * MSS]);
        let segs = c.poll_transmit(1_000);
        assert!(segs.len() >= 4);
        // Drop the first segment, deliver the rest: the receiver owes one
        // duplicate ACK per out-of-order segment.
        for seg in &segs[1..] {
            s.on_segment(seg, 1_000);
        }
        let acks = s.poll_transmit(1_000);
        assert!(
            acks.len() >= 3,
            "expected >=3 duplicate ACKs, got {}",
            acks.len()
        );
        assert!(acks.iter().all(|a| a.ack == segs[0].seq));
        for ack in &acks {
            c.on_segment(ack, 2_000);
        }
        assert_eq!(c.stats().fast_retransmits, 1, "fast retransmit must fire");
        // The retransmission fills the hole without waiting for the RTO.
        let out = c.poll_transmit(2_500);
        assert!(out
            .iter()
            .any(|seg| seg.seq == segs[0].seq && !seg.payload.is_empty()));
        for seg in &out {
            s.on_segment(seg, 2_500);
        }
        // Shuttle any remaining segments until the stream is complete.
        let mut now = 3_000;
        for _ in 0..100 {
            now += 1_000_000;
            for seg in c.poll_transmit(now) {
                s.on_segment(&seg, now);
            }
            for seg in s.poll_transmit(now) {
                c.on_segment(&seg, now);
            }
            if s.recv_available() == 4 * MSS {
                break;
            }
        }
        assert_eq!(s.recv_available(), 4 * MSS);
    }

    #[test]
    fn graceful_close_both_sides() {
        let (mut c, mut s) = pair(0);
        c.write(b"bye");
        c.close();
        let now = pump(&mut c, &mut s, 1_000, 1_000);
        let mut buf = [0u8; 8];
        assert_eq!(s.read(&mut buf), 3);
        assert!(s.peer_closed());
        assert_eq!(s.state(), ConnState::CloseWait);
        // Server closes too.
        s.close();
        let now = pump(&mut c, &mut s, now, 1_000);
        assert_eq!(s.state(), ConnState::Closed);
        // Client reaches TIME-WAIT and then closes after the linger period.
        assert!(matches!(c.state(), ConnState::TimeWait | ConnState::Closed));
        let _ = c.poll_transmit(now + TIME_WAIT_NS + 1_000_000);
        assert_eq!(c.state(), ConnState::Closed);
    }

    #[test]
    fn abort_sends_rst_and_peer_observes_it() {
        let (mut c, mut s) = pair(0);
        c.abort();
        let segs = c.poll_transmit(1_000);
        assert!(segs.iter().any(|s| s.flags.rst));
        for seg in &segs {
            s.on_segment(seg, 1_000);
        }
        assert_eq!(s.state(), ConnState::Closed);
        assert!(c.is_closed());
    }

    #[test]
    fn flow_control_respects_peer_window() {
        let (mut c, mut s) = pair(0);
        s.set_recv_buf_cap(2 * MSS);
        // Tell the client about the small window via an ACK.
        s.ack_pending = true;
        for seg in s.poll_transmit(1_000) {
            c.on_segment(&seg, 1_000);
        }
        c.write(&vec![3u8; 10 * MSS]);
        let segs = c.poll_transmit(2_000);
        let sent: usize = segs.iter().map(|s| s.len()).sum();
        assert!(sent <= 2 * MSS, "sent {sent} despite a 2-MSS window");
    }

    #[test]
    fn write_after_close_is_rejected() {
        let (mut c, _s) = pair(0);
        c.close();
        assert_eq!(c.write(b"nope"), 0);
        assert!(!c.writable());
    }

    #[test]
    fn send_buffer_capacity_limits_writes() {
        let (mut c, _s) = pair(0);
        // Capacities below one MSS are clamped up to an MSS.
        c.set_send_buf_cap(100);
        assert_eq!(c.write(&vec![0u8; 5000]), MSS);
        assert_eq!(c.write(&[0u8; 1]), 0);
        assert!(!c.writable());

        let (mut c2, _s2) = pair(0);
        c2.set_send_buf_cap(2000);
        assert_eq!(c2.write(&vec![0u8; 5000]), 2000);
        assert_eq!(c2.write(&[0u8; 1]), 0);
    }

    #[test]
    fn ecn_marks_are_echoed_and_reduce_cwnd() {
        let (mut c, mut s) = pair(0);
        // Grow the client's window a bit first.
        c.write(&vec![1u8; 20 * MSS]);
        pump(&mut c, &mut s, 1_000, 1_000);
        let cwnd_before = c.cwnd();

        c.write(&vec![1u8; 4 * MSS]);
        let mut segs = c.poll_transmit(100_000);
        assert!(!segs.is_empty());
        // The network marks congestion on the first data segment.
        segs[0].ce_mark = true;
        for seg in &segs {
            s.on_segment(seg, 100_000);
        }
        // Receiver echoes ECE on its ACKs; sender reduces its window.
        for ack in s.poll_transmit(100_000) {
            assert!(ack.flags.ece || !ack.flags.ack || ack.payload.is_empty());
            c.on_segment(&ack, 100_000);
        }
        assert!(c.cwnd() <= cwnd_before, "cwnd should not grow after ECE");
    }

    #[test]
    fn rtt_estimation_updates_rto() {
        let (mut c, mut s) = pair(0);
        c.write(&vec![1u8; MSS]);
        let segs = c.poll_transmit(1_000_000);
        for seg in &segs {
            s.on_segment(seg, 1_000_000);
        }
        // ACK arrives 5 ms later.
        for ack in s.poll_transmit(6_000_000) {
            c.on_segment(&ack, 6_000_000);
        }
        assert!(c.srtt_ns.is_some());
        let srtt = c.srtt_ns.unwrap();
        assert!((4_000_000..=6_000_000).contains(&srtt), "srtt {srtt}");
        assert!(c.rto_ns >= MIN_RTO_NS);
    }

    /// A mid-transfer connection snapshotted on one "host" and restored on
    /// another keeps streaming: unacked bytes are retransmitted by the
    /// restored side, buffered receive data survives, and the peer never
    /// notices beyond duplicate segments.
    #[test]
    fn snapshot_restore_resumes_a_mid_transfer_connection() {
        let (mut c, mut s) = pair(0);
        // Client sends a first batch, the server echoes acknowledgements.
        c.write(&vec![0xA5u8; 4 * MSS]);
        let now = pump(&mut c, &mut s, 1_000, 1_000);
        assert_eq!(s.recv_available(), 4 * MSS);

        // More data is written and *transmitted but not delivered* (lost on
        // the wire at migration time).
        c.write(&vec![0x5Au8; 2 * MSS]);
        let lost = c.poll_transmit(now);
        assert!(!lost.is_empty(), "in-flight data expected");
        assert!(c.in_flight() > 0);

        // Snapshot and restore — the new instance rewinds to snd_una.
        let snap = c.snapshot().unwrap();
        let mut c2 = TcpConnection::restore(&snap, CcAlgorithm::Reno.build());
        assert_eq!(c2.in_flight(), 0);
        assert_eq!(c2.state(), ConnState::Established);
        assert_eq!(c2.local(), c.local());
        assert_eq!(c2.remote(), c.remote());

        // The restored side retransmits the lost bytes and the stream
        // completes end to end.
        let now = pump(&mut c2, &mut s, now + 1_000, 1_000);
        assert_eq!(s.recv_available(), 6 * MSS);
        let mut buf = vec![0u8; 6 * MSS];
        s.read(&mut buf);
        assert!(buf[..4 * MSS].iter().all(|&b| b == 0xA5));
        assert!(buf[4 * MSS..].iter().all(|&b| b == 0x5A));

        // And the reverse direction still works through the restored side.
        s.write(b"ack from peer");
        pump(&mut c2, &mut s, now, 1_000);
        let mut buf = [0u8; 32];
        assert_eq!(c2.read(&mut buf), 13);
        assert_eq!(&buf[..13], b"ack from peer");
    }

    /// Buffered receive-side data (read by the application after the move)
    /// and out-of-order stash survive the snapshot.
    #[test]
    fn snapshot_carries_receive_side_buffers() {
        let (mut c, mut s) = pair(0);
        c.write(&vec![3u8; 3 * MSS]);
        let segs = c.poll_transmit(1_000);
        assert_eq!(segs.len(), 3);
        // Deliver segment 0 (in order) and segment 2 (out of order).
        s.on_segment(&segs[0], 1_000);
        s.on_segment(&segs[2], 1_000);
        assert_eq!(s.recv_available(), MSS);

        let snap = s.snapshot().unwrap();
        assert_eq!(snap.recv_buf.len(), MSS);
        assert_eq!(snap.ooo.len(), 1);
        let mut s2 = TcpConnection::restore(&snap, CcAlgorithm::Reno.build());
        // The missing middle segment arrives at the restored side: the
        // out-of-order stash drains and the stream is whole.
        s2.on_segment(&segs[1], 2_000);
        assert_eq!(s2.recv_available(), 3 * MSS);
    }

    /// Handshake-phase and closed connections refuse to snapshot.
    #[test]
    fn snapshot_refuses_embryonic_and_closed_connections() {
        let cc = CcAlgorithm::Reno.build();
        let c = TcpConnection::connect(addr(1), peer(2), 0, cc, 0);
        assert_eq!(c.snapshot(), Err(NkError::InvalidState));
        let (mut c, _s) = pair(0);
        c.abort();
        assert_eq!(c.snapshot(), Err(NkError::InvalidState));
    }

    #[test]
    fn reno_is_default_like_and_exposed_via_cwnd() {
        let cc: Box<dyn CongestionControl> = Box::new(Reno::new());
        let c = TcpConnection::connect(addr(1), peer(2), 0, cc, 0);
        assert!(c.cwnd() >= MSS);
        assert_eq!(c.state(), ConnState::SynSent);
        assert_eq!(c.local(), addr(1));
        assert_eq!(c.remote(), peer(2));
    }
}
