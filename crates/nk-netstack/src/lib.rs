//! A from-scratch TCP/IP stack substrate.
//!
//! The paper's Network Stack Modules run real stacks — the Linux kernel
//! stack, mTCP over DPDK, or special-purpose prototypes. Neither is usable as
//! a Rust library, so this crate rebuilds the part of a stack the evaluation
//! depends on:
//!
//! * [`segment`] — TCP segments carried over the `nk-fabric` virtual switch;
//! * [`cc`] — pluggable congestion control: NewReno, CUBIC, DCTCP and the
//!   Seawall-style VM-shared window used by the fair-sharing NSM (§6.2);
//! * [`conn`] — the per-connection state machine: three-way handshake,
//!   sliding-window data transfer, retransmission (RTO and fast retransmit),
//!   out-of-order reassembly, FIN/RST teardown;
//! * [`stack`] — the socket layer: listeners and accept queues, port
//!   allocation, demultiplexing, readiness events, and the non-blocking
//!   socket-call surface ServiceLib and the baseline guest translate into.
//!
//! The stack is deliberately synchronous and single-owner: it is driven by
//! `tick(now_ns)` from whoever owns it (an NSM, a baseline VM, a remote-host
//! workload endpoint), which matches how the simulator and the threaded host
//! schedule work.

pub mod cc;
pub mod conn;
pub mod segment;
pub mod stack;

pub use cc::{CcAlgorithm, CongestionControl, SharedVmWindow};
pub use conn::{ConnState, TcpConnection};
pub use segment::{Segment, SegmentFlags};
pub use stack::{StackConfig, StackEvent, TcpStack};
