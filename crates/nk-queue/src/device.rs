//! The NK device: per-entity queue sets plus event notification.
//!
//! Every VM and every NSM owns one *NK device* "consisting of one or more
//! sets of lockless queues" — one queue set per vCPU (paper §4, §4.3). The
//! device also implements the *interrupt-driven polling* notification scheme
//! of §4.6: when the guest is waiting for events it polls its completion and
//! receive queues for a short window (20 µs in the paper); if nothing arrives
//! it arms an interrupt with CoreEngine and stops polling, and CoreEngine
//! wakes the device when new NQEs are switched to it.

use nk_types::constants::GUEST_POLL_WINDOW_US;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Arc;

/// Shared wake flag between a device and CoreEngine.
///
/// The device arms it when it gives up polling; CoreEngine rings it when it
/// switches new NQEs to the device. Both sides may live on different threads
/// (threaded mode) or be co-scheduled by the simulator, so the state is a
/// single atomic byte.
#[derive(Clone)]
pub struct WakeState {
    state: Arc<AtomicU8>,
}

const STATE_POLLING: u8 = 0;
const STATE_ARMED: u8 = 1;
const STATE_WOKEN: u8 = 2;

impl WakeState {
    /// New wake state, initially in polling mode.
    pub fn new() -> Self {
        WakeState {
            state: Arc::new(AtomicU8::new(STATE_POLLING)),
        }
    }

    /// Device side: arm the interrupt (device is about to stop polling).
    pub fn arm(&self) {
        self.state.store(STATE_ARMED, Ordering::Release);
    }

    /// Switch side: wake the device if it is armed. Returns `true` when a
    /// wake-up (virtual interrupt) was actually delivered — CoreEngine counts
    /// these for its overhead accounting.
    pub fn wake(&self) -> bool {
        self.state
            .compare_exchange(
                STATE_ARMED,
                STATE_WOKEN,
                Ordering::AcqRel,
                Ordering::Relaxed,
            )
            .is_ok()
    }

    /// Device side: true when armed (sleeping, waiting for an interrupt).
    pub fn is_armed(&self) -> bool {
        self.state.load(Ordering::Acquire) == STATE_ARMED
    }

    /// Device side: consume a pending wake-up and return to polling mode.
    /// Returns `true` when a wake-up was pending.
    pub fn take_wake(&self) -> bool {
        self.state
            .compare_exchange(
                STATE_WOKEN,
                STATE_POLLING,
                Ordering::AcqRel,
                Ordering::Relaxed,
            )
            .is_ok()
    }

    /// Device side: unconditionally return to polling mode.
    pub fn resume_polling(&self) {
        self.state.store(STATE_POLLING, Ordering::Release);
    }
}

impl Default for WakeState {
    fn default() -> Self {
        Self::new()
    }
}

/// Decision returned by [`IrqState::on_poll`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PollDecision {
    /// Keep busy-polling the queues.
    KeepPolling,
    /// The poll window expired with no work: arm the interrupt and sleep.
    Arm,
}

/// Tracks the interrupt-driven polling window of a guest NK device (§4.6).
///
/// Time is supplied by the caller in microseconds so the same state machine
/// works under both the real clock (threaded mode) and the virtual clock
/// (simulated mode).
#[derive(Clone, Debug)]
pub struct IrqState {
    /// Length of the polling window in microseconds.
    window_us: u64,
    /// Time at which the current empty-poll streak started; `None` while work
    /// keeps arriving.
    idle_since_us: Option<u64>,
    /// Number of interrupts armed over the device's lifetime.
    interrupts_armed: u64,
}

impl IrqState {
    /// State machine with the paper's default 20 µs polling window.
    pub fn new() -> Self {
        Self::with_window_us(GUEST_POLL_WINDOW_US)
    }

    /// State machine with a custom polling window.
    pub fn with_window_us(window_us: u64) -> Self {
        IrqState {
            window_us,
            idle_since_us: None,
            interrupts_armed: 0,
        }
    }

    /// Record the outcome of one poll iteration at time `now_us`.
    ///
    /// `found_work` is true when the poll returned at least one NQE. The
    /// device should arm its interrupt and stop polling when this returns
    /// [`PollDecision::Arm`].
    pub fn on_poll(&mut self, now_us: u64, found_work: bool) -> PollDecision {
        if found_work {
            self.idle_since_us = None;
            return PollDecision::KeepPolling;
        }
        match self.idle_since_us {
            None => {
                self.idle_since_us = Some(now_us);
                PollDecision::KeepPolling
            }
            Some(start) if now_us.saturating_sub(start) < self.window_us => {
                PollDecision::KeepPolling
            }
            Some(_) => {
                self.idle_since_us = None;
                self.interrupts_armed += 1;
                PollDecision::Arm
            }
        }
    }

    /// Reset the idle tracking (e.g. after a wake-up).
    pub fn reset(&mut self) {
        self.idle_since_us = None;
    }

    /// Number of interrupts armed so far.
    pub fn interrupts_armed(&self) -> u64 {
        self.interrupts_armed
    }

    /// The configured polling window in microseconds.
    pub fn window_us(&self) -> u64 {
        self.window_us
    }
}

impl Default for IrqState {
    fn default() -> Self {
        Self::new()
    }
}

/// An NK device: a set of per-vCPU queue-set ends plus notification state.
///
/// The type is generic over the end type so the same container serves
/// GuestLib (requester ends), ServiceLib (responder ends) and the two switch
/// ports CoreEngine holds for each device.
pub struct NkDevice<E> {
    queue_sets: Vec<E>,
    wake: WakeState,
    irq: IrqState,
    /// Round-robin cursor used by [`NkDevice::next_index`].
    rr_cursor: usize,
}

impl<E> NkDevice<E> {
    /// Build a device from its queue-set ends and a wake flag shared with the
    /// switch side.
    pub fn new(queue_sets: Vec<E>, wake: WakeState) -> Self {
        NkDevice {
            queue_sets,
            wake,
            irq: IrqState::new(),
            rr_cursor: 0,
        }
    }

    /// Number of queue sets (one per vCPU).
    pub fn queue_sets(&self) -> usize {
        self.queue_sets.len()
    }

    /// Access one queue-set end by index.
    pub fn queue_set(&mut self, idx: usize) -> Option<&mut E> {
        self.queue_sets.get_mut(idx)
    }

    /// Iterate mutably over all queue-set ends.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (usize, &mut E)> {
        self.queue_sets.iter_mut().enumerate()
    }

    /// Advance the round-robin cursor and return the next queue-set index.
    /// Returns `None` when the device has no queue sets.
    pub fn next_index(&mut self) -> Option<usize> {
        if self.queue_sets.is_empty() {
            return None;
        }
        let idx = self.rr_cursor % self.queue_sets.len();
        self.rr_cursor = self.rr_cursor.wrapping_add(1);
        Some(idx)
    }

    /// The wake flag shared with the switch side.
    pub fn wake(&self) -> &WakeState {
        &self.wake
    }

    /// The interrupt-driven polling state machine.
    pub fn irq_mut(&mut self) -> &mut IrqState {
        &mut self.irq
    }

    /// Append an additional queue set (queues "can be dynamically added or
    /// removed with the number of vCPUs", §4.4).
    pub fn add_queue_set(&mut self, end: E) {
        self.queue_sets.push(end);
    }

    /// Remove the last queue set, if any.
    pub fn remove_queue_set(&mut self) -> Option<E> {
        self.queue_sets.pop()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wake_state_transitions() {
        let w = WakeState::new();
        assert!(!w.is_armed());
        // Waking a polling device is a no-op.
        assert!(!w.wake());
        w.arm();
        assert!(w.is_armed());
        // First wake delivers the interrupt, the second finds it already woken.
        assert!(w.wake());
        assert!(!w.wake());
        assert!(w.take_wake());
        assert!(!w.take_wake());
        assert!(!w.is_armed());
    }

    /// After a wake-up is consumed the device is back in polling mode: a
    /// further wake without re-arming must not deliver another interrupt.
    /// CoreEngine relies on this to count at most one wake-up per sleep.
    #[test]
    fn wake_after_take_requires_rearm() {
        let w = WakeState::new();
        w.arm();
        assert!(w.wake());
        assert!(w.take_wake());
        assert!(!w.wake(), "woke a device that never re-armed");
        w.arm();
        assert!(w.wake(), "re-armed device must be wakeable again");
    }

    /// Resuming polling from the armed state discards the pending arm: the
    /// device found work on its own, so no interrupt should fire afterwards.
    #[test]
    fn resume_polling_discards_armed_state() {
        let w = WakeState::new();
        w.arm();
        w.resume_polling();
        assert!(!w.is_armed());
        assert!(!w.wake());
        assert!(!w.take_wake());
    }

    #[test]
    fn wake_state_is_shared_between_clones() {
        let device_side = WakeState::new();
        let switch_side = device_side.clone();
        device_side.arm();
        assert!(switch_side.wake());
        assert!(device_side.take_wake());
    }

    #[test]
    fn irq_arms_only_after_window_expires() {
        let mut irq = IrqState::with_window_us(20);
        assert_eq!(irq.on_poll(0, false), PollDecision::KeepPolling);
        assert_eq!(irq.on_poll(10, false), PollDecision::KeepPolling);
        assert_eq!(irq.on_poll(19, false), PollDecision::KeepPolling);
        assert_eq!(irq.on_poll(21, false), PollDecision::Arm);
        assert_eq!(irq.interrupts_armed(), 1);
        // After arming, the streak restarts.
        assert_eq!(irq.on_poll(30, false), PollDecision::KeepPolling);
    }

    #[test]
    fn irq_work_resets_the_window() {
        let mut irq = IrqState::with_window_us(20);
        assert_eq!(irq.on_poll(0, false), PollDecision::KeepPolling);
        assert_eq!(irq.on_poll(15, true), PollDecision::KeepPolling);
        // The idle streak restarted at 15, so 30 is still inside the window.
        assert_eq!(irq.on_poll(30, false), PollDecision::KeepPolling);
        assert_eq!(irq.on_poll(55, false), PollDecision::Arm);
    }

    #[test]
    fn device_round_robin_cursor() {
        let mut dev: NkDevice<u32> = NkDevice::new(vec![10, 20, 30], WakeState::new());
        assert_eq!(dev.queue_sets(), 3);
        assert_eq!(dev.next_index(), Some(0));
        assert_eq!(dev.next_index(), Some(1));
        assert_eq!(dev.next_index(), Some(2));
        assert_eq!(dev.next_index(), Some(0));
        let empty: NkDevice<u32> = NkDevice::new(vec![], WakeState::new());
        let mut empty = empty;
        assert_eq!(dev.queue_set(1), Some(&mut 20));
        assert_eq!(empty.next_index(), None);
    }

    #[test]
    fn device_dynamic_queue_sets() {
        let mut dev: NkDevice<u32> = NkDevice::new(vec![1], WakeState::new());
        dev.add_queue_set(2);
        assert_eq!(dev.queue_sets(), 2);
        assert_eq!(dev.remove_queue_set(), Some(2));
        assert_eq!(dev.remove_queue_set(), Some(1));
        assert_eq!(dev.remove_queue_set(), None);
    }
}
