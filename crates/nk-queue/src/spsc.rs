//! A bounded single-producer / single-consumer lock-free ring buffer.
//!
//! Each NetKernel queue is "memory shared with a software switch, so it can be
//! lockless with only a single producer and a single consumer to avoid
//! expensive lock contention" (paper §3). This module implements exactly that
//! discipline: a fixed-capacity ring with one [`Producer`] handle and one
//! [`Consumer`] handle, no locks, and only `Acquire`/`Release` atomics on the
//! head and tail indices.
//!
//! The implementation follows the classic Lamport queue with cached indices:
//! the producer caches the consumer's head and only reloads it when the ring
//! appears full, and symmetrically for the consumer, so the common case costs
//! one atomic load and one atomic store per operation.

use crossbeam_utils::CachePadded;
use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

struct Inner<T> {
    /// Next slot the producer will write (monotonically increasing).
    tail: CachePadded<AtomicUsize>,
    /// Next slot the consumer will read (monotonically increasing).
    head: CachePadded<AtomicUsize>,
    /// Ring storage; slot `i % capacity` is owned by the producer when
    /// `head <= i < tail + capacity` and unread data lives in `[head, tail)`.
    buf: Box<[UnsafeCell<MaybeUninit<T>>]>,
}

// SAFETY: `Inner` is shared between exactly one producer and one consumer.
// The producer only writes slots in `[tail, head + capacity)` and the
// consumer only reads slots in `[head, tail)`; the Acquire/Release pairs on
// `head`/`tail` order those accesses, so no slot is ever accessed
// concurrently from both sides.
unsafe impl<T: Send> Send for Inner<T> {}
unsafe impl<T: Send> Sync for Inner<T> {}

/// Producing half of an SPSC queue. Not clonable: single producer.
pub struct Producer<T> {
    inner: Arc<Inner<T>>,
    /// Producer's cached copy of `head`, refreshed only when the ring looks
    /// full.
    cached_head: usize,
}

/// Consuming half of an SPSC queue. Not clonable: single consumer.
pub struct Consumer<T> {
    inner: Arc<Inner<T>>,
    /// Consumer's cached copy of `tail`, refreshed only when the ring looks
    /// empty.
    cached_tail: usize,
}

/// Create a bounded SPSC channel with room for `capacity` elements.
///
/// # Panics
///
/// Panics if `capacity` is zero.
pub fn channel<T>(capacity: usize) -> (Producer<T>, Consumer<T>) {
    assert!(capacity > 0, "SPSC queue capacity must be non-zero");
    let buf = (0..capacity)
        .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
        .collect::<Vec<_>>()
        .into_boxed_slice();
    let inner = Arc::new(Inner {
        tail: CachePadded::new(AtomicUsize::new(0)),
        head: CachePadded::new(AtomicUsize::new(0)),
        buf,
    });
    (
        Producer {
            inner: Arc::clone(&inner),
            cached_head: 0,
        },
        Consumer {
            inner,
            cached_tail: 0,
        },
    )
}

impl<T> Producer<T> {
    /// Capacity of the ring.
    pub fn capacity(&self) -> usize {
        self.inner.buf.len()
    }

    /// Number of elements currently queued (approximate from the producer's
    /// point of view; exact when the consumer is idle).
    pub fn len(&self) -> usize {
        let tail = self.inner.tail.load(Ordering::Relaxed);
        let head = self.inner.head.load(Ordering::Acquire);
        tail - head
    }

    /// True when no element is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True when the ring is full.
    pub fn is_full(&self) -> bool {
        self.len() == self.capacity()
    }

    /// Free slots available to the producer right now.
    pub fn free(&self) -> usize {
        self.capacity() - self.len()
    }

    /// Push one element. Returns `Err(value)` when the ring is full, handing
    /// the value back to the caller.
    pub fn push(&mut self, value: T) -> Result<(), T> {
        let tail = self.inner.tail.load(Ordering::Relaxed);
        if tail - self.cached_head == self.capacity() {
            // Looks full; refresh the cached head and re-check.
            self.cached_head = self.inner.head.load(Ordering::Acquire);
            if tail - self.cached_head == self.capacity() {
                return Err(value);
            }
        }
        let slot = &self.inner.buf[tail % self.capacity()];
        // SAFETY: slot index `tail` is exclusively owned by the producer
        // until the Release store below publishes it; the consumer will not
        // read it before observing the new tail.
        unsafe { (*slot.get()).write(value) };
        self.inner.tail.store(tail + 1, Ordering::Release);
        Ok(())
    }

    /// Push as many elements from `iter` as fit; returns how many were
    /// enqueued. The paper's NK devices and CoreEngine batch NQEs in exactly
    /// this fashion (§4.6 "Batching").
    pub fn push_batch<I: IntoIterator<Item = T>>(&mut self, iter: I) -> usize {
        let mut n = 0;
        for v in iter {
            if self.push(v).is_err() {
                break;
            }
            n += 1;
        }
        n
    }
}

impl<T> Consumer<T> {
    /// Capacity of the ring.
    pub fn capacity(&self) -> usize {
        self.inner.buf.len()
    }

    /// Number of elements currently queued (approximate from the consumer's
    /// point of view).
    pub fn len(&self) -> usize {
        let tail = self.inner.tail.load(Ordering::Acquire);
        let head = self.inner.head.load(Ordering::Relaxed);
        tail - head
    }

    /// True when no element is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Pop one element, or `None` when the ring is empty.
    pub fn pop(&mut self) -> Option<T> {
        let head = self.inner.head.load(Ordering::Relaxed);
        if head == self.cached_tail {
            // Looks empty; refresh the cached tail and re-check.
            self.cached_tail = self.inner.tail.load(Ordering::Acquire);
            if head == self.cached_tail {
                return None;
            }
        }
        let slot = &self.inner.buf[head % self.capacity()];
        // SAFETY: `head < tail`, so the producer has fully initialised this
        // slot and will not touch it again until we publish `head + 1`.
        let value = unsafe { (*slot.get()).assume_init_read() };
        self.inner.head.store(head + 1, Ordering::Release);
        Some(value)
    }

    /// Look at the next element without consuming it.
    pub fn peek(&mut self) -> Option<&T> {
        let head = self.inner.head.load(Ordering::Relaxed);
        if head == self.cached_tail {
            self.cached_tail = self.inner.tail.load(Ordering::Acquire);
            if head == self.cached_tail {
                return None;
            }
        }
        let slot = &self.inner.buf[head % self.capacity()];
        // SAFETY: same argument as `pop`, but the element is only borrowed;
        // the borrow ends before any further `pop` can free the slot because
        // `peek` takes `&mut self`.
        Some(unsafe { (*slot.get()).assume_init_ref() })
    }

    /// Pop up to `max` elements into `out`; returns how many were popped.
    pub fn pop_batch(&mut self, out: &mut Vec<T>, max: usize) -> usize {
        let mut n = 0;
        while n < max {
            match self.pop() {
                Some(v) => {
                    out.push(v);
                    n += 1;
                }
                None => break,
            }
        }
        n
    }
}

impl<T> Drop for Consumer<T> {
    fn drop(&mut self) {
        // Drain remaining elements so their destructors run. The producer may
        // still push afterwards; those elements are leaked only if T needs
        // Drop and the producer outlives the consumer, which does not happen
        // in NetKernel (queue pairs are torn down together), and NQEs are
        // Copy anyway.
        while self.pop().is_some() {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_panics() {
        let _ = channel::<u32>(0);
    }

    #[test]
    fn fifo_order_single_thread() {
        let (mut tx, mut rx) = channel(8);
        for i in 0..8 {
            tx.push(i).unwrap();
        }
        assert!(tx.is_full());
        assert_eq!(tx.push(99), Err(99));
        for i in 0..8 {
            assert_eq!(rx.pop(), Some(i));
        }
        assert_eq!(rx.pop(), None);
        assert!(rx.is_empty());
    }

    #[test]
    fn wraparound_many_times() {
        let (mut tx, mut rx) = channel(3);
        for round in 0..1000u32 {
            tx.push(round * 2).unwrap();
            tx.push(round * 2 + 1).unwrap();
            assert_eq!(rx.pop(), Some(round * 2));
            assert_eq!(rx.pop(), Some(round * 2 + 1));
        }
        assert!(rx.is_empty());
    }

    #[test]
    fn peek_does_not_consume() {
        let (mut tx, mut rx) = channel(4);
        tx.push(7).unwrap();
        assert_eq!(rx.peek(), Some(&7));
        assert_eq!(rx.peek(), Some(&7));
        assert_eq!(rx.pop(), Some(7));
        assert_eq!(rx.peek(), None);
    }

    #[test]
    fn batch_push_pop() {
        let (mut tx, mut rx) = channel(16);
        let n = tx.push_batch(0..10);
        assert_eq!(n, 10);
        let mut out = Vec::new();
        assert_eq!(rx.pop_batch(&mut out, 4), 4);
        assert_eq!(out, vec![0, 1, 2, 3]);
        assert_eq!(rx.pop_batch(&mut out, 100), 6);
        assert_eq!(out.len(), 10);
    }

    #[test]
    fn batch_push_stops_at_capacity() {
        let (mut tx, _rx) = channel(4);
        assert_eq!(tx.push_batch(0..100), 4);
        assert!(tx.is_full());
        assert_eq!(tx.free(), 0);
    }

    #[test]
    fn len_tracks_occupancy() {
        let (mut tx, mut rx) = channel(8);
        assert_eq!(tx.len(), 0);
        tx.push(1).unwrap();
        tx.push(2).unwrap();
        assert_eq!(tx.len(), 2);
        assert_eq!(rx.len(), 2);
        rx.pop();
        assert_eq!(rx.len(), 1);
    }

    /// The tightest ring: every push wraps. Exercises the cached-index
    /// refresh on both sides every single operation.
    #[test]
    fn capacity_one_ring_alternates() {
        let (mut tx, mut rx) = channel(1);
        for i in 0..100u32 {
            tx.push(i).unwrap();
            assert!(tx.is_full());
            assert_eq!(tx.push(u32::MAX), Err(u32::MAX));
            assert_eq!(rx.pop(), Some(i));
            assert_eq!(rx.pop(), None);
        }
    }

    /// Backpressure releases exactly one slot per pop when the ring is full,
    /// across the index wrap boundary: the producer's stale cached head must
    /// be refreshed on the looks-full path, never sooner.
    #[test]
    fn backpressure_releases_one_slot_per_pop_at_wrap() {
        let (mut tx, mut rx) = channel(4);
        for i in 0..4 {
            tx.push(i).unwrap();
        }
        // 20 iterations walk the head/tail pair well past one wrap.
        for i in 4..24u32 {
            assert_eq!(tx.push(999), Err(999), "ring must be full before pop");
            assert_eq!(rx.pop(), Some(i - 4));
            tx.push(i).unwrap();
        }
        let mut out = Vec::new();
        assert_eq!(rx.pop_batch(&mut out, 10), 4);
        assert_eq!(out, vec![20, 21, 22, 23]);
    }

    /// Alternating full-drain cycles leave both sides with maximally stale
    /// caches; every cycle must still move exactly `capacity` elements.
    #[test]
    fn repeated_fill_drain_cycles_with_stale_caches() {
        let (mut tx, mut rx) = channel(8);
        for round in 0..50u32 {
            assert_eq!(tx.push_batch((0..100).map(|i| round * 100 + i)), 8);
            assert!(tx.is_full());
            let mut out = Vec::new();
            assert_eq!(rx.pop_batch(&mut out, 100), 8);
            assert_eq!(out[0], round * 100);
            assert_eq!(out[7], round * 100 + 7);
            assert!(rx.is_empty());
        }
    }

    #[test]
    fn cross_thread_stress_preserves_order_and_count() {
        const N: u64 = 200_000;
        let (mut tx, mut rx) = channel(1024);
        let producer = thread::spawn(move || {
            let mut i = 0u64;
            while i < N {
                if tx.push(i).is_ok() {
                    i += 1;
                } else {
                    std::hint::spin_loop();
                }
            }
        });
        let consumer = thread::spawn(move || {
            let mut expected = 0u64;
            let mut sum = 0u64;
            while expected < N {
                if let Some(v) = rx.pop() {
                    assert_eq!(v, expected, "FIFO order violated");
                    sum += v;
                    expected += 1;
                } else {
                    std::hint::spin_loop();
                }
            }
            sum
        });
        producer.join().unwrap();
        let sum = consumer.join().unwrap();
        assert_eq!(sum, N * (N - 1) / 2);
    }

    #[test]
    fn drops_remaining_elements() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        struct Counted;
        impl Drop for Counted {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::SeqCst);
            }
        }
        {
            let (mut tx, rx) = channel(8);
            assert!(tx.push(Counted).is_ok());
            assert!(tx.push(Counted).is_ok());
            drop(rx);
            drop(tx);
        }
        assert_eq!(DROPS.load(Ordering::SeqCst), 2);
    }
}
