//! Lockless queues and NK devices for NQE transmission.
//!
//! NetKernel moves socket semantics between the guest and its NSM through
//! *scalable lockless queues* (paper §3, §4.3): each queue is shared memory
//! between exactly one producer and one consumer, so no locks are required,
//! and each vCPU gets a dedicated *queue set* so throughput scales with cores.
//!
//! This crate provides:
//!
//! * [`spsc`] — a bounded single-producer/single-consumer lock-free ring
//!   buffer, the building block of every NQE queue;
//! * [`mod@unbounded`] — an unbounded wait-free SPSC queue, the cross-shard
//!   fabric edge of the parallel cluster datapath (frames must never be
//!   dropped for capacity reasons, or behaviour would depend on timing);
//! * [`queueset`] — the four-queue set (job / completion / send / receive) of
//!   the paper's Figure 5, split into a requester end and a responder end;
//! * [`device`] — the NK device: the per-entity collection of queue sets plus
//!   the interrupt-driven-polling notification state machine of §4.6.

pub mod device;
pub mod queueset;
pub mod spsc;
pub mod unbounded;

pub use device::{IrqState, NkDevice, WakeState};
pub use queueset::{queue_set_pair, QueueKind, RequesterEnd, ResponderEnd};
pub use spsc::{channel, Consumer, Producer};
pub use unbounded::{unbounded, UnboundedConsumer, UnboundedProducer};
