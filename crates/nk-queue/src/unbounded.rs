//! An unbounded single-producer / single-consumer lock-free queue.
//!
//! Where [`crate::spsc`] is the paper's fixed-capacity NQE ring (backpressure
//! by design), this queue is the *fabric* edge between a sharded host and the
//! top-of-rack switch: a host worker thread pushes uplink frames during a
//! poll round and the coordinator drains them at the round barrier. Dropping
//! frames on overflow would make behaviour depend on shard timing, so the
//! cross-shard edge must never refuse a push — it grows instead.
//!
//! The implementation is the classic Vyukov node-based queue specialised to
//! one producer and one consumer: a singly linked list with a stub node,
//! where the producer appends at `tail` and the consumer advances `head`.
//! Both operations are wait-free — one allocation plus one Release store to
//! publish, one Acquire load to observe — so neither side can stall the
//! other ("A Wait-Free Universal Construct for Large Objects" makes the case
//! for keeping exactly these cross-thread handoffs wait-free).

use std::ptr;
use std::sync::atomic::{AtomicPtr, AtomicUsize, Ordering};
use std::sync::Arc;

struct Node<T> {
    next: AtomicPtr<Node<T>>,
    /// `None` only in the stub node (and in consumed nodes awaiting free).
    value: Option<T>,
}

struct Inner<T> {
    /// Consumer-owned: the node *before* the next value (stub or last
    /// consumed). Only the consumer reads or writes this field.
    head: AtomicPtr<Node<T>>,
    /// Producer-owned: the most recently appended node. Only the producer
    /// reads or writes this field.
    tail: AtomicPtr<Node<T>>,
    /// Occupancy, maintained on both sides for `len`/`is_empty`.
    len: AtomicUsize,
}

// SAFETY: exactly one producer touches `tail` (and appended nodes' `next`
// fields) and exactly one consumer touches `head` (and takes values out of
// published nodes). The Release store on `next` in `push` paired with the
// Acquire load in `pop` orders the node's initialisation before the
// consumer's read. The consumer frees only nodes strictly *behind* the next
// value, which the producer no longer references.
unsafe impl<T: Send> Send for Inner<T> {}
unsafe impl<T: Send> Sync for Inner<T> {}

/// Producing half of an unbounded SPSC queue. Not clonable: single producer.
pub struct UnboundedProducer<T> {
    inner: Arc<Inner<T>>,
}

/// Consuming half of an unbounded SPSC queue. Not clonable: single consumer.
pub struct UnboundedConsumer<T> {
    inner: Arc<Inner<T>>,
}

/// Create an unbounded SPSC channel.
pub fn unbounded<T>() -> (UnboundedProducer<T>, UnboundedConsumer<T>) {
    let stub = Box::into_raw(Box::new(Node {
        next: AtomicPtr::new(ptr::null_mut()),
        value: None,
    }));
    let inner = Arc::new(Inner {
        head: AtomicPtr::new(stub),
        tail: AtomicPtr::new(stub),
        len: AtomicUsize::new(0),
    });
    (
        UnboundedProducer {
            inner: Arc::clone(&inner),
        },
        UnboundedConsumer { inner },
    )
}

impl<T> UnboundedProducer<T> {
    /// Append one element. Never fails, never blocks.
    pub fn push(&mut self, value: T) {
        let node = Box::into_raw(Box::new(Node {
            next: AtomicPtr::new(ptr::null_mut()),
            value: Some(value),
        }));
        // Relaxed: `tail` is producer-private, only this thread accesses it.
        let tail = self.inner.tail.load(Ordering::Relaxed);
        // SAFETY: `tail` is the last appended node (or the stub); the
        // consumer never frees it while the producer can still reach it.
        unsafe { (*tail).next.store(node, Ordering::Release) };
        self.inner.tail.store(node, Ordering::Relaxed);
        self.inner.len.fetch_add(1, Ordering::Release);
    }

    /// Number of elements currently queued (approximate under concurrency).
    pub fn len(&self) -> usize {
        self.inner.len.load(Ordering::Acquire)
    }

    /// True when no element is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> UnboundedConsumer<T> {
    /// Pop one element, or `None` when the queue is empty.
    pub fn pop(&mut self) -> Option<T> {
        // Relaxed: `head` is consumer-private, only this thread accesses it.
        let head = self.inner.head.load(Ordering::Relaxed);
        // SAFETY: `head` is the stub or the last consumed node; only the
        // consumer frees nodes, so it is alive. The Acquire load pairs with
        // the producer's Release store and makes the node's value visible.
        let next = unsafe { (*head).next.load(Ordering::Acquire) };
        if next.is_null() {
            return None;
        }
        // SAFETY: `next` was fully initialised before being published.
        let value = unsafe { (*next).value.take().expect("published node has a value") };
        self.inner.head.store(next, Ordering::Relaxed);
        // SAFETY: the old head is strictly behind the new one; the producer
        // only ever touches the node `tail` points at, which is `next` or
        // later, so nobody else can reach the node being freed.
        unsafe { drop(Box::from_raw(head)) };
        self.inner.len.fetch_sub(1, Ordering::Release);
        Some(value)
    }

    /// Pop every queued element into `out`; returns how many were popped.
    pub fn drain_into(&mut self, out: &mut Vec<T>) -> usize {
        let mut n = 0;
        while let Some(v) = self.pop() {
            out.push(v);
            n += 1;
        }
        n
    }

    /// Pop every queued element, handing each to `f` in FIFO order; returns
    /// how many were popped. The allocation-free sibling of
    /// [`UnboundedConsumer::drain_into`] for barrier-time drains that fold
    /// elements into an accumulator instead of collecting them.
    pub fn drain_with(&mut self, mut f: impl FnMut(T)) -> usize {
        let mut n = 0;
        while let Some(v) = self.pop() {
            f(v);
            n += 1;
        }
        n
    }

    /// Number of elements currently queued (approximate under concurrency).
    pub fn len(&self) -> usize {
        self.inner.len.load(Ordering::Acquire)
    }

    /// True when no element is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Drop for Inner<T> {
    fn drop(&mut self) {
        // Both handles are gone: walk the list and free every node (the
        // stub/consumed ones carry no value; pending ones drop theirs).
        let mut cur = self.head.load(Ordering::Relaxed);
        while !cur.is_null() {
            // SAFETY: both handles are dropped, so this thread is the sole
            // owner of the whole list; every node from `head` onward is a
            // live Box allocation published by the producer.
            let next = unsafe { (*cur).next.load(Ordering::Relaxed) };
            // SAFETY: `cur` came from `Box::into_raw` in `push` (or the stub
            // in `unbounded`), is non-null, and nothing else can reach it —
            // `next` was read out above before the backing memory goes away.
            unsafe { drop(Box::from_raw(cur)) };
            cur = next;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn fifo_order_single_thread() {
        let (mut tx, mut rx) = unbounded();
        assert!(rx.pop().is_none());
        for i in 0..100 {
            tx.push(i);
        }
        assert_eq!(tx.len(), 100);
        for i in 0..100 {
            assert_eq!(rx.pop(), Some(i));
        }
        assert!(rx.pop().is_none());
        assert!(rx.is_empty() && tx.is_empty());
    }

    #[test]
    fn drain_into_empties_the_queue() {
        let (mut tx, mut rx) = unbounded();
        for i in 0..10u32 {
            tx.push(i);
        }
        let mut out = Vec::new();
        assert_eq!(rx.drain_into(&mut out), 10);
        assert_eq!(out, (0..10).collect::<Vec<_>>());
        assert_eq!(rx.drain_into(&mut out), 0);
    }

    #[test]
    fn drain_with_folds_in_fifo_order() {
        let (mut tx, mut rx) = unbounded();
        for i in 0..10u64 {
            tx.push(i);
        }
        let mut seen = Vec::new();
        assert_eq!(rx.drain_with(|v| seen.push(v)), 10);
        assert_eq!(seen, (0..10).collect::<Vec<_>>());
        assert_eq!(rx.drain_with(|_| panic!("queue must be empty")), 0);
    }

    /// A burst far past any plausible ring size: the queue grows instead of
    /// refusing — the property the cross-shard fabric edge depends on.
    #[test]
    fn grows_without_bound() {
        let (mut tx, mut rx) = unbounded();
        for i in 0..100_000u64 {
            tx.push(i);
        }
        assert_eq!(rx.len(), 100_000);
        let mut expected = 0;
        while let Some(v) = rx.pop() {
            assert_eq!(v, expected);
            expected += 1;
        }
        assert_eq!(expected, 100_000);
    }

    #[test]
    fn interleaved_push_pop_reuses_nothing_stale() {
        let (mut tx, mut rx) = unbounded();
        for round in 0..1000u32 {
            tx.push(round * 2);
            tx.push(round * 2 + 1);
            assert_eq!(rx.pop(), Some(round * 2));
            assert_eq!(rx.pop(), Some(round * 2 + 1));
            assert!(rx.is_empty());
        }
    }

    #[test]
    fn cross_thread_stress_preserves_order_and_count() {
        const N: u64 = 200_000;
        let (mut tx, mut rx) = unbounded();
        let producer = thread::spawn(move || {
            for i in 0..N {
                tx.push(i);
            }
        });
        let consumer = thread::spawn(move || {
            let mut expected = 0u64;
            let mut sum = 0u64;
            while expected < N {
                if let Some(v) = rx.pop() {
                    assert_eq!(v, expected, "FIFO order violated");
                    sum += v;
                    expected += 1;
                } else {
                    std::hint::spin_loop();
                }
            }
            sum
        });
        producer.join().unwrap();
        let sum = consumer.join().unwrap();
        assert_eq!(sum, N * (N - 1) / 2);
    }

    #[test]
    fn drops_remaining_elements() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        struct Counted;
        impl Drop for Counted {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::SeqCst);
            }
        }
        {
            let (mut tx, rx) = unbounded();
            tx.push(Counted);
            tx.push(Counted);
            tx.push(Counted);
            drop(rx);
            drop(tx);
        }
        assert_eq!(DROPS.load(Ordering::SeqCst), 3);
    }
}
