//! Queue sets: the four lockless queues connecting one vCPU to CoreEngine.
//!
//! Each queue set has "a send queue and receive queue for operations with
//! data transfer (e.g. `send()`), and a job queue and completion queue for
//! control operations without data transfer (e.g. `setsockopt()`)"
//! (paper §4, Figure 5). Requests flow on the job/send queues, completions
//! and data events flow back on the completion/receive queues.
//!
//! A queue set is created as a pair of ends:
//!
//! * the [`RequesterEnd`] pushes requests and pops completions — held by
//!   GuestLib for VM-side devices, and by CoreEngine for NSM-side devices;
//! * the [`ResponderEnd`] pops requests and pushes completions — held by
//!   CoreEngine for VM-side devices, and by ServiceLib for NSM-side devices.

use crate::spsc::{channel, Consumer, Producer};
use nk_types::{NkError, NkResult, Nqe, OpType};

/// Which of the four queues of a queue set an NQE travels on.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum QueueKind {
    /// Control operations issued by the requester (no payload).
    Job,
    /// Execution results of control operations.
    Completion,
    /// Operations that carry payload (e.g. `send()`).
    Send,
    /// Events announcing newly received payload.
    Receive,
}

impl QueueKind {
    /// The queue a *request/event* NQE of type `op` must travel on, following
    /// the classification of §4.2: data-carrying operations use the
    /// send/receive queues, everything else uses job/completion.
    pub fn for_op(op: OpType) -> QueueKind {
        match (op.is_request(), op.carries_data()) {
            (true, true) => QueueKind::Send,
            (true, false) => QueueKind::Job,
            (false, true) => QueueKind::Receive,
            (false, false) => QueueKind::Completion,
        }
    }
}

/// The end of a queue set that issues requests and receives completions.
pub struct RequesterEnd {
    job: Producer<Nqe>,
    send: Producer<Nqe>,
    completion: Consumer<Nqe>,
    receive: Consumer<Nqe>,
}

/// The end of a queue set that executes requests and produces completions.
pub struct ResponderEnd {
    job: Consumer<Nqe>,
    send: Consumer<Nqe>,
    completion: Producer<Nqe>,
    receive: Producer<Nqe>,
}

/// Create one queue set: four SPSC rings of `capacity` NQEs each, returned as
/// a connected (requester, responder) pair.
pub fn queue_set_pair(capacity: usize) -> (RequesterEnd, ResponderEnd) {
    let (job_tx, job_rx) = channel(capacity);
    let (send_tx, send_rx) = channel(capacity);
    let (comp_tx, comp_rx) = channel(capacity);
    let (recv_tx, recv_rx) = channel(capacity);
    (
        RequesterEnd {
            job: job_tx,
            send: send_tx,
            completion: comp_rx,
            receive: recv_rx,
        },
        ResponderEnd {
            job: job_rx,
            send: send_rx,
            completion: comp_tx,
            receive: recv_tx,
        },
    )
}

impl RequesterEnd {
    /// Submit a request NQE on the queue implied by its op type.
    pub fn submit(&mut self, nqe: Nqe) -> NkResult<()> {
        debug_assert!(nqe.op.is_request(), "requester submitted a completion");
        let q = match QueueKind::for_op(nqe.op) {
            QueueKind::Send => &mut self.send,
            _ => &mut self.job,
        };
        q.push(nqe).map_err(|_| NkError::QueueFull)
    }

    /// Pop one completion (control) NQE.
    pub fn pop_completion(&mut self) -> Option<Nqe> {
        self.completion.pop()
    }

    /// Pop one receive (data event) NQE.
    pub fn pop_receive(&mut self) -> Option<Nqe> {
        self.receive.pop()
    }

    /// Pop up to `max` NQEs from the completion queue followed by the receive
    /// queue; returns how many were popped.
    pub fn pop_responses(&mut self, out: &mut Vec<Nqe>, max: usize) -> usize {
        let n = self.completion.pop_batch(out, max);
        n + self.receive.pop_batch(out, max - n)
    }

    /// True when neither the completion nor the receive queue has pending
    /// NQEs.
    pub fn responses_empty(&self) -> bool {
        self.completion.is_empty() && self.receive.is_empty()
    }

    /// Number of response NQEs currently pending.
    pub fn responses_len(&self) -> usize {
        self.completion.len() + self.receive.len()
    }

    /// Free space in the send queue (used for backpressure on data path).
    pub fn send_free(&self) -> usize {
        self.send.free()
    }

    /// Free space in the job queue.
    pub fn job_free(&self) -> usize {
        self.job.free()
    }
}

impl ResponderEnd {
    /// Pop one request NQE from the job queue.
    pub fn pop_job(&mut self) -> Option<Nqe> {
        self.job.pop()
    }

    /// Pop one request NQE from the send queue.
    pub fn pop_send(&mut self) -> Option<Nqe> {
        self.send.pop()
    }

    /// Pop up to `max` request NQEs, draining the job queue before the send
    /// queue; returns how many were popped.
    pub fn pop_requests(&mut self, out: &mut Vec<Nqe>, max: usize) -> usize {
        let n = self.job.pop_batch(out, max);
        n + self.send.pop_batch(out, max - n)
    }

    /// True when neither the job nor the send queue has pending NQEs.
    pub fn requests_empty(&self) -> bool {
        self.job.is_empty() && self.send.is_empty()
    }

    /// Number of request NQEs currently pending.
    pub fn requests_len(&self) -> usize {
        self.job.len() + self.send.len()
    }

    /// Push a completion or data-event NQE on the queue implied by its op
    /// type.
    pub fn respond(&mut self, nqe: Nqe) -> NkResult<()> {
        debug_assert!(nqe.op.is_completion(), "responder pushed a request");
        let q = match QueueKind::for_op(nqe.op) {
            QueueKind::Receive => &mut self.receive,
            _ => &mut self.completion,
        };
        q.push(nqe).map_err(|_| NkError::QueueFull)
    }

    /// Free space in the receive queue (used for backpressure on data path).
    pub fn receive_free(&self) -> usize {
        self.receive.free()
    }

    /// Free space in the completion queue.
    pub fn completion_free(&self) -> usize {
        self.completion.free()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nk_types::{DataHandle, OpResult, QueueSetId, SocketId, VmId};

    fn req(op: OpType) -> Nqe {
        Nqe::new(op, VmId(1), QueueSetId(0), SocketId(3))
    }

    #[test]
    fn op_to_queue_classification() {
        assert_eq!(QueueKind::for_op(OpType::Send), QueueKind::Send);
        assert_eq!(QueueKind::for_op(OpType::Connect), QueueKind::Job);
        assert_eq!(QueueKind::for_op(OpType::DataReceived), QueueKind::Receive);
        assert_eq!(
            QueueKind::for_op(OpType::SendComplete),
            QueueKind::Completion
        );
    }

    #[test]
    fn requests_route_to_job_and_send_queues() {
        let (mut requester, mut responder) = queue_set_pair(8);
        requester.submit(req(OpType::Connect)).unwrap();
        requester
            .submit(req(OpType::Send).with_data(DataHandle::from_offset(0), 64))
            .unwrap();
        // Job queue drains before the send queue in pop_requests.
        let mut out = Vec::new();
        assert_eq!(responder.pop_requests(&mut out, 16), 2);
        assert_eq!(out[0].op, OpType::Connect);
        assert_eq!(out[1].op, OpType::Send);
        assert!(responder.requests_empty());
    }

    #[test]
    fn completions_route_to_completion_and_receive_queues() {
        let (mut requester, mut responder) = queue_set_pair(8);
        let comp = Nqe::completion_for(&req(OpType::Connect), OpResult::Ok, 0).unwrap();
        responder.respond(comp).unwrap();
        assert_eq!(requester.pop_receive(), None);
        let got = requester.pop_completion().unwrap();
        assert_eq!(got.op, OpType::ConnectComplete);
        assert_eq!(got.result(), OpResult::Ok);
    }

    #[test]
    fn data_events_arrive_on_receive_queue() {
        let (mut requester, mut responder) = queue_set_pair(8);
        let data_event = Nqe::new(OpType::DataReceived, VmId(1), QueueSetId(0), SocketId(3))
            .with_data(DataHandle::from_offset(4096), 512);
        responder.respond(data_event).unwrap();
        assert_eq!(requester.pop_completion(), None);
        let got = requester.pop_receive().unwrap();
        assert_eq!(got.op, OpType::DataReceived);
        assert_eq!(got.size, 512);
    }

    #[test]
    fn pop_responses_orders_completions_before_data() {
        let (mut requester, mut responder) = queue_set_pair(8);
        let comp = Nqe::completion_for(&req(OpType::Send), OpResult::Ok, 0).unwrap();
        let data = Nqe::new(OpType::DataReceived, VmId(1), QueueSetId(0), SocketId(3))
            .with_data(DataHandle::from_offset(0), 100);
        responder.respond(data).unwrap();
        responder.respond(comp).unwrap();
        let mut out = Vec::new();
        assert_eq!(requester.pop_responses(&mut out, 10), 2);
        assert_eq!(out[0].op, OpType::SendComplete);
        assert_eq!(out[1].op, OpType::DataReceived);
        assert!(requester.responses_empty());
    }

    #[test]
    fn queue_full_is_reported() {
        let (mut requester, _responder) = queue_set_pair(2);
        requester.submit(req(OpType::Connect)).unwrap();
        requester.submit(req(OpType::Close)).unwrap();
        assert_eq!(
            requester.submit(req(OpType::Accept)),
            Err(NkError::QueueFull)
        );
        assert_eq!(requester.job_free(), 0);
        assert_eq!(requester.send_free(), 2);
    }

    #[test]
    fn occupancy_counters() {
        let (mut requester, mut responder) = queue_set_pair(4);
        assert!(responder.requests_empty());
        requester.submit(req(OpType::Listen)).unwrap();
        assert_eq!(responder.requests_len(), 1);
        let comp = Nqe::completion_for(&req(OpType::Listen), OpResult::Ok, 0).unwrap();
        responder.respond(comp).unwrap();
        assert_eq!(requester.responses_len(), 1);
        assert_eq!(responder.completion_free(), 3);
        assert_eq!(responder.receive_free(), 4);
    }
}
