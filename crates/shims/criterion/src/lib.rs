//! Offline stand-in for `criterion`.
//!
//! Implements the surface the workspace's benches use — benchmark groups,
//! throughput annotations, parameterised inputs, `criterion_group!` /
//! `criterion_main!` — over a simple wall-clock harness: a short warm-up,
//! then a fixed measurement window, reporting mean time per iteration and
//! derived throughput. Under `cargo test` the benches therefore double as
//! smoke tests; `cargo bench` prints the measurements.

// nk-lint: allow-file(wall-clock) — this crate IS the bench harness: its
// entire purpose is wall-clock measurement. Nothing here runs on the
// deterministic datapath; simulation time comes from nk-sim's virtual clock.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Top-level benchmark driver, handed to every registered bench function.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
            throughput: None,
        }
    }

    /// Run a single benchmark outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_bench(name, None, f);
        self
    }
}

/// A named set of benchmarks sharing a throughput annotation.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Annotate how much work one iteration performs.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Run a benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_bench(&format!("{}/{}", self.name, id), self.throughput, f);
        self
    }

    /// Run a benchmark parameterised by `input`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_bench(&format!("{}/{}", self.name, id.0), self.throughput, |b| {
            f(b, input)
        });
        self
    }

    /// Finish the group (a no-op in the shim; kept for API parity).
    pub fn finish(self) {}
}

/// Identifier of one parameterised benchmark case.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Identify a case by its parameter alone.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId(parameter.to_string())
    }

    /// Identify a case by a function name plus parameter.
    pub fn new<P: Display>(function: &str, parameter: P) -> Self {
        BenchmarkId(format!("{function}/{parameter}"))
    }
}

/// How much work one iteration of a benchmark performs.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Iterations process this many elements.
    Elements(u64),
    /// Iterations process this many bytes.
    Bytes(u64),
}

/// Timing loop handle passed to benchmark closures.
#[derive(Debug, Default)]
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `f`, first warming up briefly, then measuring for a fixed window.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        const WARMUP: Duration = Duration::from_millis(20);
        const MEASURE: Duration = Duration::from_millis(200);
        let start = Instant::now();
        while start.elapsed() < WARMUP {
            std::hint::black_box(f());
        }
        let start = Instant::now();
        let mut iterations = 0u64;
        while start.elapsed() < MEASURE {
            std::hint::black_box(f());
            iterations += 1;
        }
        self.elapsed = start.elapsed();
        self.iterations = iterations.max(1);
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(label: &str, throughput: Option<Throughput>, mut f: F) {
    let mut bencher = Bencher::default();
    f(&mut bencher);
    let per_iter = bencher.elapsed.as_secs_f64() / bencher.iterations as f64;
    let rate = match throughput {
        Some(Throughput::Elements(n)) => format!(" ({:.3} Melem/s)", n as f64 / per_iter / 1e6),
        Some(Throughput::Bytes(n)) => {
            format!(" ({:.3} GiB/s)", n as f64 / per_iter / (1u64 << 30) as f64)
        }
        None => String::new(),
    };
    println!(
        "bench {label}: {:.1} ns/iter over {} iters{rate}",
        per_iter * 1e9,
        bencher.iterations
    );
}

/// Collect benchmark functions into a runnable group, mirroring criterion.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point running every group, mirroring criterion.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
