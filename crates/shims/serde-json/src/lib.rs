//! Offline stand-in for `serde_json` over the shim `serde::Value` model.
//!
//! Supports the subset the workspace uses: [`to_string`], [`to_string_pretty`]
//! and [`from_str`]. Numbers round-trip exactly (`u64`/`i64` stay integers,
//! floats use Rust's shortest round-trippable formatting); non-finite floats,
//! which JSON cannot express, are written as the strings `"inf"`, `"-inf"`
//! and `"nan"` and parsed back symmetrically.

use serde::{Deserialize, Error, Serialize, Value};

/// Serialize a value to compact JSON.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serialize a value to two-space-indented JSON.
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Deserialize a value from JSON text.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error(format!(
            "trailing characters at offset {}",
            parser.pos
        )));
    }
    T::from_value(&value)
}

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Uint(n) => out.push_str(&n.to_string()),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::Float(f) => write_float(*f, out),
        Value::String(s) => write_string(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline(out, indent, depth + 1);
                write_value(item, out, indent, depth + 1);
            }
            if !items.is_empty() {
                newline(out, indent, depth);
            }
            out.push(']');
        }
        Value::Object(fields) => {
            out.push('{');
            for (i, (key, value)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline(out, indent, depth + 1);
                write_string(key, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(value, out, indent, depth + 1);
            }
            if !fields.is_empty() {
                newline(out, indent, depth);
            }
            out.push('}');
        }
    }
}

fn newline(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', width * depth));
    }
}

fn write_float(f: f64, out: &mut String) {
    if f.is_nan() {
        out.push_str("\"nan\"");
    } else if f.is_infinite() {
        out.push_str(if f > 0.0 { "\"inf\"" } else { "\"-inf\"" });
    } else if f == f.trunc() && f.abs() < 1e15 {
        // Keep serde_json's convention of marking floats with a decimal
        // point so integers and floats stay distinguishable.
        out.push_str(&format!("{f:.1}"));
    } else {
        out.push_str(&f.to_string());
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if b" \t\r\n".contains(b) {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected '{}' at offset {}",
                byte as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, word: &str) -> bool {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(|s| match s.as_str() {
                "inf" => Value::Float(f64::INFINITY),
                "-inf" => Value::Float(f64::NEG_INFINITY),
                "nan" => Value::Float(f64::NAN),
                _ => Value::String(s),
            }),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            _ => Err(Error(format!("unexpected input at offset {}", self.pos))),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error(format!("expected ',' or ']' at offset {}", self.pos))),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => {
                    return Err(Error(format!(
                        "expected ',' or '}}' at offset {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error("invalid utf-8 in string".into()))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error("truncated \\u escape".into()))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error("bad \\u escape".into()))?,
                                16,
                            )
                            .map_err(|_| Error("bad \\u escape".into()))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error("bad \\u escape".into()))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(Error("bad escape".into())),
                    }
                    self.pos += 1;
                }
                _ => return Err(Error("unterminated string".into())),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid number".into()))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error(format!("invalid number {text:?}")))
        } else if let Some(rest) = text.strip_prefix('-') {
            rest.parse::<i64>()
                .map(|n| Value::Int(-n))
                .map_err(|_| Error(format!("invalid number {text:?}")))
        } else {
            text.parse::<u64>()
                .map(Value::Uint)
                .map_err(|_| Error(format!("invalid number {text:?}")))
        }
    }
}
