//! Offline stand-in for `serde_derive`.
//!
//! Hand-rolled (no `syn`/`quote`, the container builds offline) derives of
//! the shim `serde::Serialize` / `serde::Deserialize` traits. The parser
//! covers the shapes this workspace actually derives on — generic-free named
//! structs, tuple structs, and enums with unit / tuple / struct variants —
//! and the generated code keeps serde's external enum tagging. The one field
//! attribute honoured is `#[serde(default)]` on named-struct fields: a
//! missing (or `null`) key deserializes to `Default::default()` instead of
//! erroring, so configs serialized before a field existed keep loading.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Shape {
    NamedStruct {
        name: String,
        /// Field name plus whether it carries `#[serde(default)]`.
        fields: Vec<(String, bool)>,
    },
    TupleStruct {
        name: String,
        arity: usize,
    },
    UnitStruct {
        name: String,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

/// Split a token stream at top-level commas, tracking `<...>` nesting so
/// commas inside generic arguments do not split.
fn split_top_level(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut chunks = Vec::new();
    let mut current = Vec::new();
    let mut angle_depth = 0i32;
    for tt in stream {
        match &tt {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                chunks.push(std::mem::take(&mut current));
                continue;
            }
            _ => {}
        }
        current.push(tt);
    }
    if !current.is_empty() {
        chunks.push(current);
    }
    chunks
}

/// Drop leading attributes (`#[...]`) and visibility (`pub`, `pub(...)`)
/// from a field or variant chunk.
fn strip_attrs_and_vis(chunk: &[TokenTree]) -> &[TokenTree] {
    let mut i = 0;
    while i < chunk.len() {
        match &chunk[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => i += 2,
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = chunk.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => break,
        }
    }
    &chunk[i..]
}

/// Does this field chunk carry a `#[serde(default)]` attribute?
fn has_serde_default(chunk: &[TokenTree]) -> bool {
    let mut i = 0;
    while i + 1 < chunk.len() {
        match (&chunk[i], &chunk[i + 1]) {
            (TokenTree::Punct(p), TokenTree::Group(g))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                if let (Some(TokenTree::Ident(id)), Some(TokenTree::Group(args))) =
                    (inner.first(), inner.get(1))
                {
                    if id.to_string() == "serde"
                        && args.stream().into_iter().any(
                            |tt| matches!(&tt, TokenTree::Ident(a) if a.to_string() == "default"),
                        )
                    {
                        return true;
                    }
                }
                i += 2;
            }
            _ => break,
        }
    }
    false
}

fn named_fields(stream: TokenStream) -> Vec<(String, bool)> {
    split_top_level(stream)
        .iter()
        .filter_map(|chunk| match strip_attrs_and_vis(chunk).first() {
            Some(TokenTree::Ident(id)) => Some((id.to_string(), has_serde_default(chunk))),
            _ => None,
        })
        .collect()
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    split_top_level(stream)
        .iter()
        .filter_map(|chunk| {
            let chunk = strip_attrs_and_vis(chunk);
            let name = match chunk.first() {
                Some(TokenTree::Ident(id)) => id.to_string(),
                _ => return None,
            };
            let kind = match chunk.get(1) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    VariantKind::Tuple(split_top_level(g.stream()).len())
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    // `#[serde(default)]` is only honoured on struct fields;
                    // enum variant fields keep the plain name.
                    VariantKind::Named(
                        named_fields(g.stream())
                            .into_iter()
                            .map(|(f, _)| f)
                            .collect(),
                    )
                }
                _ => VariantKind::Unit,
            };
            Some(Variant { name, kind })
        })
        .collect()
}

fn parse_shape(input: TokenStream) -> Shape {
    let mut iter = input.into_iter().peekable();
    loop {
        match iter.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                iter.next();
                iter.next();
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                iter.next();
                if let Some(TokenTree::Group(g)) = iter.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        iter.next();
                    }
                }
            }
            _ => break,
        }
    }
    let keyword = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde shim derive: expected struct/enum, got {other:?}"),
    };
    let name = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde shim derive: expected type name, got {other:?}"),
    };
    if let Some(TokenTree::Punct(p)) = iter.peek() {
        if p.as_char() == '<' {
            panic!("serde shim derive does not support generic types ({name})");
        }
    }
    match keyword.as_str() {
        "struct" => match iter.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Shape::NamedStruct {
                name,
                fields: named_fields(g.stream()),
            },
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::TupleStruct {
                    name,
                    arity: split_top_level(g.stream()).len(),
                }
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::UnitStruct { name },
            other => panic!("serde shim derive: malformed struct {name}: {other:?}"),
        },
        "enum" => match iter.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Shape::Enum {
                name,
                variants: parse_variants(g.stream()),
            },
            other => panic!("serde shim derive: malformed enum {name}: {other:?}"),
        },
        other => panic!("serde shim derive supports only structs and enums, got {other}"),
    }
}

fn gen_serialize(shape: &Shape) -> String {
    match shape {
        Shape::NamedStruct { name, fields } => {
            let entries: Vec<String> = fields
                .iter()
                .map(|(f, _)| {
                    format!("(String::from(\"{f}\"), ::serde::Serialize::to_value(&self.{f}))")
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Object(vec![{entries}])\n\
                     }}\n\
                 }}",
                entries = entries.join(", ")
            )
        }
        Shape::TupleStruct { name, arity: 1 } => format!(
            "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\n\
                     ::serde::Serialize::to_value(&self.0)\n\
                 }}\n\
             }}"
        ),
        Shape::TupleStruct { name, arity } => {
            let items: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Array(vec![{items}])\n\
                     }}\n\
                 }}",
                items = items.join(", ")
            )
        }
        Shape::UnitStruct { name } => format!(
            "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{ ::serde::Value::Null }}\n\
             }}"
        ),
        Shape::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => format!(
                            "{name}::{vn} => ::serde::Value::String(String::from(\"{vn}\"))"
                        ),
                        VariantKind::Tuple(1) => format!(
                            "{name}::{vn}(f0) => ::serde::Value::Object(vec![(String::from(\"{vn}\"), ::serde::Serialize::to_value(f0))])"
                        ),
                        VariantKind::Tuple(arity) => {
                            let binds: Vec<String> = (0..*arity).map(|i| format!("f{i}")).collect();
                            let items: Vec<String> = (0..*arity)
                                .map(|i| format!("::serde::Serialize::to_value(f{i})"))
                                .collect();
                            format!(
                                "{name}::{vn}({binds}) => ::serde::Value::Object(vec![(String::from(\"{vn}\"), ::serde::Value::Array(vec![{items}]))])",
                                binds = binds.join(", "),
                                items = items.join(", ")
                            )
                        }
                        VariantKind::Named(fields) => {
                            let binds = fields.join(", ");
                            let entries: Vec<String> = fields
                                .iter()
                                .map(|f| format!(
                                    "(String::from(\"{f}\"), ::serde::Serialize::to_value({f}))"
                                ))
                                .collect();
                            format!(
                                "{name}::{vn} {{ {binds} }} => ::serde::Value::Object(vec![(String::from(\"{vn}\"), ::serde::Value::Object(vec![{entries}]))])",
                                entries = entries.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{ {arms} }}\n\
                     }}\n\
                 }}",
                arms = arms.join(", ")
            )
        }
    }
}

fn gen_deserialize(shape: &Shape) -> String {
    let header = |name: &str, body: &str| {
        format!(
            "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                     {body}\n\
                 }}\n\
             }}"
        )
    };
    match shape {
        Shape::NamedStruct { name, fields } => {
            let inits: Vec<String> = fields
                .iter()
                .map(|(f, defaulted)| {
                    if *defaulted {
                        format!(
                            "{f}: match v.get(\"{f}\") {{\n\
                                 ::serde::Value::Null => ::core::default::Default::default(),\n\
                                 present => ::serde::Deserialize::from_value(present)?,\n\
                             }}"
                        )
                    } else {
                        format!("{f}: ::serde::Deserialize::from_value(v.get(\"{f}\"))?")
                    }
                })
                .collect();
            header(
                name,
                &format!(
                    "match v {{\n\
                         ::serde::Value::Object(_) => Ok({name} {{ {inits} }}),\n\
                         _ => Err(::serde::Error::expected(\"object\", \"{name}\")),\n\
                     }}",
                    inits = inits.join(", ")
                ),
            )
        }
        Shape::TupleStruct { name, arity: 1 } => header(
            name,
            &format!("Ok({name}(::serde::Deserialize::from_value(v)?))"),
        ),
        Shape::TupleStruct { name, arity } => {
            let inits: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                .collect();
            header(
                name,
                &format!(
                    "match v {{\n\
                         ::serde::Value::Array(items) if items.len() == {arity} => Ok({name}({inits})),\n\
                         _ => Err(::serde::Error::expected(\"array of {arity}\", \"{name}\")),\n\
                     }}",
                    inits = inits.join(", ")
                ),
            )
        }
        Shape::UnitStruct { name } => header(
            name,
            &format!(
                "match v {{\n\
                     ::serde::Value::Null => Ok({name}),\n\
                     _ => Err(::serde::Error::expected(\"null\", \"{name}\")),\n\
                 }}"
            ),
        ),
        Shape::Enum { name, variants } => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.kind, VariantKind::Unit))
                .map(|v| format!("\"{vn}\" => Ok({name}::{vn})", vn = v.name))
                .collect();
            let data_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => None,
                        VariantKind::Tuple(1) => Some(format!(
                            "\"{vn}\" => Ok({name}::{vn}(::serde::Deserialize::from_value(content)?))"
                        )),
                        VariantKind::Tuple(arity) => {
                            let inits: Vec<String> = (0..*arity)
                                .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                                .collect();
                            Some(format!(
                                "\"{vn}\" => match content {{\n\
                                     ::serde::Value::Array(items) if items.len() == {arity} => Ok({name}::{vn}({inits})),\n\
                                     _ => Err(::serde::Error::expected(\"array of {arity}\", \"{name}::{vn}\")),\n\
                                 }}",
                                inits = inits.join(", ")
                            ))
                        }
                        VariantKind::Named(fields) => {
                            let inits: Vec<String> = fields
                                .iter()
                                .map(|f| format!(
                                    "{f}: ::serde::Deserialize::from_value(content.get(\"{f}\"))?"
                                ))
                                .collect();
                            Some(format!(
                                "\"{vn}\" => Ok({name}::{vn} {{ {inits} }})",
                                inits = inits.join(", ")
                            ))
                        }
                    }
                })
                .collect();
            // Avoid an unused `content` binding when every variant is a
            // unit variant (the Object arm then only inspects the tag).
            let content_pat = if data_arms.is_empty() { "_" } else { "content" };
            header(
                name,
                &format!(
                    "match v {{\n\
                         ::serde::Value::String(s) => match s.as_str() {{\n\
                             {unit_arms}\n\
                             _ => Err(::serde::Error::expected(\"known unit variant\", \"{name}\")),\n\
                         }},\n\
                         ::serde::Value::Object(fields) if fields.len() == 1 => {{\n\
                             let (tag, {content_pat}) = &fields[0];\n\
                             match tag.as_str() {{\n\
                                 {data_arms}\n\
                                 _ => Err(::serde::Error::expected(\"known variant\", \"{name}\")),\n\
                             }}\n\
                         }}\n\
                         _ => Err(::serde::Error::expected(\"string or single-key object\", \"{name}\")),\n\
                     }}",
                    unit_arms = if unit_arms.is_empty() {
                        String::new()
                    } else {
                        format!("{},", unit_arms.join(", "))
                    },
                    data_arms = if data_arms.is_empty() {
                        String::new()
                    } else {
                        format!("{},", data_arms.join(", "))
                    },
                ),
            )
        }
    }
}

/// Derive the shim `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let code = format!(
        "#[automatically_derived]\n{}",
        gen_serialize(&parse_shape(input))
    );
    code.parse()
        .expect("serde shim derive: generated code parses")
}

/// Derive the shim `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let code = format!(
        "#[automatically_derived]\n{}",
        gen_deserialize(&parse_shape(input))
    );
    code.parse()
        .expect("serde shim derive: generated code parses")
}
