//! Offline stand-in for `serde`.
//!
//! This workspace builds without network access, so instead of the real
//! serde it vendors a minimal replacement: a self-describing [`Value`] data
//! model plus [`Serialize`]/[`Deserialize`] traits that convert to and from
//! it. The derive macros re-exported from `serde_derive` cover exactly the
//! shapes this codebase uses (named structs, tuple structs, enums with unit,
//! tuple and struct variants, plus `#[serde(default)]` on struct fields) and
//! keep serde's external enum tagging, so a later switch to the real serde
//! is a manifest-only change.

pub use serde_derive::{Deserialize, Serialize};

use std::fmt;

/// The self-describing value every serializable type converts through.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null`; also what missing object keys deserialize from.
    Null,
    /// A boolean.
    Bool(bool),
    /// A non-negative integer (kept exact; `f64` would lose `u64` range).
    Uint(u64),
    /// A negative integer.
    Int(i64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    String(String),
    /// A sequence.
    Array(Vec<Value>),
    /// A key–value map, in insertion order.
    Object(Vec<(String, Value)>),
}

/// A `Null` to hand out by reference for missing object keys.
pub static NULL: Value = Value::Null;

impl Value {
    /// Look up a key in an [`Value::Object`], yielding `Null` when absent.
    pub fn get(&self, key: &str) -> &Value {
        match self {
            Value::Object(fields) => fields
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v)
                .unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

/// Error produced by deserialization (and by the JSON layer on top).
#[derive(Clone, Debug, PartialEq)]
pub struct Error(pub String);

impl Error {
    /// A "expected X while deserializing Y" error.
    pub fn expected(what: &str, ty: &str) -> Self {
        Error(format!("expected {what} while deserializing {ty}"))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

/// Conversion into the [`Value`] data model.
pub trait Serialize {
    /// Represent `self` as a [`Value`].
    fn to_value(&self) -> Value;
}

/// Conversion out of the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Rebuild `Self` from a [`Value`].
    fn from_value(v: &Value) -> Result<Self, Error>;
}

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Uint(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Uint(n) => {
                        <$t>::try_from(*n).map_err(|_| Error::expected("fitting uint", stringify!($t)))
                    }
                    Value::Int(n) => {
                        <$t>::try_from(*n).map_err(|_| Error::expected("fitting uint", stringify!($t)))
                    }
                    _ => Err(Error::expected("integer", stringify!($t))),
                }
            }
        }
    )*};
}

impl_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = *self as i64;
                if n < 0 {
                    Value::Int(n)
                } else {
                    Value::Uint(n as u64)
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Uint(n) => {
                        <$t>::try_from(*n).map_err(|_| Error::expected("fitting int", stringify!($t)))
                    }
                    Value::Int(n) => {
                        <$t>::try_from(*n).map_err(|_| Error::expected("fitting int", stringify!($t)))
                    }
                    _ => Err(Error::expected("integer", stringify!($t))),
                }
            }
        }
    )*};
}

impl_int!(i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Float(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Float(n) => Ok(*n as $t),
                    Value::Uint(n) => Ok(*n as $t),
                    Value::Int(n) => Ok(*n as $t),
                    _ => Err(Error::expected("number", stringify!($t))),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::expected("bool", "bool")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::String(s) => Ok(s.clone()),
            _ => Err(Error::expected("string", "String")),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(t) => t.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            _ => Err(Error::expected("array", "Vec")),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

macro_rules! impl_tuple {
    ($(($($t:ident : $i:tt),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$i.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Array(items) => {
                        let mut it = items.iter();
                        Ok(($(
                            $t::from_value(it.next().ok_or_else(|| Error::expected("longer array", "tuple"))?)?,
                        )+))
                    }
                    _ => Err(Error::expected("array", "tuple")),
                }
            }
        }
    )*};
}

impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}
