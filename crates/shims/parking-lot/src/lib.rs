//! Offline stand-in for `parking_lot` built on `std::sync`.
//!
//! Only the surface the workspace uses: [`Mutex`] and [`RwLock`] whose lock
//! methods return guards directly (no `Result`), recovering from poisoning
//! the way parking_lot sidesteps it entirely.

/// A mutex whose `lock` never returns a poisoned error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// Guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Wrap a value in a mutex.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking the current thread.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(guard) => Some(guard),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive access).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader–writer lock whose lock methods never return poisoned errors.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// Guard type returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Guard type returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Wrap a value in a reader–writer lock.
    pub fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}
