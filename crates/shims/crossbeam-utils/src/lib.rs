//! Offline stand-in for `crossbeam-utils`: just [`CachePadded`].

use std::ops::{Deref, DerefMut};

/// Pads and aligns a value to 128 bytes so two of them never share a cache
/// line (matching crossbeam's alignment choice on x86_64).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
#[repr(align(128))]
pub struct CachePadded<T> {
    value: T,
}

impl<T> CachePadded<T> {
    /// Pad `value`.
    pub const fn new(value: T) -> Self {
        CachePadded { value }
    }

    /// Unwrap the padded value.
    pub fn into_inner(self) -> T {
        self.value
    }
}

impl<T> Deref for CachePadded<T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> DerefMut for CachePadded<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

impl<T> From<T> for CachePadded<T> {
    fn from(value: T) -> Self {
        CachePadded::new(value)
    }
}
