//! Cluster-scope vocabulary: multi-host configurations, placement policy
//! and the cluster event log.
//!
//! The paper's framing is that NSMs turn the network stack into
//! *infrastructure* — and infrastructure is operated at cluster scale, not
//! per host. A [`ClusterConfig`] describes a set of [`HostConfig`]s joined
//! by an inter-host fabric (each host's virtual switch gets an uplink into a
//! top-of-rack switch), a [`ClusterPolicy`] drives the placement loop that
//! extends the per-host control plane to cluster scope, and every placement
//! decision — cross-host VM migration, drain completion, scale-to-zero of a
//! drained NSM share — is recorded as a [`ClusterEvent`] so a whole cluster
//! run can be replayed and digested deterministically.

use crate::config::HostConfig;
use crate::error::{NkError, NkResult};
use crate::ids::{HostId, NsmId, VmId};
use serde::{Deserialize, Serialize};

/// Placement policy driving the cluster-scope control loop.
///
/// The placer scores each host by the load of its NSMs *plus* the weighted
/// utilisation of its uplink: a host already pushing heavy cross-host
/// traffic is a worse home for more tenants even when its NSM cores have
/// headroom. Migrations fire only when the smoothed score gap between the
/// hottest and coolest host exceeds [`ClusterPolicy::spread`] and the source
/// is above [`ClusterPolicy::hot_watermark`] — the same hysteresis shape as
/// the per-host rebalancer, because it *is* the per-host rebalancer run over
/// hosts instead of NSMs.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ClusterPolicy {
    /// Length of one placement epoch in virtual nanoseconds.
    pub epoch_ns: u64,
    /// Rolling-window length (in epochs) for host-load smoothing.
    pub window: usize,
    /// A migration source must exceed this smoothed score.
    pub hot_watermark: f64,
    /// Minimum smoothed score gap between the most and least loaded host
    /// before a VM migrates.
    pub spread: f64,
    /// Budget of cross-host migrations per placement epoch.
    pub max_migrations_per_epoch: usize,
    /// Minimum epochs between two migrations of the same VM.
    pub cooldown_epochs: u64,
    /// Minimum epochs before a VM may migrate *back* along the reverse of a
    /// pair it just travelled (host A → B blocks B → A for this long). This
    /// is the cluster-scope hysteresis of the ROADMAP's placement-stability
    /// item: load follows a migrated tenant, so without a per-(VM,
    /// host-pair) cooldown the placer evacuates a hot host and then
    /// ping-pongs the tenant straight back. `0` disables the guard.
    pub pair_cooldown_epochs: u64,
    /// Weight of uplink (cross-host traffic) utilisation in the host score.
    pub cross_traffic_weight: f64,
    /// Clock rate of the accounting pools the host scores derive from.
    /// `None` uses the testbed clock; tests use small clocks so modest
    /// workloads exercise the thresholds.
    pub pool_clock_hz: Option<u64>,
}

impl Default for ClusterPolicy {
    fn default() -> Self {
        ClusterPolicy {
            epoch_ns: 1_000_000, // 1 ms
            window: 4,
            hot_watermark: 0.60,
            spread: 0.40,
            max_migrations_per_epoch: 1,
            cooldown_epochs: 4,
            pair_cooldown_epochs: 8,
            cross_traffic_weight: 0.50,
            pool_clock_hz: None,
        }
    }
}

impl ClusterPolicy {
    /// The default policy.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the placement epoch length (builder style).
    pub fn with_epoch_ns(mut self, epoch_ns: u64) -> Self {
        self.epoch_ns = epoch_ns;
        self
    }

    /// Set the smoothing window in epochs (builder style).
    pub fn with_window(mut self, window: usize) -> Self {
        self.window = window;
        self
    }

    /// Set the hot watermark and spread trigger (builder style).
    pub fn with_thresholds(mut self, hot_watermark: f64, spread: f64) -> Self {
        self.hot_watermark = hot_watermark;
        self.spread = spread;
        self
    }

    /// Set the per-epoch migration budget (builder style).
    pub fn with_migration_budget(mut self, max_migrations_per_epoch: usize) -> Self {
        self.max_migrations_per_epoch = max_migrations_per_epoch;
        self
    }

    /// Set the per-VM migration cooldown in epochs (builder style).
    pub fn with_cooldown(mut self, epochs: u64) -> Self {
        self.cooldown_epochs = epochs;
        self
    }

    /// Set the per-(VM, host-pair) reverse-migration cooldown in epochs
    /// (builder style). `0` disables it.
    pub fn with_pair_cooldown(mut self, epochs: u64) -> Self {
        self.pair_cooldown_epochs = epochs;
        self
    }

    /// Set the cross-host traffic weight in the host score (builder style).
    pub fn with_cross_traffic_weight(mut self, weight: f64) -> Self {
        self.cross_traffic_weight = weight;
        self
    }

    /// Set the accounting-pool clock rate (builder style).
    pub fn with_pool_clock_hz(mut self, hz: u64) -> Self {
        self.pool_clock_hz = Some(hz);
        self
    }

    /// Validate internal consistency.
    pub fn validate(&self) -> NkResult<()> {
        if self.epoch_ns == 0 || self.window == 0 {
            return Err(NkError::BadConfig);
        }
        if !(0.0..=1.0).contains(&self.hot_watermark) || self.hot_watermark == 0.0 {
            return Err(NkError::BadConfig);
        }
        if !(0.0..=1.0).contains(&self.spread) {
            return Err(NkError::BadConfig);
        }
        if !(0.0..=1.0).contains(&self.cross_traffic_weight) {
            return Err(NkError::BadConfig);
        }
        if self.pool_clock_hz == Some(0) {
            return Err(NkError::BadConfig);
        }
        Ok(())
    }
}

/// Flight-recorder shape: how much history the always-on observability
/// layer retains. All buffers are fixed-capacity rings, so an enabled
/// recorder bounds its memory regardless of run length.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ObsConfig {
    /// Capture anything at all. `false` turns every hook into a no-op (the
    /// overhead-comparison baseline of the `obs01` experiment).
    pub enabled: bool,
    /// Event-ring capacity: the newest `event_capacity` cluster / control /
    /// plan / fault events are retained.
    pub event_capacity: usize,
    /// How many sealed latency epochs the recorder keeps.
    pub latency_epochs: usize,
    /// Virtual-time length of one recorder latency epoch. Independent of
    /// the placement epoch so latency aggregation works without a policy.
    pub epoch_ns: u64,
    /// Top-K capacity of the hot-flow table.
    pub flow_k: usize,
}

impl Default for ObsConfig {
    fn default() -> Self {
        ObsConfig {
            enabled: true,
            event_capacity: 4096,
            latency_epochs: 64,
            epoch_ns: 1_000_000,
            flow_k: 16,
        }
    }
}

impl ObsConfig {
    /// The default always-on shape.
    pub fn new() -> Self {
        Self::default()
    }

    /// A disabled recorder: every capture hook becomes a no-op.
    pub fn disabled() -> Self {
        ObsConfig {
            enabled: false,
            ..Self::default()
        }
    }

    /// Set the event-ring capacity (builder style).
    pub fn with_event_capacity(mut self, capacity: usize) -> Self {
        self.event_capacity = capacity;
        self
    }

    /// Set the retained latency-epoch count (builder style).
    pub fn with_latency_epochs(mut self, epochs: usize) -> Self {
        self.latency_epochs = epochs;
        self
    }

    /// Set the recorder latency-epoch length (builder style).
    pub fn with_epoch_ns(mut self, ns: u64) -> Self {
        self.epoch_ns = ns;
        self
    }

    /// Set the hot-flow table capacity (builder style).
    pub fn with_flow_k(mut self, k: usize) -> Self {
        self.flow_k = k;
        self
    }

    /// Validate internal consistency. An enabled recorder with any
    /// zero-capacity ring is a configuration error: a capacity-0 ring would
    /// silently record nothing while claiming to be on.
    pub fn validate(&self) -> NkResult<()> {
        if !self.enabled {
            return Ok(());
        }
        if self.event_capacity == 0
            || self.latency_epochs == 0
            || self.epoch_ns == 0
            || self.flow_k == 0
        {
            return Err(NkError::BadConfig);
        }
        Ok(())
    }
}

/// Full description of one NetKernel cluster: hosts behind a top-of-rack
/// switch, the uplink characteristics, and an optional placement policy.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ClusterConfig {
    /// The hosts, each carrying its own [`HostConfig::host_id`].
    pub hosts: Vec<HostConfig>,
    /// Rate of each host's uplink into the top-of-rack switch, in Gbps.
    pub uplink_rate_gbps: f64,
    /// One-way latency of each uplink, in microseconds.
    pub uplink_latency_us: u64,
    /// Upper bound on interleaved poll rounds per cluster step (the
    /// cluster-level analogue of [`HostConfig::max_poll_rounds`]).
    pub max_rounds: usize,
    /// Worker threads the cluster datapath is sharded over (hosts are the
    /// unit of parallelism; rounds are separated by barriers, so results
    /// are byte-identical for any value). `1` — the default — is the serial
    /// reference path.
    pub threads: usize,
    /// Shard *below* the host boundary: every NSM share group of every host
    /// becomes its own parallel unit (with the host's vNIC switch, ledger
    /// and resident engine polled serially at the round barrier), so a
    /// single many-share host can saturate the worker threads. Results stay
    /// byte-identical to host-granularity sharding and to the serial path
    /// for any thread count. Defaults to `false` (hosts are the unit).
    #[serde(default)]
    pub shard_within_hosts: bool,
    /// Cluster placement policy. `None` leaves placement static (hosts may
    /// still run their own per-host control planes).
    pub policy: Option<ClusterPolicy>,
    /// Flight-recorder shape. On by default; see [`ObsConfig`].
    pub obs: ObsConfig,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            hosts: Vec::new(),
            uplink_rate_gbps: crate::constants::LINE_RATE_GBPS,
            uplink_latency_us: 0,
            max_rounds: crate::constants::DEFAULT_POLL_ROUNDS,
            threads: 1,
            shard_within_hosts: false,
            policy: None,
            obs: ObsConfig::default(),
        }
    }
}

impl ClusterConfig {
    /// An empty cluster with ideal full-rate uplinks.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a host; its [`HostConfig::host_id`] is its cluster identity
    /// (builder style).
    pub fn with_host(mut self, host: HostConfig) -> Self {
        self.hosts.push(host);
        self
    }

    /// Set the uplink rate in Gbps (builder style).
    pub fn with_uplink_rate_gbps(mut self, gbps: f64) -> Self {
        self.uplink_rate_gbps = gbps;
        self
    }

    /// Set the uplink one-way latency (builder style).
    pub fn with_uplink_latency_us(mut self, us: u64) -> Self {
        self.uplink_latency_us = us;
        self
    }

    /// Bound the interleaved poll rounds per cluster step (builder style).
    pub fn with_max_rounds(mut self, rounds: usize) -> Self {
        self.max_rounds = rounds;
        self
    }

    /// Shard the datapath over `threads` worker threads (builder style).
    /// Determinism is preserved for any value; `1` runs the serial
    /// reference path.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Shard the datapath below the host boundary: NSM share groups become
    /// the parallel units instead of whole hosts (builder style).
    /// Determinism is preserved either way; see
    /// [`ClusterConfig::shard_within_hosts`].
    pub fn with_shard_within_hosts(mut self, on: bool) -> Self {
        self.shard_within_hosts = on;
        self
    }

    /// Enable the cluster placement loop with `policy` (builder style).
    pub fn with_policy(mut self, policy: ClusterPolicy) -> Self {
        self.policy = Some(policy);
        self
    }

    /// Set the flight-recorder shape (builder style). The recorder is on
    /// by default; pass [`ObsConfig::disabled`] to turn every capture hook
    /// into a no-op.
    pub fn with_obs(mut self, obs: ObsConfig) -> Self {
        self.obs = obs;
        self
    }

    /// Look up a host's configuration.
    pub fn host(&self, id: HostId) -> Option<&HostConfig> {
        self.hosts.iter().find(|h| h.host_id == id)
    }

    /// The host a VM is initially provisioned on.
    pub fn home_of(&self, vm: VmId) -> Option<HostId> {
        self.hosts
            .iter()
            .find(|h| h.vm(vm).is_some())
            .map(|h| h.host_id)
    }

    /// Validate internal consistency: at least one host, unique host ids,
    /// cluster-wide unique VM ids (a migrating VM keeps its identity), every
    /// host valid on its own, sane uplink parameters.
    pub fn validate(&self) -> NkResult<()> {
        if self.hosts.is_empty() {
            return Err(NkError::BadConfig);
        }
        let mut host_ids = std::collections::HashSet::new();
        let mut vm_ids = std::collections::HashSet::new();
        for host in &self.hosts {
            if !host_ids.insert(host.host_id) {
                return Err(NkError::BadConfig);
            }
            host.validate()?;
            for vm in &host.vms {
                if !vm_ids.insert(vm.id) {
                    return Err(NkError::BadConfig);
                }
            }
        }
        if self.uplink_rate_gbps <= 0.0 || self.max_rounds == 0 || self.threads == 0 {
            return Err(NkError::BadConfig);
        }
        if let Some(policy) = &self.policy {
            policy.validate()?;
        }
        self.obs.validate()?;
        Ok(())
    }
}

/// One decision taken (or milestone reached) by the cluster control loop.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum ClusterAction {
    /// Live-migrate a VM to another host: its state is exported and
    /// re-imported, new connections land on `to_nsm` on the destination
    /// host, and the source enters connection draining.
    MigrateVm {
        /// The VM being migrated.
        vm: VmId,
        /// The host it is leaving.
        from: HostId,
        /// The host that takes over its new connections.
        to: HostId,
        /// The destination host's NSM serving the VM after the move.
        to_nsm: NsmId,
    },
    /// A migrated VM's pinned-connection count on the source host reached
    /// zero: its source-side share is retired.
    DrainComplete {
        /// The drained VM.
        vm: VmId,
        /// The host it fully left.
        host: HostId,
        /// The NSM that was serving its pinned connections.
        nsm: NsmId,
    },
    /// A fully drained NSM (no mapped VMs, no pinned connections) had its
    /// core share scaled to zero.
    ScaleToZero {
        /// The host owning the NSM.
        host: HostId,
        /// The NSM whose share retired.
        nsm: NsmId,
    },
    /// Warm-migrate a VM to another host: after a freeze window quiesced
    /// the in-flight frames, the live state of every pinned connection was
    /// exported from the source and the fabric rerouted the connections'
    /// addresses towards the destination. Pinned connections *move* instead
    /// of draining, so the source share empties immediately.
    WarmMigrateVm {
        /// The VM being migrated.
        vm: VmId,
        /// The host it is leaving.
        from: HostId,
        /// The host taking over all of its connections, old and new.
        to: HostId,
        /// The destination host's NSM serving the VM after the move.
        to_nsm: NsmId,
        /// Pinned connections transplanted with the VM.
        connections: u32,
    },
    /// The warm handover completed: every transplanted connection is
    /// installed and serving on the destination host. Emitted in the same
    /// control epoch as the matching [`ClusterAction::WarmMigrateVm`] — a
    /// warm migration has no drain wait.
    WarmHandoverComplete {
        /// The migrated VM.
        vm: VmId,
        /// Its new home.
        to: HostId,
        /// Connections serving there.
        connections: u32,
    },
    /// A planned evacuation committed: every VM homed on the host moved off
    /// it (warm where the source share was exclusive, drained otherwise).
    /// The per-step record lives in the plan event log; this is the
    /// cluster-visible milestone.
    HostEvacuated {
        /// The cleared host.
        host: HostId,
        /// VMs moved off it.
        vms: u32,
        /// How many travelled warm (connections transplanted).
        warm: u32,
        /// How many travelled drained.
        drained: u32,
    },
    /// A host died (fault injection or operator action): its instance, its
    /// ToR trunk and every VM home pointing at it are gone. Connections it
    /// served are lost; in-flight evacuations involving it roll back.
    HostKilled {
        /// The host that died.
        host: HostId,
    },
}

/// A [`ClusterAction`] stamped with when it was taken.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ClusterEvent {
    /// Virtual time at which the action applied.
    pub at_ns: u64,
    /// Placement epoch (0-based) the action belongs to.
    pub epoch: u64,
    /// The action.
    pub action: ClusterAction,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{NsmConfig, VmConfig, VmToNsmPolicy};

    fn host(id: u8, vm: u8) -> HostConfig {
        HostConfig::new()
            .with_host_id(HostId(id))
            .with_vm(VmConfig::new(VmId(vm)))
            .with_nsm(NsmConfig::kernel(NsmId(1)))
            .with_mapping(VmToNsmPolicy::All(NsmId(1)))
    }

    #[test]
    fn default_policy_is_valid() {
        assert!(ClusterPolicy::default().validate().is_ok());
    }

    #[test]
    fn policy_builders_compose_and_validate() {
        let p = ClusterPolicy::new()
            .with_epoch_ns(500_000)
            .with_window(2)
            .with_thresholds(0.5, 0.3)
            .with_migration_budget(2)
            .with_cooldown(1)
            .with_pair_cooldown(6)
            .with_cross_traffic_weight(0.25)
            .with_pool_clock_hz(1_000_000);
        assert!(p.validate().is_ok());
        assert_eq!(p.max_migrations_per_epoch, 2);
        assert_eq!(p.pair_cooldown_epochs, 6);
    }

    #[test]
    fn invalid_policies_are_rejected() {
        assert!(ClusterPolicy::new().with_epoch_ns(0).validate().is_err());
        assert!(ClusterPolicy::new().with_window(0).validate().is_err());
        assert!(ClusterPolicy::new()
            .with_thresholds(0.0, 0.3)
            .validate()
            .is_err());
        assert!(ClusterPolicy::new()
            .with_thresholds(1.5, 0.3)
            .validate()
            .is_err());
        assert!(ClusterPolicy::new()
            .with_thresholds(0.6, 1.5)
            .validate()
            .is_err());
        assert!(ClusterPolicy::new()
            .with_cross_traffic_weight(2.0)
            .validate()
            .is_err());
        assert!(ClusterPolicy::new()
            .with_pool_clock_hz(0)
            .validate()
            .is_err());
    }

    #[test]
    fn cluster_config_validates_and_resolves_homes() {
        let cfg = ClusterConfig::new()
            .with_host(host(1, 1))
            .with_host(host(2, 2));
        assert!(cfg.validate().is_ok());
        assert_eq!(cfg.home_of(VmId(2)), Some(HostId(2)));
        assert_eq!(cfg.home_of(VmId(9)), None);
        assert!(cfg.host(HostId(1)).is_some());
        assert!(cfg.host(HostId(9)).is_none());
    }

    #[test]
    fn duplicate_hosts_or_vms_are_rejected() {
        let empty = ClusterConfig::new();
        assert_eq!(empty.validate(), Err(NkError::BadConfig));

        let dup_host = ClusterConfig::new()
            .with_host(host(1, 1))
            .with_host(host(1, 2));
        assert_eq!(dup_host.validate(), Err(NkError::BadConfig));

        // VM ids are cluster-wide identities: two hosts may not both own
        // vm1, otherwise a migration could collide with a resident.
        let dup_vm = ClusterConfig::new()
            .with_host(host(1, 1))
            .with_host(host(2, 1));
        assert_eq!(dup_vm.validate(), Err(NkError::BadConfig));

        let dead_uplink = ClusterConfig::new()
            .with_host(host(1, 1))
            .with_uplink_rate_gbps(0.0);
        assert_eq!(dead_uplink.validate(), Err(NkError::BadConfig));

        let no_rounds = ClusterConfig::new()
            .with_host(host(1, 1))
            .with_max_rounds(0);
        assert_eq!(no_rounds.validate(), Err(NkError::BadConfig));

        let no_threads = ClusterConfig::new().with_host(host(1, 1)).with_threads(0);
        assert_eq!(no_threads.validate(), Err(NkError::BadConfig));
    }

    #[test]
    fn events_serialize_to_json() {
        for action in [
            ClusterAction::MigrateVm {
                vm: VmId(1),
                from: HostId(1),
                to: HostId(2),
                to_nsm: NsmId(1),
            },
            ClusterAction::DrainComplete {
                vm: VmId(1),
                host: HostId(1),
                nsm: NsmId(1),
            },
            ClusterAction::ScaleToZero {
                host: HostId(1),
                nsm: NsmId(1),
            },
            ClusterAction::WarmMigrateVm {
                vm: VmId(1),
                from: HostId(1),
                to: HostId(2),
                to_nsm: NsmId(1),
                connections: 3,
            },
            ClusterAction::WarmHandoverComplete {
                vm: VmId(1),
                to: HostId(2),
                connections: 3,
            },
            ClusterAction::HostEvacuated {
                host: HostId(1),
                vms: 3,
                warm: 2,
                drained: 1,
            },
            ClusterAction::HostKilled { host: HostId(3) },
        ] {
            let ev = ClusterEvent {
                at_ns: 42,
                epoch: 7,
                action,
            };
            let json = serde_json::to_string(&ev).unwrap();
            let back: ClusterEvent = serde_json::from_str(&json).unwrap();
            assert_eq!(back, ev);
        }
    }

    #[test]
    fn cluster_config_round_trips_through_json() {
        let cfg = ClusterConfig::new()
            .with_host(host(1, 1))
            .with_uplink_rate_gbps(40.0)
            .with_uplink_latency_us(5)
            .with_threads(4)
            .with_shard_within_hosts(true)
            .with_policy(ClusterPolicy::new().with_pool_clock_hz(1_000_000))
            .with_obs(ObsConfig::new().with_event_capacity(128).with_flow_k(8));
        assert!(cfg.validate().is_ok());
        let json = serde_json::to_string(&cfg).unwrap();
        let back: ClusterConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back, cfg);

        // Configs serialized before the knob existed still deserialize (the
        // field defaults off).
        let legacy = json.replace("\"shard_within_hosts\":true,", "");
        let back: ClusterConfig = serde_json::from_str(&legacy).unwrap();
        assert!(!back.shard_within_hosts);
    }

    /// An enabled recorder with any zero-capacity ring is rejected at
    /// cluster-config validation; a disabled one passes regardless.
    #[test]
    fn zero_capacity_recorder_is_rejected() {
        let base = ClusterConfig::new().with_host(host(1, 1));
        assert!(base.clone().validate().is_ok());
        for bad in [
            ObsConfig::new().with_event_capacity(0),
            ObsConfig::new().with_latency_epochs(0),
            ObsConfig::new().with_epoch_ns(0),
            ObsConfig::new().with_flow_k(0),
        ] {
            assert_eq!(
                base.clone().with_obs(bad).validate(),
                Err(NkError::BadConfig),
                "{bad:?}"
            );
            let mut off = bad;
            off.enabled = false;
            assert!(base.clone().with_obs(off).validate().is_ok());
        }
    }
}
