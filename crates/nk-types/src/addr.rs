//! Simplified socket addresses.
//!
//! The reproduction models an IPv4-like address space: a 32-bit host address
//! plus a 16-bit port. Addresses are packed into a single `u64` when carried
//! inside the `op_data` field of an NQE (e.g. for `bind()` and `connect()`),
//! mirroring how the paper stuffs the peer address into the 8-byte `op_data`
//! field (Figure 3).

use crate::ids::{HostId, NsmId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Mask isolating the per-host block of the cluster address scheme: every
/// host owns the `10.<host>.0.0/16` block, so the top-of-rack switch routes
/// inter-host frames by this prefix alone.
pub const HOST_PREFIX_MASK: u32 = 0xFFFF_0000;

/// Base of the cluster address space (`10.0.0.0`).
pub const CLUSTER_IP_BASE: u32 = 0x0A00_0000;

/// The `10.<host>.0.0/16` prefix owned by one host.
pub fn host_prefix(host: HostId) -> u32 {
    CLUSTER_IP_BASE | (u32::from(host.raw()) << 16)
}

/// The host owning an address under the cluster scheme, if it is in the
/// cluster address space at all.
pub fn host_of_addr(addr: u32) -> Option<HostId> {
    if addr & 0xFF00_0000 == CLUSTER_IP_BASE {
        Some(HostId(((addr >> 16) & 0xFF) as u8))
    } else {
        None
    }
}

/// Address of an NSM's vNIC on a given host (`10.<host>.0.<nsm>`).
///
/// Host 0 keeps the single-host scheme (`10.0.0.<nsm>`) unchanged, so every
/// pre-cluster configuration resolves to the same addresses it always did.
pub fn nsm_ip_on(host: HostId, nsm: NsmId) -> u32 {
    host_prefix(host) | u32::from(nsm.raw())
}

/// An IPv4-style socket address (host, port).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct SockAddr {
    /// Host address, conventionally written `a.b.c.d`.
    pub ip: u32,
    /// Transport port.
    pub port: u16,
}

impl SockAddr {
    /// The wildcard address `0.0.0.0:0`.
    pub const ANY: SockAddr = SockAddr { ip: 0, port: 0 };

    /// Construct an address from a host and a port.
    pub fn new(ip: u32, port: u16) -> Self {
        SockAddr { ip, port }
    }

    /// Construct an address from dotted-quad components.
    pub fn v4(a: u8, b: u8, c: u8, d: u8, port: u16) -> Self {
        SockAddr {
            ip: u32::from_be_bytes([a, b, c, d]),
            port,
        }
    }

    /// Pack into a `u64` for transport inside an NQE `op_data` field.
    pub fn pack(self) -> u64 {
        (u64::from(self.ip) << 16) | u64::from(self.port)
    }

    /// Unpack from a `u64` produced by [`SockAddr::pack`].
    pub fn unpack(v: u64) -> Self {
        SockAddr {
            ip: (v >> 16) as u32,
            port: (v & 0xFFFF) as u16,
        }
    }

    /// True when the host part is the wildcard address.
    pub fn is_any_ip(self) -> bool {
        self.ip == 0
    }
}

impl fmt::Debug for SockAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let b = self.ip.to_be_bytes();
        write!(f, "{}.{}.{}.{}:{}", b[0], b[1], b[2], b[3], self.port)
    }
}

impl fmt::Display for SockAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_unpack_roundtrip() {
        let a = SockAddr::v4(10, 0, 1, 7, 8080);
        assert_eq!(SockAddr::unpack(a.pack()), a);
        let b = SockAddr::new(u32::MAX, u16::MAX);
        assert_eq!(SockAddr::unpack(b.pack()), b);
        assert_eq!(SockAddr::unpack(SockAddr::ANY.pack()), SockAddr::ANY);
    }

    #[test]
    fn display_is_dotted_quad() {
        assert_eq!(
            SockAddr::v4(192, 168, 1, 2, 80).to_string(),
            "192.168.1.2:80"
        );
    }

    #[test]
    fn host_addressing_scheme() {
        use crate::ids::{HostId, NsmId};
        assert_eq!(host_prefix(HostId(0)), 0x0A00_0000);
        assert_eq!(host_prefix(HostId(2)), 0x0A02_0000);
        // Host 0 keeps the legacy single-host NSM addresses.
        assert_eq!(nsm_ip_on(HostId(0), NsmId(1)), 0x0A00_0001);
        assert_eq!(nsm_ip_on(HostId(3), NsmId(7)), 0x0A03_0007);
        assert_eq!(
            nsm_ip_on(HostId(3), NsmId(7)) & HOST_PREFIX_MASK,
            host_prefix(HostId(3))
        );
        assert_eq!(host_of_addr(0x0A02_0001), Some(HostId(2)));
        assert_eq!(host_of_addr(0x0A00_0500), Some(HostId(0)));
        assert_eq!(host_of_addr(0xC0A8_0001), None);
    }

    #[test]
    fn wildcard_detection() {
        assert!(SockAddr::ANY.is_any_ip());
        assert!(SockAddr::new(0, 80).is_any_ip());
        assert!(!SockAddr::v4(1, 2, 3, 4, 80).is_any_ip());
    }
}
