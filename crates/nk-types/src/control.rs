//! Operator control-plane vocabulary: policies and decision events.
//!
//! The paper's central claim is that making the network stack part of the
//! infrastructure lets the *operator* manage it: observe load, elastically
//! add or remove NSM cores ("cores can be readily added to or removed from a
//! NSM", §3), and move tenants between stack instances without guest
//! cooperation. A [`ControlPolicy`] is the serializable knob set the
//! operator hands the control plane; every decision the control plane takes
//! is emitted as a [`ControlEvent`] so tests, logs and dashboards can replay
//! exactly what happened and why.

use crate::error::{NkError, NkResult};
use crate::ids::{NsmId, VmId};
use serde::{Deserialize, Serialize};

/// A component the control plane can resize.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug, Serialize, Deserialize)]
pub enum ControlTarget {
    /// The CoreEngine NQE switch.
    Engine,
    /// One Network Stack Module.
    Nsm(NsmId),
}

/// One decision taken by the control plane.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum ControlAction {
    /// Grow a component's core allocation because smoothed utilisation
    /// crossed the high watermark.
    ScaleUp {
        /// The component being resized.
        target: ControlTarget,
        /// Cores before the decision.
        from_cores: usize,
        /// Cores after the decision.
        to_cores: usize,
        /// The smoothed utilisation that triggered the decision.
        utilisation: f64,
    },
    /// Shrink a component's core allocation because smoothed utilisation
    /// stayed below the low watermark past the cooldown.
    ScaleDown {
        /// The component being resized.
        target: ControlTarget,
        /// Cores before the decision.
        from_cores: usize,
        /// Cores after the decision.
        to_cores: usize,
        /// The smoothed utilisation that triggered the decision.
        utilisation: f64,
    },
    /// Live-migrate a VM off an overloaded NSM onto a less loaded one
    /// (reuses the fault-injection migration path: new connections move,
    /// established ones stay pinned).
    Rebalance {
        /// The VM being migrated.
        vm: VmId,
        /// The NSM it is moving off.
        from: NsmId,
        /// The NSM that takes over its new connections.
        to: NsmId,
    },
}

/// A [`ControlAction`] stamped with when it was taken.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ControlEvent {
    /// Virtual time at which the decision applied.
    pub at_ns: u64,
    /// Control epoch (0-based) the decision was taken in.
    pub epoch: u64,
    /// The decision.
    pub action: ControlAction,
}

/// Operator policy driving the autoscaler and the rebalancer.
///
/// All thresholds act on *smoothed* utilisation (a rolling mean over
/// [`ControlPolicy::window`] epochs), and scaling actions per target are
/// spaced at least [`ControlPolicy::cooldown_epochs`] apart — together these
/// give the loop hysteresis so bursty load does not thrash the allocation.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ControlPolicy {
    /// Length of one control epoch in virtual nanoseconds; the load monitor
    /// samples and the policy runs once per epoch.
    pub epoch_ns: u64,
    /// Rolling-window length (in epochs) for load smoothing.
    pub window: usize,
    /// Scale a component up when its smoothed utilisation exceeds this.
    pub high_watermark: f64,
    /// Scale a component down when its smoothed utilisation falls below
    /// this.
    pub low_watermark: f64,
    /// Cores added or removed per scaling decision.
    pub scale_step: usize,
    /// Floor on any component's core allocation.
    pub min_cores: usize,
    /// Ceiling on any component's core allocation.
    pub max_cores: usize,
    /// Minimum epochs between two scaling decisions for the same target.
    pub cooldown_epochs: u64,
    /// Minimum utilisation gap between the most and least loaded NSM before
    /// the rebalancer migrates a VM.
    pub rebalance_skew: f64,
    /// Budget of VM migrations the rebalancer may issue per epoch.
    pub max_migrations_per_epoch: usize,
    /// VM pairs that must never share an NSM (the rebalancer will not create
    /// such a placement; initial placement is the operator's business).
    pub anti_affinity: Vec<(VmId, VmId)>,
    /// Clock rate (cycles per second per core) of the accounting pool the
    /// utilisation signals are computed against. `None` uses the testbed
    /// clock; tests and examples use small clocks so modest workloads
    /// exercise the watermarks.
    pub pool_clock_hz: Option<u64>,
}

impl Default for ControlPolicy {
    fn default() -> Self {
        ControlPolicy {
            epoch_ns: 1_000_000, // 1 ms
            window: 4,
            high_watermark: 0.75,
            low_watermark: 0.20,
            scale_step: 1,
            min_cores: 1,
            max_cores: 8,
            cooldown_epochs: 4,
            rebalance_skew: 0.50,
            max_migrations_per_epoch: 1,
            anti_affinity: Vec::new(),
            pool_clock_hz: None,
        }
    }
}

impl ControlPolicy {
    /// The default policy.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the epoch length (builder style).
    pub fn with_epoch_ns(mut self, epoch_ns: u64) -> Self {
        self.epoch_ns = epoch_ns;
        self
    }

    /// Set the smoothing window in epochs (builder style).
    pub fn with_window(mut self, window: usize) -> Self {
        self.window = window;
        self
    }

    /// Set the scale-up / scale-down watermarks (builder style).
    pub fn with_watermarks(mut self, low: f64, high: f64) -> Self {
        self.low_watermark = low;
        self.high_watermark = high;
        self
    }

    /// Bound the per-component core allocation (builder style).
    pub fn with_core_bounds(mut self, min: usize, max: usize) -> Self {
        self.min_cores = min;
        self.max_cores = max;
        self
    }

    /// Set the scaling cooldown in epochs (builder style).
    pub fn with_cooldown(mut self, epochs: u64) -> Self {
        self.cooldown_epochs = epochs;
        self
    }

    /// Set the rebalancer's skew trigger and per-epoch budget (builder
    /// style).
    pub fn with_rebalance(mut self, skew: f64, max_migrations_per_epoch: usize) -> Self {
        self.rebalance_skew = skew;
        self.max_migrations_per_epoch = max_migrations_per_epoch;
        self
    }

    /// Forbid two VMs from sharing an NSM (builder style).
    pub fn with_anti_affinity(mut self, a: VmId, b: VmId) -> Self {
        self.anti_affinity.push((a, b));
        self
    }

    /// Set the accounting-pool clock rate (builder style).
    pub fn with_pool_clock_hz(mut self, hz: u64) -> Self {
        self.pool_clock_hz = Some(hz);
        self
    }

    /// True when `a` and `b` may not share an NSM.
    pub fn conflicts(&self, a: VmId, b: VmId) -> bool {
        self.anti_affinity
            .iter()
            .any(|&(x, y)| (x == a && y == b) || (x == b && y == a))
    }

    /// Validate internal consistency.
    pub fn validate(&self) -> NkResult<()> {
        if self.epoch_ns == 0 || self.window == 0 || self.scale_step == 0 {
            return Err(NkError::BadConfig);
        }
        if self.min_cores == 0 || self.min_cores > self.max_cores {
            return Err(NkError::BadConfig);
        }
        if !(0.0..=1.0).contains(&self.low_watermark)
            || !(0.0..=1.0).contains(&self.high_watermark)
            || self.low_watermark >= self.high_watermark
        {
            return Err(NkError::BadConfig);
        }
        if !(0.0..=1.0).contains(&self.rebalance_skew) {
            return Err(NkError::BadConfig);
        }
        if self.pool_clock_hz == Some(0) {
            return Err(NkError::BadConfig);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_policy_is_valid() {
        assert!(ControlPolicy::default().validate().is_ok());
    }

    #[test]
    fn builders_compose_and_validate() {
        let p = ControlPolicy::new()
            .with_epoch_ns(500_000)
            .with_window(2)
            .with_watermarks(0.1, 0.6)
            .with_core_bounds(1, 4)
            .with_cooldown(2)
            .with_rebalance(0.3, 2)
            .with_anti_affinity(VmId(1), VmId(2))
            .with_pool_clock_hz(1_000_000);
        assert!(p.validate().is_ok());
        assert!(p.conflicts(VmId(1), VmId(2)));
        assert!(p.conflicts(VmId(2), VmId(1)), "anti-affinity is symmetric");
        assert!(!p.conflicts(VmId(1), VmId(3)));
    }

    #[test]
    fn invalid_policies_are_rejected() {
        assert!(ControlPolicy::new().with_epoch_ns(0).validate().is_err());
        assert!(ControlPolicy::new().with_window(0).validate().is_err());
        assert!(ControlPolicy::new()
            .with_watermarks(0.8, 0.2)
            .validate()
            .is_err());
        assert!(ControlPolicy::new()
            .with_watermarks(0.2, 1.5)
            .validate()
            .is_err());
        assert!(ControlPolicy::new()
            .with_core_bounds(0, 4)
            .validate()
            .is_err());
        assert!(ControlPolicy::new()
            .with_core_bounds(5, 4)
            .validate()
            .is_err());
        assert!(ControlPolicy::new()
            .with_pool_clock_hz(0)
            .validate()
            .is_err());
        let mut p = ControlPolicy::new();
        p.rebalance_skew = 2.0;
        assert!(p.validate().is_err());
        p = ControlPolicy::new();
        p.scale_step = 0;
        assert!(p.validate().is_err());
    }

    #[test]
    fn events_serialize_to_json() {
        let ev = ControlEvent {
            at_ns: 5_000_000,
            epoch: 4,
            action: ControlAction::ScaleUp {
                target: ControlTarget::Nsm(NsmId(1)),
                from_cores: 1,
                to_cores: 2,
                utilisation: 0.9,
            },
        };
        let json = serde_json::to_string(&ev).unwrap();
        let back: ControlEvent = serde_json::from_str(&json).unwrap();
        assert_eq!(back, ev);

        let ev = ControlEvent {
            at_ns: 1,
            epoch: 0,
            action: ControlAction::Rebalance {
                vm: VmId(3),
                from: NsmId(1),
                to: NsmId(2),
            },
        };
        let json = serde_json::to_string(&ev).unwrap();
        let back: ControlEvent = serde_json::from_str(&json).unwrap();
        assert_eq!(back, ev);
    }

    #[test]
    fn policy_round_trips_through_json() {
        let p = ControlPolicy::new()
            .with_anti_affinity(VmId(1), VmId(2))
            .with_pool_clock_hz(2_000_000);
        let json = serde_json::to_string(&p).unwrap();
        let back: ControlPolicy = serde_json::from_str(&json).unwrap();
        assert_eq!(back, p);
    }

    #[test]
    fn control_targets_order_engine_first() {
        assert!(ControlTarget::Engine < ControlTarget::Nsm(NsmId(0)));
        assert!(ControlTarget::Nsm(NsmId(1)) < ControlTarget::Nsm(NsmId(2)));
    }
}
