//! Constants describing the reproduced testbed.
//!
//! The values mirror the evaluation environment of the paper (§5, §7.1):
//! QEMU/KVM hosts with Xeon E5-2698 v3 cores at 2.3 GHz, Mellanox 100 G NICs,
//! 2 MB hugepages (128 pages per VM–NSM pair) and an NQE batch size of 4.

/// Size of one shared hugepage, in bytes (2 MB, §5 "Queues and Huge Pages").
pub const HUGEPAGE_SIZE: usize = 2 * 1024 * 1024;

/// Default number of hugepages shared between a VM and its NSM (§5).
pub const DEFAULT_HUGEPAGE_COUNT: usize = 128;

/// Default NQE batch size used by CoreEngine and the NK devices (§7.2 uses a
/// batch size of 4 for all experiments).
pub const DEFAULT_BATCH_SIZE: usize = 4;

/// Default capacity (in NQEs) of each lockless queue in a queue set.
pub const DEFAULT_QUEUE_CAPACITY: usize = 4096;

/// Default bound on scheduler rounds per host step: the host polls every
/// datapath component repeatedly until a full round reports no work (a
/// request → NSM → response round trip therefore completes within one step
/// regardless of queue depth), giving up after this many rounds so a
/// misbehaving component cannot stall virtual time.
pub const DEFAULT_POLL_ROUNDS: usize = 16;

/// Line rate of the physical NIC in gigabits per second (Mellanox CX-4 100G).
pub const LINE_RATE_GBPS: f64 = 100.0;

/// Clock frequency of one physical core in cycles per second (2.3 GHz Xeon
/// E5-2698 v3, §7.1).
pub const CYCLES_PER_SECOND: u64 = 2_300_000_000;

/// Ethernet MTU used by the virtual fabric.
pub const MTU: usize = 1500;

/// TCP maximum segment size corresponding to [`MTU`] (IPv4 + TCP headers).
pub const MSS: usize = 1460;

/// Interrupt-driven polling window of the guest NK device, in microseconds:
/// the device polls for this long before arming an interrupt (§4.6).
pub const GUEST_POLL_WINDOW_US: u64 = 20;

/// Default per-socket send buffer budget in bytes (matches a common Linux
/// `wmem_default`-style sizing of 256 KB).
pub const DEFAULT_SEND_BUF: usize = 256 * 1024;

/// Default per-socket receive buffer budget in bytes.
pub const DEFAULT_RECV_BUF: usize = 256 * 1024;

/// Convert gigabits per second to bytes per second.
pub fn gbps_to_bytes_per_sec(gbps: f64) -> f64 {
    gbps * 1e9 / 8.0
}

/// Convert bytes per second to gigabits per second.
pub fn bytes_per_sec_to_gbps(bps: f64) -> f64 {
    bps * 8.0 / 1e9
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hugepage_region_default_size_is_256mb() {
        assert_eq!(HUGEPAGE_SIZE * DEFAULT_HUGEPAGE_COUNT, 256 * 1024 * 1024);
    }

    #[test]
    fn unit_conversions_are_inverse() {
        let g = 100.0;
        let b = gbps_to_bytes_per_sec(g);
        assert!((bytes_per_sec_to_gbps(b) - g).abs() < 1e-9);
        assert_eq!(gbps_to_bytes_per_sec(8e-9), 1.0);
    }

    /// Compile-time sanity relation between MSS and MTU, kept as a test so
    /// a bad edit to either constant fails loudly.
    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn mss_fits_mtu() {
        assert!(MSS + 40 <= MTU + 14);
        assert!(MSS < MTU);
    }
}
