//! Fault-injection plans: timed infrastructure events applied to a host.
//!
//! NetKernel's core promise is that the network stack is *infrastructure*:
//! the operator can crash, restart or replace an NSM underneath a running VM
//! (§3 "a user can switch her NSM on the fly"). A [`FaultPlan`] describes a
//! deterministic schedule of such events — NSM crash, NSM restart, live VM
//! re-mapping, mid-flight link degradation — that the host applies at fixed
//! points in virtual time. Because the schedule, the fabric RNG and the
//! datapath are all deterministic, the same plan plus the same seed replays
//! the exact same execution, which is what the seeded scenario and property
//! tests rely on.

use crate::config::HostConfig;
use crate::error::{NkError, NkResult};
use crate::ids::{NsmId, VmId};
use serde::{Deserialize, Serialize};

/// A mid-flight change to an NSM's vNIC link, mirroring
/// `nk_fabric::LinkConfig` without depending on the fabric crate.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct LinkFault {
    /// New line rate in Gbps; `None` keeps the NSM vNIC's configured rate.
    pub rate_gbps: Option<f64>,
    /// New one-way propagation delay in microseconds.
    pub latency_us: u64,
    /// New frame-loss probability.
    pub loss: f64,
    /// New reordering probability.
    pub reorder: f64,
}

impl Default for LinkFault {
    fn default() -> Self {
        LinkFault {
            rate_gbps: None,
            latency_us: 0,
            loss: 0.0,
            reorder: 0.0,
        }
    }
}

impl LinkFault {
    /// An unimpaired link (no cap, no delay, no loss): restores a degraded
    /// link to health.
    pub fn healthy() -> Self {
        Self::default()
    }

    /// Cap the rate (builder style).
    pub fn with_rate_gbps(mut self, gbps: f64) -> Self {
        self.rate_gbps = Some(gbps);
        self
    }

    /// Add propagation delay (builder style).
    pub fn with_latency_us(mut self, us: u64) -> Self {
        self.latency_us = us;
        self
    }

    /// Drop frames with probability `loss` (builder style).
    pub fn with_loss(mut self, loss: f64) -> Self {
        self.loss = loss;
        self
    }

    /// Reorder frames with probability `reorder` (builder style).
    pub fn with_reorder(mut self, reorder: f64) -> Self {
        self.reorder = reorder;
        self
    }
}

/// One infrastructure fault (or recovery action) a host can apply.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum FaultAction {
    /// Hard-crash an NSM: its queues, stack state and vNIC vanish. Every
    /// connection pinned to it observes [`NkError::ConnReset`].
    CrashNsm(NsmId),
    /// Re-provision a previously crashed NSM from its original
    /// configuration, with fresh queues and an empty stack.
    RestartNsm(NsmId),
    /// Live re-mapping of a VM onto a different NSM: new connections use the
    /// target, existing ones stay pinned to wherever they were opened.
    MigrateVm {
        /// The VM being migrated.
        vm: VmId,
        /// The NSM that takes over new connections.
        to: NsmId,
    },
    /// Reconfigure the egress link towards an NSM's vNIC mid-flight.
    /// In-flight frames keep their original delivery schedule.
    DegradeLink {
        /// The NSM whose vNIC link changes.
        nsm: NsmId,
        /// The new impairment parameters.
        link: LinkFault,
    },
}

/// A fault action scheduled at a point in virtual time.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct FaultEvent {
    /// Virtual time (nanoseconds) at or after which the action applies.
    pub at_ns: u64,
    /// What happens.
    pub action: FaultAction,
}

/// A deterministic schedule of fault events for one host.
///
/// Events are applied in `(at_ns, insertion order)` order at the start of the
/// first host step whose virtual time reaches `at_ns`, before any datapath
/// component is polled — so a plan plus a seed fully determines the
/// execution.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// The scheduled events.
    pub events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// An empty plan (no faults).
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedule `action` at `at_ns` (builder style).
    pub fn at(mut self, at_ns: u64, action: FaultAction) -> Self {
        self.events.push(FaultEvent { at_ns, action });
        self
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when no event is scheduled.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The events sorted by `(at_ns, insertion order)` — the order the host
    /// applies them in.
    pub fn sorted_events(&self) -> Vec<FaultEvent> {
        let mut out = self.events.clone();
        out.sort_by_key(|e| e.at_ns);
        out
    }

    /// Check the plan against a host configuration: every referenced NSM and
    /// VM must exist, a restart must be preceded by a crash of the same NSM,
    /// and migrations / link changes must target an NSM that is alive at
    /// that point in the schedule (not crashed-and-not-yet-restarted — a
    /// "validated" plan must never strand a VM on a dead NSM).
    pub fn validate(&self, cfg: &HostConfig) -> NkResult<()> {
        let mut crashed: Vec<NsmId> = Vec::new();
        for ev in self.sorted_events() {
            match ev.action {
                FaultAction::CrashNsm(nsm) => {
                    if cfg.nsm(nsm).is_none() || crashed.contains(&nsm) {
                        return Err(NkError::BadConfig);
                    }
                    crashed.push(nsm);
                }
                FaultAction::RestartNsm(nsm) => {
                    if !crashed.contains(&nsm) {
                        return Err(NkError::BadConfig);
                    }
                    crashed.retain(|n| *n != nsm);
                }
                FaultAction::MigrateVm { vm, to } => {
                    if cfg.vm(vm).is_none() || cfg.nsm(to).is_none() || crashed.contains(&to) {
                        return Err(NkError::BadConfig);
                    }
                }
                FaultAction::DegradeLink { nsm, link } => {
                    if cfg.nsm(nsm).is_none() || crashed.contains(&nsm) {
                        return Err(NkError::BadConfig);
                    }
                    if !(0.0..=1.0).contains(&link.loss) || !(0.0..=1.0).contains(&link.reorder) {
                        return Err(NkError::BadConfig);
                    }
                    if link.rate_gbps.is_some_and(|g| g <= 0.0) {
                        return Err(NkError::BadConfig);
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{NsmConfig, VmConfig, VmToNsmPolicy};

    fn cfg() -> HostConfig {
        HostConfig::new()
            .with_vm(VmConfig::new(VmId(1)))
            .with_nsm(NsmConfig::kernel(NsmId(1)))
            .with_nsm(NsmConfig::kernel(NsmId(2)))
            .with_mapping(VmToNsmPolicy::All(NsmId(1)))
    }

    #[test]
    fn builder_orders_events_by_time() {
        let plan = FaultPlan::new()
            .at(500, FaultAction::RestartNsm(NsmId(1)))
            .at(100, FaultAction::CrashNsm(NsmId(1)));
        let sorted = plan.sorted_events();
        assert_eq!(sorted[0].at_ns, 100);
        assert_eq!(sorted[1].at_ns, 500);
        assert_eq!(plan.len(), 2);
        assert!(!plan.is_empty());
    }

    #[test]
    fn crash_then_restart_validates() {
        let plan = FaultPlan::new()
            .at(100, FaultAction::CrashNsm(NsmId(1)))
            .at(
                150,
                FaultAction::MigrateVm {
                    vm: VmId(1),
                    to: NsmId(2),
                },
            )
            .at(500, FaultAction::RestartNsm(NsmId(1)));
        assert!(plan.validate(&cfg()).is_ok());
    }

    #[test]
    fn restart_without_crash_is_rejected() {
        let plan = FaultPlan::new().at(100, FaultAction::RestartNsm(NsmId(1)));
        assert_eq!(plan.validate(&cfg()), Err(NkError::BadConfig));
    }

    #[test]
    fn double_crash_is_rejected() {
        let plan = FaultPlan::new()
            .at(100, FaultAction::CrashNsm(NsmId(1)))
            .at(200, FaultAction::CrashNsm(NsmId(1)));
        assert_eq!(plan.validate(&cfg()), Err(NkError::BadConfig));
    }

    #[test]
    fn unknown_entities_are_rejected() {
        let plan = FaultPlan::new().at(100, FaultAction::CrashNsm(NsmId(9)));
        assert_eq!(plan.validate(&cfg()), Err(NkError::BadConfig));
        let plan = FaultPlan::new().at(
            100,
            FaultAction::MigrateVm {
                vm: VmId(9),
                to: NsmId(1),
            },
        );
        assert_eq!(plan.validate(&cfg()), Err(NkError::BadConfig));
    }

    #[test]
    fn migrating_onto_a_crashed_nsm_is_rejected() {
        // NSM 2 is down between t=100 and t=300: pointing the VM at it in
        // that window would strand the VM on a dead NSM.
        let plan = FaultPlan::new()
            .at(100, FaultAction::CrashNsm(NsmId(2)))
            .at(
                200,
                FaultAction::MigrateVm {
                    vm: VmId(1),
                    to: NsmId(2),
                },
            )
            .at(300, FaultAction::RestartNsm(NsmId(2)));
        assert_eq!(plan.validate(&cfg()), Err(NkError::BadConfig));
        // After the restart the same migration is fine.
        let plan = FaultPlan::new()
            .at(100, FaultAction::CrashNsm(NsmId(2)))
            .at(300, FaultAction::RestartNsm(NsmId(2)))
            .at(
                400,
                FaultAction::MigrateVm {
                    vm: VmId(1),
                    to: NsmId(2),
                },
            );
        assert!(plan.validate(&cfg()).is_ok());
        // Degrading a dead NSM's link is equally meaningless.
        let plan = FaultPlan::new()
            .at(100, FaultAction::CrashNsm(NsmId(1)))
            .at(
                200,
                FaultAction::DegradeLink {
                    nsm: NsmId(1),
                    link: LinkFault::default().with_loss(0.1),
                },
            );
        assert_eq!(plan.validate(&cfg()), Err(NkError::BadConfig));
    }

    #[test]
    fn link_fault_parameters_are_range_checked() {
        let plan = FaultPlan::new().at(
            100,
            FaultAction::DegradeLink {
                nsm: NsmId(1),
                link: LinkFault::default().with_loss(1.5),
            },
        );
        assert_eq!(plan.validate(&cfg()), Err(NkError::BadConfig));
        let plan = FaultPlan::new().at(
            100,
            FaultAction::DegradeLink {
                nsm: NsmId(1),
                link: LinkFault::healthy().with_rate_gbps(1.0).with_latency_us(50),
            },
        );
        assert!(plan.validate(&cfg()).is_ok());
    }

    #[test]
    fn plans_serialize_to_json() {
        let plan = FaultPlan::new()
            .at(100, FaultAction::CrashNsm(NsmId(1)))
            .at(
                200,
                FaultAction::DegradeLink {
                    nsm: NsmId(2),
                    link: LinkFault::default().with_loss(0.01),
                },
            );
        let json = serde_json::to_string(&plan).unwrap();
        let back: FaultPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(back, plan);
    }
}
