//! Socket operations and execution results carried inside NQEs.
//!
//! GuestLib translates every BSD socket call into a *request* operation and
//! ServiceLib translates the network stack's answer into a *completion* or
//! *event* operation (paper §4.2). The operation kind is stored in the first
//! byte of the NQE.

use crate::error::NkError;

/// Operation type stored in the first byte of an NQE.
///
/// Values below 20 are requests travelling VM → NSM; values from 20 to 39 are
/// completions/events travelling NSM → VM. The numeric values are part of the
/// on-queue format and must stay stable.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
#[repr(u8)]
pub enum OpType {
    // ---- Requests: VM → NSM (job queue / send queue) ----
    /// Create a socket in the NSM (`socket()`).
    SocketCreate = 1,
    /// Bind to a local address (`bind()`); `op_data` holds the packed address.
    Bind = 2,
    /// Start listening (`listen()`); `op_data` holds the backlog.
    Listen = 3,
    /// Ask the NSM to deliver the next accepted connection (`accept()`).
    Accept = 4,
    /// Connect to a remote address (`connect()`); `op_data` holds the packed
    /// address.
    Connect = 5,
    /// Transmit application data (`send()`); the NQE carries a hugepage data
    /// handle and the payload size. Travels on the *send* queue.
    Send = 6,
    /// Shut down one or both directions (`shutdown()`); `op_data` holds the
    /// `how` argument.
    Shutdown = 7,
    /// Close the socket (`close()`).
    Close = 8,
    /// Set a socket option; `op_data` packs (option, value).
    SetSockOpt = 9,
    /// Get a socket option; `op_data` packs the option id.
    GetSockOpt = 10,
    /// Return receive-buffer credit to the NSM after the application consumed
    /// `size` bytes via `recv()`.
    RecvConsumed = 11,

    // ---- Completions / events: NSM → VM (completion queue / receive queue) ----
    /// Completion of [`OpType::SocketCreate`]; `op_data` carries the result
    /// and the NSM-side socket id.
    SocketCreated = 20,
    /// Completion of [`OpType::Bind`].
    BindComplete = 21,
    /// Completion of [`OpType::Listen`].
    ListenComplete = 22,
    /// A new connection was accepted; `op_data` carries the NSM-side socket id
    /// of the accepted connection and `data` carries the packed peer address.
    Accepted = 23,
    /// Completion of [`OpType::Connect`].
    ConnectComplete = 24,
    /// Completion of [`OpType::Send`]; `size` bytes of send-buffer credit are
    /// returned to the VM.
    SendComplete = 25,
    /// New data arrived for a connection; the NQE carries a hugepage data
    /// handle and the size. Travels on the *receive* queue.
    DataReceived = 26,
    /// Completion of [`OpType::Shutdown`].
    ShutdownComplete = 27,
    /// Completion of [`OpType::Close`].
    CloseComplete = 28,
    /// Completion of [`OpType::SetSockOpt`].
    SetSockOptComplete = 29,
    /// Completion of [`OpType::GetSockOpt`]; `op_data` carries the value.
    GetSockOptComplete = 30,
    /// The peer closed or reset the connection (FIN/RST event).
    PeerClosed = 31,
    /// Asynchronous error on the connection; `op_data` carries the error code.
    ErrorEvent = 32,
    /// A connection became writable again after the send buffer drained.
    Writable = 33,
}

impl OpType {
    /// Decode from the raw byte stored in an NQE.
    pub fn from_u8(v: u8) -> Option<OpType> {
        Some(match v {
            1 => OpType::SocketCreate,
            2 => OpType::Bind,
            3 => OpType::Listen,
            4 => OpType::Accept,
            5 => OpType::Connect,
            6 => OpType::Send,
            7 => OpType::Shutdown,
            8 => OpType::Close,
            9 => OpType::SetSockOpt,
            10 => OpType::GetSockOpt,
            11 => OpType::RecvConsumed,
            20 => OpType::SocketCreated,
            21 => OpType::BindComplete,
            22 => OpType::ListenComplete,
            23 => OpType::Accepted,
            24 => OpType::ConnectComplete,
            25 => OpType::SendComplete,
            26 => OpType::DataReceived,
            27 => OpType::ShutdownComplete,
            28 => OpType::CloseComplete,
            29 => OpType::SetSockOptComplete,
            30 => OpType::GetSockOptComplete,
            31 => OpType::PeerClosed,
            32 => OpType::ErrorEvent,
            33 => OpType::Writable,
            _ => return None,
        })
    }

    /// True for operations issued by the VM (requests).
    pub fn is_request(self) -> bool {
        (self as u8) < 20
    }

    /// True for completions and events issued by the NSM.
    pub fn is_completion(self) -> bool {
        !self.is_request()
    }

    /// True for operations that carry application data through hugepages and
    /// therefore travel on the send/receive queues rather than the
    /// job/completion queues (paper §4.2).
    pub fn carries_data(self) -> bool {
        matches!(self, OpType::Send | OpType::DataReceived)
    }

    /// The completion op type expected in response to a request, if any.
    ///
    /// [`OpType::Accept`] completes with [`OpType::Accepted`];
    /// [`OpType::RecvConsumed`] is fire-and-forget and has no completion.
    pub fn completion(self) -> Option<OpType> {
        Some(match self {
            OpType::SocketCreate => OpType::SocketCreated,
            OpType::Bind => OpType::BindComplete,
            OpType::Listen => OpType::ListenComplete,
            OpType::Accept => OpType::Accepted,
            OpType::Connect => OpType::ConnectComplete,
            OpType::Send => OpType::SendComplete,
            OpType::Shutdown => OpType::ShutdownComplete,
            OpType::Close => OpType::CloseComplete,
            OpType::SetSockOpt => OpType::SetSockOptComplete,
            OpType::GetSockOpt => OpType::GetSockOptComplete,
            OpType::RecvConsumed => return None,
            _ => return None,
        })
    }
}

/// Execution result of a socket operation, as carried in the low 32 bits of
/// the `op_data` field of completion NQEs.
///
/// The high 32 bits of `op_data` remain available for per-operation payload
/// (e.g. the NSM socket id for `SocketCreated`, the option value for
/// `GetSockOptComplete`).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum OpResult {
    /// The operation succeeded.
    Ok,
    /// The operation failed with the given error.
    Err(NkError),
}

impl OpResult {
    /// Encode into the low 32 bits of `op_data`.
    pub fn encode(self) -> u32 {
        match self {
            OpResult::Ok => 0,
            OpResult::Err(e) => e.code(),
        }
    }

    /// Decode from the low 32 bits of `op_data`. Unknown codes decode as
    /// [`NkError::MalformedNqe`] rather than panicking so a corrupted NQE
    /// cannot take the guest down.
    pub fn decode(v: u32) -> OpResult {
        if v == 0 {
            OpResult::Ok
        } else {
            match NkError::from_code(v) {
                Some(e) => OpResult::Err(e),
                None => OpResult::Err(NkError::MalformedNqe),
            }
        }
    }

    /// Convert to a `Result<(), NkError>`.
    pub fn into_result(self) -> Result<(), NkError> {
        match self {
            OpResult::Ok => Ok(()),
            OpResult::Err(e) => Err(e),
        }
    }

    /// True when the operation succeeded.
    pub fn is_ok(self) -> bool {
        matches!(self, OpResult::Ok)
    }

    /// Build an [`OpResult`] from a `Result`.
    pub fn from_result<T>(r: &Result<T, NkError>) -> OpResult {
        match r {
            Ok(_) => OpResult::Ok,
            Err(e) => OpResult::Err(*e),
        }
    }
}

/// Helpers for packing two 32-bit values into the 8-byte `op_data` field.
pub mod op_data {
    use super::OpResult;

    /// Pack a result (low 32 bits) and an auxiliary value (high 32 bits).
    pub fn pack(result: OpResult, aux: u32) -> u64 {
        (u64::from(aux) << 32) | u64::from(result.encode())
    }

    /// Extract the result from the low 32 bits.
    pub fn result(op_data: u64) -> OpResult {
        OpResult::decode((op_data & 0xFFFF_FFFF) as u32)
    }

    /// Extract the auxiliary value from the high 32 bits.
    pub fn aux(op_data: u64) -> u32 {
        (op_data >> 32) as u32
    }

    /// Pack a socket-option id and value (used by `SetSockOpt`).
    pub fn pack_sockopt(opt: u32, value: u32) -> u64 {
        (u64::from(opt) << 32) | u64::from(value)
    }

    /// Extract the socket-option id from a `SetSockOpt` request.
    pub fn sockopt_opt(op_data: u64) -> u32 {
        (op_data >> 32) as u32
    }

    /// Extract the socket-option value from a `SetSockOpt` request.
    pub fn sockopt_value(op_data: u64) -> u32 {
        (op_data & 0xFFFF_FFFF) as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn optype_roundtrip() {
        for v in 0..=255u8 {
            if let Some(op) = OpType::from_u8(v) {
                assert_eq!(op as u8, v);
            }
        }
        // Every named variant decodes back to itself.
        for op in [
            OpType::SocketCreate,
            OpType::Bind,
            OpType::Listen,
            OpType::Accept,
            OpType::Connect,
            OpType::Send,
            OpType::Shutdown,
            OpType::Close,
            OpType::SetSockOpt,
            OpType::GetSockOpt,
            OpType::RecvConsumed,
            OpType::SocketCreated,
            OpType::BindComplete,
            OpType::ListenComplete,
            OpType::Accepted,
            OpType::ConnectComplete,
            OpType::SendComplete,
            OpType::DataReceived,
            OpType::ShutdownComplete,
            OpType::CloseComplete,
            OpType::SetSockOptComplete,
            OpType::GetSockOptComplete,
            OpType::PeerClosed,
            OpType::ErrorEvent,
            OpType::Writable,
        ] {
            assert_eq!(OpType::from_u8(op as u8), Some(op));
        }
    }

    #[test]
    fn request_completion_partition() {
        assert!(OpType::Send.is_request());
        assert!(!OpType::Send.is_completion());
        assert!(OpType::DataReceived.is_completion());
        assert!(!OpType::DataReceived.is_request());
    }

    #[test]
    fn data_queue_classification() {
        assert!(OpType::Send.carries_data());
        assert!(OpType::DataReceived.carries_data());
        assert!(!OpType::Connect.carries_data());
        assert!(!OpType::SendComplete.carries_data());
    }

    #[test]
    fn completion_mapping() {
        assert_eq!(
            OpType::SocketCreate.completion(),
            Some(OpType::SocketCreated)
        );
        assert_eq!(OpType::Accept.completion(), Some(OpType::Accepted));
        assert_eq!(OpType::RecvConsumed.completion(), None);
        assert_eq!(OpType::DataReceived.completion(), None);
    }

    #[test]
    fn opresult_roundtrip() {
        assert_eq!(OpResult::decode(OpResult::Ok.encode()), OpResult::Ok);
        let e = OpResult::Err(NkError::ConnRefused);
        assert_eq!(OpResult::decode(e.encode()), e);
        // Unknown error codes degrade to MalformedNqe instead of panicking.
        assert_eq!(
            OpResult::decode(0xDEAD_BEEF),
            OpResult::Err(NkError::MalformedNqe)
        );
    }

    #[test]
    fn op_data_packing() {
        let d = op_data::pack(OpResult::Err(NkError::WouldBlock), 77);
        assert_eq!(op_data::result(d), OpResult::Err(NkError::WouldBlock));
        assert_eq!(op_data::aux(d), 77);

        let s = op_data::pack_sockopt(3, 1);
        assert_eq!(op_data::sockopt_opt(s), 3);
        assert_eq!(op_data::sockopt_value(s), 1);
    }
}
