//! Configuration for hosts, tenant VMs and Network Stack Modules.
//!
//! A [`HostConfig`] describes everything the operator controls: which VMs run
//! on the host, which NSMs are provisioned, how VMs map onto NSMs, how many
//! cores CoreEngine gets, and what isolation policy applies. The same
//! configuration drives both the threaded and the simulated execution modes.

use crate::constants::{
    DEFAULT_BATCH_SIZE, DEFAULT_HUGEPAGE_COUNT, DEFAULT_POLL_ROUNDS, DEFAULT_QUEUE_CAPACITY,
    LINE_RATE_GBPS,
};
use crate::control::ControlPolicy;
use crate::error::{NkError, NkResult};
use crate::ids::{HostId, NsmId, VmId};
use serde::{Deserialize, Serialize};

/// Which network stack implementation an NSM runs.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum StackKind {
    /// A monolithic kernel-style TCP/IP stack (the paper's "kernel stack NSM",
    /// modelled on Linux 4.9 behaviour: interrupt-driven RX, per-packet
    /// processing in softirq context).
    Kernel,
    /// A userspace, batched, per-core-partitioned stack in the style of mTCP
    /// over DPDK: lower per-operation cost, run-to-completion, poll-mode RX.
    Mtcp,
    /// The shared-memory fast path for colocated VMs of the same tenant
    /// (use case 4, §6.4): payload is copied hugepage-to-hugepage and TCP
    /// processing is bypassed entirely.
    SharedMem,
    /// Kernel-style stack with VM-level (Seawall-like) congestion control for
    /// fair bandwidth sharing (use case 2, §6.2).
    FairShare,
}

/// Which congestion-control algorithm a stack uses.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize, Default)]
pub enum CcKind {
    /// TCP NewReno-style AIMD.
    Reno,
    /// CUBIC (the Linux default the paper's Baseline runs).
    #[default]
    Cubic,
    /// DCTCP, reacting proportionally to ECN marks.
    Dctcp,
    /// One shared congestion window per VM, split equally across that VM's
    /// active flows (Seawall-style VM-level fairness).
    VmShared,
}

/// Configuration of one tenant VM.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct VmConfig {
    /// VM identifier, unique per host.
    pub id: VmId,
    /// Number of vCPUs; the NK device gets one queue set per vCPU (§4.3).
    pub vcpus: usize,
    /// Tenant identifier; VMs of the same tenant may use the shared-memory
    /// NSM when colocated (§6.4).
    pub tenant: u32,
    /// Optional egress bandwidth cap in Gbps enforced by CoreEngine (§7.6).
    pub rate_limit_gbps: Option<f64>,
}

impl VmConfig {
    /// A single-vCPU VM with no rate limit.
    pub fn new(id: VmId) -> Self {
        VmConfig {
            id,
            vcpus: 1,
            tenant: 0,
            rate_limit_gbps: None,
        }
    }

    /// Set the number of vCPUs (builder style).
    pub fn with_vcpus(mut self, vcpus: usize) -> Self {
        self.vcpus = vcpus;
        self
    }

    /// Set the tenant id (builder style).
    pub fn with_tenant(mut self, tenant: u32) -> Self {
        self.tenant = tenant;
        self
    }

    /// Cap the VM's egress bandwidth (builder style).
    pub fn with_rate_limit_gbps(mut self, gbps: f64) -> Self {
        self.rate_limit_gbps = Some(gbps);
        self
    }
}

/// Configuration of one Network Stack Module.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct NsmConfig {
    /// NSM identifier, unique per host.
    pub id: NsmId,
    /// Number of vCPUs dedicated to the NSM.
    pub vcpus: usize,
    /// Stack implementation the NSM runs.
    pub stack: StackKind,
    /// Congestion control used by that stack.
    pub cc: CcKind,
    /// Rate of the virtual function / vNIC attached to the NSM, in Gbps.
    pub nic_rate_gbps: f64,
}

impl NsmConfig {
    /// A single-vCPU kernel-stack NSM attached to a full-rate vNIC.
    pub fn kernel(id: NsmId) -> Self {
        NsmConfig {
            id,
            vcpus: 1,
            stack: StackKind::Kernel,
            cc: CcKind::Cubic,
            nic_rate_gbps: LINE_RATE_GBPS,
        }
    }

    /// A single-vCPU mTCP-style NSM attached to a full-rate vNIC.
    pub fn mtcp(id: NsmId) -> Self {
        NsmConfig {
            stack: StackKind::Mtcp,
            ..NsmConfig::kernel(id)
        }
    }

    /// A shared-memory NSM for colocated VMs of the same tenant.
    pub fn shared_mem(id: NsmId) -> Self {
        NsmConfig {
            stack: StackKind::SharedMem,
            ..NsmConfig::kernel(id)
        }
    }

    /// A kernel-style NSM running VM-level fair-share congestion control.
    pub fn fair_share(id: NsmId) -> Self {
        NsmConfig {
            stack: StackKind::FairShare,
            cc: CcKind::VmShared,
            ..NsmConfig::kernel(id)
        }
    }

    /// Set the number of vCPUs (builder style).
    pub fn with_vcpus(mut self, vcpus: usize) -> Self {
        self.vcpus = vcpus;
        self
    }

    /// Set the congestion control algorithm (builder style).
    pub fn with_cc(mut self, cc: CcKind) -> Self {
        self.cc = cc;
        self
    }

    /// Set the vNIC rate in Gbps (builder style).
    pub fn with_nic_rate_gbps(mut self, gbps: f64) -> Self {
        self.nic_rate_gbps = gbps;
        self
    }
}

/// How CoreEngine arbitrates between VMs sharing NSMs (§4.4, §7.6).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize, Default)]
pub enum IsolationPolicy {
    /// Plain round-robin polling over the per-VM queue sets: basic fair
    /// sharing of CoreEngine and NSM attention.
    #[default]
    RoundRobin,
    /// Round-robin polling plus per-VM token-bucket rate limiting of egress
    /// bytes, honouring each VM's `rate_limit_gbps`.
    RateLimited,
    /// Round-robin polling plus a cap on NQE operations per second per VM.
    OpsLimited {
        /// Maximum NQEs per second each VM may issue.
        max_ops_per_sec: u64,
    },
}

/// How VMs are assigned to NSMs (§4.3 footnote: offline by the user or
/// dynamically by CoreEngine).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum VmToNsmPolicy {
    /// Explicit static assignment.
    Static(Vec<(VmId, NsmId)>),
    /// Every VM is served by the (single) NSM with the given id.
    All(NsmId),
    /// CoreEngine spreads VMs across NSMs with the fewest attached VMs first.
    LeastLoaded,
}

/// Full description of one NetKernel host.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct HostConfig {
    /// Identity of the host in the cluster address scheme: every NSM vNIC
    /// lives in the `10.<host>.0.0/16` block. Single-host setups keep the
    /// default of host 0 and see the pre-cluster addresses unchanged.
    pub host_id: HostId,
    /// Tenant VMs provisioned on the host.
    pub vms: Vec<VmConfig>,
    /// Network stack modules provisioned on the host.
    pub nsms: Vec<NsmConfig>,
    /// VM → NSM assignment policy.
    pub mapping: VmToNsmPolicy,
    /// Cores dedicated to CoreEngine NQE switching (the paper always uses 1).
    pub core_engine_cores: usize,
    /// Isolation policy applied by CoreEngine.
    pub isolation: IsolationPolicy,
    /// Number of 2 MB hugepages shared between each VM–NSM pair.
    pub hugepages_per_pair: usize,
    /// NQE batch size used for queue polling and switching.
    pub batch_size: usize,
    /// Capacity of each lockless queue, in NQEs.
    pub queue_capacity: usize,
    /// Upper bound on scheduler rounds per host step. Each round polls every
    /// datapath component once; the step ends early as soon as a full round
    /// reports no work.
    pub max_poll_rounds: usize,
    /// Operator control-plane policy. `None` leaves the allocation static
    /// (no autoscaling, no rebalancing).
    pub control: Option<ControlPolicy>,
}

impl Default for HostConfig {
    fn default() -> Self {
        HostConfig {
            host_id: HostId(0),
            vms: Vec::new(),
            nsms: Vec::new(),
            mapping: VmToNsmPolicy::LeastLoaded,
            core_engine_cores: 1,
            isolation: IsolationPolicy::RoundRobin,
            hugepages_per_pair: DEFAULT_HUGEPAGE_COUNT,
            batch_size: DEFAULT_BATCH_SIZE,
            queue_capacity: DEFAULT_QUEUE_CAPACITY,
            max_poll_rounds: DEFAULT_POLL_ROUNDS,
            control: None,
        }
    }
}

impl HostConfig {
    /// Start from an empty host with default policies.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the host's cluster identity (builder style).
    pub fn with_host_id(mut self, host: HostId) -> Self {
        self.host_id = host;
        self
    }

    /// Add a VM (builder style).
    pub fn with_vm(mut self, vm: VmConfig) -> Self {
        self.vms.push(vm);
        self
    }

    /// Add an NSM (builder style).
    pub fn with_nsm(mut self, nsm: NsmConfig) -> Self {
        self.nsms.push(nsm);
        self
    }

    /// Set the VM → NSM mapping policy (builder style).
    pub fn with_mapping(mut self, mapping: VmToNsmPolicy) -> Self {
        self.mapping = mapping;
        self
    }

    /// Set the isolation policy (builder style).
    pub fn with_isolation(mut self, isolation: IsolationPolicy) -> Self {
        self.isolation = isolation;
        self
    }

    /// Bound the scheduler rounds per host step (builder style).
    pub fn with_max_poll_rounds(mut self, rounds: usize) -> Self {
        self.max_poll_rounds = rounds;
        self
    }

    /// Enable the operator control plane with `policy` (builder style).
    pub fn with_control(mut self, policy: ControlPolicy) -> Self {
        self.control = Some(policy);
        self
    }

    /// Look up a VM's configuration.
    pub fn vm(&self, id: VmId) -> Option<&VmConfig> {
        self.vms.iter().find(|v| v.id == id)
    }

    /// Look up an NSM's configuration.
    pub fn nsm(&self, id: NsmId) -> Option<&NsmConfig> {
        self.nsms.iter().find(|n| n.id == id)
    }

    /// Resolve the NSM that serves `vm` under the configured mapping policy.
    ///
    /// For [`VmToNsmPolicy::LeastLoaded`] the assignment is deterministic:
    /// VMs are considered in configuration order and assigned to the NSM with
    /// the fewest VMs assigned so far (ties broken by NSM id).
    pub fn nsm_for_vm(&self, vm: VmId) -> NkResult<NsmId> {
        if self.nsms.is_empty() {
            return Err(NkError::NoNsm);
        }
        match &self.mapping {
            VmToNsmPolicy::All(id) => {
                if self.nsm(*id).is_some() {
                    Ok(*id)
                } else {
                    Err(NkError::NotFound)
                }
            }
            VmToNsmPolicy::Static(map) => map
                .iter()
                .find(|(v, _)| *v == vm)
                .map(|(_, n)| *n)
                .ok_or(NkError::NoNsm),
            VmToNsmPolicy::LeastLoaded => {
                let mut load: Vec<(NsmId, usize)> =
                    self.nsms.iter().map(|n| (n.id, 0usize)).collect();
                load.sort_by_key(|(id, _)| *id);
                for v in &self.vms {
                    let slot = load
                        .iter_mut()
                        .min_by_key(|(id, c)| (*c, *id))
                        .expect("nsms non-empty");
                    if v.id == vm {
                        return Ok(slot.0);
                    }
                    slot.1 += 1;
                }
                // The VM is not part of the configuration.
                Err(NkError::NotFound)
            }
        }
    }

    /// Total vCPUs consumed by the host-side NetKernel machinery plus VMs
    /// (used by the multiplexing experiments, §6.1 / Table 2).
    pub fn total_cores(&self) -> usize {
        self.vms.iter().map(|v| v.vcpus).sum::<usize>()
            + self.nsms.iter().map(|n| n.vcpus).sum::<usize>()
            + self.core_engine_cores
    }

    /// Validate internal consistency (ids unique, counts non-zero, static
    /// mappings referencing existing entities).
    pub fn validate(&self) -> NkResult<()> {
        let mut vm_ids = std::collections::HashSet::new();
        for v in &self.vms {
            if v.vcpus == 0 {
                return Err(NkError::BadConfig);
            }
            if !vm_ids.insert(v.id) {
                return Err(NkError::BadConfig);
            }
        }
        let mut nsm_ids = std::collections::HashSet::new();
        for n in &self.nsms {
            if n.vcpus == 0 || n.nic_rate_gbps <= 0.0 {
                return Err(NkError::BadConfig);
            }
            if !nsm_ids.insert(n.id) {
                return Err(NkError::BadConfig);
            }
        }
        if self.batch_size == 0 || self.queue_capacity == 0 || self.hugepages_per_pair == 0 {
            return Err(NkError::BadConfig);
        }
        if self.max_poll_rounds == 0 {
            return Err(NkError::BadConfig);
        }
        if let VmToNsmPolicy::Static(map) = &self.mapping {
            for (v, n) in map {
                if !vm_ids.contains(v) || !nsm_ids.contains(n) {
                    return Err(NkError::BadConfig);
                }
            }
        }
        if let VmToNsmPolicy::All(n) = &self.mapping {
            if !self.nsms.is_empty() && !nsm_ids.contains(n) {
                return Err(NkError::BadConfig);
            }
        }
        if let Some(control) = &self.control {
            control.validate()?;
            for (a, b) in &control.anti_affinity {
                if !vm_ids.contains(a) || !vm_ids.contains(b) {
                    return Err(NkError::BadConfig);
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_vm_one_nsm() -> HostConfig {
        HostConfig::new()
            .with_vm(VmConfig::new(VmId(1)))
            .with_vm(VmConfig::new(VmId(2)).with_vcpus(2))
            .with_nsm(NsmConfig::kernel(NsmId(1)).with_vcpus(2))
            .with_mapping(VmToNsmPolicy::All(NsmId(1)))
    }

    #[test]
    fn default_host_is_valid() {
        assert!(HostConfig::default().validate().is_ok());
    }

    #[test]
    fn builders_compose() {
        let cfg = two_vm_one_nsm();
        assert!(cfg.validate().is_ok());
        assert_eq!(cfg.vms.len(), 2);
        assert_eq!(cfg.nsm(NsmId(1)).unwrap().vcpus, 2);
        assert_eq!(cfg.vm(VmId(2)).unwrap().vcpus, 2);
        // 1 + 2 VM vCPUs + 2 NSM vCPUs + 1 CoreEngine core.
        assert_eq!(cfg.total_cores(), 6);
    }

    #[test]
    fn mapping_all_and_static() {
        let cfg = two_vm_one_nsm();
        assert_eq!(cfg.nsm_for_vm(VmId(1)).unwrap(), NsmId(1));

        let cfg = cfg.with_mapping(VmToNsmPolicy::Static(vec![(VmId(1), NsmId(1))]));
        assert_eq!(cfg.nsm_for_vm(VmId(1)).unwrap(), NsmId(1));
        assert_eq!(cfg.nsm_for_vm(VmId(2)), Err(NkError::NoNsm));
    }

    #[test]
    fn least_loaded_mapping_spreads_vms() {
        let cfg = HostConfig::new()
            .with_vm(VmConfig::new(VmId(1)))
            .with_vm(VmConfig::new(VmId(2)))
            .with_vm(VmConfig::new(VmId(3)))
            .with_nsm(NsmConfig::kernel(NsmId(1)))
            .with_nsm(NsmConfig::kernel(NsmId(2)))
            .with_mapping(VmToNsmPolicy::LeastLoaded);
        assert_eq!(cfg.nsm_for_vm(VmId(1)).unwrap(), NsmId(1));
        assert_eq!(cfg.nsm_for_vm(VmId(2)).unwrap(), NsmId(2));
        assert_eq!(cfg.nsm_for_vm(VmId(3)).unwrap(), NsmId(1));
        assert_eq!(cfg.nsm_for_vm(VmId(9)), Err(NkError::NotFound));
    }

    #[test]
    fn mapping_without_nsm_is_an_error() {
        let cfg = HostConfig::new().with_vm(VmConfig::new(VmId(1)));
        assert_eq!(cfg.nsm_for_vm(VmId(1)), Err(NkError::NoNsm));
    }

    #[test]
    fn validation_catches_duplicates_and_zeroes() {
        let dup = HostConfig::new()
            .with_vm(VmConfig::new(VmId(1)))
            .with_vm(VmConfig::new(VmId(1)));
        assert_eq!(dup.validate(), Err(NkError::BadConfig));

        let zero = HostConfig::new().with_vm(VmConfig::new(VmId(1)).with_vcpus(0));
        assert_eq!(zero.validate(), Err(NkError::BadConfig));

        let bad_static = HostConfig::new()
            .with_vm(VmConfig::new(VmId(1)))
            .with_nsm(NsmConfig::kernel(NsmId(1)))
            .with_mapping(VmToNsmPolicy::Static(vec![(VmId(5), NsmId(1))]));
        assert_eq!(bad_static.validate(), Err(NkError::BadConfig));
    }

    #[test]
    fn nsm_constructors_set_stack_kind() {
        assert_eq!(NsmConfig::kernel(NsmId(1)).stack, StackKind::Kernel);
        assert_eq!(NsmConfig::mtcp(NsmId(1)).stack, StackKind::Mtcp);
        assert_eq!(NsmConfig::shared_mem(NsmId(1)).stack, StackKind::SharedMem);
        let fs = NsmConfig::fair_share(NsmId(1));
        assert_eq!(fs.stack, StackKind::FairShare);
        assert_eq!(fs.cc, CcKind::VmShared);
    }

    #[test]
    fn config_serializes_to_json() {
        let cfg = two_vm_one_nsm();
        let json = serde_json::to_string(&cfg).unwrap();
        let back: HostConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back, cfg);
    }
}
