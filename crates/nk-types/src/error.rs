//! Error types shared across the workspace.

use std::fmt;

/// Convenient result alias used by every NetKernel crate.
pub type NkResult<T> = Result<T, NkError>;

/// Errors produced by NetKernel components.
///
/// The variants deliberately mirror the POSIX error surface an application
/// would observe through the BSD socket API, plus a small number of
/// NetKernel-internal conditions (queue overflow, unknown connections in the
/// CoreEngine table, hugepage exhaustion).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum NkError {
    /// Operation would block; retry after the next readiness event
    /// (`EWOULDBLOCK`).
    WouldBlock,
    /// The address is already bound by another socket (`EADDRINUSE`).
    AddrInUse,
    /// The remote end refused the connection (`ECONNREFUSED`).
    ConnRefused,
    /// The connection was reset by the peer (`ECONNRESET`).
    ConnReset,
    /// The socket is not connected (`ENOTCONN`).
    NotConnected,
    /// The socket is already connected (`EISCONN`).
    AlreadyConnected,
    /// The file descriptor / socket id is not valid (`EBADF`).
    BadSocket,
    /// The operation is invalid for the socket's current state (`EINVAL`).
    InvalidState,
    /// The socket (or its peer) has been closed (`EPIPE`).
    Closed,
    /// The operation timed out (`ETIMEDOUT`).
    TimedOut,
    /// Send or receive buffer (hugepage credit) is exhausted (`ENOBUFS`).
    BufferFull,
    /// A lockless queue was full; the element was not enqueued.
    QueueFull,
    /// A lockless queue was empty; nothing to dequeue.
    QueueEmpty,
    /// The hugepage region has no free chunk large enough.
    OutOfHugepages,
    /// The CoreEngine connection table has no entry for the given tuple.
    UnknownConnection,
    /// No NSM is registered to serve the VM.
    NoNsm,
    /// The requested entity (VM, NSM, device, queue set) does not exist.
    NotFound,
    /// The entity is already registered.
    AlreadyRegistered,
    /// A configuration value is out of range or inconsistent.
    BadConfig,
    /// An NQE could not be decoded (corrupt or unknown op type).
    MalformedNqe,
    /// The operation is not supported by this NSM / stack.
    Unsupported,
    /// No NSM is currently serving the VM's requests: the mapped NSM crashed
    /// and has not been restarted or replaced yet.
    NsmUnavailable,
}

impl NkError {
    /// Errno-style numeric code carried inside NQE `op_data` result fields.
    ///
    /// Zero is reserved for success; every error maps to a distinct positive
    /// code so results round-trip through the 32-bit NQE result encoding.
    pub fn code(self) -> u32 {
        match self {
            NkError::WouldBlock => 1,
            NkError::AddrInUse => 2,
            NkError::ConnRefused => 3,
            NkError::ConnReset => 4,
            NkError::NotConnected => 5,
            NkError::AlreadyConnected => 6,
            NkError::BadSocket => 7,
            NkError::InvalidState => 8,
            NkError::Closed => 9,
            NkError::TimedOut => 10,
            NkError::BufferFull => 11,
            NkError::QueueFull => 12,
            NkError::QueueEmpty => 13,
            NkError::OutOfHugepages => 14,
            NkError::UnknownConnection => 15,
            NkError::NoNsm => 16,
            NkError::NotFound => 17,
            NkError::AlreadyRegistered => 18,
            NkError::BadConfig => 19,
            NkError::MalformedNqe => 20,
            NkError::Unsupported => 21,
            NkError::NsmUnavailable => 22,
        }
    }

    /// Inverse of [`NkError::code`]. Returns `None` for zero (success) and
    /// for unknown codes.
    pub fn from_code(code: u32) -> Option<NkError> {
        Some(match code {
            1 => NkError::WouldBlock,
            2 => NkError::AddrInUse,
            3 => NkError::ConnRefused,
            4 => NkError::ConnReset,
            5 => NkError::NotConnected,
            6 => NkError::AlreadyConnected,
            7 => NkError::BadSocket,
            8 => NkError::InvalidState,
            9 => NkError::Closed,
            10 => NkError::TimedOut,
            11 => NkError::BufferFull,
            12 => NkError::QueueFull,
            13 => NkError::QueueEmpty,
            14 => NkError::OutOfHugepages,
            15 => NkError::UnknownConnection,
            16 => NkError::NoNsm,
            17 => NkError::NotFound,
            18 => NkError::AlreadyRegistered,
            19 => NkError::BadConfig,
            20 => NkError::MalformedNqe,
            21 => NkError::Unsupported,
            22 => NkError::NsmUnavailable,
            _ => return None,
        })
    }
}

impl fmt::Display for NkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let msg = match self {
            NkError::WouldBlock => "operation would block",
            NkError::AddrInUse => "address already in use",
            NkError::ConnRefused => "connection refused",
            NkError::ConnReset => "connection reset by peer",
            NkError::NotConnected => "socket is not connected",
            NkError::AlreadyConnected => "socket is already connected",
            NkError::BadSocket => "bad socket id",
            NkError::InvalidState => "invalid socket state for operation",
            NkError::Closed => "socket closed",
            NkError::TimedOut => "operation timed out",
            NkError::BufferFull => "socket buffer full",
            NkError::QueueFull => "NQE queue full",
            NkError::QueueEmpty => "NQE queue empty",
            NkError::OutOfHugepages => "hugepage region exhausted",
            NkError::UnknownConnection => "unknown connection tuple",
            NkError::NoNsm => "no NSM registered for VM",
            NkError::NotFound => "entity not found",
            NkError::AlreadyRegistered => "entity already registered",
            NkError::BadConfig => "invalid configuration",
            NkError::MalformedNqe => "malformed NQE",
            NkError::Unsupported => "operation not supported",
            NkError::NsmUnavailable => "no NSM currently serving the VM",
        };
        f.write_str(msg)
    }
}

impl std::error::Error for NkError {}

#[cfg(test)]
mod tests {
    use super::*;

    const ALL: &[NkError] = &[
        NkError::WouldBlock,
        NkError::AddrInUse,
        NkError::ConnRefused,
        NkError::ConnReset,
        NkError::NotConnected,
        NkError::AlreadyConnected,
        NkError::BadSocket,
        NkError::InvalidState,
        NkError::Closed,
        NkError::TimedOut,
        NkError::BufferFull,
        NkError::QueueFull,
        NkError::QueueEmpty,
        NkError::OutOfHugepages,
        NkError::UnknownConnection,
        NkError::NoNsm,
        NkError::NotFound,
        NkError::AlreadyRegistered,
        NkError::BadConfig,
        NkError::MalformedNqe,
        NkError::Unsupported,
        NkError::NsmUnavailable,
    ];

    #[test]
    fn codes_roundtrip_and_are_unique() {
        let mut seen = std::collections::HashSet::new();
        for &e in ALL {
            let c = e.code();
            assert_ne!(c, 0, "zero is reserved for success");
            assert!(seen.insert(c), "duplicate code {c}");
            assert_eq!(NkError::from_code(c), Some(e));
        }
        assert_eq!(NkError::from_code(0), None);
        assert_eq!(NkError::from_code(9999), None);
    }

    #[test]
    fn display_is_nonempty() {
        for &e in ALL {
            assert!(!e.to_string().is_empty());
        }
    }
}
