//! The NetKernel Queue Element (NQE).
//!
//! NQEs are the intermediate representation of socket semantics exchanged
//! between GuestLib and ServiceLib (paper §4.2, Figure 3). Each NQE is exactly
//! 32 bytes:
//!
//! ```text
//! | 1B op | 1B VM id | 1B queue set id | 4B socket id | 8B op_data |
//! | 8B data pointer | 4B size | 5B reserved |                      = 32 B
//! ```
//!
//! The `data pointer` is a [`DataHandle`] referencing application payload in
//! the hugepage region shared between the VM and the NSM; `size` is the length
//! of that payload.

use crate::addr::SockAddr;
use crate::error::NkError;
use crate::ids::{QueueSetId, SocketId, VmId};
use crate::ops::{op_data, OpResult, OpType};

/// Size in bytes of an encoded NQE.
pub const NQE_SIZE: usize = 32;

/// Opaque reference to application payload inside a hugepage region.
///
/// The handle packs the byte offset of the chunk within the region. The
/// region itself is implied by the ⟨VM, NSM⟩ pair owning the queues the NQE
/// travels on, exactly as in the paper where each VM–NSM tuple shares a
/// dedicated set of hugepages.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub struct DataHandle(pub u64);

impl DataHandle {
    /// Handle meaning "no payload attached".
    pub const NULL: DataHandle = DataHandle(u64::MAX);

    /// Construct a handle from a region byte offset.
    pub fn from_offset(offset: u64) -> Self {
        DataHandle(offset)
    }

    /// Byte offset within the hugepage region.
    pub fn offset(self) -> u64 {
        self.0
    }

    /// True when no payload is attached.
    pub fn is_null(self) -> bool {
        self == DataHandle::NULL
    }
}

/// A NetKernel Queue Element: the fixed-size descriptor of one socket
/// operation, completion or event.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Nqe {
    /// Operation or event type.
    pub op: OpType,
    /// VM the operation belongs to (the *VM tuple* identity, §4.3).
    pub vm: VmId,
    /// Queue set the NQE was submitted on.
    pub queue_set: QueueSetId,
    /// VM-side socket id of the connection.
    pub socket: SocketId,
    /// Operation payload: packed addresses, results, auxiliary values.
    pub op_data: u64,
    /// Reference to application data inside the shared hugepage region.
    pub data: DataHandle,
    /// Length in bytes of the referenced data.
    pub size: u32,
}

impl Nqe {
    /// Create an NQE with no payload and zeroed `op_data`.
    pub fn new(op: OpType, vm: VmId, queue_set: QueueSetId, socket: SocketId) -> Self {
        Nqe {
            op,
            vm,
            queue_set,
            socket,
            op_data: 0,
            data: DataHandle::NULL,
            size: 0,
        }
    }

    /// Attach an `op_data` value (builder style).
    pub fn with_op_data(mut self, op_data: u64) -> Self {
        self.op_data = op_data;
        self
    }

    /// Attach a payload reference (builder style).
    pub fn with_data(mut self, data: DataHandle, size: u32) -> Self {
        self.data = data;
        self.size = size;
        self
    }

    /// Build a completion NQE answering `request`, carrying `result` and an
    /// auxiliary 32-bit value.
    ///
    /// Returns `None` when the request type has no defined completion (e.g.
    /// [`OpType::RecvConsumed`]).
    pub fn completion_for(request: &Nqe, result: OpResult, aux: u32) -> Option<Nqe> {
        let op = request.op.completion()?;
        Some(Nqe {
            op,
            vm: request.vm,
            queue_set: request.queue_set,
            socket: request.socket,
            op_data: op_data::pack(result, aux),
            data: DataHandle::NULL,
            size: 0,
        })
    }

    /// Build an asynchronous [`OpType::ErrorEvent`] carrying `err` for a
    /// guest socket. CoreEngine emits these when the infrastructure fails
    /// underneath a connection (e.g. its NSM crashed) and no request is in
    /// hand to answer.
    pub fn error_event(vm: VmId, queue_set: QueueSetId, socket: SocketId, err: NkError) -> Nqe {
        Nqe::new(OpType::ErrorEvent, vm, queue_set, socket)
            .with_op_data(op_data::pack(crate::ops::OpResult::Err(err), 0))
    }

    /// The execution result encoded in this (completion) NQE.
    pub fn result(&self) -> OpResult {
        op_data::result(self.op_data)
    }

    /// The auxiliary value encoded in this (completion) NQE.
    pub fn aux(&self) -> u32 {
        op_data::aux(self.op_data)
    }

    /// Interpret `op_data` as a packed socket address (bind/connect requests,
    /// accepted-peer info).
    pub fn addr(&self) -> SockAddr {
        SockAddr::unpack(self.op_data)
    }

    /// Encode into the 32-byte on-queue representation.
    pub fn encode(&self) -> [u8; NQE_SIZE] {
        let mut b = [0u8; NQE_SIZE];
        b[0] = self.op as u8;
        b[1] = self.vm.raw();
        b[2] = self.queue_set.raw();
        b[3..7].copy_from_slice(&self.socket.raw().to_le_bytes());
        b[7..15].copy_from_slice(&self.op_data.to_le_bytes());
        b[15..23].copy_from_slice(&self.data.0.to_le_bytes());
        b[23..27].copy_from_slice(&self.size.to_le_bytes());
        // Bytes 27..32 are reserved and stay zero.
        b
    }

    /// Decode from the 32-byte on-queue representation.
    ///
    /// Fails with [`NkError::MalformedNqe`] when the op byte is unknown.
    pub fn decode(b: &[u8; NQE_SIZE]) -> Result<Nqe, NkError> {
        let op = OpType::from_u8(b[0]).ok_or(NkError::MalformedNqe)?;
        Ok(Nqe {
            op,
            vm: VmId(b[1]),
            queue_set: QueueSetId(b[2]),
            socket: SocketId(u32::from_le_bytes(b[3..7].try_into().unwrap())),
            op_data: u64::from_le_bytes(b[7..15].try_into().unwrap()),
            data: DataHandle(u64::from_le_bytes(b[15..23].try_into().unwrap())),
            size: u32::from_le_bytes(b[23..27].try_into().unwrap()),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Nqe {
        Nqe::new(OpType::Send, VmId(3), QueueSetId(1), SocketId(0xDEAD))
            .with_op_data(0x0123_4567_89AB_CDEF)
            .with_data(DataHandle::from_offset(4096), 8192)
    }

    #[test]
    fn encoded_size_is_exactly_32_bytes() {
        assert_eq!(sample().encode().len(), NQE_SIZE);
        assert_eq!(NQE_SIZE, 32);
    }

    #[test]
    fn encode_decode_roundtrip() {
        let nqe = sample();
        let decoded = Nqe::decode(&nqe.encode()).unwrap();
        assert_eq!(decoded, nqe);
    }

    #[test]
    fn decode_rejects_unknown_op() {
        let mut b = sample().encode();
        b[0] = 0xFF;
        assert_eq!(Nqe::decode(&b), Err(NkError::MalformedNqe));
    }

    #[test]
    fn reserved_bytes_are_zero() {
        let b = sample().encode();
        assert_eq!(&b[27..32], &[0, 0, 0, 0, 0]);
    }

    #[test]
    fn completion_builder_copies_identity() {
        let req = Nqe::new(OpType::Connect, VmId(1), QueueSetId(0), SocketId(7))
            .with_op_data(SockAddr::v4(10, 0, 0, 1, 80).pack());
        let comp = Nqe::completion_for(&req, OpResult::Ok, 42).unwrap();
        assert_eq!(comp.op, OpType::ConnectComplete);
        assert_eq!(comp.vm, req.vm);
        assert_eq!(comp.queue_set, req.queue_set);
        assert_eq!(comp.socket, req.socket);
        assert_eq!(comp.result(), OpResult::Ok);
        assert_eq!(comp.aux(), 42);

        let consumed = Nqe::new(OpType::RecvConsumed, VmId(1), QueueSetId(0), SocketId(7));
        assert!(Nqe::completion_for(&consumed, OpResult::Ok, 0).is_none());
    }

    #[test]
    fn addr_accessor_unpacks_op_data() {
        let addr = SockAddr::v4(192, 168, 0, 9, 4433);
        let nqe =
            Nqe::new(OpType::Bind, VmId(1), QueueSetId(0), SocketId(1)).with_op_data(addr.pack());
        assert_eq!(nqe.addr(), addr);
    }

    #[test]
    fn null_handle_is_preserved() {
        let nqe = Nqe::new(OpType::Close, VmId(1), QueueSetId(0), SocketId(1));
        let decoded = Nqe::decode(&nqe.encode()).unwrap();
        assert!(decoded.data.is_null());
        assert_eq!(decoded.size, 0);
    }
}
