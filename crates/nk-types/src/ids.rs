//! Identifiers used throughout NetKernel.
//!
//! The NQE format (paper, Figure 3) reserves one byte for the VM identifier,
//! one byte for the queue-set identifier and four bytes for the socket
//! identifier, so the corresponding newtypes wrap `u8`/`u32`.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a host in a NetKernel cluster.
///
/// The cluster address scheme folds the host id into the second octet of
/// every NSM vNIC address (`10.<host>.0.<nsm>`), so a `u8` covers the fabric
/// a single top-of-rack switch can serve.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct HostId(pub u8);

/// Identifier of a tenant virtual machine on a host.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct VmId(pub u8);

/// Identifier of a Network Stack Module (NSM) on a host.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NsmId(pub u8);

/// Identifier of a queue set inside an NK device.
///
/// There is one queue set per vCPU on each side (paper §4.3), so the id space
/// is small and a `u8` suffices.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct QueueSetId(pub u8);

/// Identifier of a socket inside a VM or an NSM.
///
/// The paper uses the address of the `sock` struct; here an opaque 32-bit
/// handle allocated by the owning side plays the same role.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct SocketId(pub u32);

impl HostId {
    /// Raw byte value as folded into fabric addresses.
    pub fn raw(self) -> u8 {
        self.0
    }
}

impl VmId {
    /// Raw byte value as stored in an NQE.
    pub fn raw(self) -> u8 {
        self.0
    }
}

impl NsmId {
    /// Raw byte value as stored in the CoreEngine connection table.
    pub fn raw(self) -> u8 {
        self.0
    }
}

impl QueueSetId {
    /// Raw byte value as stored in an NQE.
    pub fn raw(self) -> u8 {
        self.0
    }
}

impl SocketId {
    /// Raw value as stored in an NQE.
    pub fn raw(self) -> u32 {
        self.0
    }

    /// A sentinel id meaning "no socket yet" (used by `socket()` requests
    /// before the NSM side has allocated its socket).
    pub const NONE: SocketId = SocketId(u32::MAX);
}

impl fmt::Debug for HostId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "host{}", self.0)
    }
}

impl fmt::Display for HostId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl fmt::Debug for VmId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "vm{}", self.0)
    }
}

impl fmt::Debug for NsmId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "nsm{}", self.0)
    }
}

impl fmt::Debug for QueueSetId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "qs{}", self.0)
    }
}

impl fmt::Debug for SocketId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if *self == SocketId::NONE {
            write!(f, "sock(none)")
        } else {
            write!(f, "sock{}", self.0)
        }
    }
}

impl fmt::Display for VmId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl fmt::Display for NsmId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// The *VM tuple* of the CoreEngine connection table: ⟨VM id, queue set id,
/// VM socket id⟩ (paper §4.3, Figure 6).
///
/// The same shape is reused for the *NSM tuple* with [`ConnKey::entity`]
/// holding the NSM id.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug, Serialize, Deserialize)]
pub struct ConnKey {
    /// Owning entity (a VM id for VM tuples, an NSM id for NSM tuples).
    pub entity: u8,
    /// Queue set within the entity's NK device.
    pub queue_set: QueueSetId,
    /// Socket id within the entity.
    pub socket: SocketId,
}

impl ConnKey {
    /// Build a VM-side connection key.
    pub fn vm(vm: VmId, queue_set: QueueSetId, socket: SocketId) -> Self {
        ConnKey {
            entity: vm.0,
            queue_set,
            socket,
        }
    }

    /// Build an NSM-side connection key.
    pub fn nsm(nsm: NsmId, queue_set: QueueSetId, socket: SocketId) -> Self {
        ConnKey {
            entity: nsm.0,
            queue_set,
            socket,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn socket_none_sentinel_is_distinct() {
        assert_ne!(SocketId(0), SocketId::NONE);
        assert_eq!(SocketId(u32::MAX), SocketId::NONE);
    }

    #[test]
    fn conn_key_constructors_carry_entity() {
        let k = ConnKey::vm(VmId(3), QueueSetId(1), SocketId(42));
        assert_eq!(k.entity, 3);
        let k = ConnKey::nsm(NsmId(7), QueueSetId(0), SocketId(9));
        assert_eq!(k.entity, 7);
        assert_eq!(k.socket, SocketId(9));
    }

    #[test]
    fn debug_formats_are_compact() {
        assert_eq!(format!("{:?}", HostId(3)), "host3");
        assert_eq!(format!("{:?}", VmId(2)), "vm2");
        assert_eq!(format!("{:?}", NsmId(1)), "nsm1");
        assert_eq!(format!("{:?}", QueueSetId(0)), "qs0");
        assert_eq!(format!("{:?}", SocketId(5)), "sock5");
        assert_eq!(format!("{:?}", SocketId::NONE), "sock(none)");
    }
}
