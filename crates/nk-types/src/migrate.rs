//! Cross-host migration payloads: identity exports and warm-migration
//! connection snapshots.
//!
//! A *drained* migration moves only VM identity ([`VmExport`]): the
//! destination serves new connections while pinned ones finish on the
//! source. A *warm* migration also transplants the live stack state of
//! every pinned connection ([`VmWarmExport`]): sequence numbers, windows,
//! buffered and unacknowledged bytes, the ephemeral-port binding, plus the
//! ServiceLib- and GuestLib-side bookkeeping the connection spans. The
//! export is a consistent snapshot taken inside a freeze window and
//! installed at the destination in one step — the same
//! snapshot-and-install handoff "A Wait-Free Universal Construct for Large
//! Objects" uses for large-object ownership transfer.
//!
//! Everything here is serializable: an export is a value that could cross
//! a real control-plane wire, not a bundle of live Rust objects.

use crate::addr::SockAddr;
use crate::config::VmConfig;
use crate::ids::{HostId, NsmId, QueueSetId, SocketId, VmId};
use serde::{Deserialize, Serialize};

/// Host-independent snapshot of a VM's identity, produced by
/// `NetKernelHost::export_vm` and consumed by `NetKernelHost::import_vm` on
/// the destination host of a cross-host migration.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct VmExport {
    /// The VM's configuration (identity, vCPUs, tenant, rate limit).
    pub vm: VmConfig,
    /// The NSM that was serving the VM on the source host — the share whose
    /// pinned connections drain (or, warm, move).
    pub from_nsm: NsmId,
}

/// TCP phase of a transplantable connection. Only post-handshake phases
/// move: an embryonic connection has no state worth carrying, and a closed
/// one has none left.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum TcpPhase {
    /// Data transfer.
    Established,
    /// We closed first; FIN sent (or queued), awaiting its ACK.
    FinWait1,
    /// Our FIN was acknowledged; waiting for the peer's FIN.
    FinWait2,
    /// Peer closed first; the application may still send.
    CloseWait,
    /// Both sides closed simultaneously.
    Closing,
    /// Peer closed, our FIN is in flight.
    LastAck,
}

/// Serializable state of one TCP connection, exported from the source NSM's
/// stack and installed into the destination NSM's stack.
///
/// The snapshot rewinds the send side to the first unacknowledged byte
/// (go-back-N): whatever was in flight when the freeze window closed is
/// simply retransmitted by the destination, so nothing on the wire needs to
/// survive the handoff. Congestion-control state is deliberately *not*
/// transplanted — the path changed with the host, so the window is
/// re-probed from its initial value, exactly as after a route change.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TcpConnSnapshot {
    /// Local endpoint — the *source* NSM's vNIC address and the ephemeral
    /// (or bound) port. The 4-tuple is the connection's identity and
    /// survives the move; the fabric reroutes the address.
    pub local: SockAddr,
    /// Remote endpoint.
    pub remote: SockAddr,
    /// TCP phase at snapshot time.
    pub phase: TcpPhase,
    /// First unacknowledged sequence number (send side resumes here).
    pub snd_una: u32,
    /// Unacknowledged plus unsent bytes, from `snd_una` onwards.
    pub send_buf: Vec<u8>,
    /// Send-buffer capacity in bytes.
    pub send_buf_cap: usize,
    /// Peer's last advertised receive window.
    pub snd_wnd: u32,
    /// The application already closed the write side.
    pub fin_queued: bool,
    /// Next expected receive sequence number.
    pub rcv_nxt: u32,
    /// In-order received bytes not yet read by the application.
    pub recv_buf: Vec<u8>,
    /// Receive-buffer capacity in bytes.
    pub recv_buf_cap: usize,
    /// Out-of-order segments awaiting the gap to fill, as (seq, payload).
    pub ooo: Vec<(u32, Vec<u8>)>,
    /// Sequence number of the peer's FIN, if one was seen.
    pub peer_fin_seq: Option<u32>,
    /// The peer's FIN has been consumed.
    pub peer_fin_received: bool,
    /// Smoothed RTT estimate, carried so the destination's retransmission
    /// timer starts calibrated instead of at the initial RTO.
    pub srtt_ns: Option<u64>,
    /// RTT variance estimate.
    pub rttvar_ns: u64,
    /// Current retransmission timeout.
    pub rto_ns: u64,
}

/// Guest-side bookkeeping of one transplanted socket: what GuestLib must
/// recreate on the destination so the application keeps using the same
/// socket id without observing the move.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct GuestSockSnapshot {
    /// The application-visible socket id (preserved across the move).
    pub id: SocketId,
    /// VM-side queue set the socket is pinned to.
    pub queue_set: QueueSetId,
    /// Local address, when bound.
    pub local: Option<SockAddr>,
    /// Remote address.
    pub remote: Option<SockAddr>,
    /// The guest already observed the peer's close.
    pub peer_closed: bool,
    /// Send-budget capacity in bytes.
    pub send_buf_cap: usize,
    /// Send-budget bytes reserved at snapshot time (payload handed to the
    /// NSM but not yet credited back).
    pub send_reserved: usize,
    /// Received payload the application has not consumed yet, re-parked in
    /// the destination's hugepages on install.
    pub rx_bytes: Vec<u8>,
    /// Epoll interest bits registered on the socket.
    pub interest: u8,
}

/// One pinned connection's complete cross-layer state: the TCP machine,
/// the ServiceLib translation context, and the guest socket.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ConnSnapshot {
    /// Guest-side socket id (the key of the CoreEngine VM tuple).
    pub guest_sock: SocketId,
    /// VM-side queue set of the tuple.
    pub vm_queue_set: QueueSetId,
    /// The TCP state machine.
    pub tcp: TcpConnSnapshot,
    /// Payload accepted from the guest but not yet pushed into the stack
    /// (ServiceLib's pending-send queue, in order).
    pub pending_send: Vec<Vec<u8>>,
    /// Receive-credit bytes announced to the guest and not yet consumed.
    pub rx_outstanding: usize,
    /// The guest socket to recreate.
    pub guest: GuestSockSnapshot,
}

/// A warm cross-host export: the VM's identity plus the live state of every
/// connection pinned to its source share. Installing this at the
/// destination moves the connections instead of draining them — the source
/// share empties immediately.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct VmWarmExport {
    /// The identity export a drained migration would carry.
    pub base: VmExport,
    /// The host the VM is leaving (the fabric reroutes its connection
    /// addresses away from this host's block).
    pub from_host: HostId,
    /// Every pinned connection, in guest-socket order.
    pub conns: Vec<ConnSnapshot>,
}

impl VmWarmExport {
    /// The migrating VM's id.
    pub fn vm_id(&self) -> VmId {
        self.base.vm.id
    }

    /// The distinct local addresses of the transplanted connections — the
    /// addresses the fabric must reroute to the destination host, in
    /// ascending order.
    pub fn rerouted_ips(&self) -> Vec<u32> {
        let mut ips: Vec<u32> = self.conns.iter().map(|c| c.tcp.local.ip).collect();
        ips.sort_unstable();
        ips.dedup();
        ips
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::VmConfig;

    fn snapshot() -> ConnSnapshot {
        ConnSnapshot {
            guest_sock: SocketId(3),
            vm_queue_set: QueueSetId(0),
            tcp: TcpConnSnapshot {
                local: SockAddr::new(0x0A01_0001, 40_000),
                remote: SockAddr::new(0xC0A8_0001, 7),
                phase: TcpPhase::Established,
                snd_una: 5_000,
                send_buf: vec![1, 2, 3],
                send_buf_cap: 64 * 1024,
                snd_wnd: 32 * 1024,
                fin_queued: false,
                rcv_nxt: 9_000,
                recv_buf: vec![7; 10],
                recv_buf_cap: 64 * 1024,
                ooo: vec![(9_100, vec![9; 4])],
                peer_fin_seq: None,
                peer_fin_received: false,
                srtt_ns: Some(200_000),
                rttvar_ns: 50_000,
                rto_ns: 10_000_000,
            },
            pending_send: vec![vec![4, 5]],
            rx_outstanding: 10,
            guest: GuestSockSnapshot {
                id: SocketId(3),
                queue_set: QueueSetId(0),
                local: None,
                remote: Some(SockAddr::new(0xC0A8_0001, 7)),
                peer_closed: false,
                send_buf_cap: 64 * 1024,
                send_reserved: 2,
                rx_bytes: vec![7; 10],
                interest: 0,
            },
        }
    }

    #[test]
    fn warm_export_round_trips_through_json() {
        let export = VmWarmExport {
            base: VmExport {
                vm: VmConfig::new(VmId(1)),
                from_nsm: NsmId(1),
            },
            from_host: HostId(1),
            conns: vec![snapshot()],
        };
        let json = serde_json::to_string(&export).expect("serializes");
        let back: VmWarmExport = serde_json::from_str(&json).expect("deserializes");
        assert_eq!(back, export);
        assert_eq!(back.vm_id(), VmId(1));
    }

    #[test]
    fn rerouted_ips_are_deduplicated_and_sorted() {
        let mut export = VmWarmExport {
            base: VmExport {
                vm: VmConfig::new(VmId(1)),
                from_nsm: NsmId(1),
            },
            from_host: HostId(1),
            conns: vec![snapshot(), snapshot()],
        };
        export.conns[1].tcp.local = SockAddr::new(0x0A01_0001, 40_001);
        assert_eq!(export.rerouted_ips(), vec![0x0A01_0001]);
        export.conns[1].tcp.local = SockAddr::new(0x0A01_0002, 40_001);
        assert_eq!(export.rerouted_ips(), vec![0x0A01_0001, 0x0A01_0002]);
    }
}
