//! The guest-facing socket API.
//!
//! NetKernel keeps the BSD socket API as the abstraction boundary between the
//! application and the infrastructure (paper §1, §4.1). Applications and
//! workload generators in this repository are written against the
//! [`SocketApi`] trait; it is implemented both by the NetKernel `GuestLib`
//! (redirecting every call into NQEs) and by the baseline in-guest stack, so
//! the *same unmodified application code* runs in both configurations — the
//! property use case 3 (§6.3) depends on.
//!
//! The API is non-blocking / readiness-based, mirroring the `epoll`-driven
//! servers used throughout the paper's evaluation. Blocking helpers are
//! provided by the host layer for the threaded execution mode.

use crate::addr::SockAddr;
use crate::error::NkResult;
use crate::ids::SocketId;
use std::ops::{BitOr, BitOrAssign};

/// Readiness events reported by [`SocketApi::epoll_wait`] (an `EPOLLIN`/
/// `EPOLLOUT`-style bit set).
#[derive(Clone, Copy, PartialEq, Eq, Default, Debug)]
pub struct PollEvents(pub u8);

impl PollEvents {
    /// No readiness.
    pub const NONE: PollEvents = PollEvents(0);
    /// Data is available to read, or a pending connection can be accepted.
    pub const READABLE: PollEvents = PollEvents(1);
    /// The socket can accept more outgoing data.
    pub const WRITABLE: PollEvents = PollEvents(2);
    /// The peer closed the connection.
    pub const HUP: PollEvents = PollEvents(4);
    /// An asynchronous error is pending on the socket.
    pub const ERROR: PollEvents = PollEvents(8);

    /// True when no bit is set.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// True when every bit of `other` is set in `self`.
    pub fn contains(self, other: PollEvents) -> bool {
        self.0 & other.0 == other.0
    }

    /// True when the socket is readable.
    pub fn readable(self) -> bool {
        self.contains(PollEvents::READABLE)
    }

    /// True when the socket is writable.
    pub fn writable(self) -> bool {
        self.contains(PollEvents::WRITABLE)
    }

    /// True when the peer hung up.
    pub fn hup(self) -> bool {
        self.contains(PollEvents::HUP)
    }

    /// True when an error is pending.
    pub fn error(self) -> bool {
        self.contains(PollEvents::ERROR)
    }
}

impl BitOr for PollEvents {
    type Output = PollEvents;
    fn bitor(self, rhs: PollEvents) -> PollEvents {
        PollEvents(self.0 | rhs.0)
    }
}

impl BitOrAssign for PollEvents {
    fn bitor_assign(&mut self, rhs: PollEvents) {
        self.0 |= rhs.0;
    }
}

/// One readiness event returned by [`SocketApi::epoll_wait`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct EpollEvent {
    /// The socket that became ready.
    pub socket: SocketId,
    /// The readiness bits.
    pub events: PollEvents,
}

/// Socket options understood by [`SocketApi::set_sockopt`].
///
/// Only the options exercised by the paper's workloads are modelled.
pub mod sockopt {
    /// Allow multiple listeners to share a port (`SO_REUSEPORT`, used by the
    /// multi-core epoll servers in §7.4).
    pub const REUSEPORT: u32 = 1;
    /// Disable Nagle's algorithm (`TCP_NODELAY`).
    pub const NODELAY: u32 = 2;
    /// Send buffer size in bytes (`SO_SNDBUF`).
    pub const SNDBUF: u32 = 3;
    /// Receive buffer size in bytes (`SO_RCVBUF`).
    pub const RCVBUF: u32 = 4;
    /// Congestion control algorithm selector (`TCP_CONGESTION`); values are
    /// the discriminants of `CcKind`.
    pub const CONGESTION: u32 = 5;
}

/// `how` argument of [`SocketApi::shutdown`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ShutdownHow {
    /// Close the read side.
    Read,
    /// Close the write side (sends FIN once buffered data drains).
    Write,
    /// Close both sides.
    Both,
}

impl ShutdownHow {
    /// Encode into an NQE `op_data` value.
    pub fn encode(self) -> u64 {
        match self {
            ShutdownHow::Read => 0,
            ShutdownHow::Write => 1,
            ShutdownHow::Both => 2,
        }
    }

    /// Decode from an NQE `op_data` value (unknown values mean `Both`).
    pub fn decode(v: u64) -> ShutdownHow {
        match v {
            0 => ShutdownHow::Read,
            1 => ShutdownHow::Write,
            _ => ShutdownHow::Both,
        }
    }
}

/// The BSD-socket-style API applications program against.
///
/// All calls are non-blocking: operations that cannot complete immediately
/// return [`crate::NkError::WouldBlock`] and the caller is expected to wait
/// for the corresponding readiness event via [`SocketApi::epoll_wait`].
///
/// Implementations must be drivable by repeatedly calling
/// [`SocketApi::drive`], which performs pending protocol work (processing
/// completion NQEs for the NetKernel GuestLib, running the TCP state machine
/// for the baseline stack) without blocking.
pub trait SocketApi {
    /// Create a new stream socket and return its id.
    fn socket(&mut self) -> NkResult<SocketId>;

    /// Bind the socket to a local address.
    fn bind(&mut self, sock: SocketId, addr: SockAddr) -> NkResult<()>;

    /// Mark the socket as a passive listener with the given backlog.
    fn listen(&mut self, sock: SocketId, backlog: u32) -> NkResult<()>;

    /// Accept a pending connection. Returns the new socket and the peer
    /// address, or `WouldBlock` when the accept queue is empty.
    fn accept(&mut self, sock: SocketId) -> NkResult<(SocketId, SockAddr)>;

    /// Start connecting to a remote address. Completion is reported through a
    /// `WRITABLE` readiness event (or `ERROR` on failure).
    fn connect(&mut self, sock: SocketId, addr: SockAddr) -> NkResult<()>;

    /// Queue up to `data.len()` bytes for transmission; returns the number of
    /// bytes accepted into the send buffer.
    fn send(&mut self, sock: SocketId, data: &[u8]) -> NkResult<usize>;

    /// Receive up to `buf.len()` bytes; returns the number of bytes copied.
    /// Returns `Ok(0)` once the peer has closed and all data was consumed.
    fn recv(&mut self, sock: SocketId, buf: &mut [u8]) -> NkResult<usize>;

    /// Set a socket option (see [`sockopt`]).
    fn set_sockopt(&mut self, sock: SocketId, opt: u32, value: u32) -> NkResult<()>;

    /// Shut down one or both directions of the connection.
    fn shutdown(&mut self, sock: SocketId, how: ShutdownHow) -> NkResult<()>;

    /// Close the socket and release its resources.
    fn close(&mut self, sock: SocketId) -> NkResult<()>;

    /// Register interest in readiness events for `sock`.
    fn epoll_register(&mut self, sock: SocketId, interest: PollEvents) -> NkResult<()>;

    /// Remove `sock` from the interest set.
    fn epoll_unregister(&mut self, sock: SocketId) -> NkResult<()>;

    /// Collect readiness events for registered sockets, up to `max_events`.
    /// Never blocks; an empty vector means nothing is ready.
    fn epoll_wait(&mut self, max_events: usize) -> Vec<EpollEvent>;

    /// Current readiness of a single socket, regardless of registration.
    fn poll(&mut self, sock: SocketId) -> PollEvents;

    /// Perform pending non-blocking protocol work (drain completion queues,
    /// run timers). Returns the number of internal events processed, which is
    /// `0` when there was nothing to do.
    fn drive(&mut self) -> usize;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poll_events_bit_ops() {
        let mut e = PollEvents::NONE;
        assert!(e.is_empty());
        e |= PollEvents::READABLE;
        e |= PollEvents::WRITABLE;
        assert!(e.readable());
        assert!(e.writable());
        assert!(!e.hup());
        assert!(e.contains(PollEvents::READABLE | PollEvents::WRITABLE));
        assert!(!e.contains(PollEvents::ERROR));
    }

    #[test]
    fn shutdown_how_roundtrip() {
        for how in [ShutdownHow::Read, ShutdownHow::Write, ShutdownHow::Both] {
            assert_eq!(ShutdownHow::decode(how.encode()), how);
        }
        assert_eq!(ShutdownHow::decode(99), ShutdownHow::Both);
    }
}
