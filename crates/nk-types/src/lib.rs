//! Common types shared by every NetKernel crate.
//!
//! This crate defines the vocabulary of the NetKernel architecture described
//! in *"NetKernel: Making Network Stack Part of the Virtualized
//! Infrastructure"* (Niu et al., USENIX ATC 2020):
//!
//! * identifiers for VMs, NSMs, queue sets and sockets ([`ids`]),
//! * the 32-byte NetKernel Queue Element wire format ([`nqe`]),
//! * the socket operations and execution results carried by NQEs ([`ops`]),
//! * simplified socket addresses ([`addr`]),
//! * error types ([`error`]),
//! * configuration for hosts, VMs and NSMs ([`config`]),
//! * deterministic fault-injection plans ([`faults`]),
//! * operator control-plane policies and decision events ([`control`]),
//! * cluster-scope configurations, placement policies and events ([`cluster`]),
//! * cross-host migration payloads, drained and warm ([`migrate`]),
//! * the provider-facing constants of the testbed ([`constants`]),
//! * and the guest-facing non-blocking socket API trait ([`api`]) that both
//!   the NetKernel `GuestLib` and the in-guest baseline stack implement.

pub mod addr;
pub mod api;
pub mod cluster;
pub mod config;
pub mod constants;
pub mod control;
pub mod error;
pub mod faults;
pub mod ids;
pub mod migrate;
pub mod nqe;
pub mod ops;

pub use addr::SockAddr;
pub use api::{EpollEvent, PollEvents, ShutdownHow, SocketApi};
pub use cluster::{ClusterAction, ClusterConfig, ClusterEvent, ClusterPolicy, ObsConfig};
pub use config::{
    CcKind, HostConfig, IsolationPolicy, NsmConfig, StackKind, VmConfig, VmToNsmPolicy,
};
pub use control::{ControlAction, ControlEvent, ControlPolicy, ControlTarget};
pub use error::{NkError, NkResult};
pub use faults::{FaultAction, FaultEvent, FaultPlan, LinkFault};
pub use ids::{ConnKey, HostId, NsmId, QueueSetId, SocketId, VmId};
pub use migrate::{
    ConnSnapshot, GuestSockSnapshot, TcpConnSnapshot, TcpPhase, VmExport, VmWarmExport,
};
pub use nqe::{DataHandle, Nqe, NQE_SIZE};
pub use ops::{OpResult, OpType};
