//! The sharded cluster-step executor: hosts across worker threads, rounds
//! separated by barriers, byte-identical results for any thread count.
//!
//! `Cluster::step` walks every host in `HostId` order — serially, so wall
//! clock grows linearly with hosts. This module parallelises that walk
//! *without changing a single observable byte*:
//!
//! * **Hosts are the unit of parallelism.** Each worker thread owns a
//!   disjoint shard of hosts (round-robin over `HostId` order). Within a
//!   round a host only touches its own state plus its uplink channel ends,
//!   so shards never share mutable state.
//! * **Rounds are barriers.** A step is `begin` / repeated `round` /
//!   `close`, and between rounds *all* workers park while the coordinator
//!   runs the hub — the ToR switch and the ToR-attached endpoint stacks —
//!   exactly where the serial loop ran them. The hub drains every host's
//!   uplink in route order (ascending `HostId`), which is the deterministic
//!   cross-shard merge point.
//! * **Quiescence is a sum.** The exit decision (`work == 0`, round bound)
//!   depends only on the *total* work of a round, and sums are independent
//!   of shard assignment — so every thread count runs the same number of
//!   rounds and the virtual-time semantics are unchanged.
//!
//! The executor also keeps the model numbers the `par01` experiment
//! reports: `serial_work` (what one thread executes) next to
//! `critical_work` (the per-round maximum shard plus the hub — the
//! schedule's critical path). Their ratio is the thread-count-independent
//! speedup of the sharding itself, which matters because CI runners and
//! the development container often pin the process to a single core where
//! wall clock cannot show it.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// The cluster-facing step protocol of one shardable unit (a
/// [`nk_host::NetKernelHost`]): open the step, poll rounds, close the step.
pub trait StepUnit: Send {
    /// Open a step of `dt_ns` (advance time, apply due faults).
    fn begin(&mut self, dt_ns: u64) -> usize;
    /// One poll round over the unit's datapath.
    fn round(&mut self) -> usize;
    /// Close the step (the control phase).
    fn close(&mut self) -> usize;
}

impl StepUnit for nk_host::NetKernelHost {
    fn begin(&mut self, dt_ns: u64) -> usize {
        self.begin_step(dt_ns)
    }
    fn round(&mut self) -> usize {
        self.poll_round()
    }
    fn close(&mut self) -> usize {
        self.end_step()
    }
}

/// The poll-phase protocol of one intra-host share lane (an
/// [`nk_host::ShareLane`]): lanes only exist between a step's begin and
/// close — the host runs those serially on the re-assembled whole — so the
/// unit interface is a single round entry point.
pub trait LaneUnit: Send {
    /// One poll round over the lane's slice of a host datapath.
    fn lane_round(&mut self, now_ns: u64) -> usize;
}

impl LaneUnit for nk_host::ShareLane {
    fn lane_round(&mut self, now_ns: u64) -> usize {
        self.poll_round(now_ns)
    }
}

/// What one driven step did.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StepOutcome {
    /// Total work items (begin + rounds + hub + close).
    pub work: usize,
    /// Rounds executed.
    pub rounds: usize,
    /// True when the step ended because a full round reported no work
    /// (false: the round bound cut it off).
    pub quiescent: bool,
}

/// Work counters of one shard, accumulated across steps.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Hosts assigned to this shard.
    pub units: usize,
    /// Work done in begin phases.
    pub begin_work: u64,
    /// Work done in poll rounds.
    pub poll_work: u64,
    /// Work done in close phases.
    pub close_work: u64,
}

/// Executor counters: per-phase totals, per-shard breakdowns, and the
/// serial-vs-critical-path work model.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Worker threads actually used (after clamping to the unit count).
    pub threads: usize,
    /// Steps driven.
    pub steps: u64,
    /// Rounds executed across all steps.
    pub rounds: u64,
    /// Work done in begin phases, all shards.
    pub begin_work: u64,
    /// Work done in poll rounds, all shards.
    pub poll_work: u64,
    /// Work done in close phases, all shards.
    pub close_work: u64,
    /// Work done by the hub (ToR + endpoint stacks) at round barriers.
    pub hub_work: u64,
    /// Frames the ToR forwarded at round barriers (the cross-shard edge).
    pub barrier_frames: u64,
    /// Total work items — what a single thread executes.
    pub serial_work: u64,
    /// Critical-path work items: per phase the *maximum* shard (phases run
    /// in parallel) plus the full hub (it runs serially at the barrier).
    /// `serial_work / critical_work` is the modeled speedup of the
    /// sharding, independent of how many cores the process actually gets.
    pub critical_work: u64,
    /// Per-shard breakdown, indexed by shard.
    pub shards: Vec<ShardStats>,
}

impl ExecStats {
    /// Modeled speedup of the sharded schedule over the serial walk:
    /// `serial_work / critical_work` (1.0 when nothing ran yet).
    ///
    /// `serial_work` is every work item executed — what one thread would
    /// run. `critical_work` is the schedule's critical path, accumulated as
    /// the work happens, so the serial hub share is accounted per round
    /// rather than assumed away:
    ///
    /// ```text
    /// critical_work = Σ over rounds ( max(shard poll work) + hub work )
    ///               + Σ over steps  ( begin + close terms )
    /// ```
    ///
    /// where the begin/close terms are the per-phase *maximum* shard when
    /// the phase ran sharded, or the full phase work when it ran serially
    /// on the coordinator (as in lane mode, see
    /// [`ShardedExecutor::note_begin_work`]). An earlier version divided by
    /// the per-round maximum shard alone — one unit per shard round, no
    /// hub — which over-reported speedup whenever the serial hub did real
    /// work, precisely the regime intra-host sharding lives in (the hub
    /// carries the vNIC switch every round).
    ///
    /// Worked example: one round, 8 lanes × 12 work items dealt 2-per-shard
    /// onto 4 shards, and a hub doing 8 items at the barrier. Serially
    /// that's `8 × 12 + 8 = 104` items; the critical path is one shard's
    /// `2 × 12 = 24` plus the hub's 8 = 32, so the model reports
    /// `104 / 32 = 3.25`:
    ///
    /// ```
    /// use nk_cluster::ExecStats;
    /// let stats = ExecStats {
    ///     serial_work: 104,
    ///     critical_work: 32,
    ///     ..Default::default()
    /// };
    /// assert!((stats.modeled_speedup() - 3.25).abs() < 1e-12);
    /// assert_eq!(ExecStats::default().modeled_speedup(), 1.0);
    /// ```
    pub fn modeled_speedup(&self) -> f64 {
        if self.critical_work == 0 {
            1.0
        } else {
            self.serial_work as f64 / self.critical_work as f64
        }
    }
}

/// How many times a waiter spin-loops before each wait falls back to
/// [`std::thread::yield_now`]. Small on purpose: the common case (every
/// other worker is about to arrive) resolves within a few dozen iterations,
/// and anything longer means the machine is oversubscribed — more runnable
/// threads than cores, the normal state of CI runners — where burning the
/// timeslice spinning *prevents* the thread we're waiting for from running.
const BARRIER_SPIN_LIMIT: u32 = 128;

/// A sense-reversing barrier that spins briefly and then yields.
///
/// `std::sync::Barrier` parks on a condvar — a syscall per round per
/// thread, paid 10–30 times per step. Poll rounds are microseconds long, so
/// the barrier spins up to [`BARRIER_SPIN_LIMIT`] iterations (the common
/// case: every other worker is about to arrive) and then yields its
/// timeslice between polls, so an oversubscribed machine (CI pinning
/// everything to one core) still makes progress instead of collapsing into
/// N−1 threads busy-waiting on the one that holds the core.
struct SpinBarrier {
    parties: usize,
    arrived: AtomicUsize,
    generation: AtomicUsize,
}

impl SpinBarrier {
    fn new(parties: usize) -> Self {
        SpinBarrier {
            parties,
            arrived: AtomicUsize::new(0),
            generation: AtomicUsize::new(0),
        }
    }

    fn wait(&self) {
        let gen = self.generation.load(Ordering::Acquire);
        if self.arrived.fetch_add(1, Ordering::AcqRel) + 1 == self.parties {
            // Last arriver: reset the count *before* publishing the new
            // generation, so early risers find a clean barrier.
            self.arrived.store(0, Ordering::Release);
            self.generation
                .store(gen.wrapping_add(1), Ordering::Release);
        } else {
            let mut spins = 0u32;
            while self.generation.load(Ordering::Acquire) == gen {
                spins += 1;
                if spins < BARRIER_SPIN_LIMIT {
                    std::hint::spin_loop();
                } else {
                    std::thread::yield_now();
                }
            }
        }
    }
}

/// Drives cluster steps over a set of [`StepUnit`]s, sharded across worker
/// threads with a round barrier. `threads <= 1` (or a single unit) runs the
/// serial reference path — same code order as the pre-sharding step loop.
pub struct ShardedExecutor {
    threads: usize,
    stats: ExecStats,
}

impl ShardedExecutor {
    /// An executor using `threads` workers (clamped to at least 1).
    pub fn new(threads: usize) -> Self {
        ShardedExecutor {
            threads: threads.max(1),
            stats: ExecStats::default(),
        }
    }

    /// Configured worker-thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Accumulated executor counters.
    pub fn stats(&self) -> &ExecStats {
        &self.stats
    }

    /// Drive one step over `units` (in key order): `begin` on every unit,
    /// interleaved rounds — each unit's `round`, then `hub(now_ns)`, which
    /// must run the cross-unit fabric (the ToR) and any coordinator-side
    /// stacks and return `(work, frames_forwarded)` — until a full round
    /// reports no work or `max_rounds` is hit, then (when `close` is set)
    /// `close` on every unit.
    ///
    /// The hub always runs on the caller's thread with every worker parked
    /// at the barrier, so everything it touches is free of data races and
    /// ordered identically for any thread count.
    pub fn drive<K, U, H>(
        &mut self,
        units: &mut BTreeMap<K, U>,
        hub: H,
        now_ns: u64,
        dt_ns: u64,
        max_rounds: usize,
        close: bool,
    ) -> StepOutcome
    where
        K: Ord,
        U: StepUnit,
        H: FnMut(u64) -> (usize, usize),
    {
        let shard_count = self.threads.min(units.len()).max(1);
        self.stats.threads = shard_count;
        if self.stats.shards.len() != shard_count {
            self.stats.shards = vec![ShardStats::default(); shard_count];
        }
        let outcome = if shard_count <= 1 {
            self.drive_serial(units, hub, now_ns, dt_ns, max_rounds, close)
        } else {
            self.drive_sharded(units, hub, now_ns, dt_ns, max_rounds, close, shard_count)
        };
        self.stats.steps += 1;
        self.stats.rounds += outcome.rounds as u64;
        outcome
    }

    /// The serial reference path: one implicit shard, critical path equal
    /// to serial work by construction.
    fn drive_serial<K, U, H>(
        &mut self,
        units: &mut BTreeMap<K, U>,
        mut hub: H,
        now_ns: u64,
        dt_ns: u64,
        max_rounds: usize,
        close: bool,
    ) -> StepOutcome
    where
        K: Ord,
        U: StepUnit,
        H: FnMut(u64) -> (usize, usize),
    {
        let shard = &mut self.stats.shards[0];
        shard.units = units.len();
        let mut total = 0usize;
        let mut begin = 0usize;
        for unit in units.values_mut() {
            begin += unit.begin(dt_ns);
        }
        total += begin;
        shard.begin_work += begin as u64;
        self.stats.begin_work += begin as u64;
        self.stats.serial_work += begin as u64;
        self.stats.critical_work += begin as u64;

        let mut rounds = 0usize;
        let quiescent;
        loop {
            let mut poll = 0usize;
            for unit in units.values_mut() {
                poll += unit.round();
            }
            let (hub_work, frames) = hub(now_ns);
            let work = poll + hub_work;
            rounds += 1;
            total += work;
            self.stats.shards[0].poll_work += poll as u64;
            self.stats.poll_work += poll as u64;
            self.stats.hub_work += hub_work as u64;
            self.stats.barrier_frames += frames as u64;
            self.stats.serial_work += work as u64;
            self.stats.critical_work += work as u64;
            if work == 0 {
                quiescent = true;
                break;
            }
            if rounds >= max_rounds {
                quiescent = false;
                break;
            }
        }

        if close {
            let mut end = 0usize;
            for unit in units.values_mut() {
                end += unit.close();
            }
            total += end;
            self.stats.shards[0].close_work += end as u64;
            self.stats.close_work += end as u64;
            self.stats.serial_work += end as u64;
            self.stats.critical_work += end as u64;
        }
        StepOutcome {
            work: total,
            rounds,
            quiescent,
        }
    }

    /// The sharded path: workers own disjoint unit shards, the coordinator
    /// owns the hub, a barrier separates every round.
    #[allow(clippy::too_many_arguments)]
    fn drive_sharded<K, U, H>(
        &mut self,
        units: &mut BTreeMap<K, U>,
        mut hub: H,
        now_ns: u64,
        dt_ns: u64,
        max_rounds: usize,
        close: bool,
        shard_count: usize,
    ) -> StepOutcome
    where
        K: Ord,
        U: StepUnit,
        H: FnMut(u64) -> (usize, usize),
    {
        // Round-robin in key order: shard i gets units i, i+shard_count, …
        // — the same deterministic assignment for every run.
        let mut shards: Vec<Vec<&mut U>> = (0..shard_count).map(|_| Vec::new()).collect();
        for (i, unit) in units.values_mut().enumerate() {
            shards[i % shard_count].push(unit);
        }
        for (i, shard) in shards.iter().enumerate() {
            self.stats.shards[i].units = shard.len();
        }

        // Coordinator + workers all meet at one barrier. Per-shard result
        // cells carry each phase's work back to the coordinator.
        let barrier = SpinBarrier::new(shard_count + 1);
        let stop = AtomicBool::new(false);
        let begin_cells: Vec<AtomicUsize> = (0..shard_count).map(|_| AtomicUsize::new(0)).collect();
        let round_cells: Vec<AtomicUsize> = (0..shard_count).map(|_| AtomicUsize::new(0)).collect();
        let close_cells: Vec<AtomicUsize> = (0..shard_count).map(|_| AtomicUsize::new(0)).collect();

        let mut total = 0usize;
        let mut rounds = 0usize;
        let mut quiescent = false;
        std::thread::scope(|scope| {
            for (i, mut shard) in shards.into_iter().enumerate() {
                let barrier = &barrier;
                let stop = &stop;
                let begin_cell = &begin_cells[i];
                let round_cell = &round_cells[i];
                let close_cell = &close_cells[i];
                scope.spawn(move || {
                    let mut work = 0usize;
                    for unit in shard.iter_mut() {
                        work += unit.begin(dt_ns);
                    }
                    begin_cell.store(work, Ordering::Release);
                    barrier.wait(); // begin done
                    loop {
                        barrier.wait(); // round start (or stop)
                        if stop.load(Ordering::Acquire) {
                            break;
                        }
                        let mut work = 0usize;
                        for unit in shard.iter_mut() {
                            work += unit.round();
                        }
                        round_cell.store(work, Ordering::Release);
                        barrier.wait(); // round done → hub runs
                    }
                    if close {
                        let mut work = 0usize;
                        for unit in shard.iter_mut() {
                            work += unit.close();
                        }
                        close_cell.store(work, Ordering::Release);
                    }
                });
            }

            // Coordinator: collect the begin phase.
            barrier.wait();
            let mut begin_sum = 0usize;
            let mut begin_max = 0usize;
            for (i, cell) in begin_cells.iter().enumerate() {
                let w = cell.load(Ordering::Acquire);
                begin_sum += w;
                begin_max = begin_max.max(w);
                self.stats.shards[i].begin_work += w as u64;
            }
            total += begin_sum;
            self.stats.begin_work += begin_sum as u64;
            self.stats.serial_work += begin_sum as u64;
            self.stats.critical_work += begin_max as u64;

            // Round loop: release the workers, wait them out, run the hub.
            loop {
                barrier.wait(); // round start
                barrier.wait(); // round done
                let mut poll_sum = 0usize;
                let mut poll_max = 0usize;
                for (i, cell) in round_cells.iter().enumerate() {
                    let w = cell.load(Ordering::Acquire);
                    poll_sum += w;
                    poll_max = poll_max.max(w);
                    self.stats.shards[i].poll_work += w as u64;
                }
                let (hub_work, frames) = hub(now_ns);
                let work = poll_sum + hub_work;
                rounds += 1;
                total += work;
                self.stats.poll_work += poll_sum as u64;
                self.stats.hub_work += hub_work as u64;
                self.stats.barrier_frames += frames as u64;
                self.stats.serial_work += work as u64;
                self.stats.critical_work += (poll_max + hub_work) as u64;
                if work == 0 {
                    quiescent = true;
                    break;
                }
                if rounds >= max_rounds {
                    quiescent = false;
                    break;
                }
            }
            stop.store(true, Ordering::Release);
            barrier.wait(); // workers observe stop, run their close phase
        });

        if close {
            let mut close_sum = 0usize;
            let mut close_max = 0usize;
            for (i, cell) in close_cells.iter().enumerate() {
                let w = cell.load(Ordering::Acquire);
                close_sum += w;
                close_max = close_max.max(w);
                self.stats.shards[i].close_work += w as u64;
            }
            total += close_sum;
            self.stats.close_work += close_sum as u64;
            self.stats.serial_work += close_sum as u64;
            self.stats.critical_work += close_max as u64;
        }
        StepOutcome {
            work: total,
            rounds,
            quiescent,
        }
    }

    // ---- Lane mode (intra-host sharding) -------------------------------------

    /// Account work done in a serial begin phase run by the *caller* (lane
    /// mode runs host begin/close on the coordinator, with every lane still
    /// absorbed into its host). The work counts fully into the critical
    /// path — it genuinely is serial — and is attributed to no shard.
    pub fn note_begin_work(&mut self, work: usize) {
        self.stats.begin_work += work as u64;
        self.stats.serial_work += work as u64;
        self.stats.critical_work += work as u64;
    }

    /// Account work done in a serial close phase run by the caller; see
    /// [`ShardedExecutor::note_begin_work`].
    pub fn note_close_work(&mut self, work: usize) {
        self.stats.close_work += work as u64;
        self.stats.serial_work += work as u64;
        self.stats.critical_work += work as u64;
    }

    /// Drive the poll phase of one step over a flattened list of share
    /// `lanes` (every share lane of every host in the cluster), dealt onto
    /// worker threads by *weighted* placement: lanes are taken heaviest
    /// first (by `weights`, normally last step's per-lane work; a lane
    /// with no history weighs 1) and each goes to the lightest shard —
    /// longest-processing-time dealing, so a single 8-share host saturates
    /// 4 threads instead of serialising behind the host boundary. Ties
    /// break by key, then by shard occupancy, then by shard index: the
    /// assignment is a pure function of (weights, keys, thread count).
    ///
    /// `hub` runs at every round barrier on the caller's thread with all
    /// workers parked, and must poll every host's hub (resident engine,
    /// report drain, remotes, vNIC switch) in `HostId` order, then the ToR
    /// and cluster remotes — returning `(work, frames_forwarded)` of
    /// everything it ran. Quiescence is the sum of lane work and hub work
    /// reaching zero, which is shard-assignment-independent, so every
    /// thread count (and the serial walk) runs identical rounds.
    ///
    /// Begin and close phases are *not* part of this call — run them
    /// serially around it and account them via
    /// [`ShardedExecutor::note_begin_work`] /
    /// [`ShardedExecutor::note_close_work`].
    pub fn drive_lanes<K, L, H>(
        &mut self,
        lanes: &mut BTreeMap<K, L>,
        weights: &BTreeMap<K, u64>,
        hub: H,
        now_ns: u64,
        max_rounds: usize,
    ) -> StepOutcome
    where
        K: Ord + Copy,
        L: LaneUnit,
        H: FnMut(u64) -> (usize, usize),
    {
        let shard_count = self.threads.min(lanes.len()).max(1);
        self.stats.threads = shard_count;
        if self.stats.shards.len() != shard_count {
            self.stats.shards = vec![ShardStats::default(); shard_count];
        }
        let outcome = if shard_count <= 1 {
            self.drive_lanes_serial(lanes, hub, now_ns, max_rounds)
        } else {
            self.drive_lanes_sharded(lanes, weights, hub, now_ns, max_rounds, shard_count)
        };
        self.stats.steps += 1;
        self.stats.rounds += outcome.rounds as u64;
        outcome
    }

    /// Serial lane walk (one thread or one lane): lanes in key order, then
    /// the hub — the reference order every sharded schedule must match.
    fn drive_lanes_serial<K, L, H>(
        &mut self,
        lanes: &mut BTreeMap<K, L>,
        mut hub: H,
        now_ns: u64,
        max_rounds: usize,
    ) -> StepOutcome
    where
        K: Ord,
        L: LaneUnit,
        H: FnMut(u64) -> (usize, usize),
    {
        self.stats.shards[0].units = lanes.len();
        let mut total = 0usize;
        let mut rounds = 0usize;
        let quiescent;
        loop {
            let mut poll = 0usize;
            for lane in lanes.values_mut() {
                poll += lane.lane_round(now_ns);
            }
            let (hub_work, frames) = hub(now_ns);
            let work = poll + hub_work;
            rounds += 1;
            total += work;
            self.stats.shards[0].poll_work += poll as u64;
            self.stats.poll_work += poll as u64;
            self.stats.hub_work += hub_work as u64;
            self.stats.barrier_frames += frames as u64;
            self.stats.serial_work += work as u64;
            self.stats.critical_work += work as u64;
            if work == 0 {
                quiescent = true;
                break;
            }
            if rounds >= max_rounds {
                quiescent = false;
                break;
            }
        }
        StepOutcome {
            work: total,
            rounds,
            quiescent,
        }
    }

    /// The sharded lane walk: weighted LPT dealing, then the same
    /// barrier-per-round protocol as [`ShardedExecutor::drive_sharded`]
    /// minus the begin/close phases.
    fn drive_lanes_sharded<K, L, H>(
        &mut self,
        lanes: &mut BTreeMap<K, L>,
        weights: &BTreeMap<K, u64>,
        mut hub: H,
        now_ns: u64,
        max_rounds: usize,
        shard_count: usize,
    ) -> StepOutcome
    where
        K: Ord + Copy,
        L: LaneUnit,
        H: FnMut(u64) -> (usize, usize),
    {
        // Heaviest lane first (key breaks ties), each onto the lightest
        // shard. A lane with no history weighs 1, not 0, so a fresh
        // topology still spreads across shards instead of piling onto
        // shard 0.
        let mut order: Vec<(K, u64)> = lanes
            .keys()
            .map(|k| (*k, weights.get(k).copied().unwrap_or(0).max(1)))
            .collect();
        order.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        let mut loads = vec![0u64; shard_count];
        let mut occupancy = vec![0usize; shard_count];
        let mut assignment: BTreeMap<K, usize> = BTreeMap::new();
        for (key, weight) in order {
            let target = (0..shard_count)
                .min_by_key(|i| (loads[*i], occupancy[*i], *i))
                .expect("shard_count >= 1");
            loads[target] += weight;
            occupancy[target] += 1;
            assignment.insert(key, target);
        }

        let mut shards: Vec<Vec<&mut L>> = (0..shard_count).map(|_| Vec::new()).collect();
        for (key, lane) in lanes.iter_mut() {
            shards[assignment[key]].push(lane);
        }
        for (i, shard) in shards.iter().enumerate() {
            self.stats.shards[i].units = shard.len();
        }

        let barrier = SpinBarrier::new(shard_count + 1);
        let stop = AtomicBool::new(false);
        let round_cells: Vec<AtomicUsize> = (0..shard_count).map(|_| AtomicUsize::new(0)).collect();

        let mut total = 0usize;
        let mut rounds = 0usize;
        let mut quiescent = false;
        std::thread::scope(|scope| {
            for (i, mut shard) in shards.into_iter().enumerate() {
                let barrier = &barrier;
                let stop = &stop;
                let round_cell = &round_cells[i];
                scope.spawn(move || loop {
                    barrier.wait(); // round start (or stop)
                    if stop.load(Ordering::Acquire) {
                        break;
                    }
                    let mut work = 0usize;
                    for lane in shard.iter_mut() {
                        work += lane.lane_round(now_ns);
                    }
                    round_cell.store(work, Ordering::Release);
                    barrier.wait(); // round done → hub runs
                });
            }

            loop {
                barrier.wait(); // round start
                barrier.wait(); // round done
                let mut poll_sum = 0usize;
                let mut poll_max = 0usize;
                for (i, cell) in round_cells.iter().enumerate() {
                    let w = cell.load(Ordering::Acquire);
                    poll_sum += w;
                    poll_max = poll_max.max(w);
                    self.stats.shards[i].poll_work += w as u64;
                }
                let (hub_work, frames) = hub(now_ns);
                let work = poll_sum + hub_work;
                rounds += 1;
                total += work;
                self.stats.poll_work += poll_sum as u64;
                self.stats.hub_work += hub_work as u64;
                self.stats.barrier_frames += frames as u64;
                self.stats.serial_work += work as u64;
                self.stats.critical_work += (poll_max + hub_work) as u64;
                if work == 0 {
                    quiescent = true;
                    break;
                }
                if rounds >= max_rounds {
                    quiescent = false;
                    break;
                }
            }
            stop.store(true, Ordering::Release);
            barrier.wait(); // workers observe stop and exit
        });

        StepOutcome {
            work: total,
            rounds,
            quiescent,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nk_queue::unbounded::{unbounded, UnboundedConsumer, UnboundedProducer};

    /// A synthetic unit: does `load` work items per round for `busy_rounds`
    /// rounds, pushing a tagged value per item into its uplink channel.
    struct MockUnit {
        id: u32,
        load: usize,
        busy_rounds: usize,
        rounds_done: usize,
        begun: usize,
        closed: usize,
        tx: UnboundedProducer<(u32, usize)>,
    }

    impl StepUnit for MockUnit {
        fn begin(&mut self, _dt_ns: u64) -> usize {
            self.begun += 1;
            self.rounds_done = 0;
            1
        }
        fn round(&mut self) -> usize {
            if self.rounds_done >= self.busy_rounds {
                return 0;
            }
            self.rounds_done += 1;
            for item in 0..self.load {
                self.tx.push((self.id, item));
            }
            self.load
        }
        fn close(&mut self) -> usize {
            self.closed += 1;
            1
        }
    }

    /// Build `n` units with *uneven* loads (unit i does `3*i + 1` items per
    /// round, for `i + 1` rounds) plus the hub's consumer ends keyed like
    /// the units — the shape of hosts behind a ToR.
    #[allow(clippy::type_complexity)]
    fn uneven_rig(
        n: u32,
    ) -> (
        BTreeMap<u32, MockUnit>,
        BTreeMap<u32, UnboundedConsumer<(u32, usize)>>,
    ) {
        let mut units = BTreeMap::new();
        let mut rxs = BTreeMap::new();
        for id in 0..n {
            let (tx, rx) = unbounded();
            units.insert(
                id,
                MockUnit {
                    id,
                    load: 3 * id as usize + 1,
                    busy_rounds: id as usize + 1,
                    rounds_done: 0,
                    begun: 0,
                    closed: 0,
                    tx,
                },
            );
            rxs.insert(id, rx);
        }
        (units, rxs)
    }

    /// Run one step at `threads`, merging frames at the barrier in key
    /// order; returns (outcome, merged log).
    fn run_step(threads: usize, n: u32) -> (StepOutcome, Vec<(u32, usize)>) {
        let (mut units, mut rxs) = uneven_rig(n);
        let mut log = Vec::new();
        let mut exec = ShardedExecutor::new(threads);
        let outcome = exec.drive(
            &mut units,
            |_now| {
                // The "ToR": drain every uplink in key (host-id) order.
                let before = log.len();
                for rx in rxs.values_mut() {
                    rx.drain_into(&mut log);
                }
                let frames = log.len() - before;
                (frames, frames)
            },
            0,
            100,
            64,
            true,
        );
        (outcome, log)
    }

    /// The executor's core promise: under uneven shard load, the merged
    /// cross-shard frame stream is identical for any thread count, because
    /// the hub drains the channels in key order with every worker parked.
    #[test]
    fn cross_shard_merge_order_is_identical_for_any_thread_count() {
        let (serial, log1) = run_step(1, 7);
        for threads in [2, 3, 4, 8] {
            let (sharded, log_n) = run_step(threads, 7);
            assert_eq!(sharded, serial, "outcome diverged at {threads} threads");
            assert_eq!(log_n, log1, "merge order diverged at {threads} threads");
        }
        // Sanity: the log really is the full uneven workload, in key order
        // within each round.
        let expected: usize = (0..7usize).map(|i| (3 * i + 1) * (i + 1)).sum();
        assert_eq!(log1.len(), expected);
        assert_eq!(log1[0], (0, 0), "round 1 starts with unit 0");
    }

    /// Every unit runs every phase exactly once per step, whatever the
    /// shard layout.
    #[test]
    fn all_units_run_all_phases() {
        let (mut units, mut rxs) = uneven_rig(5);
        let mut exec = ShardedExecutor::new(3);
        let mut sink = Vec::new();
        for _ in 0..4 {
            exec.drive(
                &mut units,
                |_| {
                    sink.clear();
                    let mut n = 0;
                    for rx in rxs.values_mut() {
                        n += rx.drain_into(&mut sink);
                    }
                    (n, n)
                },
                0,
                100,
                64,
                true,
            );
        }
        for unit in units.values() {
            assert_eq!(unit.begun, 4);
            assert_eq!(unit.closed, 4);
        }
        assert_eq!(exec.stats().steps, 4);
    }

    /// `close: false` (the warm-migration mini-step) skips the close phase
    /// on every shard.
    #[test]
    fn ministep_skips_the_close_phase() {
        let (mut units, mut rxs) = uneven_rig(4);
        let mut exec = ShardedExecutor::new(2);
        let mut sink = Vec::new();
        exec.drive(
            &mut units,
            |_| {
                let mut n = 0;
                for rx in rxs.values_mut() {
                    n += rx.drain_into(&mut sink);
                }
                (n, n)
            },
            0,
            100,
            64,
            false,
        );
        for unit in units.values() {
            assert_eq!(unit.begun, 1);
            assert_eq!(unit.closed, 0);
        }
        assert_eq!(exec.stats().close_work, 0);
    }

    /// The round bound cuts a step that never quiesces, at the same round
    /// count for any thread count.
    #[test]
    fn round_bound_applies_identically() {
        for threads in [1, 4] {
            let (mut units, mut rxs) = uneven_rig(3);
            for unit in units.values_mut() {
                unit.busy_rounds = usize::MAX; // never goes quiet
            }
            let mut exec = ShardedExecutor::new(threads);
            let mut sink = Vec::new();
            let outcome = exec.drive(
                &mut units,
                |_| {
                    let mut n = 0;
                    for rx in rxs.values_mut() {
                        n += rx.drain_into(&mut sink);
                    }
                    (n, n)
                },
                0,
                100,
                8,
                true,
            );
            assert_eq!(outcome.rounds, 8);
            assert!(!outcome.quiescent);
        }
    }

    /// The work model: serial work is identical across thread counts;
    /// critical-path work shrinks with more shards and never exceeds
    /// serial; per-shard counters add up to the totals.
    #[test]
    fn work_model_tracks_shards_and_critical_path() {
        let (s1, _) = {
            let (mut units, mut rxs) = uneven_rig(8);
            let mut exec = ShardedExecutor::new(1);
            let mut sink = Vec::new();
            let o = exec.drive(
                &mut units,
                |_| {
                    let mut n = 0;
                    for rx in rxs.values_mut() {
                        n += rx.drain_into(&mut sink);
                    }
                    (n, n)
                },
                0,
                100,
                64,
                true,
            );
            (exec.stats().clone(), o)
        };
        let (s4, _) = {
            let (mut units, mut rxs) = uneven_rig(8);
            let mut exec = ShardedExecutor::new(4);
            let mut sink = Vec::new();
            let o = exec.drive(
                &mut units,
                |_| {
                    let mut n = 0;
                    for rx in rxs.values_mut() {
                        n += rx.drain_into(&mut sink);
                    }
                    (n, n)
                },
                0,
                100,
                64,
                true,
            );
            (exec.stats().clone(), o)
        };
        assert_eq!(s1.serial_work, s4.serial_work);
        assert_eq!(s1.rounds, s4.rounds);
        assert_eq!(s1.critical_work, s1.serial_work, "one shard: no overlap");
        assert!(
            s4.critical_work < s4.serial_work,
            "four shards overlap work: {} < {}",
            s4.critical_work,
            s4.serial_work
        );
        assert!(s4.modeled_speedup() > 1.0);
        let shard_poll: u64 = s4.shards.iter().map(|s| s.poll_work).sum();
        assert_eq!(shard_poll, s4.poll_work);
        let shard_units: usize = s4.shards.iter().map(|s| s.units).sum();
        assert_eq!(shard_units, 8);
    }

    /// The barrier round-trips under heavy oversubscription: far more
    /// parties than this machine has cores, over many generations. With a
    /// pure busy-wait this dies on a small runner (every spinning waiter
    /// steals the timeslice the late arriver needs); the bounded spin +
    /// yield backoff must keep it live.
    #[test]
    fn spin_barrier_round_trips_oversubscribed() {
        const PARTIES: usize = 33;
        const GENERATIONS: usize = 500;
        let barrier = SpinBarrier::new(PARTIES);
        let counter = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..PARTIES {
                let barrier = &barrier;
                let counter = &counter;
                scope.spawn(move || {
                    for gen in 0..GENERATIONS {
                        counter.fetch_add(1, Ordering::Relaxed);
                        barrier.wait();
                        // Everyone must have bumped the counter for this
                        // generation before anyone proceeds past the wait.
                        assert!(counter.load(Ordering::Relaxed) >= (gen + 1) * PARTIES);
                        barrier.wait();
                    }
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), PARTIES * GENERATIONS);
    }

    /// A synthetic share lane for `drive_lanes`: fixed work per round for a
    /// fixed number of rounds, frames pushed to a per-lane channel the hub
    /// merges in key order.
    struct MockLane {
        id: u32,
        load: usize,
        busy_rounds: usize,
        rounds_done: usize,
        tx: UnboundedProducer<(u32, usize)>,
    }

    impl LaneUnit for MockLane {
        fn lane_round(&mut self, _now_ns: u64) -> usize {
            if self.rounds_done >= self.busy_rounds {
                return 0;
            }
            self.rounds_done += 1;
            for item in 0..self.load {
                self.tx.push((self.id, item));
            }
            self.load
        }
    }

    #[allow(clippy::type_complexity)]
    fn lane_rig(
        n: u32,
    ) -> (
        BTreeMap<u32, MockLane>,
        BTreeMap<u32, UnboundedConsumer<(u32, usize)>>,
    ) {
        let mut lanes = BTreeMap::new();
        let mut rxs = BTreeMap::new();
        for id in 0..n {
            let (tx, rx) = unbounded();
            lanes.insert(
                id,
                MockLane {
                    id,
                    load: 5 * id as usize + 2,
                    busy_rounds: id as usize % 3 + 1,
                    rounds_done: 0,
                    tx,
                },
            );
            rxs.insert(id, rx);
        }
        (lanes, rxs)
    }

    fn run_lane_step(
        threads: usize,
        n: u32,
        weights: &BTreeMap<u32, u64>,
    ) -> (StepOutcome, Vec<(u32, usize)>, ExecStats) {
        let (mut lanes, mut rxs) = lane_rig(n);
        let mut log = Vec::new();
        let mut exec = ShardedExecutor::new(threads);
        exec.note_begin_work(3);
        let outcome = exec.drive_lanes(
            &mut lanes,
            weights,
            |_now| {
                let before = log.len();
                for rx in rxs.values_mut() {
                    rx.drain_into(&mut log);
                }
                let frames = log.len() - before;
                (frames, frames)
            },
            0,
            64,
        );
        exec.note_close_work(2);
        (outcome, log, exec.stats().clone())
    }

    /// Lane mode keeps the executor's core promise: the merged report
    /// stream, the outcome, and every thread-count-independent counter are
    /// identical for any thread count and any weight vector.
    #[test]
    fn lane_merge_order_is_identical_for_any_thread_count() {
        let no_weights = BTreeMap::new();
        let (serial, log1, s1) = run_lane_step(1, 8, &no_weights);
        // A deliberately misleading weight vector: placement may be bad,
        // bytes must not change.
        let skewed: BTreeMap<u32, u64> = (0..8u32).map(|id| (id, 1000 - id as u64)).collect();
        for threads in [2, 3, 4, 8] {
            for weights in [&no_weights, &skewed] {
                let (sharded, log_n, sn) = run_lane_step(threads, 8, weights);
                assert_eq!(sharded, serial, "outcome diverged at {threads} threads");
                assert_eq!(log_n, log1, "merge order diverged at {threads} threads");
                assert_eq!(sn.serial_work, s1.serial_work);
                assert_eq!(sn.rounds, s1.rounds);
                assert_eq!(sn.poll_work, s1.poll_work);
                assert_eq!(sn.hub_work, s1.hub_work);
                assert_eq!(sn.barrier_frames, s1.barrier_frames);
                assert_eq!(sn.begin_work, 3);
                assert_eq!(sn.close_work, 2);
            }
        }
    }

    /// Weighted dealing beats round-robin where it matters: heavy lanes
    /// spread across shards instead of stacking, so the critical path sits
    /// near the heaviest lane's own work rather than a pile of them.
    #[test]
    fn weighted_dealing_balances_uneven_lanes() {
        // 8 lanes with loads 2, 7, …, 37, each busy for exactly one round,
        // and weights matching the loads (as a converged previous step
        // would report). LPT on 4 shards pairs 37+2, 32+7, 27+12, 22+17 —
        // every shard polls exactly 39.
        let mut lanes = BTreeMap::new();
        let mut rxs = BTreeMap::new();
        for id in 0..8u32 {
            let (tx, rx) = unbounded();
            lanes.insert(
                id,
                MockLane {
                    id,
                    load: 5 * id as usize + 2,
                    busy_rounds: 1,
                    rounds_done: 0,
                    tx,
                },
            );
            rxs.insert(id, rx);
        }
        let weights: BTreeMap<u32, u64> = (0..8u32).map(|id| (id, 5 * id as u64 + 2)).collect();
        let mut exec = ShardedExecutor::new(4);
        let mut sink = Vec::new();
        exec.drive_lanes(
            &mut lanes,
            &weights,
            |_| {
                let mut n = 0;
                for rx in rxs.values_mut() {
                    n += rx.drain_into(&mut sink);
                }
                (n, n)
            },
            0,
            64,
        );
        let stats = exec.stats();
        assert_eq!(stats.threads, 4);
        let mut units: Vec<usize> = stats.shards.iter().map(|s| s.units).collect();
        units.sort();
        assert_eq!(units, vec![2, 2, 2, 2]);
        for shard in &stats.shards {
            assert_eq!(shard.poll_work, 39, "LPT must balance the lane loads");
        }
        // Round-robin dealing in key order would have put lanes {3, 7} on
        // one shard: 17 + 37 = 54 on the critical path. The balanced deal
        // caps the poll part of the critical path at 39.
        let total_poll: u64 = stats.shards.iter().map(|s| s.poll_work).sum();
        assert_eq!(total_poll, stats.poll_work);
        assert!(stats.critical_work >= stats.hub_work);
        assert!(stats.modeled_speedup() > 1.0);
    }

    /// More threads than units degrades gracefully to one unit per shard.
    #[test]
    fn threads_clamp_to_unit_count() {
        let (mut units, mut rxs) = uneven_rig(2);
        let mut exec = ShardedExecutor::new(16);
        let mut sink = Vec::new();
        exec.drive(
            &mut units,
            |_| {
                let mut n = 0;
                for rx in rxs.values_mut() {
                    n += rx.drain_into(&mut sink);
                }
                (n, n)
            },
            0,
            100,
            64,
            true,
        );
        assert_eq!(exec.stats().threads, 2);
        assert_eq!(exec.stats().shards.len(), 2);
    }
}
