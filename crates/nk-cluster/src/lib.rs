//! The cluster fabric: NetKernel hosts operated as one system.
//!
//! The paper's bet is that network stacks, once decoupled into NSMs, become
//! *infrastructure* — and infrastructure is operated at cluster scale. This
//! crate owns that scale: a [`cluster::Cluster`] assembles a set of
//! [`nk_host::NetKernelHost`]s, wires each host's virtual switch through an
//! uplink into one top-of-rack [`nk_fabric::TorSwitch`], shares a single
//! virtual clock across all of them, and runs the
//! [`nk_ctrl::placer::Placer`] — the per-host control loop lifted to cluster
//! scope — to live-migrate VMs between hosts.
//!
//! Cross-host migration is a first-class, *drained* operation: the VM's
//! identity moves immediately (new connections open on the destination
//! host's NSM), while the connections pinned on the source host keep being
//! served until their count hits zero; only then is the source share retired
//! and, when nothing else maps to it, the source NSM scaled to zero cores.
//! Every milestone is logged as an [`nk_types::ClusterEvent`] and the whole
//! log folds into a digest, so a cluster run replays byte-identically from
//! its seed.

//! The datapath is parallel when asked: [`exec::ShardedExecutor`] shards
//! hosts across worker threads with a round barrier, and the results —
//! event logs, digests, stats — are byte-identical for any
//! [`nk_types::ClusterConfig::threads`] value.
//!
//! Clearing a whole host is a *planned, revertible* operation: [`evac`]
//! compiles the evacuation into an [`nk_ctrl::EvacPlan`] (warm where the
//! exclusivity guard allows, drained otherwise), executes it in paced waves
//! with a shared freeze window, and rolls every completed action back in
//! reverse order if anything mid-plan fails — placement, routes and event
//! digest land back exactly where they started.

pub mod cluster;
pub mod evac;
pub mod exec;

pub use cluster::{Cluster, ClusterStats};
pub use evac::{ControlLogEntry, EvacFault, EvacFaultKind, EvacReport};
pub use exec::{ExecStats, LaneUnit, ShardStats, ShardedExecutor, StepOutcome, StepUnit};
