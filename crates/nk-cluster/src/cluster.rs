//! The cluster: hosts behind one top-of-rack switch, one clock, one placer.

use crate::exec::{ExecStats, ShardedExecutor, StepOutcome};
use nk_ctrl::placer::{ClusterSample, HostLoad, Placer};
use nk_ctrl::PlanEvent;
use nk_fabric::link::LinkConfig;
use nk_fabric::tor::TorSwitch;
use nk_guest::GuestLib;
use nk_host::{NetKernelHost, ShareLane};
use nk_netstack::{Segment, StackConfig, TcpStack};
use nk_obs::{FlightRecorder, FlowKey, MigrationPhase, ObsDump, ObsEventKind, PhaseWindow};
use nk_sim::{CycleLedger, Pollable, PoolMember};
use nk_types::addr::{host_prefix, HOST_PREFIX_MASK};
use nk_types::{
    ClusterAction, ClusterConfig, ClusterEvent, ControlEvent, HostId, NkError, NkResult, NsmId,
    StackKind, VmId,
};
use std::collections::BTreeMap;

/// Upper bound on freeze-window mini-steps per warm migration. The window
/// normally closes in two or three steps (one wire round trip plus a
/// quiescence check); a connection that never goes quiet — a peer streaming
/// into the VM nonstop — is cut at the bound and recovers through TCP
/// retransmission.
pub(crate) const MAX_FREEZE_STEPS: usize = 16;

/// Cluster scheduler and placement counters, for observability and tests.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ClusterStats {
    /// Cluster steps executed.
    pub steps: u64,
    /// Interleaved poll rounds executed across all steps.
    pub rounds: u64,
    /// Steps that ended early because a full round reported no work.
    pub quiescent_exits: u64,
    /// Steps whose final allowed round still reported work.
    pub round_limit_hits: u64,
    /// Cross-host migrations started (drained mode).
    pub migrations: u64,
    /// Warm cross-host migrations completed (freeze → transfer → thaw).
    pub warm_migrations: u64,
    /// Mini-steps spent inside warm-migration freeze windows (not counted
    /// under [`ClusterStats::steps`] — they happen *inside* a handover).
    pub freeze_steps: u64,
    /// Connections transplanted by warm migrations, total.
    pub conns_transplanted: u64,
    /// Drains completed (source share fully retired).
    pub drains_completed: u64,
    /// NSM shares scaled to zero after a drain.
    pub shares_retired: u64,
    /// Work done in begin phases (fault events), all hosts, all steps.
    ///
    /// The per-phase counters below are *sums over hosts*, so — like every
    /// other field here — they are identical for any
    /// [`nk_types::ClusterConfig::threads`] value. Per-shard breakdowns,
    /// which do depend on the thread count, live in
    /// [`crate::exec::ExecStats`] (see [`Cluster::exec_stats`]).
    pub begin_work: u64,
    /// Datapath work done in poll rounds, all hosts, all steps.
    pub poll_work: u64,
    /// Control actions applied in close phases, all hosts, all steps.
    pub control_work: u64,
    /// Frames the ToR forwarded at round barriers — the traffic crossing
    /// the cluster fabric (and, when sharded, the only cross-shard edge).
    pub barrier_frames: u64,
    /// Evacuation plans admitted (committed or not).
    pub evac_plans: u64,
    /// Evacuation plans that committed (every action done).
    pub evac_commits: u64,
    /// Evacuation plans rolled back after a mid-plan failure.
    pub evac_rollbacks: u64,
    /// Hosts killed outright (fault injection / operator action).
    pub hosts_killed: u64,
}

/// An in-flight drain: the VM has moved, its source share has not emptied
/// yet.
pub(crate) struct ActiveDrain {
    pub(crate) vm: VmId,
    pub(crate) from: HostId,
    pub(crate) nsm: NsmId,
}

/// A set of [`NetKernelHost`]s joined by uplinks through a top-of-rack
/// switch, sharing one virtual clock, with cross-host VM migration (drained)
/// as a first-class operation and an optional cluster placement loop.
pub struct Cluster {
    pub(crate) cfg: ClusterConfig,
    pub(crate) hosts: BTreeMap<HostId, NetKernelHost>,
    pub(crate) tor: TorSwitch<Segment>,
    /// Datacenter-level endpoints attached at the ToR (gateways, servers
    /// every host talks to).
    pub(crate) remotes: BTreeMap<u32, TcpStack>,
    /// Where each VM's *new* connections open (updated by migrations).
    pub(crate) vm_home: BTreeMap<VmId, HostId>,
    pub(crate) placer: Option<Placer>,
    pub(crate) drains: Vec<ActiveDrain>,
    pub(crate) events: Vec<ClusterEvent>,
    /// Serialized plan-event logs of every evacuation run so far, in
    /// execution order (see [`crate::evac`]).
    pub(crate) plan_events: Vec<PlanEvent>,
    /// Placement epochs completed (also stamps drain events).
    pub(crate) epoch: u64,
    pub(crate) next_epoch_ns: u64,
    pub(crate) last_sample_ns: u64,
    /// Pool-ledger snapshots at the previous placement epoch, per host NSM.
    pub(crate) prev_ledgers: BTreeMap<(HostId, PoolMember), CycleLedger>,
    /// Uplink byte counters at the previous placement epoch.
    pub(crate) prev_uplink: BTreeMap<HostId, (u64, u64)>,
    /// Per-VM forwarded bytes at the previous placement epoch.
    pub(crate) prev_vm_bytes: BTreeMap<(HostId, VmId), u64>,
    pub(crate) stats: ClusterStats,
    /// Drives the begin/rounds/close step over all hosts — serially at
    /// `threads == 1`, sharded across worker threads otherwise. Semantics
    /// are identical either way; see [`crate::exec`].
    pub(crate) exec: ShardedExecutor,
    /// Shard below the host boundary: NSM share lanes (not whole hosts)
    /// are the parallel units. See [`nk_types::ClusterConfig::shard_within_hosts`]
    /// and the `NK_CLUSTER_SHARD_WITHIN_HOSTS` override.
    pub(crate) shard_within_hosts: bool,
    /// Per-lane work from the previous lane-mode step, keyed
    /// `(host, lane key)` — the weights the next step's LPT dealing uses.
    /// Scheduling input only: results never depend on it.
    pub(crate) lane_weights: BTreeMap<(HostId, NsmId), u64>,
    /// The flight recorder: every capture happens on the coordinator —
    /// outside the sharded step or at the round barrier — in `HostId`
    /// order, so its dump is byte-identical at any thread count.
    pub(crate) obs: FlightRecorder,
    /// Control-log entries per host already mirrored into the recorder.
    pub(crate) obs_ctrl_seen: BTreeMap<HostId, usize>,
    pub(crate) now_ns: u64,
}

impl Cluster {
    /// Build a cluster from its configuration: every host comes up, gets an
    /// uplink trunk on the ToR, and (when a policy is installed) starts
    /// charging datapath work so the placer sees utilisation.
    pub fn new(cfg: ClusterConfig) -> NkResult<Self> {
        cfg.validate()?;
        let uplink = LinkConfig::ideal()
            .with_rate_gbps(cfg.uplink_rate_gbps)
            .with_latency_us(cfg.uplink_latency_us);
        let mut tor = TorSwitch::new();
        let mut hosts = BTreeMap::new();
        let mut vm_home = BTreeMap::new();
        for host_cfg in &cfg.hosts {
            let id = host_cfg.host_id;
            let mut host = NetKernelHost::new(host_cfg.clone())?;
            host.connect_uplink(tor.attach_trunk(host_prefix(id), HOST_PREFIX_MASK, uplink));
            if let Some(policy) = &cfg.policy {
                host.enable_pool_accounting(policy.pool_clock_hz);
            }
            host.set_obs_enabled(cfg.obs.enabled);
            for vm in &host_cfg.vms {
                vm_home.insert(vm.id, id);
            }
            hosts.insert(id, host);
        }
        let placer = match cfg.policy.clone() {
            Some(policy) => Some(Placer::new(policy)?),
            None => None,
        };
        let next_epoch_ns = cfg.policy.as_ref().map(|p| p.epoch_ns).unwrap_or(u64::MAX);
        let threads = Self::resolve_threads(cfg.threads);
        let shard_within_hosts = cfg.shard_within_hosts;
        let obs = FlightRecorder::new(cfg.obs);
        Ok(Cluster {
            cfg,
            hosts,
            tor,
            remotes: BTreeMap::new(),
            vm_home,
            placer,
            drains: Vec::new(),
            events: Vec::new(),
            plan_events: Vec::new(),
            epoch: 0,
            next_epoch_ns,
            last_sample_ns: 0,
            prev_ledgers: BTreeMap::new(),
            prev_uplink: BTreeMap::new(),
            prev_vm_bytes: BTreeMap::new(),
            stats: ClusterStats::default(),
            exec: ShardedExecutor::new(threads),
            shard_within_hosts: Self::resolve_shard_mode(shard_within_hosts),
            lane_weights: BTreeMap::new(),
            obs,
            obs_ctrl_seen: BTreeMap::new(),
            now_ns: 0,
        })
    }

    /// The datapath thread count: `NK_CLUSTER_THREADS` (when set to a
    /// positive integer) wins over [`ClusterConfig::threads`], so a CI job
    /// or an operator can re-run any scenario at a different parallelism
    /// without touching the config — the results are identical either way.
    fn resolve_threads(configured: usize) -> usize {
        let var = std::env::var("NK_CLUSTER_THREADS").ok();
        Self::resolve_threads_from(var.as_deref(), configured)
    }

    /// The env-free core of [`Cluster::resolve_threads`]. A value that is
    /// not a positive integer — `0`, garbage, whitespace-only — must not
    /// silently pick some other parallelism (a zero-thread executor would
    /// deadlock; an unnoticed typo would invalidate a determinism replay),
    /// so the fallback to the configured count is logged on stderr.
    pub(crate) fn resolve_threads_from(raw: Option<&str>, configured: usize) -> usize {
        let Some(raw) = raw else {
            return configured;
        };
        match raw.trim().parse::<usize>() {
            Ok(t) if t > 0 => t,
            _ => {
                eprintln!(
                    "NK_CLUSTER_THREADS={raw:?} is not a positive integer; \
                     falling back to the configured {configured} thread(s)"
                );
                configured
            }
        }
    }

    /// The sharding granularity: `NK_CLUSTER_SHARD_WITHIN_HOSTS` (when set
    /// to a recognised boolean) wins over
    /// [`ClusterConfig::shard_within_hosts`], so CI can replay any scenario
    /// at the other granularity without touching the config — the results
    /// are identical either way.
    fn resolve_shard_mode(configured: bool) -> bool {
        let var = std::env::var("NK_CLUSTER_SHARD_WITHIN_HOSTS").ok();
        Self::resolve_shard_mode_from(var.as_deref(), configured)
    }

    /// The env-free core of [`Cluster::resolve_shard_mode`]. Accepts
    /// `1/true/on/yes` and `0/false/off/no` (case-insensitive); anything
    /// else falls back to the configured mode, logged on stderr — a typo
    /// must not silently flip the granularity a replay was recorded under.
    pub(crate) fn resolve_shard_mode_from(raw: Option<&str>, configured: bool) -> bool {
        let Some(raw) = raw else {
            return configured;
        };
        match raw.trim().to_ascii_lowercase().as_str() {
            "1" | "true" | "on" | "yes" => true,
            "0" | "false" | "off" | "no" => false,
            _ => {
                eprintln!(
                    "NK_CLUSTER_SHARD_WITHIN_HOSTS={raw:?} is not a recognised boolean; \
                     falling back to the configured {configured}"
                );
                configured
            }
        }
    }

    /// The cluster's configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.cfg
    }

    /// Current virtual time in nanoseconds (shared by every host).
    pub fn now_ns(&self) -> u64 {
        self.now_ns
    }

    /// Scheduler and placement counters. Every field is independent of the
    /// datapath thread count.
    pub fn stats(&self) -> ClusterStats {
        self.stats
    }

    /// Executor counters: per-phase and per-shard work plus the
    /// serial-vs-critical-path model. Unlike [`Cluster::stats`], the
    /// per-shard breakdowns here depend on the thread count.
    pub fn exec_stats(&self) -> &ExecStats {
        self.exec.stats()
    }

    /// Datapath worker threads in use (after the `NK_CLUSTER_THREADS`
    /// override).
    pub fn threads(&self) -> usize {
        self.exec.threads()
    }

    /// Whether the datapath shards below the host boundary (after the
    /// `NK_CLUSTER_SHARD_WITHIN_HOSTS` override).
    pub fn shard_within_hosts(&self) -> bool {
        self.shard_within_hosts
    }

    /// A host by id.
    pub fn host(&self, id: HostId) -> Option<&NetKernelHost> {
        self.hosts.get(&id)
    }

    /// Mutable access to a host by id.
    pub fn host_mut(&mut self, id: HostId) -> Option<&mut NetKernelHost> {
        self.hosts.get_mut(&id)
    }

    /// Host ids, in order.
    pub fn host_ids(&self) -> Vec<HostId> {
        self.hosts.keys().copied().collect()
    }

    /// The host a VM's *new* connections currently open on.
    pub fn home_of(&self, vm: VmId) -> Option<HostId> {
        self.vm_home.get(&vm).copied()
    }

    /// Mutable access to a VM's GuestLib on a specific host. During a drain
    /// the VM briefly exists on two hosts: the retiring instance on the
    /// source (serving pinned connections) and the imported one at
    /// [`Cluster::home_of`].
    pub fn guest_on(&mut self, host: HostId, vm: VmId) -> Option<&mut GuestLib> {
        self.hosts.get_mut(&host).and_then(|h| h.guest_mut(vm))
    }

    /// Attach a datacenter-level endpoint (e.g. the echo server every
    /// tenant talks to) at the top-of-rack switch. Cross-host by
    /// construction: every host reaches it through its uplink.
    pub fn add_remote(&mut self, ip: u32) -> &mut TcpStack {
        let link = LinkConfig::ideal()
            .with_rate_gbps(self.cfg.uplink_rate_gbps)
            .with_latency_us(self.cfg.uplink_latency_us);
        let port = self.tor.attach_endpoint(ip, link);
        let stack = TcpStack::new(StackConfig::new(ip), port);
        self.remotes.insert(ip, stack);
        self.remotes.get_mut(&ip).expect("just inserted")
    }

    /// Mutable access to a previously added ToR endpoint's stack.
    pub fn remote_mut(&mut self, ip: u32) -> Option<&mut TcpStack> {
        self.remotes.get_mut(&ip)
    }

    /// The cluster event log, in application order.
    pub fn events(&self) -> &[ClusterEvent] {
        &self.events
    }

    /// Every host's control-event log merged into one cluster-wide view,
    /// ordered by `(epoch, HostId, seq)` where `seq` is the event's index
    /// in its own host's log. Each host appends only to its own log (even
    /// when hosts run on different worker threads) and the merge key never
    /// mentions wall-clock anything, so this view — like the event digest —
    /// is identical for any thread count.
    pub fn control_events(&self) -> Vec<(HostId, ControlEvent)> {
        let mut merged: Vec<(u64, HostId, usize, ControlEvent)> = Vec::new();
        for (id, host) in &self.hosts {
            for (seq, event) in host.control_events().iter().enumerate() {
                merged.push((event.epoch, *id, seq, *event));
            }
        }
        merged.sort_by_key(|&(epoch, id, seq, _)| (epoch, id, seq));
        merged
            .into_iter()
            .map(|(_, id, _, event)| (id, event))
            .collect()
    }

    /// FNV-1a digest of the serialized event log. Two runs of the same
    /// seeded configuration must produce the same digest — the check the
    /// CI determinism job replays.
    pub fn event_digest(&self) -> u64 {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for event in &self.events {
            let json = serde_json::to_string(event).expect("events serialize");
            for byte in json.as_bytes() {
                hash ^= u64::from(*byte);
                hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
            }
        }
        hash
    }

    /// Advance the whole cluster by `dt_ns`: every host opens a step (fault
    /// injection included), then all hosts, the ToR and the ToR endpoints
    /// are polled in interleaved rounds until a full round reports no work
    /// (or the round bound is hit) — so a request → uplink → ToR → remote →
    /// response round trip completes within one step. Each host's control
    /// phase closes its step, then cluster-level work runs: drain
    /// completions retire emptied source shares, and at placement-epoch
    /// boundaries the placer may migrate VMs across hosts. Returns the
    /// total work done.
    pub fn step(&mut self, dt_ns: u64) -> usize {
        let outcome = self.drive_step(dt_ns, true);
        if outcome.quiescent {
            self.stats.quiescent_exits += 1;
        } else {
            self.stats.round_limit_hits += 1;
        }
        let mut total = outcome.work;
        total += self.advance_drains();
        let now = self.now_ns;
        if self.placer.is_some() && now >= self.next_epoch_ns {
            total += self.run_placement_epoch(now);
        }
        // Seal a recorder latency epoch when one is due: every host's
        // histogram is drained in `HostId` order and merged cluster-wide.
        // The recorder runs its own virtual-time cadence
        // ([`nk_types::ObsConfig::epoch_ns`]), independent of the placement
        // epoch, so latency aggregation works without a placer installed.
        if self.obs.epoch_due(now) {
            let mut hists = Vec::with_capacity(self.hosts.len());
            for (id, host) in self.hosts.iter_mut() {
                hists.push((*id, host.obs_feed_mut().take_hist()));
            }
            self.obs.seal_epoch(now, hists);
        }
        self.stats.steps += 1;
        self.stats.rounds += outcome.rounds as u64;
        total
    }

    /// The shared core of [`Cluster::step`] and the freeze-window
    /// mini-step: advance virtual time and drive one begin / rounds
    /// (/ close, for full steps) sequence over every host through the
    /// executor. The hub closure — the ToR plus the ToR-attached endpoint
    /// stacks — runs at each round barrier with every worker parked,
    /// draining host uplinks in route order (ascending host id), so the
    /// cross-shard frame merge is deterministic for any thread count.
    pub(crate) fn drive_step(&mut self, dt_ns: u64, close: bool) -> StepOutcome {
        if self.shard_within_hosts {
            return self.drive_step_lanes(dt_ns, close);
        }
        self.now_ns += dt_ns;
        let before = {
            let s = self.exec.stats();
            (s.begin_work, s.poll_work, s.close_work, s.barrier_frames)
        };
        let tor = &mut self.tor;
        let remotes = &mut self.remotes;
        // The hub runs serially on the coordinator at every round barrier,
        // draining trunks in route order — the one place every cross-host
        // frame passes deterministically, so the recorder taps flows here.
        let obs = &mut self.obs;
        let obs_active = obs.active();
        let outcome = self.exec.drive(
            &mut self.hosts,
            |now| {
                let frames = if obs_active {
                    tor.step_with(now, |f| {
                        obs.observe_flow(
                            FlowKey {
                                src_ip: f.payload.src.ip,
                                src_port: f.payload.src.port,
                                dst_ip: f.payload.dst.ip,
                                dst_port: f.payload.dst.port,
                            },
                            f.wire_bytes as u64,
                        )
                    })
                } else {
                    tor.step(now)
                };
                let mut work = frames;
                for remote in remotes.values_mut() {
                    work += Pollable::poll(remote, now);
                }
                (work, frames)
            },
            self.now_ns,
            dt_ns,
            self.cfg.max_rounds,
            close,
        );
        let s = self.exec.stats();
        self.stats.begin_work += s.begin_work - before.0;
        self.stats.poll_work += s.poll_work - before.1;
        self.stats.control_work += s.close_work - before.2;
        self.stats.barrier_frames += s.barrier_frames - before.3;
        self.drain_host_feeds();
        outcome
    }

    /// The intra-host sharding variant of [`Cluster::drive_step`]: every
    /// host is split into NSM share lanes and the flattened lane list —
    /// every lane of every host — is dealt across the worker threads by
    /// weighted placement ([`ShardedExecutor::drive_lanes`]), so one
    /// many-share host no longer serialises behind the host boundary.
    ///
    /// Determinism is preserved by the same discipline as host-granularity
    /// sharding, one level down: lanes touch disjoint state during the poll
    /// phase, and everything shared — each host's resident engine, ledger
    /// charges, vNIC switch and the ToR — runs serially at the round
    /// barrier in `(HostId, lane key)` drain order. Begin and close phases
    /// run on the coordinator with every lane re-absorbed into its host, so
    /// fault injection, the control plane and all migration paths see whole
    /// hosts exactly as the serial path does.
    fn drive_step_lanes(&mut self, dt_ns: u64, close: bool) -> StepOutcome {
        self.now_ns += dt_ns;
        let before = {
            let s = self.exec.stats();
            (s.begin_work, s.poll_work, s.close_work, s.barrier_frames)
        };
        // Begin: serial, `HostId` order — identical to the serial walk.
        let mut begin = 0usize;
        for host in self.hosts.values_mut() {
            begin += host.begin_step(dt_ns);
        }
        self.exec.note_begin_work(begin);
        // Split every host into its share lanes, flattened into one
        // cluster-wide unit list keyed `(host, lane key)`.
        let mut lanes: BTreeMap<(HostId, NsmId), ShareLane> = BTreeMap::new();
        for (id, host) in self.hosts.iter_mut() {
            for (key, lane) in host.split_lanes() {
                lanes.insert((*id, key), lane);
            }
        }
        // Work the per-host hubs did at the barriers. The executor books it
        // under `hub_work`; `ClusterStats::poll_work` must still cover it —
        // in host-granularity mode the same work happens inside
        // `NetKernelHost::poll_round` and lands in `poll_work`.
        let host_tail = std::cell::Cell::new(0usize);
        let hosts = &mut self.hosts;
        let tor = &mut self.tor;
        let remotes = &mut self.remotes;
        let obs = &mut self.obs;
        let obs_active = obs.active();
        let outcome = self.exec.drive_lanes(
            &mut lanes,
            &self.lane_weights,
            |now| {
                // Host hubs first (resident engine, lane-report ledger
                // charges, host remotes, vNIC switch) in `HostId` order —
                // uplink frames must be on the trunks before the ToR runs.
                let mut tail = 0usize;
                for host in hosts.values_mut() {
                    tail += host.hub_round(now);
                }
                host_tail.set(host_tail.get() + tail);
                let frames = if obs_active {
                    tor.step_with(now, |f| {
                        obs.observe_flow(
                            FlowKey {
                                src_ip: f.payload.src.ip,
                                src_port: f.payload.src.port,
                                dst_ip: f.payload.dst.ip,
                                dst_port: f.payload.dst.port,
                            },
                            f.wire_bytes as u64,
                        )
                    })
                } else {
                    tor.step(now)
                };
                let mut work = tail + frames;
                for remote in remotes.values_mut() {
                    work += Pollable::poll(remote, now);
                }
                (work, frames)
            },
            self.now_ns,
            self.cfg.max_rounds,
        );
        // Re-assemble every host and harvest the per-lane work counters for
        // next step's dealing. A lane that did no work gets no entry and
        // weighs 1 next step.
        let mut per_host: BTreeMap<HostId, BTreeMap<NsmId, ShareLane>> = BTreeMap::new();
        for ((host, key), lane) in lanes {
            per_host.entry(host).or_default().insert(key, lane);
        }
        for (host, host_lanes) in per_host {
            self.hosts
                .get_mut(&host)
                .expect("lanes came from this host")
                .absorb_lanes(host_lanes);
        }
        self.lane_weights.clear();
        for (id, host) in self.hosts.iter_mut() {
            for (key, load) in host.take_lane_loads() {
                self.lane_weights.insert((*id, key), load);
            }
        }
        // Close: serial, `HostId` order, on the whole re-assembled hosts.
        let mut close_work = 0usize;
        if close {
            for host in self.hosts.values_mut() {
                close_work += host.end_step();
            }
            self.exec.note_close_work(close_work);
        }
        let s = self.exec.stats();
        self.stats.begin_work += s.begin_work - before.0;
        self.stats.poll_work += (s.poll_work - before.1) + host_tail.get() as u64;
        self.stats.control_work += s.close_work - before.2;
        self.stats.barrier_frames += s.barrier_frames - before.3;
        self.drain_host_feeds();
        StepOutcome {
            work: begin + outcome.work + close_work,
            rounds: outcome.rounds,
            quiescent: outcome.quiescent,
        }
    }

    /// Mirror what each host's recorder feed accumulated this step — fault
    /// applications and fresh control-log entries — into the event ring.
    /// Runs on the coordinator with the workers parked, iterating hosts in
    /// `HostId` order, so the ring's contents are thread-count-independent.
    fn drain_host_feeds(&mut self) {
        if !self.obs.active() {
            return;
        }
        let epoch = self.epoch;
        for (id, host) in self.hosts.iter_mut() {
            for (at_ns, faults) in host.obs_feed_mut().take_faults() {
                self.obs
                    .record_event(at_ns, epoch, ObsEventKind::Fault { host: *id, faults });
            }
            let log = host.control_events();
            let seen = self.obs_ctrl_seen.get(id).copied().unwrap_or(0);
            for event in &log[seen.min(log.len())..] {
                self.obs.record_event(
                    event.at_ns,
                    epoch,
                    ObsEventKind::Control {
                        host: *id,
                        action: event.action,
                    },
                );
            }
            self.obs_ctrl_seen.insert(*id, log.len());
        }
    }

    /// Step repeatedly with a fixed increment.
    pub fn run(&mut self, steps: usize, dt_ns: u64) {
        for _ in 0..steps {
            self.step(dt_ns);
        }
    }

    // ---- Cross-host migration ------------------------------------------------

    /// Live-migrate a VM to another host: export on the source (the local
    /// instance enters drain), import on the destination (new connections
    /// open on the least-loaded TCP NSM there), and track the drain until
    /// the source share empties. Operators call this directly; the placer
    /// calls it at epoch boundaries.
    pub fn migrate_vm(&mut self, vm: VmId, from: HostId, to: HostId) -> NkResult<()> {
        if from == to {
            return Err(NkError::BadConfig);
        }
        if self.home_of(vm) != Some(from) {
            return Err(NkError::NotFound);
        }
        // A VM still draining off the destination (it bounced back before
        // its old share emptied) cannot move there again yet: the import
        // would collide with the draining instance.
        if self.hosts.get(&to).is_some_and(|h| h.has_vm(vm)) {
            return Err(NkError::AlreadyRegistered);
        }
        let to_nsm = self.pick_destination_nsm(to)?;
        let export = self
            .hosts
            .get_mut(&from)
            .ok_or(NkError::NotFound)?
            .export_vm(vm)?;
        if let Err(e) = self
            .hosts
            .get_mut(&to)
            .expect("destination checked by pick_destination_nsm")
            .import_vm(&export, to_nsm)
        {
            // Roll the export back: the VM must not stay stuck in drain on
            // the source when the destination refused it.
            self.hosts
                .get_mut(&from)
                .expect("source produced the export")
                .cancel_export(vm);
            return Err(e);
        }
        self.vm_home.insert(vm, to);
        self.drains.push(ActiveDrain {
            vm,
            from,
            nsm: export.from_nsm,
        });
        self.stats.migrations += 1;
        self.push_event(ClusterAction::MigrateVm {
            vm,
            from,
            to,
            to_nsm,
        });
        Ok(())
    }

    /// Warm-migrate a VM to another host: the paper's "switch her NSM on
    /// the fly", with the *connections moving too*. Three phases, all
    /// inside this call:
    ///
    /// 1. **Freeze** — the VM's engine ingress pauses and the cluster runs
    ///    mini-steps (interleaved poll rounds across hosts, the ToR and the
    ///    remotes, with virtual time advancing) until the VM's connections
    ///    are wire-quiet: everything transmitted is acknowledged and no
    ///    frame for them is in flight.
    /// 2. **Transfer** — the source exports identity *plus* per-connection
    ///    stack state ([`nk_types::VmWarmExport`]), the ToR gains a host
    ///    route steering each transplanted address to the destination trunk
    ///    (the mid-step reroute), and the destination installs everything.
    /// 3. **Thaw** — the source share, emptied in the same control epoch,
    ///    scales to zero immediately; the destination serves the very same
    ///    connections. No drain, no reset.
    ///
    /// Warm mode requires the VM to be its source NSM's only tenant (the
    /// fabric reroutes the NSM's vNIC address, which would hijack other
    /// VMs' cross-host flows); otherwise it refuses with
    /// [`NkError::InvalidState`] and the caller falls back to
    /// [`Cluster::migrate_vm`] (drained). A failed install rolls everything
    /// back: routes drop, the export re-installs at the source, the VM
    /// keeps serving as if nothing happened.
    pub fn migrate_vm_warm(&mut self, vm: VmId, from: HostId, to: HostId) -> NkResult<()> {
        if from == to {
            return Err(NkError::BadConfig);
        }
        if self.home_of(vm) != Some(from) {
            return Err(NkError::NotFound);
        }
        if self.hosts.get(&to).is_some_and(|h| h.has_vm(vm)) {
            return Err(NkError::AlreadyRegistered);
        }
        let to_nsm = self.pick_destination_nsm(to)?;
        let src = self.hosts.get_mut(&from).ok_or(NkError::NotFound)?;
        let from_nsm = src.nsm_of(vm).ok_or(NkError::NotFound)?;
        // Warm exclusivity: rerouting the share's vNIC address must not
        // hijack another tenant's connections.
        let others_mapped = src
            .config()
            .vms
            .iter()
            .any(|v| v.id != vm && src.nsm_of(v.id) == Some(from_nsm));
        if others_mapped || src.nsm_pinned(from_nsm) != src.vm_pinned(vm) {
            return Err(NkError::InvalidState);
        }
        src.freeze_vm(vm)?;

        // Freeze window: mini-steps drain the wire. Each advances time by
        // enough to mature any frame sitting in an uplink or vNIC link. The
        // exit condition is VM-local — wire-quiet on two consecutive checks
        // one mini-step apart (so anything the peer had in flight towards
        // the VM has landed) — and deliberately ignores other tenants'
        // traffic: a busy neighbor must not stretch this VM's handover.
        let freeze_start = self.now_ns;
        let freeze_dt = (2 * self.cfg.uplink_latency_us * 1_000).max(200_000);
        let mut quiet_streak = 0;
        for _ in 0..MAX_FREEZE_STEPS {
            if self.hosts.get(&from).is_some_and(|h| h.vm_wire_quiet(vm)) {
                quiet_streak += 1;
                if quiet_streak >= 2 {
                    break;
                }
            } else {
                quiet_streak = 0;
            }
            self.freeze_ministep(freeze_dt);
        }
        self.record_warm_phase(vm, MigrationPhase::Freeze, freeze_start, true);

        let src = self.hosts.get_mut(&from).expect("source checked above");
        let export = match src.export_vm_warm(vm) {
            Ok(export) => export,
            Err(e) => {
                src.thaw_vm(vm);
                let at = self.now_ns;
                self.record_warm_phase(vm, MigrationPhase::Export, at, false);
                return Err(e);
            }
        };
        let at = self.now_ns;
        self.record_warm_phase(vm, MigrationPhase::Export, at, true);
        // Mid-step reroute: each transplanted address now lives behind the
        // destination host's trunk.
        let detours = match self.install_detours(&export.rerouted_ips(), from, to) {
            Ok(detours) => detours,
            Err(e) => {
                self.hosts
                    .get_mut(&from)
                    .expect("source exists")
                    .import_vm_warm(&export, from_nsm)
                    .expect("source re-accepts its own export");
                self.record_warm_phase(vm, MigrationPhase::Reroute, at, false);
                return Err(e);
            }
        };
        self.record_warm_phase(vm, MigrationPhase::Reroute, at, true);
        if let Err(e) = self
            .hosts
            .get_mut(&to)
            .expect("destination checked by pick_destination_nsm")
            .import_vm_warm(&export, to_nsm)
        {
            // Roll back: routes restored, state back where it came from.
            self.revert_detours(&detours);
            self.hosts
                .get_mut(&from)
                .expect("source exists")
                .import_vm_warm(&export, from_nsm)
                .expect("source re-accepts its own export");
            self.record_warm_phase(vm, MigrationPhase::Install, at, false);
            return Err(e);
        }
        self.record_warm_phase(vm, MigrationPhase::Install, at, true);
        self.record_warm_phase(vm, MigrationPhase::Thaw, at, true);
        let connections = export.conns.len() as u32;
        self.vm_home.insert(vm, to);
        self.stats.warm_migrations += 1;
        self.stats.conns_transplanted += u64::from(connections);
        self.push_event(ClusterAction::WarmMigrateVm {
            vm,
            from,
            to,
            to_nsm,
            connections,
        });
        self.push_event(ClusterAction::WarmHandoverComplete {
            vm,
            to,
            connections,
        });
        // The source share emptied in this very epoch: scale-to-zero now,
        // no drain wait.
        if self
            .hosts
            .get_mut(&from)
            .expect("source exists")
            .retire_nsm_if_drained(from_nsm)
        {
            self.stats.shares_retired += 1;
            self.push_event(ClusterAction::ScaleToZero {
                host: from,
                nsm: from_nsm,
            });
            let at = self.now_ns;
            self.obs.record_phase(PhaseWindow {
                vm: None,
                phase: MigrationPhase::Retire,
                start_ns: at,
                end_ns: at,
                epoch: self.epoch,
                step: None,
                ok: true,
            });
        }
        Ok(())
    }

    /// Record one phase window of a direct warm migration: it opened at
    /// `start_ns` and closes now. Coordinator phases (export, reroute,
    /// install, thaw) don't advance virtual time, so their windows are
    /// zero-width; the freeze window, which runs mini-steps, has real width.
    fn record_warm_phase(&mut self, vm: VmId, phase: MigrationPhase, start_ns: u64, ok: bool) {
        self.obs.record_phase(PhaseWindow {
            vm: Some(vm),
            phase,
            start_ns,
            end_ns: self.now_ns,
            epoch: self.epoch,
            step: None,
            ok,
        });
    }

    /// Install a `/32` detour for every transplanted address, steering it
    /// behind the destination host's trunk, and record what to do on
    /// revert. An address already *outside* the source host's block was
    /// detoured by an earlier warm hop — its previous `/32` (via the source
    /// trunk) was just replaced and must be *restored*, not deleted: a bare
    /// delete would fall the address back to its origin host's block route,
    /// stranding the connection. Any install failure reverts the detours
    /// already placed and returns [`NkError::NotFound`].
    pub(crate) fn install_detours(
        &mut self,
        ips: &[u32],
        from: HostId,
        to: HostId,
    ) -> NkResult<Vec<(u32, Option<u32>)>> {
        let mut installed: Vec<(u32, Option<u32>)> = Vec::new();
        for ip in ips {
            let prior = (*ip & HOST_PREFIX_MASK != host_prefix(from)).then(|| host_prefix(from));
            if !self.tor.add_route_via(*ip, u32::MAX, host_prefix(to)) {
                self.revert_detours(&installed);
                return Err(NkError::NotFound);
            }
            installed.push((*ip, prior));
        }
        Ok(installed)
    }

    /// Undo [`Cluster::install_detours`], newest first: a detour that
    /// replaced an earlier hop's `/32` is re-pointed at the source trunk; a
    /// fresh one is removed outright.
    pub(crate) fn revert_detours(&mut self, routes: &[(u32, Option<u32>)]) {
        for (ip, prior) in routes.iter().rev() {
            match prior {
                Some(via) => {
                    self.tor.add_route_via(*ip, u32::MAX, *via);
                }
                None => {
                    self.tor.remove_route(*ip, u32::MAX);
                }
            }
        }
    }

    /// One freeze-window mini-step: virtual time advances and every
    /// datapath component polls to quiescence, but no control epochs close
    /// and no drains advance — the cluster is mid-handover. Returns the
    /// work done.
    pub(crate) fn freeze_ministep(&mut self, dt_ns: u64) -> usize {
        let outcome = self.drive_step(dt_ns, false);
        self.stats.freeze_steps += 1;
        outcome.work
    }

    /// The destination NSM for a migration: among the host's alive
    /// TCP-stack NSMs, the one serving the fewest VMs (ties by id) — the
    /// same least-loaded rule initial placement uses.
    pub(crate) fn pick_destination_nsm(&self, host: HostId) -> NkResult<NsmId> {
        let h = self.hosts.get(&host).ok_or(NkError::NotFound)?;
        let vms: Vec<VmId> = h.config().vms.iter().map(|v| v.id).collect();
        h.config()
            .nsms
            .iter()
            .filter(|n| n.stack != StackKind::SharedMem && h.has_nsm(n.id))
            .map(|n| {
                let mapped = vms.iter().filter(|vm| h.nsm_of(**vm) == Some(n.id)).count();
                (mapped, n.id)
            })
            .min()
            .map(|(_, id)| id)
            .ok_or(NkError::NoNsm)
    }

    /// Complete any drains whose pinned-connection count reached zero: the
    /// source VM instance is torn down and, when its NSM serves nothing
    /// else, the share scales to zero cores.
    fn advance_drains(&mut self) -> usize {
        let mut work = 0;
        let mut idx = 0;
        while idx < self.drains.len() {
            let (vm, from, nsm) = {
                let d = &self.drains[idx];
                (d.vm, d.from, d.nsm)
            };
            let host = self.hosts.get_mut(&from).expect("drain host exists");
            if host.vm_pinned(vm) > 0 {
                idx += 1;
                continue;
            }
            host.retire_vm(vm).expect("unpinned VM retires");
            let retired = host.retire_nsm_if_drained(nsm);
            self.drains.remove(idx);
            self.stats.drains_completed += 1;
            self.push_event(ClusterAction::DrainComplete {
                vm,
                host: from,
                nsm,
            });
            work += 1;
            if retired {
                self.stats.shares_retired += 1;
                self.push_event(ClusterAction::ScaleToZero { host: from, nsm });
                work += 1;
            }
        }
        work
    }

    // ---- The placement loop --------------------------------------------------

    /// Close a placement epoch: sample every host, let the placer decide,
    /// and execute its migrations. Returns the number applied.
    fn run_placement_epoch(&mut self, now_ns: u64) -> usize {
        let sample = self.sample_epoch(now_ns);
        let placer = self.placer.as_mut().expect("checked by caller");
        self.next_epoch_ns = now_ns + placer.policy().epoch_ns;
        let migrations = placer.on_epoch(&sample);
        self.epoch = placer.epochs();
        let mut applied = 0;
        for m in migrations {
            // A decision can race reality (the VM is already draining, the
            // destination lost its NSMs): skip rather than panic — the
            // placer re-observes next epoch.
            let ok = self.migrate_vm(m.vm, m.from, m.to).is_ok();
            if ok {
                applied += 1;
            }
            // Record the *decision* either way: skipped decisions are
            // invisible in the cluster event log (only applied migrations
            // land there), so a placer looping on an inapplicable move only
            // shows up here.
            self.obs.record_event(
                now_ns,
                self.epoch,
                ObsEventKind::Decision(nk_ctrl::DecisionOutcome {
                    epoch: self.epoch,
                    vm: m.vm,
                    from: m.from,
                    to: m.to,
                    applied: ok,
                }),
            );
        }
        applied
    }

    /// Assemble the placement sample of the epoch ending now: per-host NSM
    /// utilisation from pool-ledger deltas, cross-host traffic from uplink
    /// counters, per-VM bytes as the placement snapshot.
    fn sample_epoch(&mut self, now_ns: u64) -> ClusterSample {
        let elapsed_ns = now_ns.saturating_sub(self.last_sample_ns).max(1);
        self.last_sample_ns = now_ns;
        // Bytes one uplink direction can carry over the elapsed window.
        let uplink_capacity = (self.cfg.uplink_rate_gbps * elapsed_ns as f64 / 8.0).max(1.0);
        let mut hosts = BTreeMap::new();
        for (id, host) in self.hosts.iter() {
            let members: Vec<PoolMember> = host.core_pool().members().collect();
            let mut busy = 0u64;
            let mut offered = 0u64;
            let mut nsm_cores = 0usize;
            for member in members {
                let PoolMember::Nsm(_) = member else { continue };
                let Some(ledger) = host.core_pool().ledger(member) else {
                    continue;
                };
                let prev = self
                    .prev_ledgers
                    .insert((*id, member), ledger)
                    .unwrap_or_default();
                busy += ledger.busy.saturating_sub(prev.busy);
                offered += ledger.offered.saturating_sub(prev.offered);
                nsm_cores += host.core_pool().cores(member).unwrap_or(0);
            }
            let nsm_utilisation = if offered == 0 {
                0.0
            } else {
                busy as f64 / offered as f64
            };
            let uplink = host.uplink_stats();
            let (prev_tx, prev_rx) = self
                .prev_uplink
                .insert(*id, (uplink.tx_bytes, uplink.rx_bytes))
                .unwrap_or((0, 0));
            let tx = uplink.tx_bytes.saturating_sub(prev_tx);
            let rx = uplink.rx_bytes.saturating_sub(prev_rx);
            let uplink_utilisation = tx.max(rx) as f64 / uplink_capacity;
            let mut vm_bytes = BTreeMap::new();
            for vm in host.config().vms.iter().map(|v| v.id) {
                let total = host
                    .vm_switch_stats(vm)
                    .map(|s| s.bytes_forwarded)
                    .unwrap_or(0);
                let prev = self.prev_vm_bytes.insert((*id, vm), total).unwrap_or(0);
                // A VM still draining off this host is not a migration
                // candidate — its home is elsewhere, and offering it to the
                // placer would burn the per-epoch budget on a move that can
                // only be skipped at execution time. Its byte snapshot is
                // still advanced above so later samples stay consistent.
                if self.vm_home.get(&vm) == Some(id) {
                    vm_bytes.insert(vm, total.saturating_sub(prev));
                }
            }
            hosts.insert(
                *id,
                HostLoad {
                    nsm_cores,
                    nsm_utilisation,
                    uplink_utilisation,
                    queue_depth: host.stalled_nqes() as u64,
                    vm_bytes,
                },
            );
        }
        ClusterSample { now_ns, hosts }
    }

    pub(crate) fn push_event(&mut self, action: ClusterAction) {
        self.obs
            .record_event(self.now_ns, self.epoch, ObsEventKind::Cluster(action));
        self.events.push(ClusterEvent {
            at_ns: self.now_ns,
            epoch: self.epoch,
            action,
        });
    }

    // ---- The flight recorder -------------------------------------------------

    /// The flight recorder (event ring, latency epochs, phase timelines,
    /// hot flows). Its serialized snapshot is byte-identical for any
    /// `NK_CLUSTER_THREADS` value.
    pub fn recorder(&self) -> &FlightRecorder {
        &self.obs
    }

    /// Mutable recorder access (filtered snapshots don't need it; manual
    /// freeze triggers and tests do).
    pub fn recorder_mut(&mut self) -> &mut FlightRecorder {
        &mut self.obs
    }

    /// Snapshot everything the recorder retains.
    pub fn obs_dump(&self) -> ObsDump {
        self.obs.snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nk_types::{
        ClusterPolicy, HostConfig, NsmConfig, SockAddr, SocketApi, VmConfig, VmToNsmPolicy,
    };

    const SERVER_IP: u32 = 0xC0A8_0001; // 192.168.0.1, outside every host block

    fn host(id: u8, vms: &[u8]) -> HostConfig {
        let mut cfg = HostConfig::new()
            .with_host_id(HostId(id))
            .with_nsm(NsmConfig::kernel(NsmId(1)))
            .with_mapping(VmToNsmPolicy::All(NsmId(1)));
        for vm in vms {
            cfg = cfg.with_vm(VmConfig::new(VmId(*vm)));
        }
        cfg
    }

    fn two_host_cluster() -> Cluster {
        Cluster::new(
            ClusterConfig::new()
                .with_host(host(1, &[1]))
                .with_host(host(2, &[2])),
        )
        .unwrap()
    }

    /// Guests on two different hosts both reach a ToR-attached server:
    /// traffic crosses host switch → uplink → ToR and back.
    #[test]
    fn guests_on_both_hosts_reach_a_tor_endpoint() {
        let mut cluster = two_host_cluster();
        let server = cluster.add_remote(SERVER_IP);
        let ls = server.socket();
        server.bind(ls, SockAddr::new(0, 7)).unwrap();
        server.listen(ls, 16).unwrap();

        for (h, vm) in [(HostId(1), VmId(1)), (HostId(2), VmId(2))] {
            let guest = cluster.guest_on(h, vm).unwrap();
            let s = guest.socket().unwrap();
            guest.connect(s, SockAddr::new(SERVER_IP, 7)).unwrap();
        }
        cluster.run(30, 100_000);

        let server = cluster.remote_mut(SERVER_IP).unwrap();
        let mut accepted = 0;
        while server.accept(ls).is_ok() {
            accepted += 1;
        }
        assert_eq!(accepted, 2, "both hosts' tenants reach the ToR endpoint");
        for h in [HostId(1), HostId(2)] {
            let stats = cluster.host(h).unwrap().uplink_stats();
            assert!(stats.tx_frames > 0 && stats.rx_frames > 0, "{h}: {stats:?}");
        }
        let stats = cluster.stats();
        assert_eq!(stats.quiescent_exits + stats.round_limit_hits, stats.steps);
        assert!(stats.quiescent_exits > 0);
    }

    /// A scripted migration moves a VM's home; without pinned connections
    /// the drain completes immediately and the source share retires.
    #[test]
    fn idle_migration_drains_immediately_and_retires_the_share() {
        let mut cluster = two_host_cluster();
        assert_eq!(cluster.home_of(VmId(1)), Some(HostId(1)));
        cluster.migrate_vm(VmId(1), HostId(1), HostId(2)).unwrap();
        assert_eq!(cluster.home_of(VmId(1)), Some(HostId(2)));
        cluster.step(100_000); // drain check runs inside the step
        assert_eq!(cluster.stats().drains_completed, 1);
        assert_eq!(cluster.stats().shares_retired, 1);
        assert_eq!(
            cluster.host(HostId(1)).unwrap().nsm_cores(NsmId(1)),
            Some(0),
            "the drained source NSM share must scale to zero"
        );
        assert!(cluster.events().iter().any(|e| matches!(
            e.action,
            ClusterAction::ScaleToZero {
                host: HostId(1),
                ..
            }
        )));
        // The VM is gone from the source host entirely.
        assert!(cluster.guest_on(HostId(1), VmId(1)).is_none());
        assert!(cluster.guest_on(HostId(2), VmId(1)).is_some());
    }

    /// A share retired to zero cores revives when a tenant migrates back
    /// onto it: the import restores the configured allocation.
    #[test]
    fn importing_onto_a_retired_share_revives_it() {
        let mut cluster = two_host_cluster();
        cluster.migrate_vm(VmId(1), HostId(1), HostId(2)).unwrap();
        cluster.step(100_000);
        assert_eq!(
            cluster.host(HostId(1)).unwrap().nsm_cores(NsmId(1)),
            Some(0)
        );
        cluster.migrate_vm(VmId(1), HostId(2), HostId(1)).unwrap();
        assert_eq!(
            cluster.host(HostId(1)).unwrap().nsm_cores(NsmId(1)),
            Some(1),
            "the import must restore the retired share's allocation"
        );
    }

    /// A migration that cannot complete (the VM is still draining off the
    /// destination) fails cleanly: no phantom drain is left behind and the
    /// move succeeds once the drain finishes.
    #[test]
    fn bounce_back_during_drain_is_rejected_without_leaking_state() {
        let mut cluster = two_host_cluster();
        let server = cluster.add_remote(SERVER_IP);
        let ls = server.socket();
        server.bind(ls, SockAddr::new(0, 7)).unwrap();
        server.listen(ls, 4).unwrap();
        let guest = cluster.guest_on(HostId(1), VmId(1)).unwrap();
        let s = guest.socket().unwrap();
        guest.connect(s, SockAddr::new(SERVER_IP, 7)).unwrap();
        cluster.run(20, 100_000);
        assert!(cluster.host(HostId(1)).unwrap().vm_pinned(VmId(1)) >= 1);

        cluster.migrate_vm(VmId(1), HostId(1), HostId(2)).unwrap();
        // The pinned connection keeps the drain open on host 1, so moving
        // back must be refused — and must not leave host 2 mid-drain.
        assert_eq!(
            cluster.migrate_vm(VmId(1), HostId(2), HostId(1)),
            Err(NkError::AlreadyRegistered)
        );
        assert!(cluster.host(HostId(2)).unwrap().draining_vms().is_empty());
        assert_eq!(cluster.home_of(VmId(1)), Some(HostId(2)));

        // Close the pinned connection: the drain completes and the bounce
        // back becomes legal.
        let guest = cluster.guest_on(HostId(1), VmId(1)).unwrap();
        guest.close(s).unwrap();
        cluster.run(10, 100_000);
        cluster.migrate_vm(VmId(1), HostId(2), HostId(1)).unwrap();
        assert_eq!(cluster.home_of(VmId(1)), Some(HostId(1)));
    }

    /// The warm path end to end: a pinned connection streams to a ToR
    /// endpoint, the VM warm-migrates, and the *same* connection (same
    /// guest socket id, same 4-tuple) keeps streaming from the new host.
    /// The source share scales to zero in the same instant — no drain.
    #[test]
    fn warm_migration_transplants_a_live_connection() {
        let mut cluster = two_host_cluster();
        let server = cluster.add_remote(SERVER_IP);
        let ls = server.socket();
        server.bind(ls, SockAddr::new(0, 7)).unwrap();
        server.listen(ls, 4).unwrap();
        let guest = cluster.guest_on(HostId(1), VmId(1)).unwrap();
        let s = guest.socket().unwrap();
        guest.connect(s, SockAddr::new(SERVER_IP, 7)).unwrap();
        cluster.run(20, 100_000);
        let guest = cluster.guest_on(HostId(1), VmId(1)).unwrap();
        assert!(guest.poll(s).writable());
        assert_eq!(guest.send(s, b"sent from host 1").unwrap(), 16);
        cluster.run(10, 100_000);
        assert!(cluster.host(HostId(1)).unwrap().vm_pinned(VmId(1)) >= 1);

        cluster
            .migrate_vm_warm(VmId(1), HostId(1), HostId(2))
            .unwrap();
        assert_eq!(cluster.home_of(VmId(1)), Some(HostId(2)));
        assert_eq!(cluster.stats().warm_migrations, 1);
        assert_eq!(cluster.stats().conns_transplanted, 1);
        assert_eq!(cluster.stats().drains_completed, 0, "warm ≠ drained");
        // The source instance is gone outright and its share is at zero.
        assert!(cluster.guest_on(HostId(1), VmId(1)).is_none());
        assert_eq!(
            cluster.host(HostId(1)).unwrap().nsm_cores(NsmId(1)),
            Some(0)
        );
        // All three milestones landed at the same virtual instant — the
        // "same control epoch, no drain wait" acceptance condition.
        let warm_at = cluster
            .events()
            .iter()
            .find(|e| matches!(e.action, ClusterAction::WarmMigrateVm { .. }))
            .expect("warm event logged")
            .at_ns;
        for wanted in [
            cluster
                .events()
                .iter()
                .find(|e| matches!(e.action, ClusterAction::WarmHandoverComplete { .. })),
            cluster
                .events()
                .iter()
                .find(|e| matches!(e.action, ClusterAction::ScaleToZero { .. })),
        ] {
            assert_eq!(wanted.expect("milestone logged").at_ns, warm_at);
        }

        // The connection survived: same socket id, now on host 2.
        let guest = cluster.guest_on(HostId(2), VmId(1)).unwrap();
        assert!(guest.has_socket(s));
        assert_eq!(guest.send(s, b" and from host 2").unwrap(), 16);
        cluster.run(20, 100_000);

        let server = cluster.remote_mut(SERVER_IP).unwrap();
        let (conn, _) = server.accept(ls).unwrap();
        let mut got = Vec::new();
        let mut buf = [0u8; 64];
        while let Ok(n) = server.recv(conn, &mut buf) {
            if n == 0 {
                break;
            }
            got.extend_from_slice(&buf[..n]);
        }
        assert_eq!(
            got, b"sent from host 1 and from host 2",
            "byte-contiguous stream across the handover"
        );
        // And the server's replies reach the transplanted connection.
        let server = cluster.remote_mut(SERVER_IP).unwrap();
        server.send(conn, b"echo").unwrap();
        cluster.run(10, 100_000);
        let guest = cluster.guest_on(HostId(2), VmId(1)).unwrap();
        assert_eq!(guest.recv(s, &mut buf).unwrap(), 4);
    }

    /// Warm mode refuses a share serving other tenants (the reroute would
    /// hijack their flows); drained migration remains available.
    #[test]
    fn warm_migration_requires_an_exclusive_source_share() {
        let mut cluster = Cluster::new(
            ClusterConfig::new()
                .with_host(host(1, &[1, 3]))
                .with_host(host(2, &[2])),
        )
        .unwrap();
        assert_eq!(
            cluster.migrate_vm_warm(VmId(1), HostId(1), HostId(2)),
            Err(NkError::InvalidState)
        );
        // The refusal leaves the VM serving and un-frozen; the drained
        // path still works.
        assert!(!cluster.host(HostId(1)).unwrap().vm_frozen(VmId(1)));
        cluster.migrate_vm(VmId(1), HostId(1), HostId(2)).unwrap();
        assert_eq!(cluster.home_of(VmId(1)), Some(HostId(2)));
    }

    /// Warm migration validates like the drained one.
    #[test]
    fn invalid_warm_migrations_are_rejected() {
        let mut cluster = two_host_cluster();
        assert_eq!(
            cluster.migrate_vm_warm(VmId(1), HostId(1), HostId(1)),
            Err(NkError::BadConfig)
        );
        assert_eq!(
            cluster.migrate_vm_warm(VmId(1), HostId(2), HostId(1)),
            Err(NkError::NotFound)
        );
        assert_eq!(
            cluster.migrate_vm_warm(VmId(9), HostId(1), HostId(2)),
            Err(NkError::NotFound)
        );
    }

    #[test]
    fn invalid_migrations_are_rejected() {
        let mut cluster = two_host_cluster();
        assert_eq!(
            cluster.migrate_vm(VmId(1), HostId(1), HostId(1)),
            Err(NkError::BadConfig)
        );
        assert_eq!(
            cluster.migrate_vm(VmId(1), HostId(2), HostId(1)),
            Err(NkError::NotFound),
            "vm1 is not homed on host 2"
        );
        assert_eq!(
            cluster.migrate_vm(VmId(9), HostId(1), HostId(2)),
            Err(NkError::NotFound)
        );
    }

    #[test]
    fn event_digest_is_order_sensitive_and_stable() {
        let mut a = two_host_cluster();
        let mut b = two_host_cluster();
        assert_eq!(a.event_digest(), b.event_digest(), "empty logs agree");
        a.migrate_vm(VmId(1), HostId(1), HostId(2)).unwrap();
        assert_ne!(a.event_digest(), b.event_digest());
        b.migrate_vm(VmId(1), HostId(1), HostId(2)).unwrap();
        assert_eq!(a.event_digest(), b.event_digest());
    }

    #[test]
    fn invalid_cluster_configs_are_rejected() {
        assert!(Cluster::new(ClusterConfig::new()).is_err());
        let dup = ClusterConfig::new()
            .with_host(host(1, &[1]))
            .with_host(host(1, &[2]));
        assert!(Cluster::new(dup).is_err());
        let bad_policy = ClusterConfig::new()
            .with_host(host(1, &[1]))
            .with_policy(ClusterPolicy::new().with_window(0));
        assert!(Cluster::new(bad_policy).is_err());
    }

    /// The `NK_CLUSTER_THREADS` override accepts only positive integers;
    /// `0`, garbage and whitespace-only values fall back to the configured
    /// count instead of silently picking something else.
    #[test]
    fn thread_override_rejects_zero_and_garbage() {
        assert_eq!(Cluster::resolve_threads_from(None, 3), 3);
        assert_eq!(Cluster::resolve_threads_from(Some("4"), 3), 4);
        assert_eq!(Cluster::resolve_threads_from(Some(" 2 "), 3), 2);
        assert_eq!(Cluster::resolve_threads_from(Some("0"), 3), 3);
        assert_eq!(Cluster::resolve_threads_from(Some("abc"), 3), 3);
        assert_eq!(Cluster::resolve_threads_from(Some(""), 3), 3);
        assert_eq!(Cluster::resolve_threads_from(Some("-1"), 3), 3);
    }

    /// A warm migration whose destination install fails *after* the ToR
    /// detour went in must restore the routing table, not just delete the
    /// `/32`: when the connection had already warm-hopped once, its detour
    /// pointed at the current host's trunk, and deleting it would strand
    /// the flow on the origin host's block route. The VM must end up
    /// serving on its pre-call host, un-frozen, with nothing left on the
    /// destination — and a retry must succeed.
    #[test]
    fn failed_warm_install_restores_prior_detours_and_thaws_the_source() {
        let mut cluster = Cluster::new(
            ClusterConfig::new()
                .with_host(host(1, &[1]))
                .with_host(host(2, &[]))
                .with_host(host(3, &[])),
        )
        .unwrap();
        let server = cluster.add_remote(SERVER_IP);
        let ls = server.socket();
        server.bind(ls, SockAddr::new(0, 7)).unwrap();
        server.listen(ls, 4).unwrap();
        let guest = cluster.guest_on(HostId(1), VmId(1)).unwrap();
        let s = guest.socket().unwrap();
        guest.connect(s, SockAddr::new(SERVER_IP, 7)).unwrap();
        cluster.run(20, 100_000);
        assert!(cluster.host(HostId(1)).unwrap().vm_pinned(VmId(1)) >= 1);

        // First hop: the connection's address now detours via host 2.
        cluster
            .migrate_vm_warm(VmId(1), HostId(1), HostId(2))
            .unwrap();
        let routes_before = cluster.tor.routes();

        // Second hop fails at the destination install, after the detour
        // was repointed at host 3.
        cluster
            .host_mut(HostId(3))
            .unwrap()
            .inject_import_failures(1);
        assert_eq!(
            cluster.migrate_vm_warm(VmId(1), HostId(2), HostId(3)),
            Err(NkError::NsmUnavailable)
        );

        // Rollback left the world exactly as before the attempt: home,
        // thawed VM, no residue on host 3, and the host-2 detour restored
        // (same route count — nothing leaked, nothing deleted).
        assert_eq!(cluster.home_of(VmId(1)), Some(HostId(2)));
        assert!(!cluster.host(HostId(2)).unwrap().vm_frozen(VmId(1)));
        assert!(cluster.guest_on(HostId(3), VmId(1)).is_none());
        assert!(cluster.host(HostId(3)).unwrap().warm_aliases().is_empty());
        assert_eq!(cluster.tor.routes(), routes_before);

        // The restored detour still carries traffic: the transplanted
        // connection keeps round-tripping from host 2.
        let guest = cluster.guest_on(HostId(2), VmId(1)).unwrap();
        assert_eq!(guest.send(s, b"still here").unwrap(), 10);
        cluster.run(20, 100_000);
        let server = cluster.remote_mut(SERVER_IP).unwrap();
        let (conn, _) = server.accept(ls).unwrap();
        let mut buf = [0u8; 64];
        assert_eq!(server.recv(conn, &mut buf).unwrap(), 10);
        assert_eq!(&buf[..10], b"still here");

        // And the failure was transient: the retry completes the hop.
        cluster
            .migrate_vm_warm(VmId(1), HostId(2), HostId(3))
            .unwrap();
        assert_eq!(cluster.home_of(VmId(1)), Some(HostId(3)));
        assert!(cluster.guest_on(HostId(3), VmId(1)).unwrap().has_socket(s));
    }
}
