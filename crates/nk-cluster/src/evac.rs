//! Executing evacuation plans: the mechanism half of
//! [`nk_ctrl::evacuate`].
//!
//! [`Cluster::plan_evacuation`] surveys the evacuating host and compiles an
//! [`EvacPlan`]: one move per homed VM (warm when the PR-5 exclusivity
//! guard allows, drained otherwise), a destination chosen least-loaded, and
//! the emptied source shares queued for scale-to-zero at the tail.
//! [`Cluster::evacuate_host`] then drives the plan step by step —
//! dependency-ordered, `pace` VM chains per wave, one shared freeze window
//! per wave of warm chains — and records every milestone in a serializable
//! [`PlanEvent`] log.
//!
//! The contract that makes the operation safe to attempt is *atomicity by
//! rollback*: no cluster event is emitted and no summary counter moves
//! until the whole plan has committed, and any mid-plan failure unwinds
//! every completed action in reverse completion order (thaw ↔ re-freeze,
//! install ↔ re-export, reroute ↔ route restore, export ↔ re-import,
//! freeze ↔ thaw, retire ↔ revive). After a rollback the cluster's
//! placement, routing table and event digest are byte-identical to the
//! pre-plan state — the property the fault-injection tests pin, at any
//! `NK_CLUSTER_THREADS` value.

use crate::cluster::{ActiveDrain, Cluster, MAX_FREEZE_STEPS};
use nk_ctrl::{EvacAction, EvacMode, EvacMove, EvacPlan, PlanEvent, PlanRun};
use nk_obs::{FreezeReason, MigrationPhase, ObsEventKind, PhaseWindow};
use nk_types::addr::{host_prefix, HOST_PREFIX_MASK};
use nk_types::{
    ClusterAction, ControlEvent, HostId, NkError, NkResult, NsmId, VmExport, VmId, VmWarmExport,
};
use std::collections::BTreeMap;

/// What the fault injector does to an in-flight evacuation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EvacFaultKind {
    /// The step itself fails (as if the mechanism refused) without touching
    /// any state — the pure rollback trigger.
    FailAction,
    /// An NSM crashes on some host just before the step runs.
    CrashNsm {
        /// The host whose NSM dies.
        host: HostId,
        /// The NSM to crash.
        nsm: NsmId,
    },
    /// A whole host dies just before the step runs.
    KillHost(HostId),
}

/// A scripted fault: fires immediately before the step with id
/// [`EvacFault::before_step`] executes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EvacFault {
    /// The step the fault precedes.
    pub before_step: usize,
    /// What happens.
    pub kind: EvacFaultKind,
}

/// The outcome of one evacuation attempt.
#[derive(Clone, Debug)]
pub struct EvacReport {
    /// The plan that was executed (or rolled back).
    pub plan: EvacPlan,
    /// The plan's event log, in order.
    pub events: Vec<PlanEvent>,
    /// True when every step completed and the evacuation is final.
    pub committed: bool,
    /// VMs moved off the host (0 on rollback).
    pub moved: u32,
    /// Warm moves among them.
    pub warm: u32,
    /// Drained moves among them.
    pub drained: u32,
    /// The step that failed, when one did.
    pub failed_step: Option<usize>,
    /// The failure, when one occurred.
    pub error: Option<NkError>,
}

/// One entry of the merged cluster-wide control log: a host control event
/// or a coordinator-side plan event.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ControlLogEntry {
    /// A control event from one host's own log.
    Host(HostId, ControlEvent),
    /// A plan event from an evacuation run.
    Plan(PlanEvent),
}

/// Execution scratch state: the exports and route edits each completed step
/// produced, kept so its revert can undo exactly what was done. The warm
/// journal doubles as a recovery record — when a destination dies after the
/// install, the journaled export is what the rollback re-installs at the
/// source.
#[derive(Default)]
struct EvacExec {
    warm_exports: BTreeMap<VmId, VmWarmExport>,
    drained_exports: BTreeMap<VmId, VmExport>,
    reroutes: BTreeMap<VmId, Vec<(u32, Option<u32>)>>,
    retired: Vec<NsmId>,
}

impl Cluster {
    /// Survey `host` and compile its evacuation into an [`EvacPlan`]:
    /// every VM homed there gets a move — warm when the share-exclusivity
    /// guard allows (the VM is its source NSM's only tenant and owns all of
    /// its pinned connections), drained otherwise — onto the alive host
    /// currently carrying the fewest VMs (planned moves included, ties by
    /// id). The moves' source shares are queued for scale-to-zero at the
    /// plan tail. Fails with [`NkError::NotFound`] for an unknown host and
    /// [`NkError::NoNsm`] when some VM has no viable destination.
    pub fn plan_evacuation(&self, host: HostId, pace: usize) -> NkResult<EvacPlan> {
        let src = self.hosts.get(&host).ok_or(NkError::NotFound)?;
        let vms: Vec<VmId> = self
            .vm_home
            .iter()
            .filter(|(_, h)| **h == host)
            .map(|(vm, _)| *vm)
            .collect();
        let mut planned: BTreeMap<HostId, usize> = BTreeMap::new();
        let mut moves = Vec::new();
        let mut retire = Vec::new();
        for vm in vms {
            let to = self
                .hosts
                .iter()
                .filter(|(id, h)| **id != host && !h.has_vm(vm))
                .filter(|(id, _)| self.pick_destination_nsm(**id).is_ok())
                .map(|(id, _)| {
                    let homed = self.vm_home.values().filter(|h| **h == *id).count();
                    (homed + planned.get(id).copied().unwrap_or(0), *id)
                })
                .min()
                .map(|(_, id)| id)
                .ok_or(NkError::NoNsm)?;
            *planned.entry(to).or_insert(0) += 1;
            let from_nsm = src.nsm_of(vm).ok_or(NkError::NotFound)?;
            let others_mapped = src
                .config()
                .vms
                .iter()
                .any(|v| v.id != vm && src.nsm_of(v.id) == Some(from_nsm));
            let warm = !others_mapped && src.nsm_pinned(from_nsm) == src.vm_pinned(vm);
            moves.push(EvacMove {
                vm,
                to,
                mode: if warm {
                    EvacMode::Warm
                } else {
                    EvacMode::Drained
                },
            });
            retire.push(from_nsm);
        }
        EvacPlan::compile(host, &moves, &retire, pace)
    }

    /// Plan and execute the evacuation of `host` with `pace` VM chains per
    /// wave. Returns the report; a mid-plan failure is *not* an `Err` —
    /// the plan rolls back cleanly and the report records which step failed
    /// (`Err` is reserved for refusing to plan at all).
    pub fn evacuate_host(&mut self, host: HostId, pace: usize) -> NkResult<EvacReport> {
        self.evacuate_host_with_faults(host, pace, &[])
    }

    /// [`Cluster::evacuate_host`] with a scripted fault surface: each
    /// [`EvacFault`] fires immediately before its step executes. The
    /// rollback contract holds under every fault kind — completed actions
    /// unwind in reverse completion order, best-effort where a dead host
    /// makes the exact inverse impossible (its journaled exports re-install
    /// at the source either way).
    pub fn evacuate_host_with_faults(
        &mut self,
        host: HostId,
        pace: usize,
        faults: &[EvacFault],
    ) -> NkResult<EvacReport> {
        let plan = self.plan_evacuation(host, pace)?;
        self.stats.evac_plans += 1;
        let mut run = PlanRun::new(plan.clone(), self.now_ns, self.epoch);
        let mut exec = EvacExec::default();
        // The wave whose shared freeze window is currently open.
        let mut window_wave: Option<usize> = None;
        let mut failure: Option<(usize, NkError)> = None;
        for step in 0..plan.steps.len() {
            debug_assert!(run.ready(step), "steps execute in dependency order");
            let mut forced_failure = false;
            for fault in faults.iter().filter(|f| f.before_step == step) {
                match fault.kind {
                    EvacFaultKind::FailAction => forced_failure = true,
                    EvacFaultKind::CrashNsm { host, nsm } => {
                        if let Some(h) = self.hosts.get_mut(&host) {
                            let _ = h.crash_nsm(nsm);
                        }
                    }
                    EvacFaultKind::KillHost(h) => {
                        let _ = self.kill_host(h);
                    }
                }
            }
            // One freeze window per wave, opened at the wave's first warm
            // export: mini-steps drain the wire for every warm VM of the
            // wave at once, so the handovers share the pause.
            if !forced_failure {
                if let EvacAction::Export {
                    mode: EvacMode::Warm,
                    ..
                } = plan.steps[step].action
                {
                    let wave = plan.steps[step].wave;
                    if window_wave != Some(wave) {
                        self.run_freeze_window(host, &plan.warm_vms_of_wave(wave));
                        window_wave = Some(wave);
                    }
                }
            }
            run.started(step, self.now_ns, self.epoch);
            let step_start = self.now_ns;
            let result = if forced_failure {
                Err(NkError::InvalidState)
            } else {
                self.execute_evac_step(&plan, step, &mut exec)
            };
            self.record_evac_phase(&plan, step, step_start, result.is_ok());
            match result {
                Ok(()) => run.done(step, self.now_ns, self.epoch),
                Err(e) => {
                    let worklist = run.failed(step, e, self.now_ns, self.epoch);
                    for id in worklist {
                        self.revert_evac_step(&plan, id, &mut exec);
                        run.reverted(id, self.now_ns, self.epoch);
                    }
                    failure = Some((step, e));
                    break;
                }
            }
        }
        let committed = failure.is_none();
        let (warm, drained) = plan
            .moves
            .iter()
            .fold((0u32, 0u32), |(w, d), m| match m.mode {
                EvacMode::Warm => (w + 1, d),
                EvacMode::Drained => (w, d + 1),
            });
        if committed {
            run.committed(self.now_ns, self.epoch);
            let conns: u64 = exec
                .warm_exports
                .values()
                .map(|e| e.conns.len() as u64)
                .sum();
            self.stats.warm_migrations += u64::from(warm);
            self.stats.conns_transplanted += conns;
            self.stats.migrations += u64::from(drained);
            self.stats.shares_retired += exec.retired.len() as u64;
            self.stats.evac_commits += 1;
            self.push_event(ClusterAction::HostEvacuated {
                host,
                vms: plan.moves.len() as u32,
                warm,
                drained,
            });
            for nsm in &exec.retired {
                self.push_event(ClusterAction::ScaleToZero { host, nsm: *nsm });
            }
        } else {
            run.rolled_back(self.now_ns, self.epoch);
            self.stats.evac_rollbacks += 1;
        }
        let events = run.into_events();
        self.plan_events.extend(events.iter().copied());
        // Mirror the plan's event log into the recorder ring, then — on a
        // rollback — trip the dump-on-fault trigger *after* the rollback
        // events landed, so the frozen ring ends exactly at the trigger.
        for event in &events {
            self.obs
                .record_event(event.at_ns, event.epoch, ObsEventKind::Plan(event.kind));
        }
        if !committed {
            self.obs.freeze(
                self.now_ns,
                self.epoch,
                FreezeReason::PlanRolledBack { host },
            );
        }
        Ok(EvacReport {
            plan,
            events,
            committed,
            moved: if committed { warm + drained } else { 0 },
            warm: if committed { warm } else { 0 },
            drained: if committed { drained } else { 0 },
            failed_step: failure.map(|(id, _)| id),
            error: failure.map(|(_, e)| e),
        })
    }

    /// Kill a host outright: its instance drops, its trunk route leaves the
    /// ToR, every VM homed there loses its home and every drain off it is
    /// abandoned. The fault injector's coarsest lever.
    pub fn kill_host(&mut self, host: HostId) -> NkResult<()> {
        self.hosts.remove(&host).ok_or(NkError::NotFound)?;
        self.tor.remove_route(host_prefix(host), HOST_PREFIX_MASK);
        self.vm_home.retain(|_, h| *h != host);
        self.drains.retain(|d| d.from != host);
        self.prev_ledgers.retain(|(h, _), _| *h != host);
        self.prev_uplink.remove(&host);
        self.prev_vm_bytes.retain(|(h, _), _| *h != host);
        self.stats.hosts_killed += 1;
        self.push_event(ClusterAction::HostKilled { host });
        // Dump-on-fault: freeze the recorder with the kill as the last
        // captured event, preserving the ring exactly as it was when the
        // host died.
        self.obs
            .freeze(self.now_ns, self.epoch, FreezeReason::HostKilled { host });
        Ok(())
    }

    /// Every plan event recorded by evacuation runs so far, in execution
    /// order.
    pub fn plan_events(&self) -> &[PlanEvent] {
        &self.plan_events
    }

    /// Routes currently installed at the ToR (trunks' block routes plus
    /// warm-migration `/32` detours) — the invariant the rollback tests
    /// compare.
    pub fn tor_routes(&self) -> usize {
        self.tor.routes()
    }

    /// The cluster-wide control log: every host's control events merged
    /// with the coordinator's plan events, ordered by
    /// `(epoch, host-before-plan, host id, position-in-log)`. Every
    /// component of the key is replay-stable, so the merged view — like
    /// [`Cluster::control_events`] — is identical at any thread count.
    pub fn control_log(&self) -> Vec<ControlLogEntry> {
        let mut merged: Vec<(u64, u8, u64, u64, ControlLogEntry)> = Vec::new();
        for (id, host) in &self.hosts {
            for (seq, event) in host.control_events().iter().enumerate() {
                merged.push((
                    event.epoch,
                    0,
                    u64::from(id.0),
                    seq as u64,
                    ControlLogEntry::Host(*id, *event),
                ));
            }
        }
        for (seq, event) in self.plan_events.iter().enumerate() {
            merged.push((event.epoch, 1, 0, seq as u64, ControlLogEntry::Plan(*event)));
        }
        merged.sort_by_key(|&(epoch, rank, host, seq, _)| (epoch, rank, host, seq));
        merged.into_iter().map(|(_, _, _, _, e)| e).collect()
    }

    /// Drive the shared freeze window of one wave: mini-steps (no control
    /// epochs, no drains, no events) until every warm VM of the wave is
    /// wire-quiet on two consecutive checks, bounded by
    /// [`MAX_FREEZE_STEPS`].
    fn run_freeze_window(&mut self, host: HostId, vms: &[VmId]) {
        if vms.is_empty() {
            return;
        }
        let window_start = self.now_ns;
        let freeze_dt = (2 * self.cfg.uplink_latency_us * 1_000).max(200_000);
        let mut quiet_streak = 0;
        for _ in 0..MAX_FREEZE_STEPS {
            let all_quiet = self
                .hosts
                .get(&host)
                .is_some_and(|h| vms.iter().all(|vm| h.vm_wire_quiet(*vm)));
            if all_quiet {
                quiet_streak += 1;
                if quiet_streak >= 2 {
                    break;
                }
            } else {
                quiet_streak = 0;
            }
            self.freeze_ministep(freeze_dt);
        }
        // The wave's wire-draining pause, attributed to every warm VM that
        // shared it (each VM's own Freeze *step* only flips the flag and is
        // recorded zero-width by the step loop).
        let (start, end, epoch) = (window_start, self.now_ns, self.epoch);
        for vm in vms {
            self.obs.record_phase(PhaseWindow {
                vm: Some(*vm),
                phase: MigrationPhase::Freeze,
                start_ns: start,
                end_ns: end,
                epoch,
                step: None,
                ok: true,
            });
        }
    }

    /// Record the phase window of one executed plan step: coordinator
    /// actions are zero-width in virtual time, stamped with the plan step
    /// id that ran them.
    fn record_evac_phase(&mut self, plan: &EvacPlan, step: usize, start_ns: u64, ok: bool) {
        let (vm, phase) = match plan.steps[step].action {
            EvacAction::Freeze { vm } => (Some(vm), MigrationPhase::Freeze),
            EvacAction::Export { vm, .. } => (Some(vm), MigrationPhase::Export),
            EvacAction::Reroute { vm, .. } => (Some(vm), MigrationPhase::Reroute),
            EvacAction::Install { vm, .. } => (Some(vm), MigrationPhase::Install),
            EvacAction::Thaw { vm, .. } => (Some(vm), MigrationPhase::Thaw),
            EvacAction::RetireShare { .. } => (None, MigrationPhase::Retire),
        };
        self.obs.record_phase(PhaseWindow {
            vm,
            phase,
            start_ns,
            end_ns: self.now_ns,
            epoch: self.epoch,
            step: Some(plan.steps[step].id as u32),
            ok,
        });
    }

    /// Execute one plan step. Each arm either completes fully or leaves no
    /// trace (the host-level operations it calls unwind internally), so a
    /// failed step never needs its own revert — only the *completed* steps
    /// before it do.
    fn execute_evac_step(
        &mut self,
        plan: &EvacPlan,
        step: usize,
        exec: &mut EvacExec,
    ) -> NkResult<()> {
        let from = plan.host;
        match plan.steps[step].action {
            EvacAction::Freeze { vm } => self
                .hosts
                .get_mut(&from)
                .ok_or(NkError::NotFound)?
                .freeze_vm(vm),
            EvacAction::Export {
                vm,
                mode: EvacMode::Warm,
            } => {
                let export = self
                    .hosts
                    .get_mut(&from)
                    .ok_or(NkError::NotFound)?
                    .export_vm_warm(vm)?;
                exec.warm_exports.insert(vm, export);
                Ok(())
            }
            EvacAction::Export {
                vm,
                mode: EvacMode::Drained,
            } => {
                let export = self
                    .hosts
                    .get_mut(&from)
                    .ok_or(NkError::NotFound)?
                    .export_vm(vm)?;
                exec.drained_exports.insert(vm, export);
                Ok(())
            }
            EvacAction::Reroute { vm, to } => {
                let ips = exec
                    .warm_exports
                    .get(&vm)
                    .ok_or(NkError::InvalidState)?
                    .rerouted_ips();
                let detours = self.install_detours(&ips, from, to)?;
                exec.reroutes.insert(vm, detours);
                Ok(())
            }
            EvacAction::Install { vm, to } => {
                let to_nsm = self.pick_destination_nsm(to)?;
                let dst = self.hosts.get_mut(&to).ok_or(NkError::NotFound)?;
                if let Some(export) = exec.warm_exports.get(&vm) {
                    dst.import_vm_warm(export, to_nsm)?;
                    // The VM stays frozen on the destination until its Thaw
                    // step: later waves' freeze mini-steps run the whole
                    // datapath and must not tick it early.
                    dst.freeze_vm(vm).expect("just imported");
                } else {
                    let export = exec.drained_exports.get(&vm).ok_or(NkError::InvalidState)?;
                    dst.import_vm(export, to_nsm)?;
                }
                Ok(())
            }
            EvacAction::Thaw { vm, to } => {
                if let Some(export) = exec.drained_exports.get(&vm) {
                    // Drained resume: the home flips and the source-side
                    // drain opens, exactly like `Cluster::migrate_vm`.
                    self.vm_home.insert(vm, to);
                    self.drains.push(ActiveDrain {
                        vm,
                        from,
                        nsm: export.from_nsm,
                    });
                } else {
                    self.hosts
                        .get_mut(&to)
                        .ok_or(NkError::NotFound)?
                        .thaw_vm(vm);
                    self.vm_home.insert(vm, to);
                }
                Ok(())
            }
            EvacAction::RetireShare { nsm } => {
                // A share still serving (a drained chain's connections have
                // not emptied yet) simply declines: the regular drain
                // machinery retires it later. Not a failure.
                let src = self.hosts.get_mut(&from).ok_or(NkError::NotFound)?;
                if src.retire_nsm_if_drained(nsm) {
                    exec.retired.push(nsm);
                }
                Ok(())
            }
        }
    }

    /// Undo one *completed* plan step. Best-effort where a killed host
    /// makes the exact inverse impossible — the journaled exports still
    /// re-install at the source, so the surviving side of the cluster
    /// always converges back to the pre-plan placement.
    fn revert_evac_step(&mut self, plan: &EvacPlan, step: usize, exec: &mut EvacExec) {
        let from = plan.host;
        match plan.steps[step].action {
            EvacAction::Freeze { vm } => {
                if let Some(src) = self.hosts.get_mut(&from) {
                    if src.has_vm(vm) {
                        src.thaw_vm(vm);
                    }
                }
            }
            EvacAction::Export {
                vm,
                mode: EvacMode::Warm,
            } => {
                let export = exec.warm_exports.get(&vm).expect("journaled at export");
                if let Some(src) = self.hosts.get_mut(&from) {
                    // Re-importing at the source clears the frozen flag with
                    // the old instance, so the VM resumes serving; the Freeze
                    // revert after this is then a no-op.
                    let _ = src.import_vm_warm(export, export.base.from_nsm);
                }
            }
            EvacAction::Export {
                vm,
                mode: EvacMode::Drained,
            } => {
                if let Some(src) = self.hosts.get_mut(&from) {
                    src.cancel_export(vm);
                }
            }
            EvacAction::Reroute { vm, .. } => {
                let detours = exec.reroutes.remove(&vm).unwrap_or_default();
                self.revert_detours(&detours);
            }
            EvacAction::Install { vm, to } => {
                if let std::collections::btree_map::Entry::Occupied(mut journal) =
                    exec.warm_exports.entry(vm)
                {
                    if let Some(dst) = self.hosts.get_mut(&to) {
                        // Tear the installed state back out of the
                        // destination. The re-export replaces the journal
                        // entry; if the destination died (or refuses), the
                        // journaled export from the original Export step is
                        // still what the Export revert re-installs at the
                        // source — nothing is lost with the host.
                        if let Ok(mut export) = dst.export_vm_warm(vm) {
                            // The re-export names the *destination's* NSM as
                            // its source, but the Export revert re-imports at
                            // the original source share (whose id can differ —
                            // e.g. VM2 lived on source NSM2 and was installed
                            // on destination NSM1). Restore the journaled id
                            // so the VM lands back on its own share.
                            export.base.from_nsm = journal.get().base.from_nsm;
                            journal.insert(export);
                        }
                    }
                } else if let Some(dst) = self.hosts.get_mut(&to) {
                    let _ = dst.retire_vm(vm);
                }
            }
            EvacAction::Thaw { vm, to } => {
                if exec.drained_exports.contains_key(&vm) {
                    self.drains.retain(|d| !(d.vm == vm && d.from == from));
                } else if let Some(dst) = self.hosts.get_mut(&to) {
                    if dst.has_vm(vm) {
                        let _ = dst.freeze_vm(vm);
                    }
                }
                self.vm_home.insert(vm, from);
            }
            EvacAction::RetireShare { nsm } => {
                if let Some(pos) = exec.retired.iter().position(|n| *n == nsm) {
                    exec.retired.remove(pos);
                    if let Some(src) = self.hosts.get_mut(&from) {
                        src.revive_nsm_share(nsm);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use nk_ctrl::PlanEventKind;
    use nk_types::{
        ClusterConfig, HostConfig, NsmConfig, SockAddr, SocketApi, SocketId, VmConfig,
        VmToNsmPolicy,
    };

    const SERVER_IP: u32 = 0xC0A8_0001; // outside every host block

    pub(crate) fn empty_host(id: u8) -> HostConfig {
        HostConfig::new()
            .with_host_id(HostId(id))
            .with_nsm(NsmConfig::kernel(NsmId(1)))
            .with_mapping(VmToNsmPolicy::All(NsmId(1)))
    }

    /// Host 1 carries the VMs: each of `exclusive` on its own NSM (warm
    /// eligible), all of `shared` together on one extra NSM (drained only).
    pub(crate) fn evac_host(exclusive: &[u8], shared: &[u8]) -> HostConfig {
        let mut cfg = HostConfig::new().with_host_id(HostId(1));
        let mut map = Vec::new();
        for (i, vm) in exclusive.iter().enumerate() {
            let nsm = NsmId(i as u8 + 1);
            cfg = cfg
                .with_nsm(NsmConfig::kernel(nsm))
                .with_vm(VmConfig::new(VmId(*vm)));
            map.push((VmId(*vm), nsm));
        }
        if !shared.is_empty() {
            let nsm = NsmId(exclusive.len() as u8 + 1);
            cfg = cfg.with_nsm(NsmConfig::kernel(nsm));
            for vm in shared {
                cfg = cfg.with_vm(VmConfig::new(VmId(*vm)));
                map.push((VmId(*vm), nsm));
            }
        }
        cfg.with_mapping(VmToNsmPolicy::Static(map))
    }

    /// Build the cluster, wire the echo server and get every VM on host 1
    /// streaming to it (pinned connections all around). Returns the
    /// server's listener and the guest sockets by VM.
    pub(crate) fn cluster_with_traffic(
        cfg: ClusterConfig,
        vms: &[u8],
    ) -> (Cluster, SocketId, Vec<(VmId, SocketId)>) {
        let mut cluster = Cluster::new(cfg).unwrap();
        let server = cluster.add_remote(SERVER_IP);
        let ls = server.socket();
        server.bind(ls, SockAddr::new(0, 7)).unwrap();
        server.listen(ls, 16).unwrap();
        let mut socks = Vec::new();
        for vm in vms {
            let guest = cluster.guest_on(HostId(1), VmId(*vm)).unwrap();
            let s = guest.socket().unwrap();
            guest.connect(s, SockAddr::new(SERVER_IP, 7)).unwrap();
            socks.push((VmId(*vm), s));
        }
        cluster.run(20, 100_000);
        for (vm, s) in &socks {
            let guest = cluster.guest_on(HostId(1), *vm).unwrap();
            guest.send(*s, b"pinned").unwrap();
        }
        cluster.run(10, 100_000);
        for (vm, _) in &socks {
            assert!(
                cluster.host(HostId(1)).unwrap().vm_pinned(*vm) >= 1,
                "{vm:?} must be pinned before the evacuation"
            );
        }
        (cluster, ls, socks)
    }

    /// Everything a rollback must restore, byte for byte. Collections are
    /// sorted so the comparison is insensitive to config-reinsertion order.
    #[derive(Debug, PartialEq)]
    pub(crate) struct Snapshot {
        homes: Vec<(VmId, HostId)>,
        present: Vec<(HostId, Vec<VmId>)>,
        cores: Vec<(HostId, NsmId, Option<usize>)>,
        frozen: Vec<(HostId, VmId, bool)>,
        draining: Vec<(HostId, Vec<(VmId, NsmId)>)>,
        aliases: Vec<(HostId, Vec<(u32, NsmId)>)>,
        digest: u64,
        routes: usize,
    }

    pub(crate) fn snapshot(cluster: &Cluster) -> Snapshot {
        let mut present = Vec::new();
        let mut cores = Vec::new();
        let mut frozen = Vec::new();
        let mut draining = Vec::new();
        let mut aliases = Vec::new();
        for id in cluster.host_ids() {
            let host = cluster.host(id).unwrap();
            let mut vms: Vec<VmId> = host.config().vms.iter().map(|v| v.id).collect();
            vms.sort();
            for vm in &vms {
                frozen.push((id, *vm, host.vm_frozen(*vm)));
            }
            present.push((id, vms));
            for nsm in host.config().nsms.iter().map(|n| n.id) {
                cores.push((id, nsm, host.nsm_cores(nsm)));
            }
            let mut drains = host.draining_vms();
            drains.sort();
            draining.push((id, drains));
            let mut al = host.warm_aliases();
            al.sort();
            aliases.push((id, al));
        }
        let homes: std::collections::BTreeSet<(VmId, HostId)> = present
            .iter()
            .flat_map(|(_, vms)| vms.iter())
            .filter_map(|vm| cluster.home_of(*vm).map(|h| (*vm, h)))
            .collect();
        Snapshot {
            homes: homes.into_iter().collect(),
            present,
            cores,
            frozen,
            draining,
            aliases,
            digest: cluster.event_digest(),
            routes: cluster.tor_routes(),
        }
    }

    /// A clean multi-VM evacuation: every VM warm-migrates off host 1 in
    /// one paced plan, the source shares scale to zero in the plan tail,
    /// one summary event lands in the cluster log, and the transplanted
    /// connections keep serving from their new homes.
    #[test]
    fn clean_warm_evacuation_moves_every_vm() {
        let cfg = ClusterConfig::new()
            .with_host(evac_host(&[1, 2], &[]))
            .with_host(empty_host(2))
            .with_host(empty_host(3));
        let (mut cluster, ls, socks) = cluster_with_traffic(cfg, &[1, 2]);

        let report = cluster.evacuate_host(HostId(1), 2).unwrap();
        assert!(report.committed, "{report:?}");
        assert_eq!((report.moved, report.warm, report.drained), (2, 2, 0));
        assert_eq!(report.failed_step, None);
        // Least-loaded spread: one VM per empty host.
        assert_eq!(cluster.home_of(VmId(1)), Some(HostId(2)));
        assert_eq!(cluster.home_of(VmId(2)), Some(HostId(3)));
        assert!(!cluster.host(HostId(1)).unwrap().has_vm(VmId(1)));
        // Both emptied source shares retired inside the plan.
        assert_eq!(
            cluster.host(HostId(1)).unwrap().nsm_cores(NsmId(1)),
            Some(0)
        );
        assert_eq!(
            cluster.host(HostId(1)).unwrap().nsm_cores(NsmId(2)),
            Some(0)
        );
        let stats = cluster.stats();
        assert_eq!(stats.evac_plans, 1);
        assert_eq!(stats.evac_commits, 1);
        assert_eq!(stats.warm_migrations, 2);
        assert_eq!(stats.shares_retired, 2);
        assert!(cluster.events().iter().any(|e| matches!(
            e.action,
            ClusterAction::HostEvacuated {
                host: HostId(1),
                vms: 2,
                warm: 2,
                drained: 0,
            }
        )));
        assert!(matches!(
            cluster.plan_events().last().unwrap().kind,
            PlanEventKind::PlanCommitted { host: HostId(1) }
        ));

        // The pinned connections came along: same sockets, new hosts, still
        // round-tripping through the restored routes.
        for (vm, s, home) in [
            (VmId(1), socks[0].1, HostId(2)),
            (VmId(2), socks[1].1, HostId(3)),
        ] {
            let guest = cluster.guest_on(home, vm).unwrap();
            assert!(guest.has_socket(s), "{vm:?} keeps its socket");
            guest.send(s, b"after").unwrap();
        }
        cluster.run(20, 100_000);
        let server = cluster.remote_mut(SERVER_IP).unwrap();
        let mut streams = 0;
        while let Ok((conn, _)) = server.accept(ls) {
            let mut got = Vec::new();
            let mut buf = [0u8; 64];
            while let Ok(n) = server.recv(conn, &mut buf) {
                if n == 0 {
                    break;
                }
                got.extend_from_slice(&buf[..n]);
            }
            assert_eq!(got, b"pinnedafter", "byte-contiguous across the evacuation");
            streams += 1;
        }
        assert_eq!(streams, 2);
    }

    /// The acceptance criterion: a fault injected at ANY single action of
    /// the plan triggers a full reverse-order revert, after which
    /// placement, per-share cores, freeze flags, drains, aliases, routes
    /// and the event digest are byte-identical to the pre-plan snapshot —
    /// at one worker thread and at four.
    #[test]
    fn fault_at_any_action_reverts_byte_identically() {
        let config = |threads: usize| {
            ClusterConfig::new()
                .with_host(evac_host(&[1], &[2, 3]))
                .with_host(empty_host(2))
                .with_host(empty_host(3))
                .with_threads(threads)
        };
        // Learn the plan shape once: a mixed warm + drained plan, two waves
        // plus the retirement tail.
        let (probe, _, _) = cluster_with_traffic(config(1), &[1, 2, 3]);
        let plan = probe.plan_evacuation(HostId(1), 2).unwrap();
        assert!(
            plan.moves.iter().any(|m| m.mode == EvacMode::Warm)
                && plan.moves.iter().any(|m| m.mode == EvacMode::Drained),
            "the plan must exercise both chain kinds: {plan:?}"
        );
        assert!(plan.steps.len() >= 11, "{plan:?}");

        for threads in [1usize, 4] {
            for step in 0..plan.steps.len() {
                let (mut cluster, _, _) = cluster_with_traffic(config(threads), &[1, 2, 3]);
                let before = snapshot(&cluster);
                let report = cluster
                    .evacuate_host_with_faults(
                        HostId(1),
                        2,
                        &[EvacFault {
                            before_step: step,
                            kind: EvacFaultKind::FailAction,
                        }],
                    )
                    .unwrap();
                assert!(!report.committed, "threads={threads} step={step}");
                assert_eq!(report.failed_step, Some(step));
                assert_eq!(report.moved, 0);
                assert_eq!(
                    snapshot(&cluster),
                    before,
                    "threads={threads}: revert after failing step {step} ({:?}) \
                     must restore the pre-plan state",
                    plan.steps[step].action
                );
                assert!(matches!(
                    report.events.last().unwrap().kind,
                    PlanEventKind::PlanRolledBack { .. }
                ));
                assert_eq!(cluster.stats().evac_rollbacks, 1);
            }
        }
    }

    /// Killing the destination host mid-plan (before the install) rolls the
    /// evacuation back: the VM is re-installed at the source from its
    /// journaled export and keeps serving, and the host's death is logged.
    #[test]
    fn killing_the_destination_mid_plan_rolls_back() {
        let cfg = ClusterConfig::new()
            .with_host(evac_host(&[1], &[]))
            .with_host(empty_host(2));
        let (mut cluster, ls, socks) = cluster_with_traffic(cfg, &[1]);
        let plan = cluster.plan_evacuation(HostId(1), 1).unwrap();
        let install = plan
            .steps
            .iter()
            .find(|s| matches!(s.action, EvacAction::Install { .. }))
            .unwrap()
            .id;

        let report = cluster
            .evacuate_host_with_faults(
                HostId(1),
                1,
                &[EvacFault {
                    before_step: install,
                    kind: EvacFaultKind::KillHost(HostId(2)),
                }],
            )
            .unwrap();
        assert!(!report.committed);
        assert_eq!(report.failed_step, Some(install));
        assert_eq!(report.error, Some(NkError::NotFound));
        assert_eq!(cluster.stats().hosts_killed, 1);
        assert_eq!(cluster.stats().evac_rollbacks, 1);
        assert!(!cluster.host_ids().contains(&HostId(2)));
        assert!(cluster
            .events()
            .iter()
            .any(|e| matches!(e.action, ClusterAction::HostKilled { host: HostId(2) })));

        // Original placement restored; the connection survived the round
        // trip through the journal.
        assert_eq!(cluster.home_of(VmId(1)), Some(HostId(1)));
        assert!(!cluster.host(HostId(1)).unwrap().vm_frozen(VmId(1)));
        let (vm, s) = socks[0];
        let guest = cluster.guest_on(HostId(1), vm).unwrap();
        assert!(guest.has_socket(s));
        guest.send(s, b"revived").unwrap();
        cluster.run(20, 100_000);
        let server = cluster.remote_mut(SERVER_IP).unwrap();
        let (conn, _) = server.accept(ls).unwrap();
        let mut got = Vec::new();
        let mut buf = [0u8; 64];
        while let Ok(n) = server.recv(conn, &mut buf) {
            if n == 0 {
                break;
            }
            got.extend_from_slice(&buf[..n]);
        }
        assert_eq!(got, b"pinnedrevived");
    }

    /// Crashing the destination's NSM mid-plan fails the install with
    /// `NoNsm` and rolls back the same way.
    #[test]
    fn crashing_the_destination_nsm_mid_plan_rolls_back() {
        let cfg = ClusterConfig::new()
            .with_host(evac_host(&[1], &[]))
            .with_host(empty_host(2));
        let (mut cluster, _, _) = cluster_with_traffic(cfg, &[1]);
        let plan = cluster.plan_evacuation(HostId(1), 1).unwrap();
        let install = plan
            .steps
            .iter()
            .find(|s| matches!(s.action, EvacAction::Install { .. }))
            .unwrap()
            .id;

        let report = cluster
            .evacuate_host_with_faults(
                HostId(1),
                1,
                &[EvacFault {
                    before_step: install,
                    kind: EvacFaultKind::CrashNsm {
                        host: HostId(2),
                        nsm: NsmId(1),
                    },
                }],
            )
            .unwrap();
        assert!(!report.committed);
        assert_eq!(report.error, Some(NkError::NoNsm));
        assert_eq!(cluster.home_of(VmId(1)), Some(HostId(1)));
        assert!(!cluster.host(HostId(1)).unwrap().vm_frozen(VmId(1)));
        assert!(cluster.host(HostId(1)).unwrap().has_vm(VmId(1)));
    }

    /// Evacuation planning refuses the degenerate cases; executing against
    /// them never starts a plan.
    #[test]
    fn planning_is_refused_without_a_host_or_destination() {
        let cfg = ClusterConfig::new().with_host(evac_host(&[1], &[]));
        let cluster = Cluster::new(cfg).unwrap();
        assert_eq!(
            cluster.plan_evacuation(HostId(9), 1),
            Err(NkError::NotFound)
        );
        // Only one host: nowhere to go (found before pace validation).
        assert_eq!(cluster.plan_evacuation(HostId(1), 1), Err(NkError::NoNsm));
        assert_eq!(cluster.plan_evacuation(HostId(1), 0), Err(NkError::NoNsm));
    }

    /// The merged control log carries both host control events and plan
    /// events, keyed deterministically.
    #[test]
    fn control_log_merges_plan_events_deterministically() {
        let cfg = ClusterConfig::new()
            .with_host(evac_host(&[1], &[]))
            .with_host(empty_host(2));
        let (mut cluster, _, _) = cluster_with_traffic(cfg, &[1]);
        let report = cluster.evacuate_host(HostId(1), 1).unwrap();
        assert!(report.committed);
        let log = cluster.control_log();
        let plan_entries: Vec<&PlanEvent> = log
            .iter()
            .filter_map(|e| match e {
                ControlLogEntry::Plan(p) => Some(p),
                ControlLogEntry::Host(..) => None,
            })
            .collect();
        assert_eq!(plan_entries.len(), cluster.plan_events().len());
        // Plan entries appear in log order (seq is strictly increasing).
        for pair in plan_entries.windows(2) {
            assert!(pair[0].seq < pair[1].seq);
        }
    }

    /// `kill_host` is a dump-on-fault trigger: the recorder freezes with
    /// the kill as the last captured event, and nothing that happens
    /// afterwards — steps, migrations, their events — leaves a trace.
    #[test]
    fn kill_host_freezes_the_flight_recorder_at_the_trigger() {
        let cfg = ClusterConfig::new()
            .with_host(evac_host(&[1], &[]))
            .with_host(empty_host(2))
            .with_host(empty_host(3));
        let (mut cluster, _, _) = cluster_with_traffic(cfg, &[1]);
        assert!(cluster.recorder().frozen().is_none());

        let kill_at = cluster.now_ns();
        cluster.kill_host(HostId(3)).unwrap();
        let info = *cluster
            .recorder()
            .frozen()
            .expect("the kill must freeze the ring");
        assert_eq!(info.at_ns, kill_at);
        assert_eq!(info.reason, FreezeReason::HostKilled { host: HostId(3) });
        let frozen_dump = cluster.obs_dump();
        assert!(
            matches!(
                frozen_dump.events.last().map(|e| &e.kind),
                Some(ObsEventKind::Cluster(ClusterAction::HostKilled { host }))
                    if *host == HostId(3)
            ),
            "the kill itself is the last captured event: {:?}",
            frozen_dump.events
        );

        cluster.run(20, 100_000);
        cluster.migrate_vm(VmId(1), HostId(1), HostId(2)).unwrap();
        cluster.run(20, 100_000);
        assert_eq!(
            cluster.obs_dump(),
            frozen_dump,
            "post-trigger activity must not change the frozen dump"
        );
    }

    /// A rolled-back plan freezes the recorder too, after the rollback's
    /// plan events landed — the frozen ring ends exactly at the trigger.
    #[test]
    fn rollback_freezes_the_flight_recorder_after_its_plan_events() {
        let cfg = ClusterConfig::new()
            .with_host(evac_host(&[1], &[]))
            .with_host(empty_host(2));
        let (mut cluster, _, _) = cluster_with_traffic(cfg, &[1]);
        let plan = cluster.plan_evacuation(HostId(1), 1).unwrap();
        let install = plan
            .steps
            .iter()
            .find(|s| matches!(s.action, EvacAction::Install { .. }))
            .unwrap()
            .id;
        let report = cluster
            .evacuate_host_with_faults(
                HostId(1),
                1,
                &[EvacFault {
                    before_step: install,
                    kind: EvacFaultKind::CrashNsm {
                        host: HostId(2),
                        nsm: NsmId(1),
                    },
                }],
            )
            .unwrap();
        assert!(!report.committed);
        let info = cluster
            .recorder()
            .frozen()
            .expect("the rollback must freeze the ring");
        assert_eq!(
            info.reason,
            FreezeReason::PlanRolledBack { host: HostId(1) }
        );
        // Every plan event of the failed run made it into the ring before
        // the freeze, including the rollback tail.
        let dump = cluster.obs_dump();
        let plan_events = dump
            .events
            .iter()
            .filter(|e| matches!(e.kind, ObsEventKind::Plan(_)))
            .count();
        assert_eq!(plan_events, report.events.len(), "{:?}", dump.events);
    }
}

#[cfg(test)]
mod review_repro {
    use super::tests::*;
    use super::*;
    use nk_types::ClusterConfig;

    #[test]
    fn repro_rollback_with_mismatched_nsm_ids() {
        // VM1 on NSM1, VM2 on NSM2, both exclusive (warm). Dest hosts have
        // only NSM1. Fail at VM2's Thaw: its Install (dest NSM1) completed,
        // so the rollback re-exports from the destination and re-imports at
        // the source using the *destination's* NSM id.
        let cfg = ClusterConfig::new()
            .with_host(evac_host(&[1, 2], &[]))
            .with_host(empty_host(2))
            .with_host(empty_host(3));
        let (mut cluster, _, _) = cluster_with_traffic(cfg, &[1, 2]);
        let plan = cluster.plan_evacuation(HostId(1), 2).unwrap();
        let thaw2 = plan
            .steps
            .iter()
            .find(|s| matches!(s.action, EvacAction::Thaw { vm: VmId(2), .. }))
            .unwrap()
            .id;
        let before = snapshot(&cluster);
        let report = cluster
            .evacuate_host_with_faults(
                HostId(1),
                2,
                &[EvacFault {
                    before_step: thaw2,
                    kind: EvacFaultKind::FailAction,
                }],
            )
            .unwrap();
        assert!(!report.committed);
        assert!(
            cluster.host(HostId(1)).unwrap().has_vm(VmId(2)),
            "VM2 must be restored to the source on rollback"
        );
        assert_eq!(snapshot(&cluster), before);
    }
}
