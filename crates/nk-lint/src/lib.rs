//! nk-lint: the workspace determinism & layering linter.
//!
//! Every guarantee this reproduction makes — byte-identical digests, stats,
//! control logs and `ObsDump`s at any thread count × shard on/off — rests
//! on coding invariants that no compiler checks: no hash-ordered iteration
//! in the datapath, no ambient wall-clock or randomness, cross-shard
//! traffic only over the wait-free SPSC edges, locks kept out of
//! lane-executed code, `unsafe` always audited, and a strict crate
//! layering. This crate mechanizes that audit as six rule passes over a
//! pure-Rust token stream (no `syn`, no dependencies at all) plus a CLI:
//!
//! ```text
//! cargo run -p nk-lint -- check [--json] [--root PATH] [--baseline PATH]
//! ```
//!
//! Exit codes: `0` clean, `1` violations found, `2` internal error
//! (unreadable file, malformed baseline, not a workspace).
//!
//! See [`rules`] for the rule table, [`layering`] for the declared crate
//! DAG, and [`baseline`] for the accepted-findings workflow.

pub mod baseline;
pub mod json;
pub mod layering;
pub mod lex;
pub mod rules;
pub mod workspace;

use baseline::Baseline;
use json::esc;
use rules::{Finding, UnsafeSite};
use std::path::{Path, PathBuf};
use workspace::LintError;

/// Linter invocation options.
#[derive(Debug, Default)]
pub struct Options {
    /// Workspace root. Defaults (in the CLI) to the nearest enclosing
    /// directory whose `Cargo.toml` declares `[workspace]`.
    pub root: PathBuf,
    /// Baseline path override; defaults to `<root>/lint-baseline.json`.
    /// The default is optional (missing → empty baseline); an explicit
    /// override must exist.
    pub baseline: Option<PathBuf>,
}

/// The result of a lint run.
#[derive(Debug, Default)]
pub struct Report {
    /// New findings (not covered by the baseline), sorted by (file, line,
    /// rule).
    pub findings: Vec<Finding>,
    /// Findings suppressed by the baseline.
    pub baselined: Vec<Finding>,
    /// Every `unsafe` occurrence in the workspace.
    pub unsafe_inventory: Vec<UnsafeSite>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Number of crates scanned.
    pub crates_scanned: usize,
}

/// Run every rule over the workspace at `opts.root`.
pub fn run_check(opts: &Options) -> Result<Report, LintError> {
    let root = &opts.root;
    let crates = workspace::discover(root)?;

    let mut findings = Vec::new();
    let mut inventory = Vec::new();
    let mut files_scanned = 0usize;

    for krate in &crates {
        layering::check_layering(
            &krate.name,
            &krate.manifest_rel,
            &krate.manifest_text,
            &mut findings,
        );
        for rel in &krate.rs_files {
            let path = root.join(rel);
            let src = std::fs::read_to_string(&path)
                .map_err(|e| LintError(format!("cannot read {}: {e}", path.display())))?;
            let file = lex::tokenize(rel, &src);
            rules::run_all(&krate.name, &file, &mut findings, &mut inventory);
            files_scanned += 1;
        }
    }

    findings
        .sort_by(|a, b| (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule)));
    inventory.sort_by(|a, b| (a.file.as_str(), a.line).cmp(&(b.file.as_str(), b.line)));

    let baseline = load_baseline(opts)?;
    let (baselined, fresh): (Vec<Finding>, Vec<Finding>) =
        findings.into_iter().partition(|f| baseline.covers(f));

    Ok(Report {
        findings: fresh,
        baselined,
        unsafe_inventory: inventory,
        files_scanned,
        crates_scanned: crates.len(),
    })
}

fn load_baseline(opts: &Options) -> Result<Baseline, LintError> {
    let (path, required) = match &opts.baseline {
        Some(p) => (p.clone(), true),
        None => (opts.root.join("lint-baseline.json"), false),
    };
    if !path.exists() {
        if required {
            return Err(LintError(format!(
                "baseline {} does not exist",
                path.display()
            )));
        }
        return Ok(Baseline::default());
    }
    let text = std::fs::read_to_string(&path)
        .map_err(|e| LintError(format!("cannot read baseline {}: {e}", path.display())))?;
    baseline::parse_baseline(&text).map_err(|e| LintError(format!("{}: {e}", path.display())))
}

/// Write `findings` (typically `report.findings` + `report.baselined`) as a
/// baseline document at `path`.
pub fn write_baseline(path: &Path, findings: &[Finding]) -> Result<(), LintError> {
    std::fs::write(path, baseline::render_baseline(findings))
        .map_err(|e| LintError(format!("cannot write baseline {}: {e}", path.display())))
}

/// Render the machine-readable report (findings + unsafe inventory).
pub fn render_json(report: &Report) -> String {
    let mut out = String::from("{\n  \"schema\": 1,\n");
    out.push_str(&format!(
        "  \"summary\": {{\"crates\": {}, \"files\": {}, \"findings\": {}, \"baselined\": {}, \"unsafe_sites\": {}}},\n",
        report.crates_scanned,
        report.files_scanned,
        report.findings.len(),
        report.baselined.len(),
        report.unsafe_inventory.len()
    ));
    for (name, list) in [
        ("findings", &report.findings),
        ("baselined", &report.baselined),
    ] {
        out.push_str(&format!("  \"{name}\": ["));
        for (i, f) in list.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \"key\": \"{}\", \"message\": \"{}\", \"hint\": \"{}\"}}",
                esc(f.rule),
                esc(&f.file),
                f.line,
                esc(&f.key),
                esc(&f.message),
                esc(&f.hint)
            ));
        }
        out.push_str(if list.is_empty() { "],\n" } else { "\n  ],\n" });
    }
    out.push_str("  \"unsafe_inventory\": [");
    for (i, s) in report.unsafe_inventory.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"file\": \"{}\", \"line\": {}, \"kind\": \"{}\", \"has_safety\": {}}}",
            esc(&s.file),
            s.line,
            esc(&s.kind),
            s.has_safety
        ));
    }
    out.push_str(if report.unsafe_inventory.is_empty() {
        "]\n}\n"
    } else {
        "\n  ]\n}\n"
    });
    out
}

/// Render the human-readable report.
pub fn render_text(report: &Report) -> String {
    let mut out = String::new();
    for f in &report.findings {
        out.push_str(&format!(
            "{}:{}: [{}] {}\n    fix: {}\n",
            f.file, f.line, f.rule, f.message, f.hint
        ));
    }
    let audited = report
        .unsafe_inventory
        .iter()
        .filter(|s| s.has_safety)
        .count();
    out.push_str(&format!(
        "nk-lint: {} crates, {} files scanned; {} finding(s), {} baselined; \
         {}/{} unsafe sites audited\n",
        report.crates_scanned,
        report.files_scanned,
        report.findings.len(),
        report.baselined.len(),
        audited,
        report.unsafe_inventory.len()
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_report_parses_back() {
        let report = Report {
            findings: vec![Finding {
                rule: "hash-order",
                file: "a.rs".to_string(),
                line: 3,
                message: "`HashMap` is banned here".to_string(),
                hint: "use \"BTreeMap\"".to_string(),
                key: "HashMap#0".to_string(),
            }],
            baselined: Vec::new(),
            unsafe_inventory: vec![UnsafeSite {
                file: "b.rs".to_string(),
                line: 9,
                kind: "block".to_string(),
                has_safety: true,
            }],
            files_scanned: 2,
            crates_scanned: 1,
        };
        let doc = json::parse(&render_json(&report)).unwrap();
        let findings = doc.get("findings").unwrap().as_arr().unwrap();
        assert_eq!(findings.len(), 1);
        assert_eq!(
            findings[0].get("rule").unwrap().as_str(),
            Some("hash-order")
        );
        let inv = doc.get("unsafe_inventory").unwrap().as_arr().unwrap();
        assert_eq!(inv[0].get("has_safety"), Some(&json::Value::Bool(true)));
    }
}
