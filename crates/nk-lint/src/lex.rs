//! A minimal, dependency-free Rust tokenizer.
//!
//! The rule passes need exactly three things from a source file: the
//! identifier/punctuation token stream with line numbers (so `HashMap` in a
//! string literal or a doc comment never fires a rule), the comment text per
//! line (so `// SAFETY:` and `// nk-lint: allow(...)` directives can be
//! found), and which lines carry code at all (so a comment block "directly
//! above" a finding can be walked). A full parser — `syn` or rustc's own —
//! would be more precise but drags in a dependency tree; the token layer is
//! enough for every invariant the linter checks.

/// One lexed token: an identifier/keyword or a single punctuation character.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Tok {
    /// 1-based source line.
    pub line: u32,
    /// Identifier text, or the punctuation character as a 1-char string.
    pub text: String,
    /// True when the token is an identifier or keyword.
    pub is_ident: bool,
}

/// A tokenized source file plus the per-line comment map.
#[derive(Debug, Default)]
pub struct SourceFile {
    /// Path relative to the workspace root, `/`-separated.
    pub rel_path: String,
    /// Identifier + punctuation tokens in source order.
    pub tokens: Vec<Tok>,
    /// Per line (index 0 = line 1): concatenated comment text on that line.
    pub comment_text: Vec<String>,
    /// Per line: true when at least one code token starts on it.
    pub has_code: Vec<bool>,
}

impl SourceFile {
    /// True when `line` (1-based) consists of comments only (no code, some
    /// comment text).
    pub fn is_comment_only(&self, line: u32) -> bool {
        let i = (line as usize).wrapping_sub(1);
        match (self.has_code.get(i), self.comment_text.get(i)) {
            (Some(false), Some(t)) => !t.is_empty(),
            _ => false,
        }
    }

    /// Comment text on `line` (1-based), or "" when none.
    pub fn comment_on(&self, line: u32) -> &str {
        self.comment_text
            .get((line as usize).wrapping_sub(1))
            .map(|s| s.as_str())
            .unwrap_or("")
    }

    /// The contiguous run of comment-only lines directly above `line`,
    /// concatenated top-to-bottom. Stops at the first blank or code line.
    pub fn comment_block_above(&self, line: u32) -> String {
        let mut l = line.saturating_sub(1);
        let mut lines = Vec::new();
        while l >= 1 && self.is_comment_only(l) {
            lines.push(self.comment_on(l));
            l -= 1;
        }
        lines.reverse();
        lines.join("\n")
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Tokenize `src`. Never fails: unterminated constructs simply consume the
/// rest of the file (the linter's job is auditing code that compiles; on
/// garbage it degrades to fewer tokens, not a crash).
pub fn tokenize(rel_path: &str, src: &str) -> SourceFile {
    let n_lines = src.lines().count().max(1);
    let mut out = SourceFile {
        rel_path: rel_path.to_string(),
        tokens: Vec::new(),
        comment_text: vec![String::new(); n_lines + 1],
        has_code: vec![false; n_lines + 1],
    };
    let chars: Vec<char> = src.chars().collect();
    let mut i = 0usize;
    let mut line = 1u32;

    macro_rules! note_comment {
        ($line:expr, $text:expr) => {{
            let idx = ($line as usize).saturating_sub(1);
            if let Some(slot) = out.comment_text.get_mut(idx) {
                if !slot.is_empty() {
                    slot.push(' ');
                }
                slot.push_str($text);
            }
        }};
    }

    while i < chars.len() {
        let c = chars[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            '/' if chars.get(i + 1) == Some(&'/') => {
                // Line comment (includes /// and //!).
                let start = i + 2;
                let mut j = start;
                while j < chars.len() && chars[j] != '\n' {
                    j += 1;
                }
                let text: String = chars[start..j].iter().collect();
                note_comment!(line, text.trim());
                i = j;
            }
            '/' if chars.get(i + 1) == Some(&'*') => {
                // Block comment, nesting per Rust rules.
                let mut depth = 1usize;
                let mut j = i + 2;
                let mut seg_start = j;
                while j < chars.len() && depth > 0 {
                    if chars[j] == '\n' {
                        let text: String = chars[seg_start..j].iter().collect();
                        note_comment!(line, text.trim());
                        line += 1;
                        seg_start = j + 1;
                        j += 1;
                    } else if chars[j] == '/' && chars.get(j + 1) == Some(&'*') {
                        depth += 1;
                        j += 2;
                    } else if chars[j] == '*' && chars.get(j + 1) == Some(&'/') {
                        depth -= 1;
                        j += 2;
                    } else {
                        j += 1;
                    }
                }
                let end = j.saturating_sub(2).max(seg_start);
                let text: String = chars[seg_start..end].iter().collect();
                note_comment!(line, text.trim_end_matches("*/").trim());
                i = j;
            }
            '"' => {
                // String literal with escapes; may span lines.
                let mut j = i + 1;
                while j < chars.len() {
                    match chars[j] {
                        '\\' => j += 2,
                        '\n' => {
                            line += 1;
                            j += 1;
                        }
                        '"' => {
                            j += 1;
                            break;
                        }
                        _ => j += 1,
                    }
                }
                i = j;
            }
            '\'' => {
                // Char literal vs lifetime. `'\x'`-style and `'c'` are
                // literals; `'ident` (not followed by a closing quote) is a
                // lifetime label.
                if chars.get(i + 1) == Some(&'\\') {
                    // Escaped char literal: consume to the closing quote.
                    let mut j = i + 2;
                    while j < chars.len() && chars[j] != '\'' {
                        j += 1;
                    }
                    i = j + 1;
                } else if chars.get(i + 2) == Some(&'\'')
                    && chars.get(i + 1).copied().is_some_and(|c| c != '\'')
                {
                    i += 3; // plain 'c'
                } else {
                    i += 1; // lifetime tick; the ident lexes next
                }
            }
            _ if is_ident_start(c) => {
                let start = i;
                let mut j = i + 1;
                while j < chars.len() && is_ident_continue(chars[j]) {
                    j += 1;
                }
                let word: String = chars[start..j].iter().collect();
                let next = chars.get(j).copied();
                if word == "b" && next == Some('"') {
                    // Byte string b"..": escapes allowed, scan like a normal
                    // string literal.
                    let mut k = j + 1;
                    while k < chars.len() {
                        match chars[k] {
                            '\\' => k += 2,
                            '\n' => {
                                line += 1;
                                k += 1;
                            }
                            '"' => {
                                k += 1;
                                break;
                            }
                            _ => k += 1,
                        }
                    }
                    i = k;
                    continue;
                }
                // Raw (byte) string prefixes: r".."/r#".."#/br#".."#.
                let is_raw_prefix =
                    matches!(word.as_str(), "r" | "br") && matches!(next, Some('"') | Some('#'));
                if is_raw_prefix {
                    // Count the #s, then skip to the matching "#...# close.
                    let mut hashes = 0usize;
                    let mut k = j;
                    while chars.get(k) == Some(&'#') {
                        hashes += 1;
                        k += 1;
                    }
                    if chars.get(k) == Some(&'"') {
                        k += 1;
                        'scan: while k < chars.len() {
                            if chars[k] == '\n' {
                                line += 1;
                                k += 1;
                            } else if chars[k] == '"' {
                                let mut h = 0usize;
                                while h < hashes && chars.get(k + 1 + h) == Some(&'#') {
                                    h += 1;
                                }
                                if h == hashes {
                                    k += 1 + hashes;
                                    break 'scan;
                                }
                                k += 1;
                            } else {
                                k += 1;
                            }
                        }
                        i = k;
                        continue;
                    }
                    // `r` / `b` not actually a literal prefix: fall through
                    // as a plain identifier.
                }
                if word == "b" && next == Some('\'') {
                    // Byte char literal b'x' / b'\n'.
                    let mut k = j + 1;
                    if chars.get(k) == Some(&'\\') {
                        k += 1;
                    }
                    while k < chars.len() && chars[k] != '\'' {
                        k += 1;
                    }
                    i = k + 1;
                    continue;
                }
                out.has_code[(line as usize) - 1] = true;
                out.tokens.push(Tok {
                    line,
                    text: word,
                    is_ident: true,
                });
                i = j;
            }
            _ if c.is_ascii_digit() => {
                // Numeric literal; consume alnum/underscore/dot loosely.
                let mut j = i + 1;
                while j < chars.len()
                    && (is_ident_continue(chars[j])
                        || (chars[j] == '.'
                            && chars
                                .get(j + 1)
                                .copied()
                                .is_some_and(|d| d.is_ascii_digit())))
                {
                    j += 1;
                }
                out.has_code[(line as usize) - 1] = true;
                i = j;
            }
            _ if c.is_whitespace() => {
                i += 1;
            }
            _ => {
                out.has_code[(line as usize) - 1] = true;
                out.tokens.push(Tok {
                    line,
                    text: c.to_string(),
                    is_ident: false,
                });
                i += 1;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(f: &SourceFile) -> Vec<&str> {
        f.tokens
            .iter()
            .filter(|t| t.is_ident)
            .map(|t| t.text.as_str())
            .collect()
    }

    #[test]
    fn strings_and_comments_emit_no_tokens() {
        let f = tokenize(
            "t.rs",
            "// HashMap in a comment\nlet s = \"HashMap::new()\"; /* HashMap */ let x = 1;",
        );
        assert_eq!(idents(&f), vec!["let", "s", "let", "x"]);
        assert!(f.comment_on(1).contains("HashMap in a comment"));
        assert!(f.comment_on(2).contains("HashMap"));
    }

    #[test]
    fn raw_strings_and_char_literals_are_skipped() {
        let f = tokenize(
            "t.rs",
            "let a = r#\"Instant::now() \"quoted\" \"#; let b = 'x'; let c = '\\''; let l: &'static str = \"y\";",
        );
        let ids = idents(&f);
        assert!(!ids.contains(&"Instant"));
        assert!(
            ids.contains(&"static"),
            "lifetime ident still lexes: {ids:?}"
        );
    }

    #[test]
    fn multiline_string_advances_line_numbers() {
        let f = tokenize("t.rs", "let s = \"a\nb\nc\";\nlet after = 1;");
        let after = f.tokens.iter().find(|t| t.text == "after").unwrap();
        assert_eq!(after.line, 4);
    }

    #[test]
    fn nested_block_comments_close_correctly() {
        let f = tokenize("t.rs", "/* outer /* inner */ still comment */ let x = 1;");
        assert_eq!(idents(&f), vec!["let", "x"]);
    }

    #[test]
    fn comment_block_above_walks_contiguous_comments_only() {
        let src =
            "let a = 1;\n// SAFETY: one\n// two\nunsafe { x() };\n\n// orphan\n\nlet b = 2;\n";
        let f = tokenize("t.rs", src);
        let block = f.comment_block_above(4);
        assert!(block.contains("SAFETY: one") && block.contains("two"));
        assert_eq!(f.comment_block_above(8), "", "blank line breaks the block");
        assert!(f.is_comment_only(2) && !f.is_comment_only(1));
    }

    #[test]
    fn byte_literals_are_skipped() {
        let f = tokenize("t.rs", "let a = b\"Mutex\"; let c = b'\\n'; let d = ok;");
        let ids = idents(&f);
        assert!(!ids.contains(&"Mutex"));
        assert!(ids.contains(&"d") && ids.contains(&"ok"));
    }
}
