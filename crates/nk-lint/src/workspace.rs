//! Workspace discovery: members, package names, and the `.rs` file walk.

use std::fs;
use std::path::{Path, PathBuf};

/// One workspace crate to lint.
#[derive(Debug)]
pub struct CrateInfo {
    /// Package name from `[package] name = "..."`.
    pub name: String,
    /// Manifest path relative to the workspace root, `/`-separated.
    pub manifest_rel: String,
    /// Manifest text.
    pub manifest_text: String,
    /// `.rs` files (relative to root, `/`-separated), sorted.
    pub rs_files: Vec<String>,
}

/// A fatal error (unreadable file, malformed manifest): exit code 2.
#[derive(Debug)]
pub struct LintError(pub String);

impl std::fmt::Display for LintError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for LintError {}

fn read(path: &Path) -> Result<String, LintError> {
    fs::read_to_string(path).map_err(|e| LintError(format!("cannot read {}: {e}", path.display())))
}

/// Extract `members = [ ... ]` paths from the root manifest.
fn parse_members(toml: &str) -> Vec<String> {
    let mut members = Vec::new();
    let mut in_members = false;
    for raw in toml.lines() {
        let line = raw.trim();
        if !in_members {
            if let Some(rest) = line.strip_prefix("members") {
                if rest.trim_start().starts_with('=') {
                    in_members = true;
                }
            }
        }
        if in_members {
            for piece in line.split('"').skip(1).step_by(2) {
                members.push(piece.to_string());
            }
            if line.contains(']') {
                break;
            }
        }
    }
    members
}

/// Extract `[package] name = "..."` from a manifest.
fn parse_package_name(toml: &str) -> Option<String> {
    let mut in_package = false;
    for raw in toml.lines() {
        let line = raw.trim();
        if line.starts_with('[') {
            in_package = line == "[package]";
            continue;
        }
        if in_package {
            if let Some(rest) = line.strip_prefix("name") {
                let rest = rest.trim_start();
                if let Some(rest) = rest.strip_prefix('=') {
                    return Some(rest.trim().trim_matches('"').to_string());
                }
            }
        }
    }
    None
}

/// Recursively collect `.rs` files under `dir`, skipping `target` build
/// output and any directory named `fixtures` (nk-lint's own test fixtures
/// contain deliberate violations).
fn walk_rs(root: &Path, dir: &Path, out: &mut Vec<String>) -> Result<(), LintError> {
    let entries =
        fs::read_dir(dir).map_err(|e| LintError(format!("cannot list {}: {e}", dir.display())))?;
    let mut paths: Vec<PathBuf> = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|e| LintError(format!("cannot list {}: {e}", dir.display())))?;
        paths.push(entry.path());
    }
    paths.sort();
    for path in paths {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if path.is_dir() {
            if matches!(name, "target" | "fixtures" | ".git") {
                continue;
            }
            walk_rs(root, &path, out)?;
        } else if name.ends_with(".rs") {
            out.push(rel_str(root, &path));
        }
    }
    Ok(())
}

fn rel_str(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect::<Vec<_>>()
        .join("/")
}

/// Discover every crate of the workspace at `root`: all members plus the
/// root package itself (the `netkernel` facade with its top-level `src/`,
/// `tests/` and `examples/`).
pub fn discover(root: &Path) -> Result<Vec<CrateInfo>, LintError> {
    let root_manifest_path = root.join("Cargo.toml");
    let root_manifest = read(&root_manifest_path)?;
    if !root_manifest.contains("[workspace]") {
        return Err(LintError(format!(
            "{} is not a workspace root (no [workspace] table)",
            root_manifest_path.display()
        )));
    }
    let mut crates = Vec::new();

    // The root package, if the root manifest declares one.
    if let Some(name) = parse_package_name(&root_manifest) {
        let mut rs_files = Vec::new();
        for sub in ["src", "tests", "examples", "benches"] {
            let dir = root.join(sub);
            if dir.is_dir() {
                walk_rs(root, &dir, &mut rs_files)?;
            }
        }
        rs_files.sort();
        crates.push(CrateInfo {
            name,
            manifest_rel: "Cargo.toml".to_string(),
            manifest_text: root_manifest.clone(),
            rs_files,
        });
    }

    for member in parse_members(&root_manifest) {
        let dir = root.join(&member);
        let manifest_path = dir.join("Cargo.toml");
        let manifest_text = read(&manifest_path)?;
        let name = parse_package_name(&manifest_text)
            .ok_or_else(|| LintError(format!("{}: no [package] name", manifest_path.display())))?;
        let mut rs_files = Vec::new();
        walk_rs(root, &dir, &mut rs_files)?;
        rs_files.sort();
        crates.push(CrateInfo {
            name,
            manifest_rel: rel_str(root, &manifest_path),
            manifest_text,
            rs_files,
        });
    }
    crates.sort_by(|a, b| a.manifest_rel.cmp(&b.manifest_rel));
    Ok(crates)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn member_list_parses_single_and_multi_line() {
        let toml = "[workspace]\nmembers = [\n    \"crates/a\",\n    \"crates/b\",\n]\n";
        assert_eq!(parse_members(toml), vec!["crates/a", "crates/b"]);
        let toml = "[workspace]\nmembers = [\"crates/x\"]\n";
        assert_eq!(parse_members(toml), vec!["crates/x"]);
    }

    #[test]
    fn package_name_comes_from_the_package_table() {
        let toml = "[workspace]\nresolver = \"2\"\n[package]\nname = \"netkernel\"\n\
                    [dependencies]\nname = \"decoy\"\n";
        assert_eq!(parse_package_name(toml).as_deref(), Some("netkernel"));
        assert_eq!(parse_package_name("[lib]\npath = \"x\"\n"), None);
    }
}
