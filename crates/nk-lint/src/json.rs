//! Minimal JSON support: an escape helper for emission and a small
//! recursive-descent parser for reading baselines. Dependency-free on
//! purpose — the linter must not even pull the workspace's offline serde
//! shims, since it is the tool that audits them.

/// Escape a string for embedding in a JSON document (quotes not included).
pub fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Value>),
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Member lookup on an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// String content, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }
}

/// Parse a JSON document. Returns a message describing the first error.
pub fn parse(src: &str) -> Result<Value, String> {
    let chars: Vec<char> = src.chars().collect();
    let mut p = Parser { chars, pos: 0 };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.chars.len() {
        return Err(format!("trailing data at offset {}", p.pos));
    }
    Ok(v)
}

struct Parser {
    chars: Vec<char>,
    pos: usize,
}

impl Parser {
    fn skip_ws(&mut self) {
        while self
            .chars
            .get(self.pos)
            .is_some_and(|c| c.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn expect(&mut self, c: char) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{c}' at offset {} (found {:?})",
                self.pos,
                self.peek()
            ))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        self.skip_ws();
        match self.peek() {
            Some('{') => self.object(),
            Some('[') => self.array(),
            Some('"') => Ok(Value::Str(self.string()?)),
            Some('t') => self.literal("true", Value::Bool(true)),
            Some('f') => self.literal("false", Value::Bool(false)),
            Some('n') => self.literal("null", Value::Null),
            Some(c) if c == '-' || c.is_ascii_digit() => self.number(),
            other => Err(format!("unexpected {other:?} at offset {}", self.pos)),
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, String> {
        for c in word.chars() {
            self.expect(c)?;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some('-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, '.' | 'e' | 'E' | '+' | '-'))
        {
            self.pos += 1;
        }
        let text: String = self.chars[start..self.pos].iter().collect();
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|e| format!("bad number {text:?}: {e}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect('"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some('"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some('\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some('n') => out.push('\n'),
                        Some('t') => out.push('\t'),
                        Some('r') => out.push('\r'),
                        Some('"') => out.push('"'),
                        Some('\\') => out.push('\\'),
                        Some('/') => out.push('/'),
                        Some('u') => {
                            let hex: String = self.chars
                                [self.pos + 1..(self.pos + 5).min(self.chars.len())]
                                .iter()
                                .collect();
                            let code = u32::from_str_radix(&hex, 16)
                                .map_err(|e| format!("bad \\u escape: {e}"))?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    self.pos += 1;
                }
                Some(c) => {
                    out.push(c);
                    self.pos += 1;
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect('[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(',') => {
                    self.pos += 1;
                }
                Some(']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                other => return Err(format!("expected ',' or ']' (found {other:?})")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect('{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some('}') {
            self.pos += 1;
            return Ok(Value::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(':')?;
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(',') => {
                    self.pos += 1;
                }
                Some('}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(members));
                }
                other => return Err(format!("expected ',' or '}}' (found {other:?})")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_object() {
        let v = parse(r#"{"a": [1, 2.5, "x\ny"], "b": {"c": true, "d": null}}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(
            v.get("a").unwrap().as_arr().unwrap()[2].as_str(),
            Some("x\ny")
        );
        assert_eq!(v.get("b").unwrap().get("c"), Some(&Value::Bool(true)));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("not json").is_err());
        assert!(parse("{\"a\": }").is_err());
        assert!(parse("[1, 2,]").is_err());
        assert!(parse("{} trailing").is_err());
    }

    #[test]
    fn escape_helper_round_trips_through_parse() {
        let nasty = "a\"b\\c\nd\te\u{1}";
        let doc = format!("{{\"k\": \"{}\"}}", esc(nasty));
        let v = parse(&doc).unwrap();
        assert_eq!(v.get("k").unwrap().as_str(), Some(nasty));
    }
}
