//! The rule passes over tokenized source files.
//!
//! Five token-level rules guard the determinism invariants of the parallel
//! datapath (the sixth — crate layering — lives in [`crate::layering`]):
//!
//! | id                  | invariant                                          |
//! |---------------------|----------------------------------------------------|
//! | `hash-order`        | no hash-ordered containers in datapath crates      |
//! | `wall-clock`        | no ambient time/randomness outside the bench crate |
//! | `thread-identity`   | thread ids must not feed data paths                |
//! | `cross-shard-locks` | SPSC edges are the only cross-shard channel        |
//! | `unsafe-audit`      | every `unsafe` carries an adjacent `// SAFETY:`    |
//!
//! A finding is suppressed by an inline `// nk-lint: allow(<rule>) — reason`
//! on the offending line or in the comment block directly above it, or by a
//! file-scoped `// nk-lint: allow-file(<rule>) — reason` anywhere in the
//! file. The reason is mandatory: an allow without one does not suppress.

use crate::lex::SourceFile;

/// Crates whose datapath must stay free of hash-ordered iteration and
/// thread identity (the byte-identical replay set of PRs 6, 8 and 9).
pub const DATAPATH_CRATES: &[&str] = &[
    "nk-engine",
    "nk-netstack",
    "nk-host",
    "nk-fabric",
    "nk-cluster",
    "nk-service",
    "nk-guest",
    "nk-obs",
    "nk-ctrl",
];

/// Crates whose code runs inside a worker lane: locks here could serialize
/// or reorder cross-shard traffic, so the wait-free SPSC edges
/// (`uplink_pair`, `share_edge`) must remain the only cross-shard channel.
pub const LANE_CRATES: &[&str] = &[
    "nk-engine",
    "nk-netstack",
    "nk-guest",
    "nk-service",
    "nk-fabric",
    "nk-shmem",
    "nk-queue",
];

/// Crates exempt from the wall-clock/randomness ban (the bench harness
/// measures real time by design).
pub const WALL_CLOCK_EXEMPT: &[&str] = &["nk-bench"];

/// One lint finding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// Rule id (`hash-order`, `wall-clock`, ...).
    pub rule: &'static str,
    /// File path relative to the workspace root.
    pub file: String,
    /// 1-based line of the offending token.
    pub line: u32,
    /// What was found.
    pub message: String,
    /// How to fix it.
    pub hint: String,
    /// Line-number-independent identity used for baseline matching:
    /// `<snippet>#<ordinal>` where ordinal counts occurrences of the same
    /// snippet within this (rule, file).
    pub key: String,
}

/// One `unsafe` occurrence, for the machine-readable inventory.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UnsafeSite {
    /// File path relative to the workspace root.
    pub file: String,
    /// 1-based line of the `unsafe` token.
    pub line: u32,
    /// `impl`, `fn`, `trait`, `block` or `other`.
    pub kind: String,
    /// True when an adjacent `// SAFETY:` comment (or a chained sibling)
    /// justifies it.
    pub has_safety: bool,
}

/// Scope of an allow directive.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum AllowScope {
    Line,
    File,
}

/// Parse every `nk-lint: allow(...)` / `allow-file(...)` directive in a
/// comment string. Returns (scope, rule, has_reason).
fn parse_allows(text: &str) -> Vec<(AllowScope, String, bool)> {
    let mut out = Vec::new();
    let mut rest = text;
    while let Some(pos) = rest.find("nk-lint:") {
        rest = &rest[pos + "nk-lint:".len()..];
        let trimmed = rest.trim_start();
        let scope = if trimmed.starts_with("allow-file(") {
            Some(AllowScope::File)
        } else if trimmed.starts_with("allow(") {
            Some(AllowScope::Line)
        } else {
            None
        };
        if let Some(scope) = scope {
            if let Some(open) = trimmed.find('(') {
                if let Some(close) = trimmed[open..].find(')') {
                    let rule = trimmed[open + 1..open + close].trim().to_string();
                    let after = &trimmed[open + close + 1..];
                    // A reason is whatever substantive text follows the
                    // closing paren (dashes/colons stripped).
                    let reason = after
                        .trim_start_matches(|c: char| {
                            c.is_whitespace() || matches!(c, '-' | '—' | '–' | ':' | ',')
                        })
                        .trim();
                    out.push((scope, rule, !reason.is_empty()));
                }
            }
        }
    }
    out
}

/// Allow-directive index for one file.
struct Allows {
    /// Rules allowed for the whole file (with a reason).
    file_scope: Vec<String>,
    /// (line, rule) inline allows with a reason.
    line_scope: Vec<(u32, String)>,
    /// Lines carrying an allow for `rule` but no reason (finding kept, hint
    /// upgraded).
    missing_reason: Vec<(u32, String)>,
}

fn index_allows(file: &SourceFile) -> Allows {
    let mut a = Allows {
        file_scope: Vec::new(),
        line_scope: Vec::new(),
        missing_reason: Vec::new(),
    };
    for (idx, text) in file.comment_text.iter().enumerate() {
        if text.is_empty() {
            continue;
        }
        let line = (idx + 1) as u32;
        for (scope, rule, has_reason) in parse_allows(text) {
            match (scope, has_reason) {
                (AllowScope::File, true) => a.file_scope.push(rule),
                (AllowScope::Line, true) => a.line_scope.push((line, rule)),
                (_, false) => a.missing_reason.push((line, rule)),
            }
        }
    }
    a
}

impl Allows {
    /// True when a finding of `rule` at `line` is suppressed: file-scope
    /// allow, same-line allow, or an allow in the comment block directly
    /// above the line.
    fn suppresses(&self, file: &SourceFile, rule: &str, line: u32) -> bool {
        if self.file_scope.iter().any(|r| r == rule) {
            return true;
        }
        let mut l = line;
        loop {
            if self.line_scope.iter().any(|(al, r)| *al == l && r == rule) {
                return true;
            }
            // Walk up through the contiguous comment block above.
            if l == 0 || !file.is_comment_only(l.saturating_sub(1)) {
                // Also accept an allow on the line directly above even if
                // that line has code (trailing-comment style).
                break;
            }
            l -= 1;
        }
        // One more step: the single line directly above, comment-only or
        // not, may carry the allow as a trailing comment.
        line >= 1
            && self
                .line_scope
                .iter()
                .any(|(al, r)| *al == line - 1 && r == rule)
    }

    /// True when `line` has an allow for `rule` that lacks a reason.
    fn missing_reason_near(&self, rule: &str, line: u32) -> bool {
        self.missing_reason
            .iter()
            .any(|(al, r)| (*al == line || *al + 1 == line) && r == rule)
    }
}

/// Banned-pattern table entry: a token sequence (where `"::"` consumes two
/// consecutive `:` punct tokens) plus the display form.
struct Pattern {
    seq: &'static [&'static str],
    display: &'static str,
}

const HASH_ORDER: &[Pattern] = &[
    Pattern {
        seq: &["HashMap"],
        display: "HashMap",
    },
    Pattern {
        seq: &["HashSet"],
        display: "HashSet",
    },
    Pattern {
        seq: &["RandomState"],
        display: "RandomState",
    },
];

const WALL_CLOCK: &[Pattern] = &[
    Pattern {
        seq: &["Instant", "::", "now"],
        display: "Instant::now",
    },
    Pattern {
        seq: &["SystemTime"],
        display: "SystemTime",
    },
    Pattern {
        seq: &["thread_rng"],
        display: "thread_rng",
    },
    Pattern {
        seq: &["ThreadRng"],
        display: "ThreadRng",
    },
    Pattern {
        seq: &["from_entropy"],
        display: "from_entropy",
    },
    Pattern {
        seq: &["getrandom"],
        display: "getrandom",
    },
];

const THREAD_IDENTITY: &[Pattern] = &[
    Pattern {
        seq: &["thread", "::", "current"],
        display: "thread::current",
    },
    Pattern {
        seq: &["ThreadId"],
        display: "ThreadId",
    },
];

const CROSS_SHARD_LOCKS: &[Pattern] = &[
    Pattern {
        seq: &["Mutex"],
        display: "Mutex",
    },
    Pattern {
        seq: &["RwLock"],
        display: "RwLock",
    },
    Pattern {
        seq: &["Condvar"],
        display: "Condvar",
    },
    Pattern {
        seq: &["mpsc"],
        display: "mpsc",
    },
    Pattern {
        seq: &["parking_lot"],
        display: "parking_lot",
    },
];

/// Match `pat` against the token stream starting at index `i`. Returns the
/// index one past the match.
fn match_at(file: &SourceFile, i: usize, pat: &Pattern) -> Option<usize> {
    let mut ti = i;
    for part in pat.seq {
        if *part == "::" {
            for _ in 0..2 {
                let t = file.tokens.get(ti)?;
                if t.is_ident || t.text != ":" {
                    return None;
                }
                ti += 1;
            }
        } else {
            let t = file.tokens.get(ti)?;
            if !t.is_ident || t.text != *part {
                return None;
            }
            ti += 1;
        }
    }
    Some(ti)
}

/// Occurrences of any pattern in the file: (line, display).
fn scan(file: &SourceFile, pats: &[Pattern]) -> Vec<(u32, &'static str)> {
    let mut hits = Vec::new();
    for i in 0..file.tokens.len() {
        for pat in pats {
            if match_at(file, i, pat).is_some() {
                hits.push((file.tokens[i].line, pat.display));
                break;
            }
        }
    }
    hits
}

/// Assign baseline keys (`snippet#ordinal`) to hits of one rule in one file.
fn keyed(hits: Vec<(u32, String)>) -> Vec<(u32, String, String)> {
    let mut counts: Vec<(String, u32)> = Vec::new();
    let mut out = Vec::new();
    for (line, snippet) in hits {
        let ordinal = match counts.iter_mut().find(|(s, _)| *s == snippet) {
            Some((_, n)) => {
                *n += 1;
                *n
            }
            None => {
                counts.push((snippet.clone(), 0));
                0
            }
        };
        let key = format!("{snippet}#{ordinal}");
        out.push((line, snippet, key));
    }
    out
}

/// Run one banned-pattern rule over a file, applying allow directives.
fn pattern_rule(
    rule: &'static str,
    pats: &[Pattern],
    file: &SourceFile,
    hint: &str,
    findings: &mut Vec<Finding>,
) {
    let allows = index_allows(file);
    let hits: Vec<(u32, String)> = scan(file, pats)
        .into_iter()
        .map(|(l, d)| (l, d.to_string()))
        .collect();
    for (line, snippet, key) in keyed(hits) {
        if allows.suppresses(file, rule, line) {
            continue;
        }
        let hint = if allows.missing_reason_near(rule, line) {
            format!(
                "an `nk-lint: allow({rule})` was found but carries no reason — \
                 append `— <why this is safe>`"
            )
        } else {
            hint.to_string()
        };
        findings.push(Finding {
            rule,
            file: file.rel_path.clone(),
            line,
            message: format!("`{snippet}` is banned here"),
            hint,
            key,
        });
    }
}

/// Rule 1: hash-ordered containers in datapath crates.
pub fn hash_order(crate_name: &str, file: &SourceFile, findings: &mut Vec<Finding>) {
    if !DATAPATH_CRATES.contains(&crate_name) {
        return;
    }
    pattern_rule(
        "hash-order",
        HASH_ORDER,
        file,
        "hash iteration order varies per process and breaks byte-identical replay; \
         use BTreeMap/BTreeSet, or prove the container is never iterated and add \
         `// nk-lint: allow(hash-order) — <reason>`",
        findings,
    );
}

/// Rule 2: ambient wall-clock time / randomness outside the bench crate.
pub fn wall_clock(crate_name: &str, file: &SourceFile, findings: &mut Vec<Finding>) {
    if WALL_CLOCK_EXEMPT.contains(&crate_name) {
        return;
    }
    pattern_rule(
        "wall-clock",
        WALL_CLOCK,
        file,
        "ambient time/entropy makes runs unrepeatable; use the virtual clock \
         (`nk_sim::Clock`) or the seeded `nk_sim::rng` instead",
        findings,
    );
}

/// Rule 3: thread identity feeding datapath decisions.
pub fn thread_identity(crate_name: &str, file: &SourceFile, findings: &mut Vec<Finding>) {
    if !DATAPATH_CRATES.contains(&crate_name) {
        return;
    }
    pattern_rule(
        "thread-identity",
        THREAD_IDENTITY,
        file,
        "behaviour keyed on worker-thread identity varies with the shard deal; \
         key on HostId/lane key instead",
        findings,
    );
}

/// Rule 4: blocking synchronization in lane-executed crates.
pub fn cross_shard_locks(crate_name: &str, file: &SourceFile, findings: &mut Vec<Finding>) {
    if !LANE_CRATES.contains(&crate_name) {
        return;
    }
    pattern_rule(
        "cross-shard-locks",
        CROSS_SHARD_LOCKS,
        file,
        "lane-executed code must not block or exchange data through locks; the \
         wait-free SPSC edges (`uplink_pair`, `share_edge`) are the only \
         cross-shard channel — if the lock is provably lane-local, add \
         `// nk-lint: allow(cross-shard-locks) — <reason>`",
        findings,
    );
}

/// Rule 5: `unsafe` without an adjacent `// SAFETY:` comment. Also returns
/// the full unsafe inventory for the machine-readable report.
pub fn unsafe_audit(
    _crate_name: &str,
    file: &SourceFile,
    findings: &mut Vec<Finding>,
    inventory: &mut Vec<UnsafeSite>,
) {
    let allows = index_allows(file);
    let mut hits: Vec<(u32, usize)> = Vec::new();
    for (i, t) in file.tokens.iter().enumerate() {
        if t.is_ident && t.text == "unsafe" {
            hits.push((t.line, i));
        }
    }
    // Lines whose unsafe passed — lets `unsafe impl Send`/`unsafe impl Sync`
    // pairs share one SAFETY block (the idiomatic form).
    let mut passed_lines: Vec<u32> = Vec::new();
    let mut keyed_hits = keyed(
        hits.iter()
            .map(|(l, _)| (*l, "unsafe".to_string()))
            .collect(),
    );
    for ((line, _snippet, key), (_, tok_idx)) in keyed_hits.drain(..).zip(hits.iter()) {
        let kind = match file.tokens.get(tok_idx + 1) {
            Some(t) if t.text == "impl" => "impl",
            Some(t) if t.text == "fn" => "fn",
            Some(t) if t.text == "trait" => "trait",
            Some(t) if t.text == "{" => "block",
            _ => "other",
        };
        let same_line = file.comment_on(line);
        let above = file.comment_block_above(line);
        let mut ok = same_line.contains("SAFETY:")
            || above.contains("SAFETY:")
            || above.contains("# Safety");
        // Chained sibling: the previous line holds an `unsafe` that passed.
        if !ok && line >= 1 && passed_lines.contains(&(line - 1)) {
            ok = true;
        }
        if ok {
            passed_lines.push(line);
        }
        inventory.push(UnsafeSite {
            file: file.rel_path.clone(),
            line,
            kind: kind.to_string(),
            has_safety: ok,
        });
        if ok || allows.suppresses(file, "unsafe-audit", line) {
            continue;
        }
        findings.push(Finding {
            rule: "unsafe-audit",
            file: file.rel_path.clone(),
            line,
            message: format!("`unsafe` {kind} without an adjacent `// SAFETY:` comment"),
            hint: "state the invariant this relies on (single producer/consumer, \
                   Acquire/Release pairing, exclusive ownership, ...) in a \
                   `// SAFETY:` comment directly above"
                .to_string(),
            key,
        });
    }
}

/// Run every token-level rule over one file.
pub fn run_all(
    crate_name: &str,
    file: &SourceFile,
    findings: &mut Vec<Finding>,
    inventory: &mut Vec<UnsafeSite>,
) {
    hash_order(crate_name, file, findings);
    wall_clock(crate_name, file, findings);
    thread_identity(crate_name, file, findings);
    cross_shard_locks(crate_name, file, findings);
    unsafe_audit(crate_name, file, findings, inventory);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lex::tokenize;

    fn run(crate_name: &str, src: &str) -> (Vec<Finding>, Vec<UnsafeSite>) {
        let f = tokenize("x.rs", src);
        let mut findings = Vec::new();
        let mut inv = Vec::new();
        run_all(crate_name, &f, &mut findings, &mut inv);
        (findings, inv)
    }

    #[test]
    fn hash_order_fires_only_in_datapath_crates() {
        let src = "use std::collections::HashMap;\n";
        let (f, _) = run("nk-engine", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "hash-order");
        assert_eq!(f[0].line, 1);
        let (f, _) = run("nk-lint", src);
        assert!(f.is_empty(), "non-datapath crate must not fire");
    }

    #[test]
    fn inline_allow_with_reason_suppresses() {
        let src = "// nk-lint: allow(hash-order) — lookup only, never iterated\n\
                   use std::collections::HashMap;\n";
        let (f, _) = run("nk-engine", src);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn allow_without_reason_keeps_the_finding() {
        let src = "// nk-lint: allow(hash-order)\nuse std::collections::HashMap;\n";
        let (f, _) = run("nk-engine", src);
        assert_eq!(f.len(), 1);
        assert!(f[0].hint.contains("no reason"), "{}", f[0].hint);
    }

    #[test]
    fn allow_file_suppresses_everywhere() {
        let src = "// nk-lint: allow-file(cross-shard-locks) — lane-local\n\
                   use std::sync::Mutex;\nfn f() { let _m: Mutex<u8> = Mutex::new(0); }\n";
        let (f, _) = run("nk-fabric", src);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn wall_clock_and_thread_identity_fire() {
        let src = "fn f() { let t = Instant::now(); let id = thread::current().id(); }\n";
        let (f, _) = run("nk-cluster", src);
        let rules: Vec<&str> = f.iter().map(|x| x.rule).collect();
        assert!(rules.contains(&"wall-clock"), "{rules:?}");
        assert!(rules.contains(&"thread-identity"), "{rules:?}");
    }

    #[test]
    fn string_and_comment_mentions_do_not_fire() {
        let src = "// HashMap would be wrong here\nfn f() { let s = \"HashMap\"; }\n";
        let (f, _) = run("nk-engine", src);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn unsafe_without_safety_fires_and_inventory_records_all() {
        let src = "fn f() { unsafe { g() } }\n\
                   // SAFETY: justified\nfn h() { unsafe { g() } }\n";
        let (f, inv) = run("nk-queue", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "unsafe-audit");
        assert_eq!(f[0].line, 1);
        assert_eq!(inv.len(), 2);
        assert!(!inv[0].has_safety && inv[1].has_safety);
    }

    #[test]
    fn chained_unsafe_impls_share_one_safety_comment() {
        let src = "// SAFETY: one producer, one consumer\n\
                   unsafe impl<T: Send> Send for Inner<T> {}\n\
                   unsafe impl<T: Send> Sync for Inner<T> {}\n";
        let (f, inv) = run("nk-queue", src);
        assert!(f.is_empty(), "{f:?}");
        assert!(inv.iter().all(|s| s.has_safety));
    }

    #[test]
    fn keys_are_line_independent_ordinals() {
        let src = "use std::collections::HashMap;\ntype T = HashMap<u8, u8>;\n";
        let (f, _) = run("nk-engine", src);
        assert_eq!(f[0].key, "HashMap#0");
        assert_eq!(f[1].key, "HashMap#1");
    }
}
