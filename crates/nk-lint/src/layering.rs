//! Rule 6: crate layering.
//!
//! The workspace declares a strict dependency DAG; a crate may only depend
//! on crates in strictly lower layers. The declared order (the arrow means
//! "is depended on by"):
//!
//! ```text
//! nk-types → nk-sim → nk-queue/nk-shmem → nk-fabric → nk-netstack
//!   → nk-engine/nk-guest/nk-service → nk-ctrl → nk-obs → nk-host
//!   → nk-cluster → nk-workload/nk-bench
//! ```
//!
//! The control plane (`nk-ctrl`) and flight recorder (`nk-obs`) sit *below*
//! the host because the host embeds them as scheduler phases; everything
//! cluster-scoped stacks above the host. The offline shim crates (serde &
//! co.) are vendored stand-ins for crates.io packages and are exempt, as is
//! the root `netkernel` facade (it re-exports everything by design) and
//! this linter itself (which must depend on nothing).
//!
//! Violations: an edge to an equal-or-higher layer ("upward edge") or to an
//! `nk-*` crate that is not in the declared DAG at all ("undeclared edge").

use crate::rules::Finding;

/// The declared DAG as (crate, layer) pairs. Equal layers are mutually
/// independent: an edge between them is upward by definition.
pub const LAYERS: &[(&str, u32)] = &[
    ("nk-types", 0),
    ("nk-sim", 1),
    ("nk-queue", 2),
    ("nk-shmem", 2),
    ("nk-fabric", 3),
    ("nk-netstack", 4),
    ("nk-engine", 5),
    ("nk-guest", 5),
    ("nk-service", 5),
    ("nk-ctrl", 6),
    ("nk-obs", 7),
    ("nk-host", 8),
    ("nk-cluster", 9),
    ("nk-workload", 10),
    ("nk-bench", 11),
];

/// Crates allowed to depend on any workspace crate (or none at all) without
/// layering checks.
const EXEMPT: &[&str] = &["netkernel", "nk-lint"];

fn layer_of(name: &str) -> Option<u32> {
    LAYERS.iter().find(|(n, _)| *n == name).map(|(_, l)| *l)
}

/// A dependency edge extracted from a manifest: (dep name, manifest line).
pub type DepEdge = (String, u32);

/// Extract dependency names from Cargo.toml text. Covers the forms the
/// workspace uses: `name.workspace = true`, `name = { ... }`, `name = "v"`,
/// under `[dependencies]`, `[dev-dependencies]`, `[build-dependencies]` and
/// `[target.'...'.dependencies]` sections. `[workspace.dependencies]` is a
/// declaration list, not an edge, and is skipped.
pub fn parse_deps(toml: &str) -> Vec<DepEdge> {
    let mut deps = Vec::new();
    let mut in_dep_section = false;
    for (idx, raw) in toml.lines().enumerate() {
        let line = raw.trim();
        if line.starts_with('[') {
            let section = line.trim_matches(|c| c == '[' || c == ']');
            in_dep_section = (section == "dependencies"
                || section == "dev-dependencies"
                || section == "build-dependencies"
                || (section.starts_with("target.") && section.ends_with(".dependencies")))
                && !section.starts_with("workspace");
            continue;
        }
        if !in_dep_section || line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(eq) = line.find('=') {
            let key = line[..eq].trim();
            // `nk-types.workspace = true` → dep name is before the dot.
            let name = key.split('.').next().unwrap_or(key).trim_matches('"');
            if !name.is_empty() {
                deps.push((name.to_string(), (idx + 1) as u32));
            }
        }
    }
    deps
}

/// Check one crate's manifest against the DAG. `manifest_rel` is the path
/// used in findings; `crate_name` the package name; `toml` the text.
pub fn check_layering(
    crate_name: &str,
    manifest_rel: &str,
    toml: &str,
    findings: &mut Vec<Finding>,
) {
    if EXEMPT.contains(&crate_name) {
        return;
    }
    let my_layer = layer_of(crate_name);
    for (dep, line) in parse_deps(toml) {
        if !dep.starts_with("nk-") {
            continue; // shims and external crates are not DAG edges
        }
        let Some(dep_layer) = layer_of(&dep) else {
            findings.push(Finding {
                rule: "layering",
                file: manifest_rel.to_string(),
                line,
                message: format!("dependency on `{dep}` which is not in the declared DAG"),
                hint: "add the crate to the DAG in nk-lint's layering table (a \
                       deliberate architecture change) or remove the edge"
                    .to_string(),
                key: format!("undeclared:{dep}"),
            });
            continue;
        };
        let Some(my_layer) = my_layer else {
            // Crate itself unknown: flag once per manifest via the first
            // nk-* edge so new crates get registered in the DAG.
            findings.push(Finding {
                rule: "layering",
                file: manifest_rel.to_string(),
                line,
                message: format!(
                    "crate `{crate_name}` is not in the declared DAG but depends on `{dep}`"
                ),
                hint: "register the crate (and its layer) in nk-lint's layering table".to_string(),
                key: format!("unregistered:{crate_name}"),
            });
            break;
        };
        if dep_layer >= my_layer {
            findings.push(Finding {
                rule: "layering",
                file: manifest_rel.to_string(),
                line,
                message: format!(
                    "upward edge: `{crate_name}` (layer {my_layer}) must not depend on \
                     `{dep}` (layer {dep_layer})"
                ),
                hint: "invert the dependency (move the shared type down, or pass a \
                       callback/trait object) — upward edges break the layered build"
                    .to_string(),
                key: format!("upward:{dep}"),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_workspace_and_table_forms() {
        let toml = "[package]\nname = \"x\"\n[dependencies]\nnk-types.workspace = true\n\
                    nk-sim = { path = \"../nk-sim\" }\nserde.workspace = true\n\
                    [dev-dependencies]\nserde_json.workspace = true\n";
        let deps = parse_deps(toml);
        let names: Vec<&str> = deps.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["nk-types", "nk-sim", "serde", "serde_json"]);
        assert_eq!(deps[0].1, 4, "line numbers point into the manifest");
    }

    #[test]
    fn workspace_dependencies_section_is_not_an_edge() {
        let toml = "[workspace.dependencies]\nnk-host = { path = \"crates/nk-host\" }\n";
        assert!(parse_deps(toml).is_empty());
    }

    #[test]
    fn upward_and_undeclared_edges_fire() {
        let toml = "[dependencies]\nnk-host.workspace = true\nnk-widgets.workspace = true\n\
                    nk-types.workspace = true\n";
        let mut f = Vec::new();
        check_layering("nk-engine", "crates/nk-engine/Cargo.toml", toml, &mut f);
        assert_eq!(f.len(), 2, "{f:?}");
        assert!(f[0].message.contains("upward edge"));
        assert_eq!(f[0].line, 2);
        assert!(f[1].message.contains("not in the declared DAG"));
        assert_eq!(f[1].line, 3);
    }

    #[test]
    fn equal_layer_edges_are_upward() {
        let toml = "[dependencies]\nnk-guest.workspace = true\n";
        let mut f = Vec::new();
        check_layering("nk-engine", "m", toml, &mut f);
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn facade_and_linter_are_exempt() {
        let toml = "[dependencies]\nnk-cluster.workspace = true\n";
        let mut f = Vec::new();
        check_layering("netkernel", "Cargo.toml", toml, &mut f);
        check_layering("nk-lint", "crates/nk-lint/Cargo.toml", toml, &mut f);
        assert!(f.is_empty());
    }

    #[test]
    fn real_shipped_edges_are_clean() {
        // The shipped workspace's actual edge set, crate by crate.
        let cases: &[(&str, &[&str])] = &[
            ("nk-sim", &["nk-types"]),
            ("nk-queue", &["nk-types"]),
            ("nk-shmem", &["nk-types"]),
            ("nk-fabric", &["nk-queue", "nk-sim"]),
            ("nk-netstack", &["nk-types", "nk-fabric", "nk-sim"]),
            ("nk-guest", &["nk-types", "nk-queue", "nk-shmem"]),
            (
                "nk-service",
                &[
                    "nk-types",
                    "nk-queue",
                    "nk-shmem",
                    "nk-fabric",
                    "nk-netstack",
                    "nk-sim",
                ],
            ),
            ("nk-engine", &["nk-types", "nk-queue", "nk-shmem", "nk-sim"]),
            ("nk-ctrl", &["nk-types"]),
            ("nk-obs", &["nk-types", "nk-sim", "nk-ctrl"]),
            (
                "nk-host",
                &[
                    "nk-types",
                    "nk-queue",
                    "nk-shmem",
                    "nk-sim",
                    "nk-fabric",
                    "nk-netstack",
                    "nk-guest",
                    "nk-service",
                    "nk-engine",
                    "nk-ctrl",
                    "nk-obs",
                ],
            ),
            (
                "nk-cluster",
                &[
                    "nk-types",
                    "nk-sim",
                    "nk-guest",
                    "nk-fabric",
                    "nk-netstack",
                    "nk-ctrl",
                    "nk-obs",
                    "nk-host",
                    "nk-queue",
                ],
            ),
            (
                "nk-workload",
                &[
                    "nk-types",
                    "nk-fabric",
                    "nk-guest",
                    "nk-engine",
                    "nk-netstack",
                    "nk-host",
                    "nk-cluster",
                    "nk-ctrl",
                    "nk-obs",
                ],
            ),
            (
                "nk-bench",
                &[
                    "nk-types",
                    "nk-queue",
                    "nk-shmem",
                    "nk-sim",
                    "nk-engine",
                    "nk-host",
                    "nk-cluster",
                    "nk-ctrl",
                    "nk-obs",
                    "nk-workload",
                ],
            ),
        ];
        for (krate, deps) in cases {
            let toml = format!(
                "[dependencies]\n{}",
                deps.iter()
                    .map(|d| format!("{d}.workspace = true\n"))
                    .collect::<String>()
            );
            let mut f = Vec::new();
            check_layering(krate, "m", &toml, &mut f);
            assert!(f.is_empty(), "{krate}: {f:?}");
        }
    }
}
