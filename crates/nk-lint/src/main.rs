//! The `nk-lint` CLI.
//!
//! ```text
//! nk-lint check [--json] [--root PATH] [--baseline PATH] [--write-baseline]
//! ```
//!
//! Exit codes: 0 clean, 1 violations found, 2 internal error.

use nk_lint::{render_json, render_text, run_check, write_baseline, Options};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str =
    "usage: nk-lint check [--json] [--root PATH] [--baseline PATH] [--write-baseline]";

fn find_workspace_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = std::fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return Some(dir);
                }
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut iter = args.iter();
    match iter.next().map(String::as_str) {
        Some("check") => {}
        Some("--help") | Some("-h") | None => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Some(other) => {
            eprintln!("nk-lint: unknown command {other:?}\n{USAGE}");
            return ExitCode::from(2);
        }
    }

    let mut json = false;
    let mut write_base = false;
    let mut root: Option<PathBuf> = None;
    let mut baseline: Option<PathBuf> = None;
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--write-baseline" => write_base = true,
            "--root" => match iter.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => {
                    eprintln!("nk-lint: --root needs a path\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--baseline" => match iter.next() {
                Some(p) => baseline = Some(PathBuf::from(p)),
                None => {
                    eprintln!("nk-lint: --baseline needs a path\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("nk-lint: unknown flag {other:?}\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }

    let root = match root.or_else(find_workspace_root) {
        Some(r) => r,
        None => {
            eprintln!("nk-lint: no enclosing workspace found; pass --root");
            return ExitCode::from(2);
        }
    };

    // A --write-baseline run records findings rather than filtering them,
    // so it never loads an existing baseline (which may not exist yet).
    let opts = Options {
        root: root.clone(),
        baseline: if write_base { None } else { baseline.clone() },
    };
    let report = match run_check(&opts) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("nk-lint: error: {e}");
            return ExitCode::from(2);
        }
    };

    if write_base {
        let path = baseline.unwrap_or_else(|| root.join("lint-baseline.json"));
        let mut all = Vec::new();
        all.extend(report.findings.iter().cloned());
        all.extend(report.baselined.iter().cloned());
        if let Err(e) = write_baseline(&path, &all) {
            eprintln!("nk-lint: error: {e}");
            return ExitCode::from(2);
        }
        eprintln!(
            "nk-lint: wrote baseline with {} entr{} to {}",
            all.len(),
            if all.len() == 1 { "y" } else { "ies" },
            path.display()
        );
        return ExitCode::SUCCESS;
    }

    if json {
        print!("{}", render_json(&report));
    } else {
        print!("{}", render_text(&report));
    }
    if report.findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
