//! Baseline support: accepted pre-existing findings.
//!
//! A committed `lint-baseline.json` lets the linter be introduced into a
//! tree with known findings without blocking CI: baselined findings pass,
//! anything new fails. Entries match on (rule, file, key) — the key is a
//! line-number-independent snippet ordinal, so unrelated edits moving a
//! finding up or down the file do not un-baseline it. The shipped baseline
//! is empty: every pre-existing finding was fixed or allowlisted with a
//! reason instead.

use crate::json::{self, esc, Value};
use crate::rules::Finding;

/// One baseline entry identifying an accepted finding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BaselineEntry {
    pub rule: String,
    pub file: String,
    pub key: String,
}

/// A loaded baseline.
#[derive(Clone, Debug, Default)]
pub struct Baseline {
    pub entries: Vec<BaselineEntry>,
}

impl Baseline {
    /// True when `f` is covered by this baseline.
    pub fn covers(&self, f: &Finding) -> bool {
        self.entries
            .iter()
            .any(|e| e.rule == f.rule && e.file == f.file && e.key == f.key)
    }
}

/// Parse a baseline document. Format:
/// `{"version": 1, "entries": [{"rule": .., "file": .., "key": ..}, ...]}`.
pub fn parse_baseline(src: &str) -> Result<Baseline, String> {
    let doc = json::parse(src).map_err(|e| format!("baseline is not valid JSON: {e}"))?;
    let entries = doc
        .get("entries")
        .and_then(Value::as_arr)
        .ok_or_else(|| "baseline has no \"entries\" array".to_string())?;
    let mut out = Vec::new();
    for (i, entry) in entries.iter().enumerate() {
        let field = |name: &str| -> Result<String, String> {
            entry
                .get(name)
                .and_then(Value::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("baseline entry {i} lacks string field {name:?}"))
        };
        out.push(BaselineEntry {
            rule: field("rule")?,
            file: field("file")?,
            key: field("key")?,
        });
    }
    Ok(Baseline { entries: out })
}

/// Serialize findings into baseline-document form.
pub fn render_baseline(findings: &[Finding]) -> String {
    let mut out = String::from("{\n  \"version\": 1,\n  \"entries\": [");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"rule\": \"{}\", \"file\": \"{}\", \"key\": \"{}\"}}",
            esc(f.rule),
            esc(&f.file),
            esc(&f.key)
        ));
    }
    if findings.is_empty() {
        out.push_str("]\n}\n");
    } else {
        out.push_str("\n  ]\n}\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(rule: &'static str, file: &str, key: &str) -> Finding {
        Finding {
            rule,
            file: file.to_string(),
            line: 1,
            message: String::new(),
            hint: String::new(),
            key: key.to_string(),
        }
    }

    #[test]
    fn round_trip_covers_same_finding_at_any_line() {
        let mut f = finding("hash-order", "crates/nk-engine/src/table.rs", "HashMap#0");
        let doc = render_baseline(std::slice::from_ref(&f));
        let b = parse_baseline(&doc).unwrap();
        assert!(b.covers(&f));
        f.line = 999; // lines move; identity is (rule, file, key)
        assert!(b.covers(&f));
        assert!(!b.covers(&finding("hash-order", "other.rs", "HashMap#0")));
        assert!(!b.covers(&finding(
            "hash-order",
            "crates/nk-engine/src/table.rs",
            "HashMap#1"
        )));
    }

    #[test]
    fn empty_baseline_parses_and_covers_nothing() {
        let b = parse_baseline(&render_baseline(&[])).unwrap();
        assert!(b.entries.is_empty());
        assert!(!b.covers(&finding("wall-clock", "x.rs", "SystemTime#0")));
    }

    #[test]
    fn malformed_baselines_are_errors() {
        assert!(parse_baseline("not json").is_err());
        assert!(parse_baseline("{\"version\": 1}").is_err());
        assert!(parse_baseline("{\"entries\": [{\"rule\": \"x\"}]}").is_err());
    }
}
