//! A crate that exists in the fixture workspace but not in the declared
//! DAG: its `nk-types` edge must produce an `unregistered` layering finding.
