//! Deliberate violations, one cluster per rule. The integration tests
//! assert the exact rule ids and line numbers below — renumber with care.
use std::collections::HashMap;

pub fn lookup() -> usize {
    let m: HashMap<u32, u32> = HashMap::new();
    m.len()
}

pub fn stamp_ms() -> u128 {
    std::time::SystemTime::now().elapsed().unwrap().as_millis()
}

pub fn lane_of() -> std::thread::ThreadId {
    std::thread::current().id()
}

pub static SHARED: std::sync::Mutex<u32> = std::sync::Mutex::new(0);

pub fn peek(p: *const u32) -> u32 {
    unsafe { *p }
}
