//! The same constructs as the violating fixture, all justified: inline
//! allows with reasons, an allow-file, and audited `unsafe`. The linter
//! must report nothing here.
// nk-lint: allow-file(cross-shard-locks) — the lock guards a lane-local scratch buffer

use std::collections::HashMap; // nk-lint: allow(hash-order) — lookup only, never iterated

// nk-lint: allow(hash-order) — counts are summed, order-free
pub fn count(m: &HashMap<u32, u32>) -> usize {
    m.len()
}

pub static SCRATCH: std::sync::Mutex<u32> = std::sync::Mutex::new(0);

/// # Safety
/// `p` must point to a live, aligned `u32`.
pub unsafe fn peek(p: *const u32) -> u32 {
    // SAFETY: the caller upholds the contract documented above.
    unsafe { *p }
}

pub struct Wrapper(pub u32);

// SAFETY: Wrapper is a plain newtype over an integer; no interior pointers.
unsafe impl Send for Wrapper {}
unsafe impl Sync for Wrapper {}
