//! The linter's strongest test: the shipped workspace itself must be
//! clean. Any regression that reintroduces hash-ordered iteration, ambient
//! time, thread identity, lane locks, unaudited `unsafe` or an upward
//! dependency edge fails this test.

use nk_lint::{run_check, Options};
use std::path::PathBuf;

#[test]
fn the_shipped_workspace_lints_clean() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .unwrap();
    let report = run_check(&Options {
        root,
        baseline: None,
    })
    .unwrap();

    assert!(
        report.findings.is_empty(),
        "the shipped tree must lint clean; found:\n{}",
        report
            .findings
            .iter()
            .map(|f| format!("  {}:{}: [{}] {}\n", f.file, f.line, f.rule, f.message))
            .collect::<String>()
    );

    // Every unsafe site in the tree carries a SAFETY justification.
    let unaudited: Vec<_> = report
        .unsafe_inventory
        .iter()
        .filter(|s| !s.has_safety)
        .collect();
    assert!(unaudited.is_empty(), "{unaudited:?}");
    assert!(
        !report.unsafe_inventory.is_empty(),
        "nk-queue's SPSC ring is unsafe by design; an empty inventory means the scan is broken"
    );

    // Sanity: the scan actually covered the workspace.
    assert!(report.crates_scanned >= 20, "{}", report.crates_scanned);
    assert!(report.files_scanned >= 100, "{}", report.files_scanned);
}
