//! CLI exit-code contract: 0 clean, 1 violations, 2 internal error — plus
//! the machine-readable report shape.

use std::path::PathBuf;
use std::process::{Command, Output};

fn fixture(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn nk_lint(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_nk-lint"))
        .args(args)
        .output()
        .expect("spawn nk-lint")
}

#[test]
fn exit_0_on_a_clean_tree() {
    let out = nk_lint(&["check", "--root", fixture("clean_ws").to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("0 finding(s)"), "{text}");
}

#[test]
fn exit_1_when_violations_are_found() {
    let out = nk_lint(&["check", "--root", fixture("violating_ws").to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("[hash-order]"), "{text}");
    assert!(text.contains("crates/nk-engine/src/lib.rs:3:"), "{text}");
    assert!(text.contains("fix: "), "{text}");
}

#[test]
fn exit_2_on_internal_errors() {
    // Unreadable root.
    let out = nk_lint(&["check", "--root", "/no/such/workspace"]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    assert!(!out.stderr.is_empty());

    // Explicit baseline that does not exist.
    let out = nk_lint(&[
        "check",
        "--root",
        fixture("clean_ws").to_str().unwrap(),
        "--baseline",
        "/no/such/baseline.json",
    ]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");

    // Unknown flag.
    let out = nk_lint(&["check", "--frobnicate"]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");

    // Unknown command.
    let out = nk_lint(&["lint-harder"]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
}

#[test]
fn json_report_carries_findings_and_unsafe_inventory() {
    let out = nk_lint(&[
        "check",
        "--json",
        "--root",
        fixture("violating_ws").to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let doc = nk_lint::json::parse(&String::from_utf8(out.stdout).unwrap()).unwrap();
    let findings = doc.get("findings").unwrap().as_arr().unwrap();
    assert_eq!(findings.len(), 12);
    assert!(findings.iter().any(|f| {
        f.get("rule").unwrap().as_str() == Some("layering")
            && f.get("key").unwrap().as_str() == Some("upward:nk-host")
    }));
    let inv = doc.get("unsafe_inventory").unwrap().as_arr().unwrap();
    assert_eq!(inv.len(), 1);
    assert_eq!(
        inv[0].get("has_safety"),
        Some(&nk_lint::json::Value::Bool(false))
    );
    let summary = doc.get("summary").unwrap();
    assert_eq!(
        summary.get("findings"),
        Some(&nk_lint::json::Value::Num(12.0))
    );
}

#[test]
fn write_baseline_then_check_passes() {
    let dir = std::env::temp_dir().join(format!("nk-lint-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let baseline = dir.join("baseline.json");
    let root = fixture("violating_ws");

    let out = nk_lint(&[
        "check",
        "--root",
        root.to_str().unwrap(),
        "--baseline",
        baseline.to_str().unwrap(),
        "--write-baseline",
    ]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    assert!(baseline.is_file());

    let out = nk_lint(&[
        "check",
        "--root",
        root.to_str().unwrap(),
        "--baseline",
        baseline.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("12 baselined"), "{text}");

    std::fs::remove_dir_all(&dir).unwrap();
}
