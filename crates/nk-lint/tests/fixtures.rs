//! Integration tests over the fixture workspaces: every rule fires at the
//! expected file:line in the violating tree, the clean tree demonstrates
//! every suppression mechanism, and the baseline round-trips.

use nk_lint::{run_check, write_baseline, Options};
use std::path::PathBuf;

fn fixture(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn check(name: &str) -> nk_lint::Report {
    run_check(&Options {
        root: fixture(name),
        baseline: None,
    })
    .unwrap()
}

#[test]
fn violating_fixture_fires_every_rule_at_exact_lines() {
    let report = check("violating_ws");
    let got: Vec<(&str, &str, u32)> = report
        .findings
        .iter()
        .map(|f| (f.rule, f.file.as_str(), f.line))
        .collect();
    let expected: Vec<(&str, &str, u32)> = vec![
        ("layering", "crates/nk-engine/Cargo.toml", 5),
        ("layering", "crates/nk-engine/Cargo.toml", 6),
        ("hash-order", "crates/nk-engine/src/lib.rs", 3),
        ("hash-order", "crates/nk-engine/src/lib.rs", 6),
        ("hash-order", "crates/nk-engine/src/lib.rs", 6),
        ("wall-clock", "crates/nk-engine/src/lib.rs", 11),
        ("thread-identity", "crates/nk-engine/src/lib.rs", 14),
        ("thread-identity", "crates/nk-engine/src/lib.rs", 15),
        ("cross-shard-locks", "crates/nk-engine/src/lib.rs", 18),
        ("cross-shard-locks", "crates/nk-engine/src/lib.rs", 18),
        ("unsafe-audit", "crates/nk-engine/src/lib.rs", 21),
        ("layering", "crates/nk-mystery/Cargo.toml", 5),
    ];
    assert_eq!(got, expected);

    // All six rule ids are represented.
    let mut rules: Vec<&str> = report.findings.iter().map(|f| f.rule).collect();
    rules.sort();
    rules.dedup();
    assert_eq!(
        rules,
        vec![
            "cross-shard-locks",
            "hash-order",
            "layering",
            "thread-identity",
            "unsafe-audit",
            "wall-clock",
        ]
    );

    // The unaudited unsafe block shows up in the inventory, unaudited.
    assert_eq!(report.unsafe_inventory.len(), 1);
    let site = &report.unsafe_inventory[0];
    assert_eq!(
        (site.line, site.kind.as_str(), site.has_safety),
        (21, "block", false)
    );
}

#[test]
fn violating_layering_findings_name_the_edge() {
    let report = check("violating_ws");
    let layering: Vec<&str> = report
        .findings
        .iter()
        .filter(|f| f.rule == "layering")
        .map(|f| f.key.as_str())
        .collect();
    assert_eq!(
        layering,
        vec![
            "upward:nk-host",
            "undeclared:nk-widgets",
            "unregistered:nk-mystery"
        ]
    );
}

#[test]
fn clean_fixture_reports_nothing_and_audits_all_unsafe() {
    let report = check("clean_ws");
    assert!(report.findings.is_empty(), "{:?}", report.findings);
    assert!(report.baselined.is_empty());
    // fn, block, impl Send, impl Sync — all justified.
    assert_eq!(report.unsafe_inventory.len(), 4);
    assert!(report.unsafe_inventory.iter().all(|s| s.has_safety));
    let kinds: Vec<&str> = report
        .unsafe_inventory
        .iter()
        .map(|s| s.kind.as_str())
        .collect();
    assert_eq!(kinds, vec!["fn", "block", "impl", "impl"]);
}

#[test]
fn baseline_round_trip_suppresses_known_findings() {
    let first = check("violating_ws");
    assert_eq!(first.findings.len(), 12);

    let dir = std::env::temp_dir().join(format!("nk-lint-baseline-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("baseline.json");
    write_baseline(&path, &first.findings).unwrap();

    let second = run_check(&Options {
        root: fixture("violating_ws"),
        baseline: Some(path.clone()),
    })
    .unwrap();
    assert!(second.findings.is_empty(), "{:?}", second.findings);
    assert_eq!(second.baselined.len(), 12);

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn explicit_missing_baseline_is_an_error() {
    let err = run_check(&Options {
        root: fixture("violating_ws"),
        baseline: Some(fixture("violating_ws").join("no-such-baseline.json")),
    })
    .unwrap_err();
    assert!(err.to_string().contains("does not exist"), "{err}");
}

#[test]
fn non_workspace_root_is_an_error() {
    let err = run_check(&Options {
        root: fixture("violating_ws").join("crates/nk-engine"),
        baseline: None,
    })
    .unwrap_err();
    assert!(err.to_string().contains("not a workspace root"), "{err}");
}
