//! Throughput and latency meters used by experiments and examples.

use nk_sim::Histogram;

/// Accumulates bytes over virtual time and reports Gbps.
#[derive(Clone, Debug, Default)]
pub struct ThroughputMeter {
    bytes: u64,
    start_ns: Option<u64>,
    last_ns: u64,
}

impl ThroughputMeter {
    /// A fresh meter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record `bytes` delivered at time `now_ns`.
    pub fn record(&mut self, bytes: u64, now_ns: u64) {
        if self.start_ns.is_none() {
            self.start_ns = Some(now_ns);
        }
        self.bytes += bytes;
        self.last_ns = self.last_ns.max(now_ns);
    }

    /// Total bytes recorded.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Average throughput in Gbps between the first and last sample.
    pub fn gbps(&self) -> f64 {
        match self.start_ns {
            Some(start) if self.last_ns > start => {
                self.bytes as f64 * 8.0 / (self.last_ns - start) as f64
            }
            _ => 0.0,
        }
    }
}

/// Latency meter: records request completion times in microseconds.
#[derive(Clone, Debug, Default)]
pub struct LatencyMeter {
    hist: Histogram,
}

impl LatencyMeter {
    /// A fresh meter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one latency sample in microseconds.
    pub fn record_us(&mut self, us: f64) {
        self.hist.record(us);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.hist.count()
    }

    /// Mean latency in microseconds.
    pub fn mean_us(&self) -> f64 {
        self.hist.mean()
    }

    /// Median latency in microseconds.
    pub fn median_us(&self) -> f64 {
        self.hist.median()
    }

    /// Standard deviation in microseconds.
    pub fn stddev_us(&self) -> f64 {
        self.hist.stddev()
    }

    /// Minimum and maximum latency in microseconds.
    pub fn min_max_us(&self) -> (f64, f64) {
        (self.hist.min(), self.hist.max())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_meter_computes_gbps() {
        let mut m = ThroughputMeter::new();
        m.record(125_000_000, 0);
        m.record(125_000_000, 1_000_000_000);
        // 250 MB over 1 s = 2 Gbps.
        assert!((m.gbps() - 2.0).abs() < 1e-9);
        assert_eq!(m.bytes(), 250_000_000);
    }

    #[test]
    fn empty_meter_reports_zero() {
        assert_eq!(ThroughputMeter::new().gbps(), 0.0);
    }

    #[test]
    fn latency_meter_statistics() {
        let mut m = LatencyMeter::new();
        for v in [10.0, 20.0, 30.0] {
            m.record_us(v);
        }
        assert_eq!(m.count(), 3);
        assert!((m.mean_us() - 20.0).abs() < 1e-9);
        let (min, max) = m.min_max_us();
        assert_eq!(min, 10.0);
        assert_eq!(max, 30.0);
    }
}
