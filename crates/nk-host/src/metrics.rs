//! Throughput and latency meters used by experiments and examples.

use nk_sim::Histogram;

/// Accumulates bytes over virtual time and reports Gbps.
#[derive(Clone, Debug, Default)]
pub struct ThroughputMeter {
    bytes: u64,
    start_ns: Option<u64>,
    last_ns: u64,
}

impl ThroughputMeter {
    /// A fresh meter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record `bytes` delivered at time `now_ns`. Samples may arrive out of
    /// order (merged meters, reordered completions): the window spans the
    /// earliest to the latest timestamp seen.
    pub fn record(&mut self, bytes: u64, now_ns: u64) {
        self.start_ns = Some(match self.start_ns {
            Some(start) => start.min(now_ns),
            None => now_ns,
        });
        self.bytes += bytes;
        self.last_ns = self.last_ns.max(now_ns);
    }

    /// Total bytes recorded.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Average throughput in Gbps between the first and last sample.
    pub fn gbps(&self) -> f64 {
        match self.start_ns {
            Some(start) if self.last_ns > start => {
                self.bytes as f64 * 8.0 / (self.last_ns - start) as f64
            }
            _ => 0.0,
        }
    }
}

/// Latency meter: records request completion times in microseconds.
#[derive(Clone, Debug, Default)]
pub struct LatencyMeter {
    hist: Histogram,
}

impl LatencyMeter {
    /// A fresh meter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one latency sample in microseconds.
    pub fn record_us(&mut self, us: f64) {
        self.hist.record(us);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.hist.count()
    }

    /// Mean latency in microseconds.
    pub fn mean_us(&self) -> f64 {
        self.hist.mean()
    }

    /// Median latency in microseconds.
    pub fn median_us(&self) -> f64 {
        self.hist.median()
    }

    /// Standard deviation in microseconds.
    pub fn stddev_us(&self) -> f64 {
        self.hist.stddev()
    }

    /// Minimum and maximum latency in microseconds.
    pub fn min_max_us(&self) -> (f64, f64) {
        (self.hist.min(), self.hist.max())
    }

    /// Approximate quantile `q` in `[0, 1]` in microseconds (0.5 is the
    /// median); experiments report p50/p99/p999 through this.
    pub fn quantile_us(&self, q: f64) -> f64 {
        self.hist.quantile(q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_meter_computes_gbps() {
        let mut m = ThroughputMeter::new();
        m.record(125_000_000, 0);
        m.record(125_000_000, 1_000_000_000);
        // 250 MB over 1 s = 2 Gbps.
        assert!((m.gbps() - 2.0).abs() < 1e-9);
        assert_eq!(m.bytes(), 250_000_000);
    }

    #[test]
    fn empty_meter_reports_zero() {
        assert_eq!(ThroughputMeter::new().gbps(), 0.0);
    }

    #[test]
    fn latency_meter_statistics() {
        let mut m = LatencyMeter::new();
        for v in [10.0, 20.0, 30.0] {
            m.record_us(v);
        }
        assert_eq!(m.count(), 3);
        assert!((m.mean_us() - 20.0).abs() < 1e-9);
        let (min, max) = m.min_max_us();
        assert_eq!(min, 10.0);
        assert_eq!(max, 30.0);
    }

    /// A single sample spans zero time: bytes are counted but no rate can
    /// be reported (rather than a division by zero or an infinite rate).
    #[test]
    fn throughput_meter_single_sample_reports_zero_rate() {
        let mut m = ThroughputMeter::new();
        m.record(1_000_000, 500);
        assert_eq!(m.bytes(), 1_000_000);
        assert_eq!(m.gbps(), 0.0);
    }

    /// Out-of-order timestamps widen the window instead of corrupting it:
    /// recording the earlier sample second gives the same rate as recording
    /// it first.
    #[test]
    fn throughput_meter_handles_out_of_order_timestamps() {
        let mut forward = ThroughputMeter::new();
        forward.record(125_000_000, 0);
        forward.record(125_000_000, 1_000_000_000);
        let mut backward = ThroughputMeter::new();
        backward.record(125_000_000, 1_000_000_000);
        backward.record(125_000_000, 0);
        assert!((backward.gbps() - forward.gbps()).abs() < 1e-12);
        assert!((backward.gbps() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn latency_meter_quantiles_track_the_distribution() {
        let mut m = LatencyMeter::new();
        for i in 1..=1_000 {
            m.record_us(i as f64);
        }
        let p50 = m.quantile_us(0.5);
        let p99 = m.quantile_us(0.99);
        assert!((p50 - 500.0).abs() / 500.0 < 0.08, "p50 {p50}");
        assert!((p99 - 990.0).abs() / 990.0 < 0.08, "p99 {p99}");
        assert!(p50 < p99);
        assert_eq!(m.quantile_us(0.5), m.median_us());
    }

    #[test]
    fn empty_latency_meter_quantiles_are_zero() {
        let m = LatencyMeter::new();
        assert_eq!(m.quantile_us(0.5), 0.0);
        assert_eq!(m.quantile_us(0.99), 0.0);
    }
}
