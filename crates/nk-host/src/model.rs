//! The calibrated performance model regenerating the paper's evaluation.
//!
//! The paper's throughput / RPS / CPU figures were measured on a physical
//! 100 G testbed. This module reproduces them from the
//! [`nk_sim::CostModel`]: every quantity is derived from the per-operation
//! cycle costs of the NetKernel data path (GuestLib copy + NQE translation,
//! CoreEngine switching, ServiceLib copy, stack TX/RX processing) combined
//! with Amdahl-style multi-core scaling and the NIC line rate. The
//! calibration targets are documented on the cost-model constants themselves;
//! here only the composition lives, so the *shape* of every figure (who wins,
//! where scaling saturates, how overhead grows) follows from the same
//! mechanics the paper describes.

use nk_sim::CostModel;
use nk_types::constants::{CYCLES_PER_SECOND, LINE_RATE_GBPS};
use nk_types::StackKind;

/// Direction of bulk traffic.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TrafficDirection {
    /// VM → network (`send()` path).
    Send,
    /// Network → VM (`recv()` path).
    Receive,
}

/// The performance model: a cost model plus testbed constants.
#[derive(Clone, Debug)]
pub struct PerfModel {
    /// Per-operation cycle costs.
    pub costs: CostModel,
    /// Core clock in cycles per second.
    pub cycles_per_sec: u64,
    /// NIC line rate in Gbps.
    pub nic_gbps: f64,
}

impl Default for PerfModel {
    fn default() -> Self {
        PerfModel {
            costs: CostModel::default(),
            cycles_per_sec: CYCLES_PER_SECOND,
            nic_gbps: LINE_RATE_GBPS,
        }
    }
}

impl PerfModel {
    /// A model with the default calibration.
    pub fn new() -> Self {
        Self::default()
    }

    fn stack_costs(&self, stack: StackKind, dir: TrafficDirection) -> nk_sim::cost::StackCosts {
        match (stack, dir) {
            (StackKind::Mtcp, TrafficDirection::Send) => self.costs.mtcp_tx,
            (StackKind::Mtcp, TrafficDirection::Receive) => self.costs.mtcp_rx,
            (_, TrafficDirection::Send) => self.costs.kernel_tx,
            (_, TrafficDirection::Receive) => self.costs.kernel_rx,
        }
    }

    fn serial_fraction(&self, stack: StackKind, dir: TrafficDirection) -> f64 {
        match (stack, dir) {
            (StackKind::Mtcp, _) => self.costs.mtcp_conn_serial,
            (_, TrafficDirection::Send) => self.costs.kernel_tx_serial,
            (_, TrafficDirection::Receive) => self.costs.kernel_rx_serial,
        }
    }

    fn single_stream_factor(&self, stack: StackKind, dir: TrafficDirection) -> f64 {
        match (stack, dir) {
            (StackKind::Mtcp, _) => 0.9,
            (_, TrafficDirection::Send) => self.costs.kernel_single_stream_tx,
            (_, TrafficDirection::Receive) => self.costs.kernel_single_stream_rx,
        }
    }

    /// Bulk TCP throughput in Gbps (Figures 13–16, 18, 19 and Table 4).
    ///
    /// * `streams` — number of parallel TCP streams;
    /// * `stack_cores` — cores running stack processing (the NSM's vCPUs for
    ///   NetKernel, the VM's vCPUs for Baseline);
    /// * `netkernel` — whether the NetKernel data path (hugepage copy + NQE
    ///   machinery, §4.5) is interposed;
    /// * `nsm_count` — number of NSMs serving the VM (Table 4); each NSM gets
    ///   `stack_cores` cores and scaling across NSMs is independent.
    #[allow(clippy::too_many_arguments)]
    pub fn bulk_throughput_gbps(
        &self,
        stack: StackKind,
        dir: TrafficDirection,
        msg_size: usize,
        streams: usize,
        stack_cores: usize,
        netkernel: bool,
        nsm_count: usize,
    ) -> f64 {
        let costs = self.stack_costs(stack, dir);
        let msg = msg_size.max(1) as u64;
        // Cycles to move one message through the stack. Under NetKernel the
        // stack side does not pay the guest's syscall + user copy (those run
        // on the VM's core) but pays the extra hugepage copy instead (§7.8).
        let mut stack_cost = costs.cost_one(msg);
        if netkernel {
            stack_cost =
                stack_cost - self.costs.guest_syscall - self.costs.copy_per_byte * msg as f64
                    + self.costs.nsm_copy(msg);
            if stack_cost < 1.0 {
                stack_cost = 1.0;
            }
        }
        let serial = self.serial_fraction(stack, dir);
        let speedup = CostModel::speedup(stack_cores, serial);
        let per_nsm_bytes_per_sec = self.cycles_per_sec as f64 / stack_cost * msg as f64 * speedup;
        let stack_cap_gbps = per_nsm_bytes_per_sec * 8.0 / 1e9 * nsm_count.max(1) as f64;

        // The guest side of the NetKernel path (syscall, NQE translation,
        // hugepage copy) runs on the VM's core and can itself become the
        // bottleneck for very small messages.
        let guest_cap_gbps = if netkernel {
            let guest_cost = self.costs.guest_data_path(msg);
            self.cycles_per_sec as f64 / guest_cost * msg as f64 * 8.0 / 1e9
        } else {
            f64::INFINITY
        };

        // Per-stream serialisation: a single TCP stream cannot saturate the
        // aggregate capacity (Figure 13 vs 15).
        let single = self.single_stream_factor(stack, dir);
        let base_single_core =
            self.cycles_per_sec as f64 / costs.cost_one(msg) * msg as f64 * 8.0 / 1e9;
        let stream_cap = streams as f64 * single * base_single_core;

        stack_cap_gbps
            .min(guest_cap_gbps)
            .min(stream_cap)
            .min(self.nic_gbps)
    }

    /// Requests per second for short-lived connections with small messages
    /// (Figures 17, 20, Tables 3 and 4).
    pub fn rps(
        &self,
        stack: StackKind,
        cores: usize,
        msg_size: usize,
        netkernel: bool,
        nsm_count: usize,
    ) -> f64 {
        let conn_cost = match stack {
            StackKind::Mtcp => self.costs.mtcp_conn,
            _ => self.costs.kernel_conn,
        };
        let serial = match stack {
            StackKind::Mtcp => self.costs.mtcp_conn_serial,
            _ => self.costs.kernel_conn_serial,
        };
        // Larger responses add copy + packet cost to each request (Figure 17
        // degrades slightly beyond 1 KB messages).
        let payload_cost = self.stack_costs(stack, TrafficDirection::Send).per_byte
            * msg_size as f64
            + self.costs.copy_per_byte * msg_size as f64;
        let mut per_request = conn_cost + payload_cost;
        if netkernel {
            // NQE round trips for the connection plus the data chunks; the
            // guest-side share runs on the VM core, so only ServiceLib's
            // translation and the extra copy land on the stack cores.
            per_request += 4.0 * self.costs.nqe_translate + self.costs.nsm_copy(msg_size as u64);
        }
        let speedup = CostModel::speedup(cores, serial);
        self.cycles_per_sec as f64 / per_request * speedup * nsm_count.max(1) as f64
    }

    /// Normalised CPU usage of NetKernel over Baseline at the same bulk
    /// throughput (Table 6). Counts the cycles of the VM and the NSM together
    /// for NetKernel, and the VM only for Baseline, as §7.8 does.
    pub fn cpu_overhead_throughput(&self, msg_size: usize) -> f64 {
        let msg = msg_size as u64;
        let baseline = self.costs.kernel_tx.cost_one(msg);
        let netkernel = self.costs.guest_data_path(msg)
            + (self.costs.kernel_tx.cost_one(msg)
                - self.costs.guest_syscall
                - self.costs.copy_per_byte * msg as f64)
            + self.costs.nsm_copy(msg)
            + 2.0 * self.costs.nqe_translate;
        netkernel / baseline
    }

    /// Normalised CPU usage of NetKernel over Baseline at the same request
    /// rate (Table 7).
    pub fn cpu_overhead_rps(&self, msg_size: usize) -> f64 {
        let baseline = self.costs.kernel_conn + self.costs.app_request;
        let netkernel = baseline
            + 4.0 * self.costs.nqe_translate
            + self.costs.nsm_copy(msg_size as u64)
            + self.costs.interrupt;
        netkernel / baseline
    }

    /// Hugepage copy-path throughput in Gbps for one core (Figure 12): the
    /// guest-side `send()` data path without any stack processing.
    pub fn memcopy_gbps(&self, msg_size: usize) -> f64 {
        let msg = msg_size as u64;
        let cost = self.costs.guest_data_path(msg) - self.costs.guest_syscall
            + self.costs.nqe_switch_per_nqe
            + self.costs.nsm_copy(msg);
        self.cycles_per_sec as f64 / cost * msg as f64 * 8.0 / 1e9
    }

    /// CoreEngine NQE switching rate in NQEs per second (Figure 11).
    pub fn nqe_switch_rate(&self, batch: usize) -> f64 {
        self.costs.switch_rate(batch, self.cycles_per_sec)
    }

    /// Mean response time in milliseconds for a closed-loop workload with
    /// `concurrency` outstanding requests against a server capable of
    /// `rps` requests per second (Little's law; Table 5).
    pub fn closed_loop_latency_ms(&self, concurrency: usize, rps: f64) -> f64 {
        if rps <= 0.0 {
            return f64::INFINITY;
        }
        concurrency as f64 / rps * 1_000.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m() -> PerfModel {
        PerfModel::new()
    }

    #[test]
    fn single_stream_send_and_receive_match_figure_13_14_shape() {
        let m = m();
        let send = m.bulk_throughput_gbps(
            StackKind::Kernel,
            TrafficDirection::Send,
            16384,
            1,
            1,
            true,
            1,
        );
        let recv = m.bulk_throughput_gbps(
            StackKind::Kernel,
            TrafficDirection::Receive,
            16384,
            1,
            1,
            true,
            1,
        );
        // Paper: ~30.9 Gbps send, ~13.6 Gbps receive with 16 KB messages.
        assert!(send > 24.0 && send < 38.0, "send {send}");
        assert!(recv > 10.0 && recv < 18.0, "recv {recv}");
        assert!(send > 1.8 * recv, "RX must be much more expensive than TX");
        // Throughput grows with message size.
        let small =
            m.bulk_throughput_gbps(StackKind::Kernel, TrafficDirection::Send, 64, 1, 1, true, 1);
        assert!(small < send / 4.0);
    }

    #[test]
    fn netkernel_matches_baseline_for_bulk_traffic() {
        // Paper Figures 13–16: "NetKernel performs on par with Baseline".
        // For medium/large messages, where the per-stream serialisation caps
        // both configurations, the two are within a few percent; for tiny
        // messages NetKernel's stack core is slightly ahead because the
        // guest-side syscall/copy work moved to the VM's core.
        let m = m();
        for dir in [TrafficDirection::Send, TrafficDirection::Receive] {
            for msg in [4096usize, 8192, 16384] {
                let nk = m.bulk_throughput_gbps(StackKind::Kernel, dir, msg, 8, 1, true, 1);
                let base = m.bulk_throughput_gbps(StackKind::Kernel, dir, msg, 8, 1, false, 1);
                let ratio = nk / base;
                assert!(
                    ratio > 0.85 && ratio < 1.2,
                    "NetKernel/Baseline {ratio} at {msg}B {dir:?}"
                );
            }
        }
    }

    #[test]
    fn send_reaches_line_rate_with_three_cores() {
        let m = m();
        let at = |cores| {
            m.bulk_throughput_gbps(
                StackKind::Kernel,
                TrafficDirection::Send,
                8192,
                8,
                cores,
                true,
                1,
            )
        };
        assert!(at(1) < 60.0);
        assert!(at(2) > 75.0 && at(2) < 100.0);
        assert!(at(3) >= 99.0, "3 cores should hit line rate, got {}", at(3));
        assert_eq!(at(8), 100.0);
    }

    #[test]
    fn receive_needs_about_eight_cores_for_90g() {
        let m = m();
        let at = |cores| {
            m.bulk_throughput_gbps(
                StackKind::Kernel,
                TrafficDirection::Receive,
                8192,
                8,
                cores,
                true,
                1,
            )
        };
        assert!(at(1) < 20.0);
        let r8 = at(8);
        assert!(r8 > 80.0 && r8 <= 100.0, "8-core receive {r8}");
    }

    #[test]
    fn rps_matches_figure_20_shape() {
        let m = m();
        let kernel1 = m.rps(StackKind::Kernel, 1, 64, true, 1);
        let kernel8 = m.rps(StackKind::Kernel, 8, 64, true, 1);
        let mtcp1 = m.rps(StackKind::Mtcp, 1, 64, true, 1);
        let mtcp8 = m.rps(StackKind::Mtcp, 8, 64, true, 1);
        // Paper: ~70 K rps kernel single core scaling to ~400 K at 8 vCPUs
        // (5.7×); mTCP ~190 K to ~1.1 M.
        assert!(kernel1 > 55_000.0 && kernel1 < 90_000.0, "{kernel1}");
        assert!(kernel8 / kernel1 > 4.5 && kernel8 / kernel1 < 7.0);
        assert!(mtcp1 > 150_000.0 && mtcp1 < 250_000.0, "{mtcp1}");
        assert!(mtcp8 > 900_000.0 && mtcp8 < 1_500_000.0, "{mtcp8}");
        assert!(mtcp1 / kernel1 > 1.3, "mTCP must beat the kernel stack");
    }

    #[test]
    fn cpu_overhead_tables_have_the_right_shape() {
        let m = m();
        let bulk = m.cpu_overhead_throughput(8192);
        let rps = m.cpu_overhead_rps(64);
        // Table 6: noticeable overhead for bulk throughput (extra copy);
        // Table 7: mild overhead (5–9%) for short connections.
        assert!(bulk > 1.1 && bulk < 2.0, "bulk overhead {bulk}");
        assert!(rps > 1.02 && rps < 1.2, "rps overhead {rps}");
        assert!(bulk > rps);
    }

    #[test]
    fn memcopy_and_switch_rates_match_microbenchmarks() {
        let m = m();
        let small = m.memcopy_gbps(64);
        let large = m.memcopy_gbps(8192);
        // Figure 12: ~4.9 Gbps at 64 B, ~144 Gbps at 8 KB.
        assert!(small > 2.0 && small < 9.0, "{small}");
        assert!(large > 100.0 && large < 200.0, "{large}");
        // Figure 11 calibration is asserted in nk-sim; sanity-check here.
        assert!(m.nqe_switch_rate(256) > m.nqe_switch_rate(1) * 10.0);
    }

    #[test]
    fn closed_loop_latency_follows_littles_law() {
        let m = m();
        let rps = m.rps(StackKind::Kernel, 1, 64, true, 1);
        let lat = m.closed_loop_latency_ms(1000, rps);
        // Paper Table 5: mean ~16 ms at concurrency 1000.
        assert!(lat > 10.0 && lat < 20.0, "latency {lat}");
        assert_eq!(m.closed_loop_latency_ms(10, 0.0), f64::INFINITY);
    }
}
