//! Intra-host sharding: NSM share lanes.
//!
//! A [`crate::NetKernelHost`] multiplexes many tenant VMs onto few NSM
//! shares — the paper's consolidation argument — which makes one big host
//! the natural unit that *doesn't* parallelise when a cluster deals whole
//! hosts onto worker threads. This module splits the host's datapath below
//! the host boundary: each NSM share group (the NSMs reachable from a set of
//! VMs, with those VMs' engine ports, table entries and queues) becomes a
//! [`ShareLane`] that polls independently on a worker thread, while the
//! serial remainder — the vNIC/switch fabric, remote stacks, the
//! shared-memory core ledger and any ungrouped VM — stays behind as the
//! *host hub*, polled by the coordinator at the round barrier
//! (`NetKernelHost::hub_round`).
//!
//! The only cross-thread channel is the wait-free SPSC
//! [`nk_fabric::share_edge`] from each lane to its hub, carrying
//! [`LaneReport`]s: per-component work counts the hub folds — in lane-key
//! order — into the cycle ledgers (so pool accounting is identical to an
//! undecomposed host) and into per-lane load counters (so the executor's
//! weighted placement can deal heavy lanes first).
//!
//! Determinism: lanes touch pairwise-disjoint state (the grouping closes
//! over every VM↔NSM edge — mapping, table pins, NSM-held VM state — so no
//! engine traffic or region access crosses a lane boundary), which makes
//! lane polls commute; the hub runs strictly after all lanes each round and
//! drains reports in lane-key order. Any thread count therefore produces
//! byte-identical state to the serial whole-host poll.

use crate::host::NsmInstance;
use crate::sched::Pollable;
use nk_engine::CoreEngine;
use nk_fabric::ShareTx;
use nk_types::NsmId;
use std::collections::BTreeMap;

/// One work report pushed from a share lane to its host hub during a poll
/// round. Reports are only sent for non-zero work, so a quiescent lane stays
/// silent and the hub's drain cost tracks actual activity.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LaneReport {
    /// NQEs switched by the lane's engine shard this round.
    Engine {
        /// Work items (NQEs forwarded + delivered).
        work: u64,
    },
    /// Work done by one NSM share this round.
    Nsm {
        /// Which share (for per-NSM pool charging).
        id: NsmId,
        /// Work items (NQEs translated + segments processed).
        work: u64,
    },
}

/// One NSM share group carved out of a [`crate::NetKernelHost`] for a poll
/// phase: an engine shard (the group's VM/NSM ports, mappings and table
/// entries) plus the group's NSM instances, with an SPSC report edge back to
/// the host hub. Created by `NetKernelHost::split_lanes`, polled on a worker
/// thread via [`ShareLane::poll_round`], merged back by
/// `NetKernelHost::absorb_lanes`.
pub struct ShareLane {
    /// Lane key: the smallest NSM id in the group. Stable across rounds and
    /// steps (for a fixed topology), so weighted placement can carry load
    /// history from one step to the next.
    pub(crate) key: NsmId,
    /// The group's slice of the CoreEngine.
    pub(crate) engine: CoreEngine,
    /// The group's NSM instances, polled in ascending id order.
    pub(crate) members: BTreeMap<NsmId, NsmInstance>,
    /// Report edge to the host hub.
    pub(crate) tx: ShareTx<LaneReport>,
}

// Lanes move onto executor worker threads; a non-Send field would surface
// as an inscrutable error in `nk-cluster`, so pin the bound down here.
const _: fn() = || {
    fn assert_send<T: Send>() {}
    assert_send::<ShareLane>();
};

impl ShareLane {
    /// The lane key (smallest NSM id in the group).
    pub fn key(&self) -> NsmId {
        self.key
    }

    /// One poll round over the lane's slice of the datapath: the engine
    /// shard first (exactly where the whole-host round polls the engine),
    /// then each member NSM in ascending id order. Work counts are reported
    /// to the hub over the SPSC edge for ledger charging and lane weighting;
    /// the return value feeds the executor's quiescence detection.
    pub fn poll_round(&mut self, now_ns: u64) -> usize {
        let engine_work = Pollable::poll(&mut self.engine, now_ns);
        if engine_work > 0 {
            self.tx.send(LaneReport::Engine {
                work: engine_work as u64,
            });
        }
        let mut work = engine_work;
        for (id, nsm) in self.members.iter_mut() {
            let nsm_work = Pollable::poll(nsm, now_ns);
            if nsm_work > 0 {
                self.tx.send(LaneReport::Nsm {
                    id: *id,
                    work: nsm_work as u64,
                });
            }
            work += nsm_work;
        }
        work
    }
}
