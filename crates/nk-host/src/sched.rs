//! The drain-until-quiescent scheduler driving the host datapath.
//!
//! The host used to advance its components with a hard-coded two-pass sweep
//! (engine → NSMs → remotes → switch, twice), which capped how much of a
//! request → NSM → response round trip could complete in one step and baked
//! scheduling policy into the host layer. The scheduler replaces that sweep:
//! every component is a [`Pollable`], and each host step polls all of them
//! in rounds until a full round reports no work (quiescence) or the
//! configured round bound is hit. Round trips therefore complete within one
//! step regardless of queue depth, while the bound keeps a misbehaving
//! component from stalling virtual time.

pub use nk_sim::poll::{poll_round, Pollable};

/// Cumulative scheduler behaviour counters, for observability and tests.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SchedStats {
    /// Host steps executed.
    pub steps: u64,
    /// Scheduler rounds executed across all steps.
    pub rounds: u64,
    /// Steps that ended early because a full round reported no work.
    pub quiescent_exits: u64,
    /// Steps whose final allowed round still reported work. Quiescence was
    /// never observed in such a step — the backlog may have drained exactly
    /// on the last round, or work may remain for the next step.
    pub round_limit_hits: u64,
    /// Total work items (NQEs, segments, frames) reported by components.
    pub work_items: u64,
}

/// Polls a set of [`Pollable`] components until quiescence, within a bound.
#[derive(Clone, Copy, Debug)]
pub struct Scheduler {
    max_rounds: usize,
    stats: SchedStats,
}

impl Scheduler {
    /// A scheduler running at most `max_rounds` rounds per step (clamped to
    /// at least one).
    pub fn new(max_rounds: usize) -> Self {
        Scheduler {
            max_rounds: max_rounds.max(1),
            stats: SchedStats::default(),
        }
    }

    /// The configured per-step round bound.
    pub fn max_rounds(&self) -> usize {
        self.max_rounds
    }

    /// Behaviour counters accumulated so far.
    pub fn stats(&self) -> SchedStats {
        self.stats
    }

    /// Drive `parts` at virtual time `now_ns` until a full round reports no
    /// work or the round bound is reached. Returns the total work done.
    pub fn drain(&mut self, parts: &mut [&mut dyn Pollable], now_ns: u64) -> usize {
        self.drain_rounds(now_ns, |now| poll_round(parts, now))
    }

    /// Like [`Scheduler::drain`], but the caller supplies the round itself:
    /// `round(now_ns)` must poll every component once and return the work
    /// total. This lets a host with statically known components run the
    /// drain loop without building a slice of trait objects per step.
    pub fn drain_rounds(&mut self, now_ns: u64, mut round: impl FnMut(u64) -> usize) -> usize {
        self.stats.steps += 1;
        let mut total = 0;
        let mut quiescent = false;
        for _ in 0..self.max_rounds {
            let work = round(now_ns);
            self.stats.rounds += 1;
            total += work;
            if work == 0 {
                quiescent = true;
                break;
            }
        }
        if quiescent {
            self.stats.quiescent_exits += 1;
        } else {
            self.stats.round_limit_hits += 1;
        }
        self.stats.work_items += total as u64;
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reports `work` items once per distinct poll instant, mimicking a
    /// component that has a fixed amount of queued work per step.
    struct OneShot {
        work: usize,
        last_polled: Option<u64>,
    }

    impl OneShot {
        fn new(work: usize) -> Self {
            OneShot {
                work,
                last_polled: None,
            }
        }
    }

    impl Pollable for OneShot {
        fn poll(&mut self, now_ns: u64) -> usize {
            if self.last_polled == Some(now_ns) {
                0
            } else {
                self.last_polled = Some(now_ns);
                self.work
            }
        }
    }

    /// Always reports work: the round bound must stop it.
    struct Chatterbox;

    impl Pollable for Chatterbox {
        fn poll(&mut self, _now_ns: u64) -> usize {
            1
        }
    }

    #[test]
    fn drain_stops_at_quiescence() {
        let mut a = OneShot::new(3);
        let mut b = OneShot::new(2);
        let mut sched = Scheduler::new(16);
        let mut parts: Vec<&mut dyn Pollable> = vec![&mut a, &mut b];
        assert_eq!(sched.drain(&mut parts, 100), 5);
        // One working round plus the quiescent round that ended the step.
        assert_eq!(sched.stats().rounds, 2);
        assert_eq!(sched.stats().quiescent_exits, 1);
        assert_eq!(sched.stats().round_limit_hits, 0);
    }

    #[test]
    fn drain_is_bounded_for_always_busy_components() {
        let mut noisy = Chatterbox;
        let mut sched = Scheduler::new(4);
        let mut parts: Vec<&mut dyn Pollable> = vec![&mut noisy];
        assert_eq!(sched.drain(&mut parts, 0), 4);
        assert_eq!(sched.stats().rounds, 4);
        assert_eq!(sched.stats().round_limit_hits, 1);
        assert_eq!(sched.stats().quiescent_exits, 0);
    }

    #[test]
    fn zero_round_bound_is_clamped_to_one() {
        let mut sched = Scheduler::new(0);
        assert_eq!(sched.max_rounds(), 1);
        let mut parts: Vec<&mut dyn Pollable> = Vec::new();
        // An empty component set is immediately quiescent.
        assert_eq!(sched.drain(&mut parts, 0), 0);
        assert_eq!(sched.stats().quiescent_exits, 1);
    }
}
