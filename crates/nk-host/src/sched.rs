//! The drain-until-quiescent scheduler driving the host datapath.
//!
//! The host used to advance its components with a hard-coded two-pass sweep
//! (engine → NSMs → remotes → switch, twice), which capped how much of a
//! request → NSM → response round trip could complete in one step and baked
//! scheduling policy into the host layer. The scheduler replaces that sweep:
//! every component is a [`Pollable`], and each host step polls all of them
//! in rounds until a full round reports no work (quiescence) or the
//! configured round bound is hit. Round trips therefore complete within one
//! step regardless of queue depth, while the bound keeps a misbehaving
//! component from stalling virtual time.

pub use nk_sim::poll::{poll_round, Pollable};

/// The three phases of one scheduled host step.
///
/// Fault injection gets its own phase so timed infrastructure events (NSM
/// crashes, migrations, link changes) land at one deterministic point — the
/// start of the step, before any component is polled — instead of wherever
/// the host happens to interleave them. The control phase runs once at the
/// end of the step, after the datapath has drained, so operator decisions
/// (autoscaling, rebalancing) observe a settled view of the step's load and
/// take effect from the next step onwards.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SchedPhase {
    /// Apply infrastructure events due at this virtual time (runs once, at
    /// the start of the step).
    Inject,
    /// Poll every datapath component once (runs up to `max_rounds` times).
    Poll,
    /// Run the operator control plane (runs once, at the end of the step).
    Control,
}

/// Cumulative scheduler behaviour counters, for observability and tests.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SchedStats {
    /// Host steps executed.
    pub steps: u64,
    /// Scheduler rounds executed across all steps.
    pub rounds: u64,
    /// Steps that ended early because a full round reported no work.
    pub quiescent_exits: u64,
    /// Steps whose final allowed round still reported work. Quiescence was
    /// never observed in such a step — the backlog may have drained exactly
    /// on the last round, or work may remain for the next step.
    pub round_limit_hits: u64,
    /// Total work items (NQEs, segments, frames) reported by components.
    pub work_items: u64,
    /// Fault events applied in inject phases across all steps.
    pub fault_events: u64,
    /// Control-plane actions applied in control phases across all steps.
    pub control_actions: u64,
}

/// Polls a set of [`Pollable`] components until quiescence, within a bound.
#[derive(Clone, Copy, Debug)]
pub struct Scheduler {
    max_rounds: usize,
    stats: SchedStats,
}

impl Scheduler {
    /// A scheduler running at most `max_rounds` rounds per step (clamped to
    /// at least one).
    pub fn new(max_rounds: usize) -> Self {
        Scheduler {
            max_rounds: max_rounds.max(1),
            stats: SchedStats::default(),
        }
    }

    /// The configured per-step round bound.
    pub fn max_rounds(&self) -> usize {
        self.max_rounds
    }

    /// Behaviour counters accumulated so far.
    pub fn stats(&self) -> SchedStats {
        self.stats
    }

    /// Drive `parts` at virtual time `now_ns` until a full round reports no
    /// work or the round bound is reached. Returns the total work done.
    pub fn drain(&mut self, parts: &mut [&mut dyn Pollable], now_ns: u64) -> usize {
        self.drain_rounds(now_ns, |now| poll_round(parts, now))
    }

    /// Like [`Scheduler::drain`], but the caller supplies the round itself:
    /// `round(now_ns)` must poll every component once and return the work
    /// total. This lets a host with statically known components run the
    /// drain loop without building a slice of trait objects per step.
    pub fn drain_rounds(&mut self, now_ns: u64, mut round: impl FnMut(u64) -> usize) -> usize {
        self.drain_with_hook(now_ns, |phase, now| match phase {
            SchedPhase::Inject | SchedPhase::Control => 0,
            SchedPhase::Poll => round(now),
        })
    }

    /// One full step with injection and control hooks: `f(Inject, now)` runs
    /// exactly once before the first round and returns the number of fault
    /// events applied, `f(Poll, now)` runs as rounds until quiescence or the
    /// bound, and `f(Control, now)` runs exactly once afterwards, returning
    /// the number of control-plane actions applied. A single closure carries
    /// all phases so the caller can borrow its whole datapath mutably across
    /// them.
    ///
    /// Fault events and control actions count as step work: a step that only
    /// crashed an NSM or only resized one is not "idle".
    pub fn drain_with_hook(
        &mut self,
        now_ns: u64,
        mut f: impl FnMut(SchedPhase, u64) -> usize,
    ) -> usize {
        self.stats.steps += 1;
        let injected = f(SchedPhase::Inject, now_ns);
        self.stats.fault_events += injected as u64;
        let mut total = injected;
        let mut quiescent = false;
        for _ in 0..self.max_rounds {
            let work = f(SchedPhase::Poll, now_ns);
            self.stats.rounds += 1;
            total += work;
            if work == 0 {
                quiescent = true;
                break;
            }
        }
        if quiescent {
            self.stats.quiescent_exits += 1;
        } else {
            self.stats.round_limit_hits += 1;
        }
        let controlled = f(SchedPhase::Control, now_ns);
        self.stats.control_actions += controlled as u64;
        total += controlled;
        self.stats.work_items += total as u64;
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reports `work` items once per distinct poll instant, mimicking a
    /// component that has a fixed amount of queued work per step.
    struct OneShot {
        work: usize,
        last_polled: Option<u64>,
    }

    impl OneShot {
        fn new(work: usize) -> Self {
            OneShot {
                work,
                last_polled: None,
            }
        }
    }

    impl Pollable for OneShot {
        fn poll(&mut self, now_ns: u64) -> usize {
            if self.last_polled == Some(now_ns) {
                0
            } else {
                self.last_polled = Some(now_ns);
                self.work
            }
        }
    }

    /// Always reports work: the round bound must stop it.
    struct Chatterbox;

    impl Pollable for Chatterbox {
        fn poll(&mut self, _now_ns: u64) -> usize {
            1
        }
    }

    #[test]
    fn drain_stops_at_quiescence() {
        let mut a = OneShot::new(3);
        let mut b = OneShot::new(2);
        let mut sched = Scheduler::new(16);
        let mut parts: Vec<&mut dyn Pollable> = vec![&mut a, &mut b];
        assert_eq!(sched.drain(&mut parts, 100), 5);
        // One working round plus the quiescent round that ended the step.
        assert_eq!(sched.stats().rounds, 2);
        assert_eq!(sched.stats().quiescent_exits, 1);
        assert_eq!(sched.stats().round_limit_hits, 0);
    }

    #[test]
    fn drain_is_bounded_for_always_busy_components() {
        let mut noisy = Chatterbox;
        let mut sched = Scheduler::new(4);
        let mut parts: Vec<&mut dyn Pollable> = vec![&mut noisy];
        assert_eq!(sched.drain(&mut parts, 0), 4);
        assert_eq!(sched.stats().rounds, 4);
        assert_eq!(sched.stats().round_limit_hits, 1);
        assert_eq!(sched.stats().quiescent_exits, 0);
    }

    /// The inject phase runs exactly once, before the first poll round, and
    /// its events count as step work and into the stats.
    #[test]
    fn hook_injects_before_polling_and_counts_fault_work() {
        let mut sched = Scheduler::new(8);
        let mut phases = Vec::new();
        let mut polls = 0;
        let total = sched.drain_with_hook(42, |phase, now| {
            assert_eq!(now, 42);
            phases.push(phase);
            match phase {
                SchedPhase::Inject => 3,
                SchedPhase::Poll => {
                    polls += 1;
                    if polls == 1 {
                        5
                    } else {
                        0
                    }
                }
                SchedPhase::Control => 0,
            }
        });
        assert_eq!(total, 8);
        assert_eq!(
            phases,
            vec![
                SchedPhase::Inject,
                SchedPhase::Poll,
                SchedPhase::Poll,
                SchedPhase::Control,
            ]
        );
        let stats = sched.stats();
        assert_eq!(stats.fault_events, 3);
        assert_eq!(stats.work_items, 8);
        assert_eq!(stats.quiescent_exits, 1);
    }

    /// The control phase runs exactly once, after the last poll round, and
    /// its actions count as step work and into the stats.
    #[test]
    fn control_phase_runs_last_and_counts_actions() {
        let mut sched = Scheduler::new(4);
        let mut phases = Vec::new();
        let total = sched.drain_with_hook(7, |phase, _| {
            phases.push(phase);
            match phase {
                SchedPhase::Inject => 0,
                SchedPhase::Poll => 0,
                SchedPhase::Control => 2,
            }
        });
        assert_eq!(total, 2);
        assert_eq!(
            phases,
            vec![SchedPhase::Inject, SchedPhase::Poll, SchedPhase::Control]
        );
        let stats = sched.stats();
        assert_eq!(stats.control_actions, 2);
        assert_eq!(stats.work_items, 2);
        assert_eq!(stats.quiescent_exits, 1, "control work is not poll work");
    }

    /// A step whose only activity is a fault application still terminates
    /// (the first poll round is quiescent) and is accounted as work.
    #[test]
    fn fault_only_step_is_not_idle() {
        let mut sched = Scheduler::new(4);
        let total = sched.drain_with_hook(0, |phase, _| match phase {
            SchedPhase::Inject => 1,
            SchedPhase::Poll | SchedPhase::Control => 0,
        });
        assert_eq!(total, 1);
        assert_eq!(sched.stats().rounds, 1);
        assert_eq!(sched.stats().fault_events, 1);
    }

    #[test]
    fn zero_round_bound_is_clamped_to_one() {
        let mut sched = Scheduler::new(0);
        assert_eq!(sched.max_rounds(), 1);
        let mut parts: Vec<&mut dyn Pollable> = Vec::new();
        // An empty component set is immediately quiescent.
        assert_eq!(sched.drain(&mut parts, 0), 0);
        assert_eq!(sched.stats().quiescent_exits, 1);
    }
}
