//! Assembling a NetKernel host (and the baseline it is compared against).

use crate::faults::{FaultInjector, FaultStats};
use crate::lane::{LaneReport, ShareLane};
use crate::sched::{Pollable, SchedPhase, SchedStats, Scheduler};
use nk_ctrl::{ControlPlane, EpochSample, NsmLoad};
use nk_engine::CoreEngine;
use nk_fabric::link::LinkConfig;
use nk_fabric::port::Port;
use nk_fabric::share::{share_edge, ShareRx};
use nk_fabric::switch::{UplinkStats, VirtualSwitch};
use nk_fabric::uplink::HostUplink;
use nk_guest::GuestLib;
use nk_netstack::cc::CcAlgorithm;
use nk_netstack::{Segment, StackConfig, TcpStack};
use nk_obs::HostFeed;
use nk_queue::{queue_set_pair, NkDevice, WakeState};
use nk_service::{Nsm, ServiceLib, SharedMemNsm};
use nk_shmem::HugepageRegion;
use nk_sim::record::TimeSeries;
use nk_sim::{CorePool, CostModel, CycleLedger, PoolMember};
use nk_types::addr::nsm_ip_on;
use nk_types::api::{EpollEvent, ShutdownHow};
use nk_types::faults::{FaultAction, FaultPlan, LinkFault};
use nk_types::migrate::{ConnSnapshot, VmWarmExport};
use nk_types::{
    ControlAction, ControlEvent, ControlTarget, HostConfig, HostId, NkError, NkResult, NsmConfig,
    NsmId, PollEvents, SockAddr, SocketApi, SocketId, StackKind, VmId,
};
use std::collections::BTreeMap;

pub use nk_types::migrate::VmExport;

/// Base IP of NSM vNICs on host 0: 10.0.0.x with x = NSM id. Hosts with a
/// non-zero [`HostConfig::host_id`] shift into their own `10.<host>.0.0/16`
/// block (see [`nk_types::addr::nsm_ip_on`]).
pub const NSM_IP_BASE: u32 = nk_types::addr::CLUSTER_IP_BASE;

pub(crate) enum NsmInstance {
    /// Both variants are boxed: the instances are large (a TCP NSM carries
    /// a whole stack) and live in a map the host iterates every step.
    Tcp(Box<Nsm>),
    SharedMem(Box<SharedMemNsm>),
}

impl NsmInstance {
    /// Register a VM (and its hugepage region) with whichever NSM flavour
    /// this is.
    fn add_vm(&mut self, vm: VmId, region: HugepageRegion) {
        match self {
            NsmInstance::Tcp(n) => n.add_vm(vm, region),
            NsmInstance::SharedMem(n) => n.add_vm(vm, region),
        }
    }

    /// Detach a VM's region mapping (and any leftover per-VM state).
    fn remove_vm(&mut self, vm: VmId) {
        match self {
            NsmInstance::Tcp(n) => n.remove_vm(vm),
            NsmInstance::SharedMem(n) => n.remove_vm(vm),
        }
    }

    /// True while the instance holds state for the VM.
    fn has_vm(&self, vm: VmId) -> bool {
        match self {
            NsmInstance::Tcp(n) => n.serves_vm(vm),
            NsmInstance::SharedMem(n) => n.has_vm(vm),
        }
    }
}

impl Pollable for NsmInstance {
    fn poll(&mut self, now_ns: u64) -> usize {
        match self {
            NsmInstance::Tcp(n) => Pollable::poll(n.as_mut(), now_ns),
            NsmInstance::SharedMem(n) => Pollable::poll(n.as_mut(), now_ns),
        }
    }
}

/// A remote endpoint on the fabric (another machine the VMs talk to).
pub struct RemoteHost {
    /// The remote machine's own TCP stack.
    pub stack: TcpStack,
}

/// Per-epoch control-plane observability, recorded through
/// [`nk_sim::record::TimeSeries`]: the epoch samples and decision counts
/// the operator would chart, kept alongside the [`ControlEvent`] log so
/// control behaviour is part of the measurable perf trajectory.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ControlTelemetry {
    /// CoreEngine utilisation per epoch.
    pub engine_utilisation: TimeSeries,
    /// Utilisation per epoch of every NSM alive at sampling time.
    pub nsm_utilisation: BTreeMap<NsmId, TimeSeries>,
    /// Control actions applied per epoch.
    pub actions_per_epoch: TimeSeries,
}

/// A complete NetKernel host: VMs with GuestLibs, NSMs with ServiceLibs and
/// stacks, a CoreEngine switching NQEs, and a virtual switch carrying the
/// NSMs' traffic to remote hosts (paper Figure 2).
pub struct NetKernelHost {
    cfg: HostConfig,
    switch: VirtualSwitch<Segment>,
    engine: CoreEngine,
    guests: BTreeMap<VmId, GuestLib>,
    nsms: BTreeMap<NsmId, NsmInstance>,
    /// vNIC port of each TCP-stack NSM (a clone of the port its stack
    /// owns), kept so warm-migrated addresses can be aliased onto it.
    nsm_ports: BTreeMap<NsmId, Port<Segment>>,
    /// Foreign addresses adopted by a local NSM's vNIC for warm-migrated
    /// connections: alias address → owning NSM.
    aliases: BTreeMap<u32, NsmId>,
    remotes: BTreeMap<u32, RemoteHost>,
    /// Hugepage region of each VM, kept so a restarted or takeover NSM can
    /// be wired to the VMs it serves.
    regions: BTreeMap<VmId, HugepageRegion>,
    /// Restart generation per NSM: a restarted NSM's stack starts its
    /// ephemeral-port scan elsewhere, like a rebooted kernel would, so new
    /// connections cannot collide with peers' stale pre-crash state.
    generations: BTreeMap<NsmId, u32>,
    sched: Scheduler,
    injector: FaultInjector,
    /// Cycle-accounting pool the control plane observes and resizes: one
    /// member for CoreEngine, one per alive NSM.
    pools: CorePool,
    /// Cost model used to charge datapath work against the pool.
    cost: CostModel,
    /// True when datapath work is charged against the pools — either a host
    /// control plane is configured, or a cluster layer asked for accounting
    /// via [`NetKernelHost::enable_pool_accounting`].
    accounting: bool,
    /// The operator control plane, when the configuration enables one.
    ctrl: Option<ControlPlane>,
    /// Every control decision applied so far, in order (the record log).
    control_log: Vec<ControlEvent>,
    /// Per-epoch control observability (time series of samples and action
    /// counts).
    telemetry: ControlTelemetry,
    /// VMs mid-migration: exported to another host, still serving pinned
    /// connections here until the drain counter hits zero. Maps each to the
    /// NSM share being drained.
    draining: BTreeMap<VmId, NsmId>,
    /// Virtual time at which the next control epoch closes.
    next_epoch_ns: u64,
    /// Pool ledgers at the previous epoch boundary, for per-epoch deltas.
    epoch_ledgers: BTreeMap<PoolMember, CycleLedger>,
    /// Per-VM forwarded bytes at the previous epoch boundary.
    epoch_vm_bytes: BTreeMap<VmId, u64>,
    /// Remaining warm imports to refuse, armed by
    /// [`NetKernelHost::inject_import_failures`] — the fault surface
    /// evacuation-rollback tests drive.
    import_fail_budget: u32,
    /// The flight recorder's per-host feed: request-completion latency
    /// sampled from the engine's per-VM counter deltas at each step close,
    /// plus the fault events applied this interval. A cluster drains it at
    /// the round barrier; a bare host reads it directly.
    obs: HostFeed,
    /// Hub ends of the share-lane report edges while the host is split into
    /// lanes ([`NetKernelHost::split_lanes`]); drained in key order every
    /// hub round, empty outside a lane phase.
    lane_rx: BTreeMap<NsmId, ShareRx<LaneReport>>,
    /// Work done per lane since the last [`NetKernelHost::take_lane_loads`],
    /// accumulated from the lanes' reports — the weight signal for the
    /// executor's lane placement.
    lane_loads: BTreeMap<NsmId, u64>,
    now_ns: u64,
}

// The cluster's sharded executor moves whole hosts onto worker threads, so
// everything a host owns — guests, NSMs, stacks, hugepage regions, wake
// state, the switch with its uplink channel end — must be `Send`. Checked
// here at compile time so a non-Send field (an `Rc`, a thread-bound cache)
// is caught in this crate, not as an inscrutable error in `nk-cluster`.
const _: fn() = || {
    fn assert_send<T: Send>() {}
    assert_send::<NetKernelHost>();
};

impl NetKernelHost {
    /// Build a host from its configuration.
    pub fn new(cfg: HostConfig) -> NkResult<Self> {
        cfg.validate()?;
        let mut switch = VirtualSwitch::new();
        let mut engine = CoreEngine::new(cfg.isolation.clone(), cfg.batch_size);
        let mut nsms = BTreeMap::new();

        // Bring up the NSMs first so VMs can be mapped onto them.
        let mut nsm_ports = BTreeMap::new();
        for nsm_cfg in &cfg.nsms {
            let (instance, port) = Self::build_nsm(&cfg, nsm_cfg, 0, &mut engine, &mut switch)?;
            nsms.insert(nsm_cfg.id, instance);
            if let Some(port) = port {
                nsm_ports.insert(nsm_cfg.id, port);
            }
        }

        // Bring up the VMs.
        let mut guests = BTreeMap::new();
        let mut regions = BTreeMap::new();
        for vm_cfg in &cfg.vms {
            let nsm_id = cfg.nsm_for_vm(vm_cfg.id)?;
            let mut guest_ends = Vec::new();
            let mut engine_ends = Vec::new();
            for _ in 0..vm_cfg.vcpus {
                let (req, resp) = queue_set_pair(cfg.queue_capacity);
                guest_ends.push(req);
                engine_ends.push(resp);
            }
            let wake = WakeState::new();
            let region = HugepageRegion::new(cfg.hugepages_per_pair);
            engine.register_vm(
                vm_cfg.id,
                engine_ends,
                wake.clone(),
                vm_cfg.tenant,
                vm_cfg.rate_limit_gbps,
                Some(region.clone()),
                0,
            )?;
            engine.map_vm(vm_cfg.id, nsm_id)?;
            nsms.get_mut(&nsm_id)
                .ok_or(NkError::NotFound)?
                .add_vm(vm_cfg.id, region.clone());
            let device = NkDevice::new(guest_ends, wake);
            guests.insert(vm_cfg.id, GuestLib::new(vm_cfg.id, device, region.clone()));
            regions.insert(vm_cfg.id, region);
        }

        let sched = Scheduler::new(cfg.max_poll_rounds);
        let mut pools = match cfg.control.as_ref().and_then(|c| c.pool_clock_hz) {
            Some(hz) => CorePool::with_clock(hz),
            None => CorePool::new(),
        };
        pools.register(PoolMember::Engine, cfg.core_engine_cores);
        for nsm_cfg in &cfg.nsms {
            pools.register(PoolMember::Nsm(nsm_cfg.id), nsm_cfg.vcpus);
        }
        let ctrl = match cfg.control.clone() {
            Some(policy) => Some(ControlPlane::new(policy)?),
            None => None,
        };
        let next_epoch_ns = cfg.control.as_ref().map(|c| c.epoch_ns).unwrap_or(u64::MAX);
        Ok(NetKernelHost {
            cfg,
            switch,
            engine,
            guests,
            nsms,
            nsm_ports,
            aliases: BTreeMap::new(),
            remotes: BTreeMap::new(),
            regions,
            generations: BTreeMap::new(),
            sched,
            injector: FaultInjector::idle(),
            pools,
            cost: CostModel::default(),
            accounting: ctrl.is_some(),
            ctrl,
            control_log: Vec::new(),
            telemetry: ControlTelemetry::default(),
            draining: BTreeMap::new(),
            next_epoch_ns,
            epoch_ledgers: BTreeMap::new(),
            epoch_vm_bytes: BTreeMap::new(),
            import_fail_budget: 0,
            obs: HostFeed::new(),
            lane_rx: BTreeMap::new(),
            lane_loads: BTreeMap::new(),
            now_ns: 0,
        })
    }

    /// Provision one NSM instance: queue pairs registered with the engine
    /// and, for TCP-stack NSMs, a vNIC attached to the switch (whose port
    /// handle is returned alongside, for warm-migration address aliasing).
    /// Shared between initial bring-up and [`NetKernelHost::restart_nsm`].
    fn build_nsm(
        cfg: &HostConfig,
        nsm_cfg: &NsmConfig,
        generation: u32,
        engine: &mut CoreEngine,
        switch: &mut VirtualSwitch<Segment>,
    ) -> NkResult<(NsmInstance, Option<Port<Segment>>)> {
        let mut service_ends = Vec::new();
        let mut engine_ends = Vec::new();
        for _ in 0..nsm_cfg.vcpus {
            let (req, resp) = queue_set_pair(cfg.queue_capacity);
            engine_ends.push(req);
            service_ends.push(resp);
        }
        engine.register_nsm(nsm_cfg.id, engine_ends)?;
        let device = NkDevice::new(service_ends, WakeState::new());
        Ok(match nsm_cfg.stack {
            StackKind::SharedMem => (
                NsmInstance::SharedMem(Box::new(SharedMemNsm::new(
                    nsm_cfg.id,
                    device,
                    cfg.batch_size,
                ))),
                None,
            ),
            kind => {
                let ip = nsm_ip_on(cfg.host_id, nsm_cfg.id);
                let port = switch.attach_with_link(
                    ip,
                    LinkConfig::ideal().with_rate_gbps(nsm_cfg.nic_rate_gbps),
                );
                let stack_cfg = StackConfig::new(ip)
                    .with_cc(CcAlgorithm::from_kind(nsm_cfg.cc))
                    .with_ephemeral_generation(generation);
                let stack = TcpStack::new(stack_cfg, port.clone());
                let service = ServiceLib::new(nsm_cfg.id, device, cfg.batch_size);
                (
                    NsmInstance::Tcp(Box::new(Nsm::new(nsm_cfg.id, kind, service, stack))),
                    Some(port),
                )
            }
        })
    }

    /// The host's configuration.
    pub fn config(&self) -> &HostConfig {
        &self.cfg
    }

    /// Current virtual time in nanoseconds.
    pub fn now_ns(&self) -> u64 {
        self.now_ns
    }

    /// Mutable access to a VM's GuestLib (the application's socket API).
    pub fn guest_mut(&mut self, vm: VmId) -> Option<&mut GuestLib> {
        self.guests.get_mut(&vm)
    }

    /// Attach a remote host (a peer machine) to the fabric at `ip`.
    pub fn add_remote(&mut self, ip: u32) -> &mut TcpStack {
        let port = self.switch.attach(ip);
        let stack = TcpStack::new(StackConfig::new(ip), port);
        self.remotes.insert(ip, RemoteHost { stack });
        &mut self.remotes.get_mut(&ip).expect("just inserted").stack
    }

    /// Mutable access to a previously added remote host's stack.
    pub fn remote_mut(&mut self, ip: u32) -> Option<&mut TcpStack> {
        self.remotes.get_mut(&ip).map(|r| &mut r.stack)
    }

    /// The address a guest should connect to in order to reach NSM-hosted
    /// listeners of `nsm` on a host-0 (single-host) configuration. Hosts in
    /// a cluster shift by their id — use [`NetKernelHost::nsm_addr`].
    pub fn nsm_ip(nsm: NsmId) -> u32 {
        nsm_ip_on(HostId(0), nsm)
    }

    /// The vNIC address of `nsm` on *this* host (`10.<host>.0.<nsm>`).
    pub fn nsm_addr(&self, nsm: NsmId) -> u32 {
        nsm_ip_on(self.cfg.host_id, nsm)
    }

    /// This host's identity in the cluster address scheme.
    pub fn host_id(&self) -> HostId {
        self.cfg.host_id
    }

    /// Adopt `uplink` (the host side of a top-of-rack trunk's SPSC channel
    /// pair) as this host's uplink: frames with no local destination leave
    /// through it and ToR deliveries enter through it on every poll round.
    /// Destinations inside this host's own address block stay local even
    /// when dead (a crashed vNIC must not read as cross-host traffic).
    pub fn connect_uplink(&mut self, uplink: HostUplink<Segment>) {
        self.switch.set_uplink_filtered(
            uplink,
            nk_types::addr::host_prefix(self.cfg.host_id),
            nk_types::addr::HOST_PREFIX_MASK,
        );
    }

    /// Traffic counters of the uplink (zero when none is wired). The
    /// cluster placer reads these as the host's cross-host traffic signal.
    pub fn uplink_stats(&self) -> UplinkStats {
        self.switch.uplink_stats()
    }

    /// CoreEngine statistics.
    pub fn engine_stats(&self) -> nk_engine::EngineStats {
        self.engine.stats()
    }

    /// ServiceLib statistics of a TCP-stack NSM.
    pub fn nsm_service_stats(&self, nsm: NsmId) -> Option<nk_service::ServiceStats> {
        match self.nsms.get(&nsm) {
            Some(NsmInstance::Tcp(n)) => Some(n.service_stats()),
            _ => None,
        }
    }

    /// Shared-memory NSM statistics, when `nsm` is one.
    pub fn shm_stats(&self, nsm: NsmId) -> Option<nk_service::sharedmem::SharedMemStats> {
        match self.nsms.get(&nsm) {
            Some(NsmInstance::SharedMem(n)) => Some(n.stats()),
            _ => None,
        }
    }

    /// Per-VM CoreEngine switching statistics.
    pub fn vm_switch_stats(&self, vm: VmId) -> Option<nk_engine::VmSwitchStats> {
        self.engine.vm_stats(vm)
    }

    /// Request NQEs parked in the engine's stall queues awaiting retry.
    pub fn stalled_nqes(&self) -> usize {
        self.engine.stalled_nqes()
    }

    /// Scheduler behaviour counters (rounds per step, quiescent exits,
    /// round-limit hits).
    pub fn sched_stats(&self) -> SchedStats {
        self.sched.stats()
    }

    /// Advance the host by `dt_ns`: fault events due at the new virtual time
    /// are applied first (the scheduler's inject phase), then every datapath
    /// component — CoreEngine, the NSMs, remote stacks and the virtual
    /// switch — is driven through the [`Pollable`] scheduler until a full
    /// round reports no work (or the configured round bound is hit), so
    /// request → NSM → response round trips complete within one step
    /// regardless of queue depth. The control phase closes the step: at each
    /// control-epoch boundary the operator control plane samples the pool
    /// ledgers and may resize components or migrate VMs. Returns the amount
    /// of work (fault events + NQEs + segments + frames + control actions)
    /// processed.
    pub fn step(&mut self, dt_ns: u64) -> usize {
        self.advance(dt_ns);
        let now = self.now_ns;
        // The inject and control phases need the whole host (crashing an NSM
        // touches the engine, the switch and the NSM map at once), so the
        // scheduler is copied out for the duration of the step and a single
        // closure serves all phases.
        let mut sched = self.sched;
        let total = sched.drain_with_hook(now, |phase, now| match phase {
            SchedPhase::Inject => self.record_applied_faults(now),
            SchedPhase::Poll => self.poll_datapath(now),
            SchedPhase::Control => {
                let applied = self.run_control(now);
                self.obs_sample(now);
                applied
            }
        });
        self.sched = sched;
        total
    }

    /// Advance virtual time and refill the accounting budgets for a step of
    /// `dt_ns`.
    fn advance(&mut self, dt_ns: u64) {
        self.now_ns += dt_ns;
        if self.accounting {
            self.pools.begin_step(dt_ns);
        }
    }

    // ---- The cluster-facing step protocol ------------------------------------
    //
    // A cluster interleaves poll rounds ACROSS hosts (host A's uplink frames
    // must traverse the top-of-rack switch before host B can answer within
    // the same step), so it cannot use the self-contained `step()`. These
    // three methods expose the same step structure — inject, poll rounds,
    // control — with the round loop handed to the caller. `step()` remains
    // the single-host composition of the same pieces.
    //
    // Because the round loop lives with the caller, a cluster-driven host
    // does not go through its own `Scheduler`: `sched_stats()` stays at
    // zero and `HostConfig::max_poll_rounds` does not bound the rounds —
    // the cluster's own stats and `ClusterConfig::max_rounds` play those
    // roles at cluster scope.

    /// Open a step of `dt_ns`: advance virtual time, refill accounting
    /// budgets and apply due fault events. Returns the fault events applied.
    pub fn begin_step(&mut self, dt_ns: u64) -> usize {
        self.advance(dt_ns);
        self.record_applied_faults(self.now_ns)
    }

    /// One poll round over the whole datapath at the current virtual time.
    /// Returns the work done; the caller loops until quiescence.
    pub fn poll_round(&mut self) -> usize {
        self.poll_datapath(self.now_ns)
    }

    /// Close a step: run the control phase (a no-op off epoch boundaries or
    /// without a control plane). Returns the control actions applied.
    pub fn end_step(&mut self) -> usize {
        let applied = self.run_control(self.now_ns);
        self.obs_sample(self.now_ns);
        applied
    }

    /// Charge datapath work against the accounting pools even without a
    /// host-level control plane, optionally on a fresh pool at `clock_hz`.
    /// The cluster layer calls this at bring-up so its placer sees per-NSM
    /// utilisation; hosts with their own [`nk_types::ControlPolicy`] already
    /// account and keep their configured clock.
    pub fn enable_pool_accounting(&mut self, clock_hz: Option<u64>) {
        if self.accounting {
            return;
        }
        if let Some(hz) = clock_hz {
            self.pools = CorePool::with_clock(hz);
            self.pools
                .register(PoolMember::Engine, self.cfg.core_engine_cores);
            for nsm_cfg in &self.cfg.nsms {
                if self.nsms.contains_key(&nsm_cfg.id) {
                    self.pools
                        .register(PoolMember::Nsm(nsm_cfg.id), nsm_cfg.vcpus);
                }
            }
            self.epoch_ledgers.clear();
        }
        self.accounting = true;
    }

    /// One poll round over every datapath component, in a fixed order. Work
    /// done by CoreEngine and the NSMs is charged against their core pools
    /// so the control plane sees utilisation.
    fn poll_datapath(&mut self, now_ns: u64) -> usize {
        // Nobody reads the ledgers without a control plane (host- or
        // cluster-level); keep the cost arithmetic and map lookups off the
        // hot path in that case.
        let charge = self.accounting;
        let engine_work = Pollable::poll(&mut self.engine, now_ns);
        if charge && engine_work > 0 {
            let cycles = self
                .cost
                .switch_cost(engine_work as u64, self.cfg.batch_size);
            self.pools.charge_up_to(PoolMember::Engine, cycles as u64);
        }
        let mut work = engine_work;
        for (id, nsm) in self.nsms.iter_mut() {
            let nsm_work = Pollable::poll(nsm, now_ns);
            if charge && nsm_work > 0 {
                // Each NSM work item is roughly one NQE translated plus one
                // socket-level message processed by the stack; precise
                // per-figure costs live in the perf model, this is the load
                // signal the autoscaler watches.
                let per_item = self.cost.nqe_translate + self.cost.kernel_tx.per_msg;
                let cycles = (nsm_work as f64 * per_item) as u64;
                self.pools.charge_up_to(PoolMember::Nsm(*id), cycles);
            }
            work += nsm_work;
        }
        for remote in self.remotes.values_mut() {
            work += Pollable::poll(&mut remote.stack, now_ns);
        }
        work + Pollable::poll(&mut self.switch, now_ns)
    }

    // ---- Intra-host sharding (share lanes + hub) -----------------------------
    //
    // `split_lanes` carves the host's datapath into independently pollable
    // NSM share groups for the duration of a step's poll phase; `hub_round`
    // is the serial remainder the coordinator polls at the round barrier;
    // `absorb_lanes` puts the host back together before the control phase.
    // The decomposed round order — lanes (each: engine shard, then member
    // NSMs) in any interleaving, then hub (resident engine, remotes,
    // switch) — is byte-identical to `poll_datapath`, because the grouping
    // closes over every VM↔NSM edge: components of different lanes touch
    // disjoint ports, queues, table entries and hugepage regions, so their
    // polls commute, and the per-group relative order matches the serial
    // one. All control-plane mutation (faults, freezes, migration,
    // restarts) happens outside the poll phase, on the re-assembled host.

    /// Split the datapath into share lanes: the connected components of the
    /// VM↔NSM edge relation (engine mapping, connection-table pins, NSM-held
    /// VM state, draining shares), keyed by each group's smallest NSM id.
    /// VMs reachable from no live NSM (e.g. mapped to a crashed share) stay
    /// resident in the host's engine and are served by the hub exactly as
    /// the serial poll would. The host keeps the hub end of each lane's
    /// report edge; callers must poll [`ShareLane::poll_round`] before each
    /// [`NetKernelHost::hub_round`] and eventually hand every lane back to
    /// [`NetKernelHost::absorb_lanes`].
    pub fn split_lanes(&mut self) -> BTreeMap<NsmId, ShareLane> {
        // Union-find over NSM ids, linking larger roots under smaller ones
        // so every root is its group's minimum — the lane key.
        let mut parent: BTreeMap<NsmId, NsmId> = self.nsms.keys().map(|id| (*id, *id)).collect();
        fn find(parent: &mut BTreeMap<NsmId, NsmId>, id: NsmId) -> NsmId {
            let mut root = id;
            while parent[&root] != root {
                root = parent[&root];
            }
            let mut cur = id;
            while parent[&cur] != root {
                let next = parent[&cur];
                parent.insert(cur, root);
                cur = next;
            }
            root
        }

        // Every VM↔NSM edge that implies shared state; NSMs sharing a VM
        // fuse into one lane.
        let mut vm_nsms: BTreeMap<VmId, Vec<NsmId>> = BTreeMap::new();
        let note = |vm: VmId, nsm: NsmId, vm_nsms: &mut BTreeMap<VmId, Vec<NsmId>>| {
            if self.nsms.contains_key(&nsm) {
                vm_nsms.entry(vm).or_default().push(nsm);
            }
        };
        for (vm, nsm) in self.engine.vm_nsm_edges() {
            note(vm, nsm, &mut vm_nsms);
        }
        for vm in self.engine.vm_ids() {
            for (id, nsm) in self.nsms.iter() {
                if nsm.has_vm(vm) {
                    vm_nsms.entry(vm).or_default().push(*id);
                }
            }
        }
        for (vm, nsm) in self.draining.iter() {
            if self.nsms.contains_key(nsm) {
                vm_nsms.entry(*vm).or_default().push(*nsm);
            }
        }
        for nsms in vm_nsms.values() {
            for pair in nsms.windows(2) {
                let (a, b) = (find(&mut parent, pair[0]), find(&mut parent, pair[1]));
                if a != b {
                    let (lo, hi) = if a < b { (a, b) } else { (b, a) };
                    parent.insert(hi, lo);
                }
            }
        }

        // Assemble groups: member NSMs and the VMs reaching them.
        let mut group_nsms: BTreeMap<NsmId, Vec<NsmId>> = BTreeMap::new();
        let nsm_ids: Vec<NsmId> = self.nsms.keys().copied().collect();
        for id in nsm_ids {
            let root = find(&mut parent, id);
            group_nsms.entry(root).or_default().push(id);
        }
        let mut group_vms: BTreeMap<NsmId, Vec<VmId>> = BTreeMap::new();
        for (vm, nsms) in &vm_nsms {
            let root = find(&mut parent, nsms[0]);
            group_vms.entry(root).or_default().push(*vm);
        }

        let mut lanes = BTreeMap::new();
        for (key, members) in group_nsms {
            let vms = group_vms.remove(&key).unwrap_or_default();
            let engine = self.engine.extract_shard(&vms, &members);
            let mut member_map = BTreeMap::new();
            for id in members {
                let nsm = self.nsms.remove(&id).expect("grouped NSMs are live");
                member_map.insert(id, nsm);
            }
            let (tx, rx) = share_edge();
            self.lane_rx.insert(key, rx);
            lanes.insert(
                key,
                ShareLane {
                    key,
                    engine,
                    members: member_map,
                    tx,
                },
            );
        }
        lanes
    }

    /// The hub's share of one poll round while the host is split into
    /// lanes: poll the resident engine (ungrouped VMs — also what keeps
    /// `EngineStats::poll_rounds` counting host rounds exactly as an
    /// undecomposed poll loop would), drain every lane's reports in key
    /// order into the cycle ledgers and the lane load counters, then poll
    /// remote stacks and the virtual switch. Returns only the work done
    /// *here* — lane work reaches the executor through the lanes' own
    /// return values, and counting it twice would skew quiescence.
    pub fn hub_round(&mut self, now_ns: u64) -> usize {
        let charge = self.accounting;
        let resident_work = Pollable::poll(&mut self.engine, now_ns);
        let mut engine_total = resident_work as u64;
        let per_item = self.cost.nqe_translate + self.cost.kernel_tx.per_msg;
        let pools = &mut self.pools;
        let lane_loads = &mut self.lane_loads;
        for (key, rx) in self.lane_rx.iter_mut() {
            let mut lane_load = 0u64;
            rx.drain_with(|report| match report {
                LaneReport::Engine { work } => {
                    engine_total += work;
                    lane_load += work;
                }
                LaneReport::Nsm { id, work } => {
                    if charge && work > 0 {
                        let cycles = (work as f64 * per_item) as u64;
                        pools.charge_up_to(PoolMember::Nsm(id), cycles);
                    }
                    lane_load += work;
                }
            });
            if lane_load > 0 {
                *lane_loads.entry(*key).or_insert(0) += lane_load;
            }
        }
        // One engine charge per round over the summed shard work — the cost
        // curve is batched, so summing before costing matches the serial
        // single-poll charge exactly.
        if charge && engine_total > 0 {
            let cycles = self.cost.switch_cost(engine_total, self.cfg.batch_size);
            self.pools.charge_up_to(PoolMember::Engine, cycles as u64);
        }
        let mut work = resident_work;
        for remote in self.remotes.values_mut() {
            work += Pollable::poll(&mut remote.stack, now_ns);
        }
        work + Pollable::poll(&mut self.switch, now_ns)
    }

    /// Merge lanes produced by [`NetKernelHost::split_lanes`] back into the
    /// host (engine shards re-absorbed, NSM instances re-inserted, report
    /// edges dropped). Must be called with every outstanding lane before
    /// any control-plane operation touches the host.
    pub fn absorb_lanes(&mut self, lanes: BTreeMap<NsmId, ShareLane>) {
        for (key, lane) in lanes {
            debug_assert_eq!(key, lane.key);
            self.engine.absorb_shard(lane.engine);
            let mut members = lane.members;
            self.nsms.append(&mut members);
            self.lane_rx.remove(&key);
        }
        debug_assert!(self.lane_rx.is_empty(), "a lane was never handed back");
    }

    /// Work done per lane since the last call, from the lanes' barrier
    /// reports — consumed by the executor's weighted lane placement. Lane
    /// keys are stable for a fixed topology, so last step's loads seed this
    /// step's dealing.
    pub fn take_lane_loads(&mut self) -> BTreeMap<NsmId, u64> {
        std::mem::take(&mut self.lane_loads)
    }

    // ---- The operator control plane ------------------------------------------

    /// Close a control epoch if one is due: sample the pools and the engine,
    /// let the control plane decide, and apply its actions. Returns the
    /// number of actions applied (0 off epoch boundaries or without a
    /// control plane).
    fn run_control(&mut self, now_ns: u64) -> usize {
        if self.ctrl.is_none() || now_ns < self.next_epoch_ns {
            return 0;
        }
        let sample = self.sample_epoch(now_ns);
        let t_secs = now_ns as f64 / 1e9;
        self.telemetry
            .engine_utilisation
            .push(t_secs, sample.engine_utilisation);
        for (id, load) in &sample.nsms {
            self.telemetry
                .nsm_utilisation
                .entry(*id)
                .or_default()
                .push(t_secs, load.utilisation);
        }
        let ctrl = self.ctrl.as_mut().expect("checked above");
        self.next_epoch_ns = now_ns + ctrl.policy().epoch_ns;
        let epoch = ctrl.epochs();
        let actions = ctrl.on_epoch(&sample);
        let mut applied = 0;
        for action in actions {
            let ok = match action {
                ControlAction::ScaleUp {
                    target, to_cores, ..
                }
                | ControlAction::ScaleDown {
                    target, to_cores, ..
                } => {
                    let member = match target {
                        ControlTarget::Engine => PoolMember::Engine,
                        ControlTarget::Nsm(id) => PoolMember::Nsm(id),
                    };
                    self.pools.set_cores(member, to_cores)
                }
                ControlAction::Rebalance { vm, to, .. } => self.migrate_vm(vm, to).is_ok(),
            };
            if ok {
                self.control_log.push(ControlEvent {
                    at_ns: now_ns,
                    epoch,
                    action,
                });
                applied += 1;
            }
        }
        self.telemetry
            .actions_per_epoch
            .push(t_secs, applied as f64);
        applied
    }

    /// Assemble the load sample of the epoch ending now: per-member
    /// utilisation from the pool-ledger deltas, per-NSM backpressure from
    /// the engine's stall queues, per-VM throughput from the switch stats.
    fn sample_epoch(&mut self, now_ns: u64) -> EpochSample {
        let engine_utilisation = self.epoch_utilisation(PoolMember::Engine);
        let engine_cores = self
            .pools
            .cores(PoolMember::Engine)
            .unwrap_or(self.cfg.core_engine_cores);
        let nsm_ids: Vec<NsmId> = self.nsms.keys().copied().collect();
        let mut nsms = BTreeMap::new();
        for id in nsm_ids {
            let utilisation = self.epoch_utilisation(PoolMember::Nsm(id));
            let cores = self.pools.cores(PoolMember::Nsm(id)).unwrap_or(0);
            let mut queue_depth = 0u64;
            let mut vm_bytes = BTreeMap::new();
            for vm in self.engine.mapped_vms(id) {
                queue_depth += self.engine.stalled_nqes_of(vm) as u64;
                let total = self
                    .engine
                    .vm_stats(vm)
                    .map(|s| s.bytes_forwarded)
                    .unwrap_or(0);
                let prev = self.epoch_vm_bytes.insert(vm, total).unwrap_or(0);
                vm_bytes.insert(vm, total.saturating_sub(prev));
            }
            nsms.insert(
                id,
                NsmLoad {
                    cores,
                    utilisation,
                    queue_depth,
                    vm_bytes,
                },
            );
        }
        // VMs not mapped to any alive NSM this epoch (their NSM crashed and
        // was not restarted yet) still get their byte snapshot advanced —
        // otherwise the first epoch after recovery attributes several
        // epochs' bytes to one and skews the rebalancer's busiest-first
        // ordering.
        let unsampled: Vec<VmId> = self
            .guests
            .keys()
            .filter(|vm| !nsms.values().any(|l| l.vm_bytes.contains_key(vm)))
            .copied()
            .collect();
        for vm in unsampled {
            let total = self
                .engine
                .vm_stats(vm)
                .map(|s| s.bytes_forwarded)
                .unwrap_or(0);
            self.epoch_vm_bytes.insert(vm, total);
        }
        EpochSample {
            now_ns,
            engine_cores,
            engine_utilisation,
            nsms,
        }
    }

    /// Utilisation of one pool member over the epoch ending now (ledger
    /// delta against the previous boundary).
    fn epoch_utilisation(&mut self, member: PoolMember) -> f64 {
        let Some(ledger) = self.pools.ledger(member) else {
            self.epoch_ledgers.remove(&member);
            return 0.0;
        };
        let prev = self
            .epoch_ledgers
            .insert(member, ledger)
            .unwrap_or_default();
        let offered = ledger.offered.saturating_sub(prev.offered);
        let busy = ledger.busy.saturating_sub(prev.busy);
        if offered == 0 {
            0.0
        } else {
            busy as f64 / offered as f64
        }
    }

    /// Control decisions applied so far, in application order.
    pub fn control_events(&self) -> &[ControlEvent] {
        &self.control_log
    }

    /// Per-epoch control observability: utilisation samples and action
    /// counts as [`TimeSeries`].
    pub fn control_telemetry(&self) -> &ControlTelemetry {
        &self.telemetry
    }

    /// The cycle-accounting pool (current core allocations and ledgers).
    pub fn core_pool(&self) -> &CorePool {
        &self.pools
    }

    /// Cores currently allocated to an NSM (`None` when it is not alive).
    pub fn nsm_cores(&self, nsm: NsmId) -> Option<usize> {
        self.pools.cores(PoolMember::Nsm(nsm))
    }

    /// Cores currently allocated to CoreEngine.
    pub fn engine_cores(&self) -> usize {
        self.pools
            .cores(PoolMember::Engine)
            .unwrap_or(self.cfg.core_engine_cores)
    }

    /// Apply every fault event due at `now_ns`; returns how many applied.
    fn apply_due_faults(&mut self, now_ns: u64) -> usize {
        let mut applied = 0;
        while let Some(action) = self.injector.take_due(now_ns) {
            // Plans are validated at install time; an application that still
            // fails (e.g. a link change for an NSM crashed by an earlier
            // event) is deliberately a no-op rather than a panic.
            let _ = self.apply_fault(action);
            applied += 1;
        }
        applied
    }

    /// Apply due faults and mirror the count into the flight-recorder feed
    /// (the recorder's dump-on-fault trigger and fault timeline ride on
    /// these samples).
    fn record_applied_faults(&mut self, now_ns: u64) -> usize {
        let applied = self.apply_due_faults(now_ns);
        if applied > 0 && self.obs.enabled() {
            self.obs.record_faults(now_ns, applied as u32);
        }
        applied
    }

    /// Sample every VM's cumulative forwarded/delivered NQE counters into
    /// the latency feed. Runs at each step close (the `Control` phase for a
    /// self-stepped host, [`NetKernelHost::end_step`] under a cluster), so
    /// request completions are attributed at step granularity in virtual
    /// time.
    fn obs_sample(&mut self, now_ns: u64) {
        if !self.obs.enabled() {
            return;
        }
        for (vm, _) in self.guests.iter() {
            if let Some(stats) = self.engine.vm_stats(*vm) {
                self.obs
                    .sample_vm(now_ns, *vm, stats.nqes_forwarded, stats.nqes_delivered);
            }
        }
    }

    /// The flight-recorder feed (latency histogram and fault timeline since
    /// the last drain).
    pub fn obs_feed(&self) -> &HostFeed {
        &self.obs
    }

    /// Mutable access to the flight-recorder feed (the cluster drains it at
    /// the round barrier via [`nk_obs::HostFeed::take_hist`]).
    pub fn obs_feed_mut(&mut self) -> &mut HostFeed {
        &mut self.obs
    }

    /// Enable or disable this host's recorder feed. Disabled feeds skip all
    /// sampling work — the recorder-off arm of the overhead experiment.
    pub fn set_obs_enabled(&mut self, on: bool) {
        self.obs.set_enabled(on);
    }

    /// Step repeatedly with a fixed increment.
    pub fn run(&mut self, steps: usize, dt_ns: u64) {
        for _ in 0..steps {
            self.step(dt_ns);
        }
    }

    // ---- Fault injection and live handover ----------------------------------

    /// Install a fault plan to be replayed against virtual time. Events
    /// already in the past apply on the next step. Replaces any previous
    /// plan.
    pub fn install_fault_plan(&mut self, plan: &FaultPlan) -> NkResult<()> {
        plan.validate(&self.cfg)?;
        self.injector = FaultInjector::new(plan);
        Ok(())
    }

    /// Counters of the fault events applied so far.
    pub fn fault_stats(&self) -> FaultStats {
        self.injector.stats()
    }

    /// Fault events installed but not yet applied.
    pub fn pending_faults(&self) -> usize {
        self.injector.pending()
    }

    /// True when an NSM with this id is currently alive.
    pub fn has_nsm(&self, nsm: NsmId) -> bool {
        self.nsms.contains_key(&nsm)
    }

    /// The NSM currently serving a VM's new connections.
    pub fn nsm_of(&self, vm: VmId) -> Option<NsmId> {
        self.engine.nsm_of(vm)
    }

    /// Apply one fault action immediately (the injector calls this; tests
    /// and operators may too).
    pub fn apply_fault(&mut self, action: FaultAction) -> NkResult<usize> {
        match action {
            FaultAction::CrashNsm(nsm) => self.crash_nsm(nsm),
            FaultAction::RestartNsm(nsm) => self.restart_nsm(nsm).map(|()| 0),
            FaultAction::MigrateVm { vm, to } => self.migrate_vm(vm, to).map(|()| 0),
            FaultAction::DegradeLink { nsm, link } => self.degrade_nsm_link(nsm, link).map(|()| 0),
        }
    }

    /// Hard-crash an NSM: the instance (stack state, queues, vNIC) is torn
    /// down, and every connection pinned to it observes
    /// [`NkError::ConnReset`] on its guest socket. Subsequent requests from
    /// VMs still mapped to the crashed NSM fail fast with
    /// [`NkError::NsmUnavailable`] until it is restarted or the VMs are
    /// migrated. Returns the number of connections reset.
    pub fn crash_nsm(&mut self, nsm: NsmId) -> NkResult<usize> {
        let instance = self.nsms.remove(&nsm).ok_or(NkError::NotFound)?;
        if matches!(instance, NsmInstance::Tcp(_)) {
            self.switch.detach(self.nsm_addr(nsm));
        }
        drop(instance);
        self.nsm_ports.remove(&nsm);
        // Warm-migrated addresses adopted by the crashed vNIC die with it.
        let dead: Vec<u32> = self
            .aliases
            .iter()
            .filter(|(_, owner)| **owner == nsm)
            .map(|(addr, _)| *addr)
            .collect();
        for addr in dead {
            self.switch.detach(addr);
            self.aliases.remove(&addr);
        }
        self.pools.remove(PoolMember::Nsm(nsm));
        self.epoch_ledgers.remove(&PoolMember::Nsm(nsm));
        self.engine.crash_nsm(nsm)
    }

    /// Re-provision a crashed NSM from its original configuration: fresh
    /// queues, an empty stack, and a new vNIC at the same address. VMs
    /// currently mapped to it are re-attached so their new connections work
    /// immediately; connections lost in the crash stay lost.
    pub fn restart_nsm(&mut self, nsm: NsmId) -> NkResult<()> {
        if self.nsms.contains_key(&nsm) {
            return Err(NkError::AlreadyRegistered);
        }
        let nsm_cfg = self.cfg.nsm(nsm).ok_or(NkError::NotFound)?.clone();
        let generation = {
            let g = self.generations.entry(nsm).or_insert(0);
            *g += 1;
            *g
        };
        let (mut instance, port) = Self::build_nsm(
            &self.cfg,
            &nsm_cfg,
            generation,
            &mut self.engine,
            &mut self.switch,
        )?;
        if let Some(port) = port {
            self.nsm_ports.insert(nsm, port);
        }
        // Only VMs *currently mapped* to this NSM are re-attached: a VM
        // migrated away before the crash must not be resurrected by the
        // restart (the intra-host migration detaches it; this loop is the
        // other half of that guarantee).
        for vm in self.engine.mapped_vms(nsm) {
            if let Some(region) = self.regions.get(&vm) {
                instance.add_vm(vm, region.clone());
            }
        }
        self.nsms.insert(nsm, instance);
        // The restarted NSM comes back at its configured size with a fresh
        // accounting life; the autoscaler will resize it from load.
        self.pools.register(PoolMember::Nsm(nsm), nsm_cfg.vcpus);
        Ok(())
    }

    /// Live-migrate a VM onto a different NSM ("switch her NSM on the fly",
    /// §3): the target NSM is wired to the VM's hugepage region and new
    /// connections route to it; existing connections stay pinned to
    /// whichever NSM they were opened on.
    ///
    /// The VM is *detached* from its previous NSM unless connections are
    /// still pinned there (those need the region until they drain) — a
    /// migrated-away VM must not linger in the old instance's mappings,
    /// where it would leak the region and survive a later restart.
    pub fn migrate_vm(&mut self, vm: VmId, to: NsmId) -> NkResult<()> {
        if !self.guests.contains_key(&vm) {
            return Err(NkError::NotFound);
        }
        let region = self.regions.get(&vm).ok_or(NkError::NotFound)?.clone();
        let from = self.engine.nsm_of(vm);
        let instance = self.nsms.get_mut(&to).ok_or(NkError::NotFound)?;
        instance.add_vm(vm, region);
        self.engine.remap_vm(vm, to)?;
        if let Some(from) = from.filter(|f| *f != to) {
            if self.engine.pinned_connections(vm, from) == 0 {
                if let Some(old) = self.nsms.get_mut(&from) {
                    old.remove_vm(vm);
                }
            }
        }
        Ok(())
    }

    // ---- Cross-host migration: export / import / drain -----------------------

    /// Begin moving a VM off this host: snapshot its identity for the
    /// destination host and put the local instance into *drain* — it keeps
    /// serving the connections pinned here, and
    /// [`NetKernelHost::retire_vm`] tears it down once
    /// [`NetKernelHost::vm_pinned`] reaches zero.
    pub fn export_vm(&mut self, vm: VmId) -> NkResult<VmExport> {
        let vm_cfg = self.cfg.vm(vm).cloned().ok_or(NkError::NotFound)?;
        if !self.guests.contains_key(&vm) {
            return Err(NkError::NotFound);
        }
        if self.draining.contains_key(&vm) {
            return Err(NkError::AlreadyRegistered);
        }
        let from_nsm = self.engine.nsm_of(vm).ok_or(NkError::NotFound)?;
        self.draining.insert(vm, from_nsm);
        Ok(VmExport {
            vm: vm_cfg,
            from_nsm,
        })
    }

    /// Bring an exported VM up on this host: fresh queue sets, a fresh
    /// hugepage region, and new connections served by `nsm`. The paper's
    /// "switch her NSM on the fly" across the host boundary — connections
    /// pinned on the source host are *not* transplanted; they drain there.
    pub fn import_vm(&mut self, export: &VmExport, nsm: NsmId) -> NkResult<()> {
        let vm_cfg = &export.vm;
        if self.guests.contains_key(&vm_cfg.id) {
            return Err(NkError::AlreadyRegistered);
        }
        if !self.nsms.contains_key(&nsm) {
            return Err(NkError::NotFound);
        }
        let mut guest_ends = Vec::new();
        let mut engine_ends = Vec::new();
        for _ in 0..vm_cfg.vcpus {
            let (req, resp) = queue_set_pair(self.cfg.queue_capacity);
            guest_ends.push(req);
            engine_ends.push(resp);
        }
        let wake = WakeState::new();
        let region = HugepageRegion::new(self.cfg.hugepages_per_pair);
        self.engine.register_vm(
            vm_cfg.id,
            engine_ends,
            wake.clone(),
            vm_cfg.tenant,
            vm_cfg.rate_limit_gbps,
            Some(region.clone()),
            self.now_ns,
        )?;
        if let Err(e) = self.engine.map_vm(vm_cfg.id, nsm) {
            // Unwind: a failed import must leave no registered-but-guestless
            // VM in the engine (a retry would then trip over the residue).
            let _ = self.engine.deregister_vm(vm_cfg.id);
            return Err(e);
        }
        self.nsms
            .get_mut(&nsm)
            .expect("presence checked above")
            .add_vm(vm_cfg.id, region.clone());
        let device = NkDevice::new(guest_ends, wake);
        self.guests
            .insert(vm_cfg.id, GuestLib::new(vm_cfg.id, device, region.clone()));
        self.regions.insert(vm_cfg.id, region);
        // A cancelled-then-retried import must not duplicate the VM's
        // configuration entry.
        if !self.cfg.vms.iter().any(|v| v.id == vm_cfg.id) {
            self.cfg.vms.push(vm_cfg.clone());
        }
        // A share previously retired to zero cores revives when a tenant
        // arrives: restore the NSM's configured allocation so the placer
        // and autoscaler see real utilisation again instead of a
        // permanently idle-looking zero-budget pool.
        if self.pools.cores(PoolMember::Nsm(nsm)) == Some(0) {
            let vcpus = self.cfg.nsm(nsm).map(|n| n.vcpus).unwrap_or(1);
            self.pools.set_cores(PoolMember::Nsm(nsm), vcpus);
        }
        Ok(())
    }

    /// True when the VM currently has an instance on this host — resident
    /// or still draining off it.
    pub fn has_vm(&self, vm: VmId) -> bool {
        self.guests.contains_key(&vm)
    }

    /// Abort an export whose import failed on the destination (or a warm
    /// migration still inside its freeze window): the VM leaves drain,
    /// thaws, and keeps running here as if the migration had never been
    /// attempted. Returns whether a drain or freeze was actually cancelled.
    pub fn cancel_export(&mut self, vm: VmId) -> bool {
        let frozen = self.engine.is_frozen(vm);
        self.thaw_vm(vm);
        self.draining.remove(&vm).is_some() || frozen
    }

    /// Connections a VM still has pinned on this host — the drain counter a
    /// cross-host migration watches.
    pub fn vm_pinned(&self, vm: VmId) -> usize {
        self.engine.pinned_connections_of(vm)
    }

    /// Connections pinned to `nsm` from any VM on this host.
    pub fn nsm_pinned(&self, nsm: NsmId) -> usize {
        self.engine.pinned_connections_for_nsm(nsm)
    }

    /// VMs currently draining off this host, with the NSM share each is
    /// draining from, in id order.
    pub fn draining_vms(&self) -> Vec<(VmId, NsmId)> {
        self.draining.iter().map(|(v, n)| (*v, *n)).collect()
    }

    /// Tear down a fully drained VM: its queues, GuestLib, hugepage region
    /// and configuration entry all go. Refused while connections are still
    /// pinned — draining means *waiting*, not resetting.
    pub fn retire_vm(&mut self, vm: VmId) -> NkResult<()> {
        if !self.guests.contains_key(&vm) {
            return Err(NkError::NotFound);
        }
        if self.vm_pinned(vm) > 0 {
            return Err(NkError::InvalidState);
        }
        self.engine.deregister_vm(vm)?;
        self.guests.remove(&vm);
        self.regions.remove(&vm);
        self.draining.remove(&vm);
        self.epoch_vm_bytes.remove(&vm);
        // Every NSM instance that was ever wired to the VM drops its region
        // mapping — a retired VM must not leak its hugepages into a share
        // that no longer serves it.
        for instance in self.nsms.values_mut() {
            instance.remove_vm(vm);
        }
        self.cfg.vms.retain(|v| v.id != vm);
        // Adopted warm-migration addresses whose owning stack no longer
        // serves any connection on them are dropped: a stale alias would
        // shadow a later adoption of the same address by a different NSM.
        let stale: Vec<u32> = self
            .aliases
            .iter()
            .filter(|(addr, owner)| match self.nsms.get(owner) {
                Some(NsmInstance::Tcp(n)) => !n.stack().serves_ip(**addr),
                _ => true,
            })
            .map(|(addr, _)| *addr)
            .collect();
        for addr in stale {
            self.switch.detach(addr);
            self.aliases.remove(&addr);
        }
        Ok(())
    }

    /// Scale a fully drained NSM's core share to zero (the ROADMAP's
    /// scale-to-zero of drained NSMs): fires only when no VM maps to it and
    /// no connection is pinned to it. The NSM instance stays alive at zero
    /// cores; a later [`NetKernelHost::import_vm`] onto it restores its
    /// configured allocation, and hosts running their own control plane can
    /// also revive it through backpressure-driven scale-up. Returns whether
    /// the share was retired now.
    pub fn retire_nsm_if_drained(&mut self, nsm: NsmId) -> bool {
        if !self.nsms.contains_key(&nsm)
            || !self.engine.mapped_vms(nsm).is_empty()
            || self.engine.pinned_connections_for_nsm(nsm) > 0
            || self.pools.cores(PoolMember::Nsm(nsm)) == Some(0)
        {
            return false;
        }
        self.pools.set_cores(PoolMember::Nsm(nsm), 0)
    }

    /// Undo a [`NetKernelHost::retire_nsm_if_drained`]: restore the NSM's
    /// configured core allocation. The revert half of an evacuation plan's
    /// scale-to-zero tail — a rolled-back plan must leave the share exactly
    /// as it found it. Returns whether a zero-core share was revived.
    pub fn revive_nsm_share(&mut self, nsm: NsmId) -> bool {
        if !self.nsms.contains_key(&nsm) || self.pools.cores(PoolMember::Nsm(nsm)) != Some(0) {
            return false;
        }
        let vcpus = self.cfg.nsm(nsm).map(|n| n.vcpus).unwrap_or(1);
        self.pools.set_cores(PoolMember::Nsm(nsm), vcpus)
    }

    /// Arm the warm-import fault: the next `n` calls to
    /// [`NetKernelHost::import_vm_warm`] refuse with
    /// [`NkError::NsmUnavailable`] before touching any state — the
    /// destination behaving as if its share vanished at the worst moment.
    /// Rollback paths (single warm migration and whole-plan evacuation) are
    /// tested through this surface.
    pub fn inject_import_failures(&mut self, n: u32) {
        self.import_fail_budget = n;
    }

    // ---- Warm cross-host migration: freeze / export / install ---------------

    /// Open a warm-migration freeze window on a VM: CoreEngine stops
    /// popping its fresh requests while in-flight work (stalled NQEs,
    /// responses, frames on the wire) keeps draining through
    /// [`NetKernelHost::begin_step`] / [`NetKernelHost::poll_round`]. A few
    /// quiesced steps later the VM's pipeline is snapshot-consistent.
    pub fn freeze_vm(&mut self, vm: VmId) -> NkResult<()> {
        if !self.guests.contains_key(&vm) {
            return Err(NkError::NotFound);
        }
        self.engine.set_frozen(vm, true);
        Ok(())
    }

    /// Close a freeze window without migrating: the VM resumes serving
    /// exactly as before.
    pub fn thaw_vm(&mut self, vm: VmId) {
        self.engine.set_frozen(vm, false);
    }

    /// True while the VM sits inside a freeze window.
    pub fn vm_frozen(&self, vm: VmId) -> bool {
        self.engine.is_frozen(vm)
    }

    /// True when none of the VM's pinned connections has bytes in flight
    /// (everything transmitted is acknowledged) and no request NQEs are
    /// parked in its stall queues — the condition under which a warm export
    /// is a clean cut. The freeze window polls this between steps.
    pub fn vm_wire_quiet(&self, vm: VmId) -> bool {
        if self.engine.stalled_nqes_of(vm) > 0 {
            return false;
        }
        self.engine.vm_entries(vm).iter().all(|(_, entry)| {
            match (entry.nsm_socket, self.nsms.get(&entry.nsm)) {
                (Some(sock), Some(NsmInstance::Tcp(n))) => n.stack().conn_quiet(sock),
                // Handshake still completing at the NQE level, or a
                // non-TCP share: not a clean cut yet.
                (None, _) => false,
                _ => true,
            }
        })
    }

    /// True when `nsm` currently holds per-VM state for `vm` (region
    /// mapping or sockets). Exposed for migration-hygiene assertions.
    pub fn nsm_serves_vm(&self, nsm: NsmId, vm: VmId) -> bool {
        self.nsms.get(&nsm).is_some_and(|i| i.has_vm(vm))
    }

    /// Foreign addresses currently aliased onto local vNICs for
    /// warm-migrated connections, in address order.
    pub fn warm_aliases(&self) -> Vec<(u32, NsmId)> {
        self.aliases.iter().map(|(a, n)| (*a, *n)).collect()
    }

    /// Export a VM *with* the live state of its pinned connections — the
    /// warm half of "switch her NSM on the fly" across hosts. Every
    /// connection's TCP machine, ServiceLib translation context and guest
    /// socket are snapshotted and torn out; the VM instance then retires
    /// immediately (nothing is left to drain). Call inside a freeze window
    /// after [`NetKernelHost::vm_wire_quiet`] reports a clean cut.
    ///
    /// Pre-validates before touching anything: all pinned connections must
    /// sit on the VM's current (TCP-stack) NSM with their NSM-side sockets
    /// known, and the guest sockets must be in a transplantable state —
    /// otherwise the export refuses with [`NkError::InvalidState`] and the
    /// VM keeps serving untouched.
    pub fn export_vm_warm(&mut self, vm: VmId) -> NkResult<VmWarmExport> {
        let vm_cfg = self.cfg.vm(vm).cloned().ok_or(NkError::NotFound)?;
        if !self.guests.contains_key(&vm) {
            return Err(NkError::NotFound);
        }
        if self.draining.contains_key(&vm) {
            return Err(NkError::AlreadyRegistered);
        }
        let from_nsm = self.engine.nsm_of(vm).ok_or(NkError::NotFound)?;
        // Fold any completions still parked in the VM's NK-device queues
        // (DataReceived payloads, send credits, a reaped CloseComplete the
        // application has not polled for) into GuestLib state *before*
        // validating — the queues are dropped with the instance, payload
        // announced but not absorbed would be lost in the handover, and the
        // guest-socket states checked below must be the settled ones.
        self.guests
            .get_mut(&vm)
            .expect("presence checked above")
            .drive();
        let entries = self.engine.vm_entries(vm);
        // Pre-validation pass over every layer the destructive phase will
        // touch: nothing is torn out until the whole export is known to
        // succeed, so a refusal leaves the VM serving untouched.
        if !matches!(self.nsms.get(&from_nsm), Some(NsmInstance::Tcp(_))) {
            return Err(NkError::InvalidState);
        }
        for (key, entry) in &entries {
            if entry.nsm != from_nsm || entry.nsm_socket.is_none() {
                return Err(NkError::InvalidState);
            }
            let Some(NsmInstance::Tcp(n)) = self.nsms.get(&entry.nsm) else {
                return Err(NkError::InvalidState);
            };
            // The stack connection must be post-handshake; an embryonic or
            // dying connection refuses to snapshot, so refuse the whole
            // export before anything is torn out.
            if !n
                .stack()
                .conn_transplantable(entry.nsm_socket.expect("checked above"))
            {
                return Err(NkError::InvalidState);
            }
            // The guest socket must be transplantable too — a socket the
            // application is closing (Close NQE parked by the freeze) would
            // fail export_socket *after* the NSM state was torn out.
            let guest = self.guests.get(&vm).expect("checked above");
            if !guest.socket_transplantable(key.socket) {
                return Err(NkError::InvalidState);
            }
        }
        // Destructive phase — every step below succeeds by construction of
        // the checks above.
        let mut conns = Vec::new();
        for (key, _entry) in self.engine.extract_vm_entries(vm) {
            let Some(NsmInstance::Tcp(n)) = self.nsms.get_mut(&from_nsm) else {
                unreachable!("validated above");
            };
            let (tcp, pending_send, rx_outstanding) = n.export_conn(vm, key.socket)?;
            let guest = self
                .guests
                .get_mut(&vm)
                .expect("presence checked above")
                .export_socket(key.socket)?;
            conns.push(ConnSnapshot {
                guest_sock: key.socket,
                vm_queue_set: key.queue_set,
                tcp,
                pending_send,
                rx_outstanding,
                guest,
            });
        }
        // Nothing is pinned any more: the instance retires in place, and
        // the freeze window closes with it.
        self.retire_vm(vm).expect("extracted VM has nothing pinned");
        Ok(VmWarmExport {
            base: VmExport {
                vm: vm_cfg,
                from_nsm,
            },
            from_host: self.cfg.host_id,
            conns,
        })
    }

    /// Bring a warm-exported VM up on this host: the identity import of
    /// [`NetKernelHost::import_vm`] plus the installation of every
    /// transplanted connection — TCP state into `nsm`'s stack, translation
    /// context into its ServiceLib, tuples into the CoreEngine table, and
    /// the guest sockets (with their unread payload) into the fresh
    /// GuestLib. Each connection's original address is aliased onto the
    /// destination vNIC so rerouted frames land in the adopted stack.
    pub fn import_vm_warm(&mut self, export: &VmWarmExport, nsm: NsmId) -> NkResult<()> {
        let vm = export.vm_id();
        if self.import_fail_budget > 0 {
            self.import_fail_budget -= 1;
            return Err(NkError::NsmUnavailable);
        }
        if !matches!(self.nsms.get(&nsm), Some(NsmInstance::Tcp(_))) {
            return Err(NkError::NotFound);
        }
        // A transplanted address may be adopted as an alias only when it is
        // not the home vNIC address of a *different* alive local NSM —
        // aliasing over it would hijack that NSM's traffic. (A VM returning
        // to its origin host must land on the NSM whose address its
        // connections carry, or travel drained.)
        for ip in export.rerouted_ips() {
            let conflict = ip != self.nsm_addr(nsm)
                && self.cfg.nsms.iter().any(|n| {
                    n.id != nsm && self.nsms.contains_key(&n.id) && self.nsm_addr(n.id) == ip
                });
            if conflict {
                return Err(NkError::InvalidState);
            }
        }
        self.import_vm(&export.base, nsm)?;
        let mut installed: Vec<SocketId> = Vec::new();
        let mut added_aliases: Vec<u32> = Vec::new();
        let mut result = Ok(());
        for conn in &export.conns {
            let key = nk_types::ConnKey::vm(vm, conn.vm_queue_set, conn.guest_sock);
            // The engine pins the tuple with the same queue-set hash a
            // fresh connection would get; ServiceLib's proactive events
            // must ride that same set, so it is resolved first.
            let nsm_qs = match self.engine.nsm_queue_set_for(&key, nsm) {
                Ok(qs) => qs,
                Err(e) => {
                    result = Err(e);
                    break;
                }
            };
            let Some(NsmInstance::Tcp(n)) = self.nsms.get_mut(&nsm) else {
                unreachable!("validated above");
            };
            let stack_sock = match n.install_conn(vm, conn, nsm_qs.raw() as usize) {
                Ok(sock) => sock,
                Err(e) => {
                    result = Err(e);
                    break;
                }
            };
            installed.push(conn.guest_sock);
            let step = self
                .engine
                .install_entry(key, nsm, stack_sock)
                .map(|pinned_qs| {
                    debug_assert_eq!(pinned_qs, nsm_qs, "hash must agree across layers");
                })
                .and_then(|()| {
                    self.guests
                        .get_mut(&vm)
                        .expect("imported above")
                        .install_socket(&conn.guest)
                });
            if let Err(e) = step {
                result = Err(e);
                break;
            }
            let ip = conn.tcp.local.ip;
            if ip != self.nsm_addr(nsm) && self.aliases.get(&ip) != Some(&nsm) {
                // Attach — or re-point a stale mapping left by an earlier
                // warm hop — onto this NSM's vNIC port.
                let port = self
                    .nsm_ports
                    .get(&nsm)
                    .expect("TCP NSM has a vNIC port")
                    .clone();
                let rate = self
                    .cfg
                    .nsm(nsm)
                    .map(|n| n.nic_rate_gbps)
                    .unwrap_or(nk_types::constants::LINE_RATE_GBPS);
                self.switch
                    .attach_alias(ip, port, LinkConfig::ideal().with_rate_gbps(rate));
                self.aliases.insert(ip, nsm);
                added_aliases.push(ip);
            }
        }
        if let Err(e) = result {
            // Unwind the partial import so the caller can re-install the
            // export elsewhere: tuples unpin, installed connections leave
            // the stack *silently* (export, not close — no FIN may reach
            // the peer of a connection that lives on at the source),
            // adopted aliases detach, and the identity import retires.
            self.engine.extract_vm_entries(vm);
            for guest_sock in installed {
                if let Some(NsmInstance::Tcp(n)) = self.nsms.get_mut(&nsm) {
                    let _ = n.export_conn(vm, guest_sock);
                }
            }
            for ip in added_aliases {
                self.switch.detach(ip);
                self.aliases.remove(&ip);
            }
            self.retire_vm(vm).expect("unpinned partial import retires");
            return Err(e);
        }
        Ok(())
    }

    /// Reconfigure the egress link towards an NSM's vNIC mid-flight (rate,
    /// loss, latency, reordering). Frames already in flight keep their
    /// original delivery schedule.
    pub fn degrade_nsm_link(&mut self, nsm: NsmId, fault: LinkFault) -> NkResult<()> {
        let nsm_cfg = self.cfg.nsm(nsm).ok_or(NkError::NotFound)?;
        let config = LinkConfig {
            // A fault with no explicit cap falls back to the vNIC's
            // configured line rate — restoring a degraded link must never
            // leave it faster than it was provisioned.
            rate_gbps: Some(fault.rate_gbps.unwrap_or(nsm_cfg.nic_rate_gbps)),
            latency_us: fault.latency_us,
            loss: fault.loss,
            reorder: fault.reorder,
            ..LinkConfig::default()
        };
        if self
            .switch
            .set_link_config(self.nsm_addr(nsm), config, self.now_ns)
        {
            Ok(())
        } else {
            Err(NkError::NotFound)
        }
    }
}

/// The baseline architecture: the network stack runs inside the guest and is
/// exposed through the same [`SocketApi`] as GuestLib, so identical
/// application code runs against either (paper §7.1 "Baseline").
pub struct BaselineVm {
    stack: TcpStack,
    /// Ordered so `epoll_wait` reports events deterministically.
    interest: BTreeMap<SocketId, PollEvents>,
    now_ns: u64,
}

impl BaselineVm {
    /// Create a baseline VM attached to `switch` at address `ip`.
    pub fn new(ip: u32, switch: &mut VirtualSwitch<Segment>) -> Self {
        let port = switch.attach(ip);
        BaselineVm {
            stack: TcpStack::new(StackConfig::new(ip), port),
            interest: BTreeMap::new(),
            now_ns: 0,
        }
    }

    /// Create a baseline VM with an explicit congestion-control algorithm.
    pub fn with_cc(ip: u32, switch: &mut VirtualSwitch<Segment>, cc: CcAlgorithm) -> Self {
        let port = switch.attach(ip);
        BaselineVm {
            stack: TcpStack::new(StackConfig::new(ip).with_cc(cc), port),
            interest: BTreeMap::new(),
            now_ns: 0,
        }
    }

    /// Advance the in-guest stack to `now_ns` and run its protocol work.
    pub fn step(&mut self, now_ns: u64) -> usize {
        self.now_ns = now_ns;
        self.stack.tick(now_ns)
    }

    /// Direct access to the in-guest stack.
    pub fn stack_mut(&mut self) -> &mut TcpStack {
        &mut self.stack
    }
}

impl Pollable for BaselineVm {
    fn poll(&mut self, now_ns: u64) -> usize {
        self.step(now_ns)
    }
}

impl SocketApi for BaselineVm {
    fn socket(&mut self) -> NkResult<SocketId> {
        Ok(self.stack.socket())
    }

    fn bind(&mut self, sock: SocketId, addr: SockAddr) -> NkResult<()> {
        self.stack.bind(sock, addr)
    }

    fn listen(&mut self, sock: SocketId, backlog: u32) -> NkResult<()> {
        self.stack.listen(sock, backlog)
    }

    fn accept(&mut self, sock: SocketId) -> NkResult<(SocketId, SockAddr)> {
        self.stack.accept(sock)
    }

    fn connect(&mut self, sock: SocketId, addr: SockAddr) -> NkResult<()> {
        self.stack.connect(sock, addr, self.now_ns)
    }

    fn send(&mut self, sock: SocketId, data: &[u8]) -> NkResult<usize> {
        self.stack.send(sock, data)
    }

    fn recv(&mut self, sock: SocketId, buf: &mut [u8]) -> NkResult<usize> {
        self.stack.recv(sock, buf)
    }

    fn set_sockopt(&mut self, sock: SocketId, opt: u32, value: u32) -> NkResult<()> {
        self.stack.set_sockopt(sock, opt, value)
    }

    fn shutdown(&mut self, sock: SocketId, how: ShutdownHow) -> NkResult<()> {
        self.stack.shutdown(sock, how)
    }

    fn close(&mut self, sock: SocketId) -> NkResult<()> {
        self.stack.close(sock)
    }

    fn epoll_register(&mut self, sock: SocketId, interest: PollEvents) -> NkResult<()> {
        self.interest.insert(sock, interest);
        Ok(())
    }

    fn epoll_unregister(&mut self, sock: SocketId) -> NkResult<()> {
        self.interest.remove(&sock);
        Ok(())
    }

    fn epoll_wait(&mut self, max_events: usize) -> Vec<EpollEvent> {
        let mut out = Vec::new();
        for (sock, interest) in &self.interest {
            if out.len() >= max_events {
                break;
            }
            let ready = self.stack.poll(*sock);
            let masked =
                PollEvents(ready.0 & (interest.0 | PollEvents::HUP.0 | PollEvents::ERROR.0));
            if !masked.is_empty() {
                out.push(EpollEvent {
                    socket: *sock,
                    events: masked,
                });
            }
        }
        out
    }

    fn poll(&mut self, sock: SocketId) -> PollEvents {
        self.stack.poll(sock)
    }

    fn drive(&mut self) -> usize {
        self.stack.tick(self.now_ns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nk_types::{NsmConfig, VmConfig, VmToNsmPolicy};

    const REMOTE_IP: u32 = 0x0A00_0100;

    fn one_vm_host(stack: StackKind) -> NetKernelHost {
        let nsm = match stack {
            StackKind::Mtcp => NsmConfig::mtcp(NsmId(1)),
            StackKind::SharedMem => NsmConfig::shared_mem(NsmId(1)),
            StackKind::FairShare => NsmConfig::fair_share(NsmId(1)),
            StackKind::Kernel => NsmConfig::kernel(NsmId(1)),
        };
        let cfg = HostConfig::new()
            .with_vm(VmConfig::new(VmId(1)))
            .with_nsm(nsm)
            .with_mapping(VmToNsmPolicy::All(NsmId(1)));
        NetKernelHost::new(cfg).unwrap()
    }

    /// End-to-end: a guest application talks through GuestLib → CoreEngine →
    /// kernel-stack NSM → virtual switch → a remote echo server, and back.
    #[test]
    fn guest_reaches_remote_server_through_nsm() {
        let mut host = one_vm_host(StackKind::Kernel);
        // Remote server listening on port 7.
        let remote = host.add_remote(REMOTE_IP);
        let ls = remote.socket();
        remote.bind(ls, SockAddr::new(0, 7)).unwrap();
        remote.listen(ls, 16).unwrap();

        // Guest connects and sends a request.
        let guest = host.guest_mut(VmId(1)).unwrap();
        let s = guest.socket().unwrap();
        guest.connect(s, SockAddr::new(REMOTE_IP, 7)).unwrap();
        host.run(20, 100_000);

        let guest = host.guest_mut(VmId(1)).unwrap();
        assert!(guest.poll(s).writable(), "connect did not complete");
        assert_eq!(guest.send(s, b"hello from the vm").unwrap(), 17);
        host.run(20, 100_000);

        // The remote sees the data and answers.
        let remote = host.remote_mut(REMOTE_IP).unwrap();
        let (conn, _) = remote.accept(ls).unwrap();
        let mut buf = [0u8; 64];
        let n = remote.recv(conn, &mut buf).unwrap();
        assert_eq!(&buf[..n], b"hello from the vm");
        remote.send(conn, b"hello from outside").unwrap();
        host.run(20, 100_000);

        let guest = host.guest_mut(VmId(1)).unwrap();
        let mut buf = [0u8; 64];
        let n = guest.recv(s, &mut buf).unwrap();
        assert_eq!(&buf[..n], b"hello from outside");
        assert!(host.engine_stats().nqes_switched > 0);
        assert!(host.nsm_service_stats(NsmId(1)).unwrap().bytes_tx >= 17);
    }

    /// Two VMs multiplexed onto the same NSM (use case 1): both make
    /// independent connections through one stack.
    #[test]
    fn two_vms_share_one_nsm() {
        let cfg = HostConfig::new()
            .with_vm(VmConfig::new(VmId(1)))
            .with_vm(VmConfig::new(VmId(2)))
            .with_nsm(NsmConfig::kernel(NsmId(1)).with_vcpus(2))
            .with_mapping(VmToNsmPolicy::All(NsmId(1)));
        let mut host = NetKernelHost::new(cfg).unwrap();
        let remote = host.add_remote(REMOTE_IP);
        let ls = remote.socket();
        remote.bind(ls, SockAddr::new(0, 80)).unwrap();
        remote.listen(ls, 64).unwrap();

        for vm in [VmId(1), VmId(2)] {
            let guest = host.guest_mut(vm).unwrap();
            let s = guest.socket().unwrap();
            guest.connect(s, SockAddr::new(REMOTE_IP, 80)).unwrap();
        }
        host.run(30, 100_000);
        let remote = host.remote_mut(REMOTE_IP).unwrap();
        let mut accepted = 0;
        while remote.accept(ls).is_ok() {
            accepted += 1;
        }
        assert_eq!(accepted, 2, "both VMs' connections reach the shared NSM");
    }

    /// Colocated VMs of the same tenant exchange data through the
    /// shared-memory NSM without any TCP processing (use case 4).
    #[test]
    fn shared_memory_nsm_connects_colocated_vms() {
        let cfg = HostConfig::new()
            .with_vm(VmConfig::new(VmId(1)).with_tenant(7))
            .with_vm(VmConfig::new(VmId(2)).with_tenant(7))
            .with_nsm(NsmConfig::shared_mem(NsmId(1)))
            .with_mapping(VmToNsmPolicy::All(NsmId(1)));
        let mut host = NetKernelHost::new(cfg).unwrap();

        // VM1 listens (via the shared-memory NSM's internal rendezvous).
        let g1 = host.guest_mut(VmId(1)).unwrap();
        let ls = g1.socket().unwrap();
        g1.bind(ls, SockAddr::new(0, 9000)).unwrap();
        g1.listen(ls, 8).unwrap();
        host.run(5, 100_000);

        // VM2 connects and sends.
        let g2 = host.guest_mut(VmId(2)).unwrap();
        let cs = g2.socket().unwrap();
        g2.connect(cs, SockAddr::new(0, 9000)).unwrap();
        host.run(5, 100_000);
        let g2 = host.guest_mut(VmId(2)).unwrap();
        assert!(g2.poll(cs).writable());
        g2.send(cs, b"colocated traffic").unwrap();
        host.run(5, 100_000);

        let g1 = host.guest_mut(VmId(1)).unwrap();
        let (conn, _) = g1.accept(ls).unwrap();
        let mut buf = [0u8; 64];
        let n = g1.recv(conn, &mut buf).unwrap();
        assert_eq!(&buf[..n], b"colocated traffic");
        assert_eq!(host.shm_stats(NsmId(1)).unwrap().pairs, 1);
    }

    /// Driving a split host — lanes polled to quiescence, hub at each round
    /// barrier — is byte-identical to the serial cluster-facing protocol:
    /// same round count, same stats, same bytes on the wire. This is the
    /// host-level commutation property intra-host sharding rests on.
    #[test]
    fn lane_decomposition_matches_serial_poll_protocol() {
        let rig = || {
            let cfg = HostConfig::new()
                .with_vm(VmConfig::new(VmId(1)))
                .with_vm(VmConfig::new(VmId(2)))
                .with_nsm(NsmConfig::kernel(NsmId(1)))
                .with_nsm(NsmConfig::kernel(NsmId(2)))
                .with_mapping(VmToNsmPolicy::Static(vec![
                    (VmId(1), NsmId(1)),
                    (VmId(2), NsmId(2)),
                ]));
            let mut host = NetKernelHost::new(cfg).unwrap();
            host.enable_pool_accounting(Some(2_000_000_000));
            let remote = host.add_remote(REMOTE_IP);
            let ls = remote.socket();
            remote.bind(ls, SockAddr::new(0, 7)).unwrap();
            remote.listen(ls, 16).unwrap();
            let mut socks = Vec::new();
            for vm in [VmId(1), VmId(2)] {
                let guest = host.guest_mut(vm).unwrap();
                let s = guest.socket().unwrap();
                guest.connect(s, SockAddr::new(REMOTE_IP, 7)).unwrap();
                socks.push((vm, s));
            }
            (host, ls, socks)
        };
        let (mut serial, ls_a, socks_a) = rig();
        let (mut laned, ls_b, socks_b) = rig();

        let mut rounds_a = Vec::new();
        let mut rounds_b = Vec::new();
        for step in 0..24 {
            // Both hosts get the same guest-side pushes between steps.
            if step == 8 {
                for (host, socks) in [(&mut serial, &socks_a), (&mut laned, &socks_b)] {
                    for (vm, s) in socks {
                        let guest = host.guest_mut(*vm).unwrap();
                        assert!(guest.poll(*s).writable(), "connect incomplete");
                        guest.send(*s, b"lane equivalence payload").unwrap();
                    }
                }
            }
            serial.begin_step(100_000);
            let mut rounds = 0;
            loop {
                rounds += 1;
                if serial.poll_round() == 0 {
                    break;
                }
            }
            serial.end_step();
            rounds_a.push(rounds);

            laned.begin_step(100_000);
            let mut lanes = laned.split_lanes();
            assert_eq!(lanes.len(), 2, "disjoint shares must form two lanes");
            let mut rounds = 0;
            loop {
                rounds += 1;
                let mut work = 0;
                // Reverse key order on purpose: lane order must not matter.
                for lane in lanes.values_mut().rev() {
                    work += lane.poll_round(laned.now_ns());
                }
                work += laned.hub_round(laned.now_ns());
                if work == 0 {
                    break;
                }
            }
            laned.absorb_lanes(lanes);
            laned.end_step();
            rounds_b.push(rounds);
        }
        assert_eq!(rounds_a, rounds_b, "round counts diverged");
        assert_eq!(serial.engine_stats(), laned.engine_stats());
        for nsm in [NsmId(1), NsmId(2)] {
            assert_eq!(
                serial.nsm_service_stats(nsm),
                laned.nsm_service_stats(nsm),
                "nsm {nsm:?} stats diverged"
            );
        }
        for vm in [VmId(1), VmId(2)] {
            assert_eq!(serial.vm_switch_stats(vm), laned.vm_switch_stats(vm));
        }
        let loads = laned.take_lane_loads();
        assert!(loads.values().all(|w| *w > 0), "lanes reported no load");

        // The payloads crossed identically.
        for (host, ls) in [(&mut serial, ls_a), (&mut laned, ls_b)] {
            let remote = host.remote_mut(REMOTE_IP).unwrap();
            let mut total = 0;
            while let Ok((conn, _)) = remote.accept(ls) {
                let mut buf = [0u8; 256];
                while let Ok(n) = remote.recv(conn, &mut buf) {
                    if n == 0 {
                        break;
                    }
                    total += n;
                }
            }
            assert_eq!(total, 2 * b"lane equivalence payload".len());
        }
    }

    /// A VM pinned to two NSM shares (its mapping moved after connections
    /// were established) fuses both shares into one lane — the split never
    /// severs a live edge.
    #[test]
    fn split_lanes_fuses_shares_linked_by_one_vm() {
        let cfg = HostConfig::new()
            .with_vm(VmConfig::new(VmId(1)))
            .with_vm(VmConfig::new(VmId(2)))
            .with_nsm(NsmConfig::kernel(NsmId(1)))
            .with_nsm(NsmConfig::kernel(NsmId(2)))
            .with_nsm(NsmConfig::kernel(NsmId(3)))
            .with_mapping(VmToNsmPolicy::Static(vec![
                (VmId(1), NsmId(1)),
                (VmId(2), NsmId(3)),
            ]));
        let mut host = NetKernelHost::new(cfg).unwrap();
        let remote = host.add_remote(REMOTE_IP);
        let ls = remote.socket();
        remote.bind(ls, SockAddr::new(0, 7)).unwrap();
        remote.listen(ls, 16).unwrap();
        let guest = host.guest_mut(VmId(1)).unwrap();
        let s = guest.socket().unwrap();
        guest.connect(s, SockAddr::new(REMOTE_IP, 7)).unwrap();
        host.run(20, 100_000);

        // VM 1 keeps its pinned connection on NSM 1 but new connections go
        // to NSM 2: both shares now share VM 1's state.
        host.migrate_vm(VmId(1), NsmId(2)).unwrap();
        let lanes = host.split_lanes();
        let keys: Vec<NsmId> = lanes.keys().copied().collect();
        assert_eq!(keys, vec![NsmId(1), NsmId(3)], "NSM 1+2 must fuse");
        assert_eq!(lanes[&NsmId(1)].key(), NsmId(1));
        host.absorb_lanes(lanes);

        // The host is whole again: the pinned connection still drains.
        let guest = host.guest_mut(VmId(1)).unwrap();
        assert!(guest.poll(s).writable());
        guest.send(s, b"post-absorb").unwrap();
        host.run(20, 100_000);
        let remote = host.remote_mut(REMOTE_IP).unwrap();
        let (conn, _) = remote.accept(ls).unwrap();
        let mut buf = [0u8; 64];
        let n = remote.recv(conn, &mut buf).unwrap();
        assert_eq!(&buf[..n], b"post-absorb");
    }

    /// The same application code runs against the baseline in-guest stack.
    #[test]
    fn baseline_vm_runs_the_same_application_code() {
        let mut switch = VirtualSwitch::new();
        let mut client = BaselineVm::new(1, &mut switch);
        let mut server = BaselineVm::new(2, &mut switch);

        let ls = server.socket().unwrap();
        server.bind(ls, SockAddr::new(0, 80)).unwrap();
        server.listen(ls, 8).unwrap();

        let cs = client.socket().unwrap();
        client.connect(cs, SockAddr::new(2, 80)).unwrap();
        for i in 1..20u64 {
            let now = i * 100_000;
            client.step(now);
            server.step(now);
            switch.step(now);
        }
        client.send(cs, b"same code as netkernel").unwrap();
        for i in 20..40u64 {
            let now = i * 100_000;
            client.step(now);
            server.step(now);
            switch.step(now);
        }
        let (conn, _) = server.accept(ls).unwrap();
        let mut buf = [0u8; 64];
        let n = server.recv(conn, &mut buf).unwrap();
        assert_eq!(&buf[..n], b"same code as netkernel");
    }

    #[test]
    fn invalid_config_is_rejected() {
        let cfg = HostConfig::new().with_vm(VmConfig::new(VmId(1)).with_vcpus(0));
        assert!(NetKernelHost::new(cfg).is_err());
    }

    /// A deep backlog of requests drains within a single host step: the
    /// scheduler keeps polling until the datapath is quiescent instead of
    /// sweeping a fixed number of passes.
    #[test]
    fn deep_queue_round_trips_complete_in_one_step() {
        let mut host = one_vm_host(StackKind::Kernel);
        let remote = host.add_remote(REMOTE_IP);
        let ls = remote.socket();
        remote.bind(ls, SockAddr::new(0, 7)).unwrap();
        remote.listen(ls, 16).unwrap();

        let guest = host.guest_mut(VmId(1)).unwrap();
        let s = guest.socket().unwrap();
        guest.connect(s, SockAddr::new(REMOTE_IP, 7)).unwrap();
        host.run(20, 100_000);
        let guest = host.guest_mut(VmId(1)).unwrap();
        assert!(guest.poll(s).writable(), "connect did not complete");

        // Pile up a deep backlog before letting the host move at all.
        let payload = [0x5Au8; 16];
        for _ in 0..32 {
            assert_eq!(guest.send(s, &payload).unwrap(), payload.len());
        }
        host.step(100_000);

        // Everything crossed guest → engine → NSM → switch → remote in that
        // one step.
        let remote = host.remote_mut(REMOTE_IP).unwrap();
        let (conn, _) = remote.accept(ls).unwrap();
        let mut buf = [0u8; 1024];
        let mut received = 0;
        while let Ok(n) = remote.recv(conn, &mut buf) {
            if n == 0 {
                break;
            }
            received += n;
        }
        assert_eq!(received, 32 * payload.len());
    }

    /// Every step either reaches quiescence or hits the round bound, and the
    /// default configuration reaches quiescence on idle steps.
    #[test]
    fn scheduler_accounts_for_every_step() {
        let mut host = one_vm_host(StackKind::Kernel);
        host.run(10, 100_000);
        let stats = host.sched_stats();
        assert_eq!(stats.steps, 10);
        assert_eq!(stats.quiescent_exits + stats.round_limit_hits, stats.steps);
        assert!(
            stats.quiescent_exits > 0,
            "idle steps must exit on quiescence, not the round bound"
        );
    }

    /// A round bound of 1 degrades gracefully: progress is slower (one poll
    /// round per step) but the datapath still works end to end.
    #[test]
    fn single_round_bound_still_serves_traffic() {
        let nsm = NsmConfig::kernel(NsmId(1));
        let cfg = HostConfig::new()
            .with_vm(VmConfig::new(VmId(1)))
            .with_nsm(nsm)
            .with_mapping(VmToNsmPolicy::All(NsmId(1)))
            .with_max_poll_rounds(1);
        let mut host = NetKernelHost::new(cfg).unwrap();
        let remote = host.add_remote(REMOTE_IP);
        let ls = remote.socket();
        remote.bind(ls, SockAddr::new(0, 7)).unwrap();
        remote.listen(ls, 16).unwrap();

        let guest = host.guest_mut(VmId(1)).unwrap();
        let s = guest.socket().unwrap();
        guest.connect(s, SockAddr::new(REMOTE_IP, 7)).unwrap();
        host.run(60, 100_000);
        let guest = host.guest_mut(VmId(1)).unwrap();
        assert!(guest.poll(s).writable(), "connect did not complete");
        assert_eq!(host.sched_stats().rounds, host.sched_stats().steps);
    }

    #[test]
    fn zero_poll_rounds_is_rejected() {
        let cfg = HostConfig::new()
            .with_vm(VmConfig::new(VmId(1)))
            .with_nsm(NsmConfig::kernel(NsmId(1)))
            .with_mapping(VmToNsmPolicy::All(NsmId(1)))
            .with_max_poll_rounds(0);
        assert!(NetKernelHost::new(cfg).is_err());
    }

    use nk_types::faults::{FaultAction, FaultPlan, LinkFault};

    /// Crash the serving NSM mid-connection: the guest socket observes a
    /// reset, and after a restart the guest reconnects with no app changes.
    #[test]
    fn nsm_crash_resets_sockets_and_restart_recovers() {
        let mut host = one_vm_host(StackKind::Kernel);
        let remote = host.add_remote(REMOTE_IP);
        let ls = remote.socket();
        remote.bind(ls, SockAddr::new(0, 7)).unwrap();
        remote.listen(ls, 16).unwrap();

        let guest = host.guest_mut(VmId(1)).unwrap();
        let s = guest.socket().unwrap();
        guest.connect(s, SockAddr::new(REMOTE_IP, 7)).unwrap();
        host.run(20, 100_000);
        let guest = host.guest_mut(VmId(1)).unwrap();
        assert!(guest.poll(s).writable(), "connect did not complete");

        // Crash. The established connection dies with ConnReset.
        let resets = host.crash_nsm(NsmId(1)).unwrap();
        assert!(resets >= 1, "the live connection must be reset");
        assert!(!host.has_nsm(NsmId(1)));
        host.run(2, 100_000);
        let guest = host.guest_mut(VmId(1)).unwrap();
        assert!(guest.poll(s).error());
        assert_eq!(guest.recv(s, &mut [0u8; 8]), Err(NkError::ConnReset));
        assert!(guest.stats().errors >= 1);

        // While the NSM is down, new sockets fail fast.
        let guest = host.guest_mut(VmId(1)).unwrap();
        let dead = guest.socket().unwrap();
        host.run(2, 100_000);
        let guest = host.guest_mut(VmId(1)).unwrap();
        guest.drive();
        assert_eq!(guest.send(dead, b"x"), Err(NkError::NsmUnavailable));

        // Restart and reconnect: same application pattern, fresh socket.
        host.restart_nsm(NsmId(1)).unwrap();
        assert!(host.has_nsm(NsmId(1)));
        let guest = host.guest_mut(VmId(1)).unwrap();
        let _ = guest.close(s);
        let _ = guest.close(dead);
        let s2 = guest.socket().unwrap();
        guest.connect(s2, SockAddr::new(REMOTE_IP, 7)).unwrap();
        host.run(20, 100_000);
        let guest = host.guest_mut(VmId(1)).unwrap();
        assert!(guest.poll(s2).writable(), "reconnect after restart failed");
    }

    /// Live migration: after `migrate_vm` new connections are served by the
    /// standby NSM while the crashed primary stays down.
    #[test]
    fn vm_migrates_to_standby_nsm_after_crash() {
        let cfg = HostConfig::new()
            .with_vm(VmConfig::new(VmId(1)))
            .with_nsm(NsmConfig::kernel(NsmId(1)))
            .with_nsm(NsmConfig::kernel(NsmId(2)))
            .with_mapping(VmToNsmPolicy::All(NsmId(1)));
        let mut host = NetKernelHost::new(cfg).unwrap();
        let remote = host.add_remote(REMOTE_IP);
        let ls = remote.socket();
        remote.bind(ls, SockAddr::new(0, 7)).unwrap();
        remote.listen(ls, 16).unwrap();

        host.crash_nsm(NsmId(1)).unwrap();
        host.migrate_vm(VmId(1), NsmId(2)).unwrap();
        assert_eq!(host.nsm_of(VmId(1)), Some(NsmId(2)));

        let guest = host.guest_mut(VmId(1)).unwrap();
        let s = guest.socket().unwrap();
        guest.connect(s, SockAddr::new(REMOTE_IP, 7)).unwrap();
        host.run(20, 100_000);
        let guest = host.guest_mut(VmId(1)).unwrap();
        assert!(guest.poll(s).writable(), "standby NSM must serve the VM");
        assert!(host.nsm_service_stats(NsmId(2)).unwrap().requests > 0);
    }

    /// An installed fault plan fires through the scheduler's inject phase at
    /// the configured virtual times.
    #[test]
    fn fault_plan_applies_at_scheduled_times() {
        let cfg = HostConfig::new()
            .with_vm(VmConfig::new(VmId(1)))
            .with_nsm(NsmConfig::kernel(NsmId(1)))
            .with_nsm(NsmConfig::kernel(NsmId(2)))
            .with_mapping(VmToNsmPolicy::All(NsmId(1)));
        let mut host = NetKernelHost::new(cfg).unwrap();
        let plan = FaultPlan::new()
            .at(250_000, FaultAction::CrashNsm(NsmId(1)))
            .at(
                250_000,
                FaultAction::MigrateVm {
                    vm: VmId(1),
                    to: NsmId(2),
                },
            )
            .at(
                450_000,
                FaultAction::DegradeLink {
                    nsm: NsmId(2),
                    link: LinkFault::default().with_latency_us(100),
                },
            )
            .at(650_000, FaultAction::RestartNsm(NsmId(1)));
        host.install_fault_plan(&plan).unwrap();
        assert_eq!(host.pending_faults(), 4);

        host.step(100_000); // t=100µs: nothing due
        assert_eq!(host.fault_stats().applied, 0);
        assert!(host.has_nsm(NsmId(1)));
        host.step(200_000); // t=300µs: crash + migrate fire together
        assert_eq!(host.fault_stats().applied, 2);
        assert!(!host.has_nsm(NsmId(1)));
        assert_eq!(host.nsm_of(VmId(1)), Some(NsmId(2)));
        host.step(200_000); // t=500µs: link degradation
        assert_eq!(host.fault_stats().link_changes, 1);
        host.step(200_000); // t=700µs: restart
        assert_eq!(host.fault_stats().applied, 4);
        assert!(host.has_nsm(NsmId(1)));
        assert_eq!(host.pending_faults(), 0);
        assert_eq!(host.sched_stats().fault_events, 4);
    }

    #[test]
    fn invalid_fault_plans_are_rejected_at_install() {
        let mut host = one_vm_host(StackKind::Kernel);
        let plan = FaultPlan::new().at(0, FaultAction::CrashNsm(NsmId(9)));
        assert_eq!(host.install_fault_plan(&plan), Err(NkError::BadConfig));
        let plan = FaultPlan::new().at(0, FaultAction::RestartNsm(NsmId(1)));
        assert_eq!(host.install_fault_plan(&plan), Err(NkError::BadConfig));
    }

    use nk_types::{ControlAction, ControlPolicy};

    /// Without a control policy the host never emits control events and the
    /// allocation stays exactly as configured.
    #[test]
    fn control_disabled_hosts_keep_a_static_allocation() {
        let mut host = one_vm_host(StackKind::Kernel);
        host.run(50, 100_000);
        assert!(host.control_events().is_empty());
        assert_eq!(host.engine_cores(), 1);
        assert_eq!(host.nsm_cores(NsmId(1)), Some(1));
        assert_eq!(host.sched_stats().control_actions, 0);
    }

    /// A sustained workload against a small accounting clock drives the NSM
    /// over the high watermark: the autoscaler grows it, and once the load
    /// stops and the cooldown passes it shrinks back to the floor.
    #[test]
    fn control_plane_scales_nsm_up_under_load_and_down_when_idle() {
        let policy = ControlPolicy::new()
            .with_epoch_ns(1_000_000)
            .with_window(2)
            .with_watermarks(0.1, 0.6)
            .with_core_bounds(1, 4)
            .with_cooldown(1)
            .with_rebalance(0.9, 0) // no migrations in this test
            .with_pool_clock_hz(1_000_000);
        let cfg = HostConfig::new()
            .with_vm(VmConfig::new(VmId(1)))
            .with_nsm(NsmConfig::kernel(NsmId(1)))
            .with_mapping(VmToNsmPolicy::All(NsmId(1)))
            .with_control(policy);
        let mut host = NetKernelHost::new(cfg).unwrap();
        let remote = host.add_remote(REMOTE_IP);
        let ls = remote.socket();
        remote.bind(ls, SockAddr::new(0, 7)).unwrap();
        remote.listen(ls, 16).unwrap();

        let guest = host.guest_mut(VmId(1)).unwrap();
        let s = guest.socket().unwrap();
        guest.connect(s, SockAddr::new(REMOTE_IP, 7)).unwrap();
        host.run(10, 100_000);

        // Keep the NSM busy every step for several epochs.
        for _ in 0..60 {
            let guest = host.guest_mut(VmId(1)).unwrap();
            let _ = guest.send(s, &[0x11u8; 512]);
            host.step(100_000);
            let remote = host.remote_mut(REMOTE_IP).unwrap();
            if let Ok((conn, _)) = remote.accept(ls) {
                let _ = conn; // server just accumulates the bytes
            }
        }
        assert!(
            host.control_events()
                .iter()
                .any(|e| matches!(e.action, ControlAction::ScaleUp { .. })),
            "no scale-up under sustained load: {:?}",
            host.control_events()
        );
        assert!(host.nsm_cores(NsmId(1)).unwrap() > 1);
        assert!(host.sched_stats().control_actions > 0);

        // Let the workload go idle: the allocation returns to the floor.
        host.run(120, 100_000);
        assert!(
            host.control_events()
                .iter()
                .any(|e| matches!(e.action, ControlAction::ScaleDown { .. })),
            "no scale-down after the load stopped: {:?}",
            host.control_events()
        );
        assert_eq!(host.nsm_cores(NsmId(1)), Some(1));
    }

    #[test]
    fn invalid_control_policy_is_rejected_at_build() {
        let cfg = HostConfig::new()
            .with_vm(VmConfig::new(VmId(1)))
            .with_nsm(NsmConfig::kernel(NsmId(1)))
            .with_mapping(VmToNsmPolicy::All(NsmId(1)))
            .with_control(ControlPolicy::new().with_watermarks(0.9, 0.1));
        assert!(NetKernelHost::new(cfg).is_err());
    }

    /// A non-zero host id shifts every NSM vNIC into the host's own /16
    /// block; the datapath works unchanged inside it.
    #[test]
    fn host_id_shifts_nsm_addresses() {
        let cfg = HostConfig::new()
            .with_host_id(nk_types::HostId(3))
            .with_vm(VmConfig::new(VmId(1)))
            .with_nsm(NsmConfig::kernel(NsmId(1)))
            .with_mapping(VmToNsmPolicy::All(NsmId(1)));
        let mut host = NetKernelHost::new(cfg).unwrap();
        assert_eq!(host.nsm_addr(NsmId(1)), 0x0A03_0001);
        assert_eq!(host.host_id(), nk_types::HostId(3));
        // A remote inside the host's block is reachable as before.
        let remote_ip = 0x0A03_0100;
        let remote = host.add_remote(remote_ip);
        let ls = remote.socket();
        remote.bind(ls, SockAddr::new(0, 7)).unwrap();
        remote.listen(ls, 4).unwrap();
        let guest = host.guest_mut(VmId(1)).unwrap();
        let s = guest.socket().unwrap();
        guest.connect(s, SockAddr::new(remote_ip, 7)).unwrap();
        host.run(20, 100_000);
        let guest = host.guest_mut(VmId(1)).unwrap();
        assert!(guest.poll(s).writable());
    }

    /// The begin/poll/end step protocol the cluster drives is equivalent to
    /// `step()` for a single host: the same traffic completes.
    #[test]
    fn split_step_protocol_serves_traffic() {
        let mut host = one_vm_host(StackKind::Kernel);
        let remote = host.add_remote(REMOTE_IP);
        let ls = remote.socket();
        remote.bind(ls, SockAddr::new(0, 7)).unwrap();
        remote.listen(ls, 16).unwrap();
        let guest = host.guest_mut(VmId(1)).unwrap();
        let s = guest.socket().unwrap();
        guest.connect(s, SockAddr::new(REMOTE_IP, 7)).unwrap();
        for _ in 0..20 {
            host.begin_step(100_000);
            while host.poll_round() > 0 {}
            host.end_step();
        }
        let guest = host.guest_mut(VmId(1)).unwrap();
        assert!(guest.poll(s).writable(), "connect did not complete");
        assert_eq!(guest.send(s, b"split step").unwrap(), 10);
        for _ in 0..5 {
            host.begin_step(100_000);
            while host.poll_round() > 0 {}
            host.end_step();
        }
        let remote = host.remote_mut(REMOTE_IP).unwrap();
        let (conn, _) = remote.accept(ls).unwrap();
        let mut buf = [0u8; 32];
        assert_eq!(remote.recv(conn, &mut buf).unwrap(), 10);
    }

    /// Export → import across two hosts: the drain counter tracks pinned
    /// connections, retire refuses while pinned, and the fully drained
    /// source NSM share scales to zero.
    #[test]
    fn export_import_drain_and_scale_to_zero() {
        let src_cfg = HostConfig::new()
            .with_host_id(nk_types::HostId(1))
            .with_vm(VmConfig::new(VmId(1)))
            .with_nsm(NsmConfig::kernel(NsmId(1)))
            .with_mapping(VmToNsmPolicy::All(NsmId(1)));
        let dst_cfg = HostConfig::new()
            .with_host_id(nk_types::HostId(2))
            .with_nsm(NsmConfig::kernel(NsmId(1)))
            .with_mapping(VmToNsmPolicy::All(NsmId(1)));
        let mut src = NetKernelHost::new(src_cfg).unwrap();
        let mut dst = NetKernelHost::new(dst_cfg).unwrap();

        // Pin one connection on the source.
        let remote = src.add_remote(0x0A01_0100);
        let ls = remote.socket();
        remote.bind(ls, SockAddr::new(0, 7)).unwrap();
        remote.listen(ls, 4).unwrap();
        let guest = src.guest_mut(VmId(1)).unwrap();
        let s = guest.socket().unwrap();
        guest.connect(s, SockAddr::new(0x0A01_0100, 7)).unwrap();
        src.run(20, 100_000);
        assert!(src.vm_pinned(VmId(1)) >= 1);

        let export = src.export_vm(VmId(1)).unwrap();
        assert_eq!(export.from_nsm, NsmId(1));
        assert_eq!(src.draining_vms(), vec![(VmId(1), NsmId(1))]);
        // Double export is refused.
        assert_eq!(src.export_vm(VmId(1)), Err(NkError::AlreadyRegistered));
        // Retire refuses while the connection is pinned.
        assert_eq!(src.retire_vm(VmId(1)), Err(NkError::InvalidState));
        assert!(!src.retire_nsm_if_drained(NsmId(1)));

        // The destination brings the VM up and serves new connections.
        dst.import_vm(&export, NsmId(1)).unwrap();
        assert_eq!(dst.nsm_of(VmId(1)), Some(NsmId(1)));
        assert_eq!(
            dst.import_vm(&export, NsmId(1)),
            Err(NkError::AlreadyRegistered)
        );
        let remote2 = dst.add_remote(0x0A02_0100);
        let ls2 = remote2.socket();
        remote2.bind(ls2, SockAddr::new(0, 7)).unwrap();
        remote2.listen(ls2, 4).unwrap();
        let guest2 = dst.guest_mut(VmId(1)).unwrap();
        let s2 = guest2.socket().unwrap();
        guest2.connect(s2, SockAddr::new(0x0A02_0100, 7)).unwrap();
        dst.run(20, 100_000);
        let guest2 = dst.guest_mut(VmId(1)).unwrap();
        assert!(guest2.poll(s2).writable(), "imported VM must serve");

        // Close the pinned connection: the drain completes and the source
        // share retires to zero cores.
        let guest = src.guest_mut(VmId(1)).unwrap();
        guest.close(s).unwrap();
        src.run(10, 100_000);
        assert_eq!(src.vm_pinned(VmId(1)), 0);
        src.retire_vm(VmId(1)).unwrap();
        assert!(src.guest_mut(VmId(1)).is_none());
        assert!(src.config().vm(VmId(1)).is_none());
        assert!(src.retire_nsm_if_drained(NsmId(1)));
        assert_eq!(src.nsm_cores(NsmId(1)), Some(0));
        // Retiring twice is a no-op.
        assert!(!src.retire_nsm_if_drained(NsmId(1)));
    }

    /// Intra-host migration must detach the VM from the source NSM: the
    /// stale mapping used to leak the region, and a later crash + restart
    /// of the source NSM must not resurrect the migrated VM.
    #[test]
    fn intra_host_migration_detaches_the_source_nsm() {
        let cfg = HostConfig::new()
            .with_vm(VmConfig::new(VmId(1)))
            .with_nsm(NsmConfig::kernel(NsmId(1)))
            .with_nsm(NsmConfig::kernel(NsmId(2)))
            .with_mapping(VmToNsmPolicy::All(NsmId(1)));
        let mut host = NetKernelHost::new(cfg).unwrap();
        assert!(host.nsm_serves_vm(NsmId(1), VmId(1)));

        // No pinned connections: the migration detaches immediately.
        host.migrate_vm(VmId(1), NsmId(2)).unwrap();
        assert!(host.nsm_serves_vm(NsmId(2), VmId(1)));
        assert!(
            !host.nsm_serves_vm(NsmId(1), VmId(1)),
            "the source NSM must forget a migrated-away VM"
        );

        // Crash and restart the old NSM: the VM is not re-added (it maps
        // to NSM 2), and the restarted instance serves nothing for it.
        host.crash_nsm(NsmId(1)).unwrap();
        host.restart_nsm(NsmId(1)).unwrap();
        assert!(
            !host.nsm_serves_vm(NsmId(1), VmId(1)),
            "restart must not resurrect a migrated VM"
        );
        assert_eq!(host.nsm_of(VmId(1)), Some(NsmId(2)));

        // The VM still serves through its new NSM.
        let remote = host.add_remote(REMOTE_IP);
        let ls = remote.socket();
        remote.bind(ls, SockAddr::new(0, 7)).unwrap();
        remote.listen(ls, 4).unwrap();
        let guest = host.guest_mut(VmId(1)).unwrap();
        let s = guest.socket().unwrap();
        guest.connect(s, SockAddr::new(REMOTE_IP, 7)).unwrap();
        host.run(20, 100_000);
        let guest = host.guest_mut(VmId(1)).unwrap();
        assert!(guest.poll(s).writable());
    }

    /// While connections are still pinned to the source NSM, migration
    /// keeps the region attached there (the pinned connections need it);
    /// retiring the VM later sweeps every instance.
    #[test]
    fn migration_with_pinned_connections_defers_the_detach() {
        let cfg = HostConfig::new()
            .with_vm(VmConfig::new(VmId(1)))
            .with_nsm(NsmConfig::kernel(NsmId(1)))
            .with_nsm(NsmConfig::kernel(NsmId(2)))
            .with_mapping(VmToNsmPolicy::All(NsmId(1)));
        let mut host = NetKernelHost::new(cfg).unwrap();
        let remote = host.add_remote(REMOTE_IP);
        let ls = remote.socket();
        remote.bind(ls, SockAddr::new(0, 7)).unwrap();
        remote.listen(ls, 4).unwrap();
        let guest = host.guest_mut(VmId(1)).unwrap();
        let s = guest.socket().unwrap();
        guest.connect(s, SockAddr::new(REMOTE_IP, 7)).unwrap();
        host.run(20, 100_000);
        assert!(host.vm_pinned(VmId(1)) >= 1);

        host.migrate_vm(VmId(1), NsmId(2)).unwrap();
        assert!(
            host.nsm_serves_vm(NsmId(1), VmId(1)),
            "pinned connections still need the source region"
        );
        // The pinned connection keeps streaming through the old NSM.
        let guest = host.guest_mut(VmId(1)).unwrap();
        assert_eq!(guest.send(s, b"still via nsm1").unwrap(), 14);
        host.run(10, 100_000);
        let remote = host.remote_mut(REMOTE_IP).unwrap();
        let (conn, _) = remote.accept(ls).unwrap();
        let mut buf = [0u8; 32];
        assert_eq!(remote.recv(conn, &mut buf).unwrap(), 14);

        // Drain and retire: now every instance forgets the VM.
        let guest = host.guest_mut(VmId(1)).unwrap();
        guest.close(s).unwrap();
        host.run(10, 100_000);
        host.export_vm(VmId(1)).unwrap();
        host.retire_vm(VmId(1)).unwrap();
        assert!(!host.nsm_serves_vm(NsmId(1), VmId(1)));
        assert!(!host.nsm_serves_vm(NsmId(2), VmId(1)));
    }

    /// `import_vm` is atomic: a failed import leaves no residue (a retry
    /// succeeds), and an import onto a host whose config already lists the
    /// VM never duplicates the entry.
    #[test]
    fn import_vm_unwinds_on_failure_and_never_duplicates_config() {
        let src_cfg = HostConfig::new()
            .with_host_id(nk_types::HostId(1))
            .with_vm(VmConfig::new(VmId(1)))
            .with_nsm(NsmConfig::kernel(NsmId(1)))
            .with_mapping(VmToNsmPolicy::All(NsmId(1)));
        let dst_cfg = HostConfig::new()
            .with_host_id(nk_types::HostId(2))
            .with_nsm(NsmConfig::kernel(NsmId(1)))
            .with_mapping(VmToNsmPolicy::All(NsmId(1)));
        let mut src = NetKernelHost::new(src_cfg).unwrap();
        let mut dst = NetKernelHost::new(dst_cfg).unwrap();

        let export = src.export_vm(VmId(1)).unwrap();
        // Import onto a non-existent NSM fails up front, leaving nothing.
        assert_eq!(dst.import_vm(&export, NsmId(9)), Err(NkError::NotFound));
        assert!(!dst.has_vm(VmId(1)));
        assert!(dst.config().vm(VmId(1)).is_none());
        // The retry (the cancelled-then-retried flow) succeeds cleanly.
        dst.import_vm(&export, NsmId(1)).unwrap();
        assert_eq!(
            dst.config().vms.iter().filter(|v| v.id == VmId(1)).count(),
            1
        );
        // Re-import of a resident VM is refused without a second push.
        assert_eq!(
            dst.import_vm(&export, NsmId(1)),
            Err(NkError::AlreadyRegistered)
        );
        assert_eq!(
            dst.config().vms.iter().filter(|v| v.id == VmId(1)).count(),
            1
        );

        // Bounce the VM around: export → retire → import again; the config
        // entry count stays exactly one through the whole cycle.
        src.retire_vm(VmId(1)).unwrap();
        let export_back = dst.export_vm(VmId(1)).unwrap();
        dst.retire_vm(VmId(1)).unwrap();
        src.import_vm(&export_back, NsmId(1)).unwrap();
        assert_eq!(
            src.config().vms.iter().filter(|v| v.id == VmId(1)).count(),
            1
        );
    }

    /// Warm export tears the whole pinned connection out (TCP state,
    /// ServiceLib context, guest socket), retires the source instance with
    /// zero drain, and the import recreates everything — including the
    /// address alias for the transplanted tuple.
    #[test]
    fn warm_export_import_moves_connection_state_between_hosts() {
        let src_cfg = HostConfig::new()
            .with_host_id(nk_types::HostId(1))
            .with_vm(VmConfig::new(VmId(1)))
            .with_nsm(NsmConfig::kernel(NsmId(1)))
            .with_mapping(VmToNsmPolicy::All(NsmId(1)));
        let dst_cfg = HostConfig::new()
            .with_host_id(nk_types::HostId(2))
            .with_nsm(NsmConfig::kernel(NsmId(1)))
            .with_mapping(VmToNsmPolicy::All(NsmId(1)));
        let mut src = NetKernelHost::new(src_cfg).unwrap();
        let mut dst = NetKernelHost::new(dst_cfg).unwrap();

        // Pin one connection on the source and push some data.
        let remote = src.add_remote(0x0A01_0100);
        let ls = remote.socket();
        remote.bind(ls, SockAddr::new(0, 7)).unwrap();
        remote.listen(ls, 4).unwrap();
        let guest = src.guest_mut(VmId(1)).unwrap();
        let s = guest.socket().unwrap();
        guest.connect(s, SockAddr::new(0x0A01_0100, 7)).unwrap();
        src.run(20, 100_000);
        let guest = src.guest_mut(VmId(1)).unwrap();
        assert!(guest.poll(s).writable());
        assert_eq!(guest.send(s, b"pinned bytes").unwrap(), 12);
        src.run(20, 100_000);
        assert_eq!(src.vm_pinned(VmId(1)), 1);

        src.freeze_vm(VmId(1)).unwrap();
        src.run(5, 100_000);
        assert!(src.vm_wire_quiet(VmId(1)));
        let export = src.export_vm_warm(VmId(1)).unwrap();
        assert_eq!(export.conns.len(), 1);
        assert_eq!(export.base.from_nsm, NsmId(1));
        assert_eq!(export.rerouted_ips(), vec![src.nsm_addr(NsmId(1))]);
        // The source is fully out: no guest, no pin, share retires now.
        assert!(!src.has_vm(VmId(1)));
        assert_eq!(src.vm_pinned(VmId(1)), 0);
        assert!(src.retire_nsm_if_drained(NsmId(1)));

        // Install on the destination: same guest socket id, pinned again,
        // alias adopted for the foreign address.
        dst.import_vm_warm(&export, NsmId(1)).unwrap();
        assert_eq!(dst.vm_pinned(VmId(1)), 1);
        let aliases = dst.warm_aliases();
        assert_eq!(aliases, vec![(src.nsm_addr(NsmId(1)), NsmId(1))]);
        let guest = dst.guest_mut(VmId(1)).unwrap();
        assert!(guest.has_socket(s));
        assert!(guest.poll(s).writable());
        // Double warm import is refused like a cold one.
        assert_eq!(
            dst.import_vm_warm(&export, NsmId(1)),
            Err(NkError::AlreadyRegistered)
        );
        // Crashing the adopting NSM tears the alias down with it.
        dst.crash_nsm(NsmId(1)).unwrap();
        assert!(dst.warm_aliases().is_empty());
    }

    /// A warm export refuses mid-close connections *before* touching
    /// anything: the application closed the socket while the Close NQE was
    /// parked by the freeze, so the guest socket is no longer
    /// transplantable — and the VM must keep serving untouched after the
    /// refusal.
    #[test]
    fn warm_export_refuses_a_closing_socket_without_damage() {
        let src_cfg = HostConfig::new()
            .with_host_id(nk_types::HostId(1))
            .with_vm(VmConfig::new(VmId(1)))
            .with_nsm(NsmConfig::kernel(NsmId(1)))
            .with_mapping(VmToNsmPolicy::All(NsmId(1)));
        let mut src = NetKernelHost::new(src_cfg).unwrap();
        let remote = src.add_remote(0x0A01_0100);
        let ls = remote.socket();
        remote.bind(ls, SockAddr::new(0, 7)).unwrap();
        remote.listen(ls, 4).unwrap();
        let guest = src.guest_mut(VmId(1)).unwrap();
        let s = guest.socket().unwrap();
        guest.connect(s, SockAddr::new(0x0A01_0100, 7)).unwrap();
        src.run(20, 100_000);
        assert_eq!(src.vm_pinned(VmId(1)), 1);

        // Freeze, then the app closes: the Close NQE parks in the frozen
        // queue while the guest socket transitions to Closing.
        src.freeze_vm(VmId(1)).unwrap();
        let guest = src.guest_mut(VmId(1)).unwrap();
        guest.close(s).unwrap();
        src.run(3, 100_000);
        assert_eq!(src.export_vm_warm(VmId(1)), Err(NkError::InvalidState));
        // Nothing was torn out: the VM, its pin and its NSM state survive,
        // and after a thaw the close completes normally.
        assert!(src.has_vm(VmId(1)));
        assert_eq!(src.vm_pinned(VmId(1)), 1);
        assert!(src.nsm_serves_vm(NsmId(1), VmId(1)));
        src.thaw_vm(VmId(1));
        src.run(10, 100_000);
        assert_eq!(src.vm_pinned(VmId(1)), 0, "close completes after thaw");
    }

    /// A warm import must not alias a transplanted address over a
    /// *different* alive local NSM's home vNIC address (that would hijack
    /// its traffic): the import refuses and, being atomic, leaves nothing
    /// behind — a retry onto the owning NSM succeeds.
    #[test]
    fn warm_import_refuses_to_hijack_a_local_vnic_address() {
        let src_cfg = HostConfig::new()
            .with_host_id(nk_types::HostId(1))
            .with_vm(VmConfig::new(VmId(1)))
            .with_nsm(NsmConfig::kernel(NsmId(1)))
            .with_mapping(VmToNsmPolicy::All(NsmId(1)));
        // The destination doubles as the origin-host shape: two NSMs, and
        // the transplanted connection carries NSM 1's home address.
        let dst_cfg = HostConfig::new()
            .with_host_id(nk_types::HostId(1))
            .with_nsm(NsmConfig::kernel(NsmId(1)))
            .with_nsm(NsmConfig::kernel(NsmId(2)))
            .with_mapping(VmToNsmPolicy::All(NsmId(1)));
        let mut src = NetKernelHost::new(src_cfg).unwrap();
        let mut dst = NetKernelHost::new(dst_cfg).unwrap();
        let remote = src.add_remote(0x0A01_0100);
        let ls = remote.socket();
        remote.bind(ls, SockAddr::new(0, 7)).unwrap();
        remote.listen(ls, 4).unwrap();
        let guest = src.guest_mut(VmId(1)).unwrap();
        let s = guest.socket().unwrap();
        guest.connect(s, SockAddr::new(0x0A01_0100, 7)).unwrap();
        src.run(20, 100_000);
        src.freeze_vm(VmId(1)).unwrap();
        src.run(5, 100_000);
        let export = src.export_vm_warm(VmId(1)).unwrap();
        assert_eq!(export.rerouted_ips(), vec![dst.nsm_addr(NsmId(1))]);

        // Importing onto NSM 2 would hijack NSM 1's address: refused, and
        // atomically so — no VM, no aliases, no config entry left behind.
        assert_eq!(
            dst.import_vm_warm(&export, NsmId(2)),
            Err(NkError::InvalidState)
        );
        assert!(!dst.has_vm(VmId(1)));
        assert!(dst.warm_aliases().is_empty());
        assert!(dst.config().vm(VmId(1)).is_none());
        // Landing on the NSM that owns the address needs no alias at all.
        dst.import_vm_warm(&export, NsmId(1)).unwrap();
        assert!(dst.warm_aliases().is_empty());
        assert_eq!(dst.vm_pinned(VmId(1)), 1);
    }

    /// An aborted warm migration (cancel inside the freeze window) leaves
    /// the source VM serving exactly as before: parked requests thaw and
    /// flow, the pinned connection never resets.
    #[test]
    fn cancel_export_mid_freeze_restores_service() {
        let mut host = one_vm_host(StackKind::Kernel);
        let remote = host.add_remote(REMOTE_IP);
        let ls = remote.socket();
        remote.bind(ls, SockAddr::new(0, 7)).unwrap();
        remote.listen(ls, 4).unwrap();
        let guest = host.guest_mut(VmId(1)).unwrap();
        let s = guest.socket().unwrap();
        guest.connect(s, SockAddr::new(REMOTE_IP, 7)).unwrap();
        host.run(20, 100_000);
        let remote = host.remote_mut(REMOTE_IP).unwrap();
        let (conn, _) = remote.accept(ls).unwrap();

        // Freeze, then let the application submit work: it parks.
        host.freeze_vm(VmId(1)).unwrap();
        assert!(host.vm_frozen(VmId(1)));
        let guest = host.guest_mut(VmId(1)).unwrap();
        assert_eq!(guest.send(s, b"parked in the freeze").unwrap(), 20);
        host.run(10, 100_000);
        let remote = host.remote_mut(REMOTE_IP).unwrap();
        assert_eq!(
            remote.recv(conn, &mut [0u8; 32]),
            Err(NkError::WouldBlock),
            "frozen VM's requests must not reach the wire"
        );

        // Abort the migration: thaw via cancel_export, the parked bytes
        // flow and the connection was never disturbed.
        assert!(host.cancel_export(VmId(1)));
        assert!(!host.vm_frozen(VmId(1)));
        host.run(10, 100_000);
        let remote = host.remote_mut(REMOTE_IP).unwrap();
        let mut buf = [0u8; 32];
        assert_eq!(remote.recv(conn, &mut buf).unwrap(), 20);
        assert_eq!(&buf[..20], b"parked in the freeze");
        assert_eq!(host.vm_pinned(VmId(1)), 1, "no reset, no unpin");
    }

    #[test]
    fn mtcp_nsm_host_builds_and_serves() {
        let mut host = one_vm_host(StackKind::Mtcp);
        let remote = host.add_remote(REMOTE_IP);
        let ls = remote.socket();
        remote.bind(ls, SockAddr::new(0, 80)).unwrap();
        remote.listen(ls, 8).unwrap();
        let guest = host.guest_mut(VmId(1)).unwrap();
        let s = guest.socket().unwrap();
        guest.connect(s, SockAddr::new(REMOTE_IP, 80)).unwrap();
        host.run(20, 100_000);
        let guest = host.guest_mut(VmId(1)).unwrap();
        assert!(guest.poll(s).writable());
    }
}
