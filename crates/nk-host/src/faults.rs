//! The host-side fault injector: applying a [`FaultPlan`] deterministically.
//!
//! A [`FaultInjector`] holds the plan's events sorted by time and hands out
//! the ones that have become due. The host pulls due events at the start of
//! every step — in the scheduler's *inject* phase, before any datapath
//! component is polled — so a fault always lands at the same point in the
//! poll order for a given virtual time, and the whole execution replays
//! bit-for-bit from the plan plus the fabric seed.

use nk_types::faults::{FaultAction, FaultEvent, FaultPlan};

/// Counters describing what a fault injector has applied so far.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Total fault events handed to the host.
    pub applied: u64,
    /// NSM crashes.
    pub crashes: u64,
    /// NSM restarts.
    pub restarts: u64,
    /// Live VM migrations.
    pub migrations: u64,
    /// Mid-flight link reconfigurations.
    pub link_changes: u64,
}

/// Replays a [`FaultPlan`] against virtual time.
#[derive(Clone, Debug, Default)]
pub struct FaultInjector {
    /// Events sorted by `(at_ns, insertion order)`.
    events: Vec<FaultEvent>,
    /// Index of the next event not yet applied.
    next: usize,
    stats: FaultStats,
}

impl FaultInjector {
    /// An injector with nothing scheduled.
    pub fn idle() -> Self {
        Self::default()
    }

    /// An injector replaying `plan`.
    pub fn new(plan: &FaultPlan) -> Self {
        FaultInjector {
            events: plan.sorted_events(),
            next: 0,
            stats: FaultStats::default(),
        }
    }

    /// Events not yet applied.
    pub fn pending(&self) -> usize {
        self.events.len() - self.next
    }

    /// Counters of what has been applied.
    pub fn stats(&self) -> FaultStats {
        self.stats
    }

    /// Hand out the next event due at or before `now_ns`, if any, recording
    /// it as applied. Call in a loop to drain everything due this step.
    pub fn take_due(&mut self, now_ns: u64) -> Option<FaultAction> {
        let ev = self.events.get(self.next)?;
        if ev.at_ns > now_ns {
            return None;
        }
        let action = ev.action;
        self.next += 1;
        self.stats.applied += 1;
        match action {
            FaultAction::CrashNsm(_) => self.stats.crashes += 1,
            FaultAction::RestartNsm(_) => self.stats.restarts += 1,
            FaultAction::MigrateVm { .. } => self.stats.migrations += 1,
            FaultAction::DegradeLink { .. } => self.stats.link_changes += 1,
        }
        Some(action)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nk_types::NsmId;

    #[test]
    fn takes_events_in_time_order_once() {
        let plan = FaultPlan::new()
            .at(300, FaultAction::RestartNsm(NsmId(1)))
            .at(100, FaultAction::CrashNsm(NsmId(1)));
        let mut inj = FaultInjector::new(&plan);
        assert_eq!(inj.pending(), 2);
        assert_eq!(inj.take_due(50), None);
        assert_eq!(inj.take_due(100), Some(FaultAction::CrashNsm(NsmId(1))));
        // Not due yet, even though it is next in line.
        assert_eq!(inj.take_due(100), None);
        assert_eq!(inj.take_due(1_000), Some(FaultAction::RestartNsm(NsmId(1))));
        assert_eq!(inj.take_due(u64::MAX), None);
        assert_eq!(inj.pending(), 0);
        let stats = inj.stats();
        assert_eq!(stats.applied, 2);
        assert_eq!(stats.crashes, 1);
        assert_eq!(stats.restarts, 1);
    }

    #[test]
    fn multiple_events_at_one_instant_drain_in_insertion_order() {
        let plan = FaultPlan::new()
            .at(100, FaultAction::CrashNsm(NsmId(1)))
            .at(
                100,
                FaultAction::MigrateVm {
                    vm: nk_types::VmId(1),
                    to: NsmId(2),
                },
            );
        let mut inj = FaultInjector::new(&plan);
        assert_eq!(inj.take_due(100), Some(FaultAction::CrashNsm(NsmId(1))));
        assert!(matches!(
            inj.take_due(100),
            Some(FaultAction::MigrateVm { .. })
        ));
        assert_eq!(inj.stats().migrations, 1);
    }
}
