//! Host orchestration: bringing up VMs, NSMs and CoreEngine.
//!
//! This crate assembles the pieces the other crates provide into a running
//! host, in two configurations:
//!
//! * [`host::NetKernelHost`] — the NetKernel architecture (paper Figure 2):
//!   GuestLibs in the VMs, ServiceLibs + stacks in the NSMs, CoreEngine
//!   switching NQEs between them, all attached to one virtual switch;
//! * [`host::BaselineVm`] — the status-quo architecture the evaluation
//!   compares against (§7.1 "Baseline"): the network stack lives inside the
//!   guest, exposed through the same [`nk_types::SocketApi`] so identical
//!   application code runs on both.
//!
//! [`sched`] is the drain-until-quiescent scheduler driving every datapath
//! component through the uniform [`nk_sim::Pollable`] interface, with an
//! inject phase replaying deterministic [`nk_types::FaultPlan`] schedules
//! ([`faults`]: NSM crash / restart, live VM migration, link degradation)
//! before the poll rounds and a control phase closing each step: at every
//! control-epoch boundary the host samples its [`nk_sim::CorePool`] ledgers
//! and lets the [`nk_ctrl::ControlPlane`] autoscale NSM / CoreEngine cores
//! and rebalance VMs, logging every decision as a
//! [`nk_types::ControlEvent`]. [`model`] contains the calibrated
//! performance model used to regenerate the paper's throughput / RPS /
//! CPU-overhead figures, and [`metrics`] the throughput and latency meters
//! used by experiments.

pub mod faults;
pub mod host;
pub mod lane;
pub mod metrics;
pub mod model;
pub mod sched;

pub use faults::{FaultInjector, FaultStats};
pub use host::{BaselineVm, ControlTelemetry, NetKernelHost, RemoteHost, VmExport};
pub use lane::{LaneReport, ShareLane};
pub use metrics::{LatencyMeter, ThroughputMeter};
pub use model::{PerfModel, TrafficDirection};
pub use sched::{SchedPhase, SchedStats, Scheduler};
