//! Regenerates every table and figure of the paper's evaluation (§6–§7).
//!
//! Run all experiments:
//!
//! ```text
//! cargo run --release -p bench --bin experiments
//! ```
//!
//! or a single one by name, e.g. `cargo run -p bench --bin experiments fig13`.
//! Output is a table per experiment in the same units the paper reports;
//! `EXPERIMENTS.md` records the comparison against the published numbers.
//! Headline numbers are also written to `BENCH_results.json` (override the
//! path with `BENCH_RESULTS_PATH`) so CI can archive the perf trajectory.

use bench::report::{f, print_table, BenchResults};
use nk_host::{PerfModel, TrafficDirection};
use nk_sim::TokenBucket;
use nk_types::StackKind;
use nk_workload::{AgTrace, AgTraceConfig};

fn main() {
    let filter: Vec<String> = std::env::args().skip(1).collect();
    let want = |name: &str| filter.is_empty() || filter.iter().any(|a| a == name || a == "all");

    let model = PerfModel::new();
    let mut results = BenchResults::new();

    if want("fig07") {
        fig07_ag_trace(&mut results);
    }
    if want("fig08") || want("tab02") {
        fig08_tab02_multiplexing(&model, &mut results);
    }
    if want("fig09") {
        fig09_fair_sharing(&mut results);
    }
    if want("tab03") {
        tab03_mtcp_nginx(&model, &mut results);
    }
    if want("fig10") {
        fig10_shared_memory(&model, &mut results);
    }
    if want("fig11") {
        fig11_nqe_switching(&model, &mut results);
    }
    if want("fig12") {
        fig12_memcopy(&model, &mut results);
    }
    if want("fig13") || want("fig14") {
        fig13_14_single_stream(&model, &mut results);
    }
    if want("fig15") || want("fig16") {
        fig15_16_multi_stream(&model, &mut results);
    }
    if want("fig17") {
        fig17_short_connections(&model, &mut results);
    }
    if want("fig18") || want("fig19") {
        fig18_19_stack_scaling(&model, &mut results);
    }
    if want("fig20") {
        fig20_rps_scaling(&model, &mut results);
    }
    if want("tab04") {
        tab04_nsm_scaling(&model, &mut results);
    }
    if want("fig21") {
        fig21_isolation(&mut results);
    }
    if want("tab05") {
        tab05_latency(&model, &mut results);
    }
    if want("tab06") {
        tab06_cpu_overhead_throughput(&model, &mut results);
    }
    if want("tab07") {
        tab07_cpu_overhead_rps(&model, &mut results);
    }
    if want("ctrl01") {
        ctrl01_control_plane(&mut results);
    }
    if want("clu01") {
        clu01_cluster_migration(&mut results);
    }
    if want("wm01") {
        wm01_warm_vs_drained(&mut results);
    }
    if want("ev01") {
        ev01_evacuation(&mut results);
    }
    if want("par01") {
        par01_parallel_datapath(&mut results);
    }
    if want("par02") {
        par02_intra_host_sharding(&mut results);
    }
    if want("obs01") {
        obs01_recorder_overhead(&mut results);
    }

    if results.experiments.is_empty() {
        // A typo'd experiment name must fail loudly rather than exit green
        // and clobber a previous results file with an empty list.
        eprintln!("no experiment matched {filter:?} — see the `want(..)` names in main()");
        std::process::exit(2);
    }
    let path =
        std::env::var("BENCH_RESULTS_PATH").unwrap_or_else(|_| "BENCH_results.json".to_string());
    match results.write(&path) {
        Ok(()) => println!("\nwrote machine-readable results to {path}"),
        Err(e) => eprintln!("\nfailed to write {path}: {e}"),
    }
}

/// Figure 7: bursty traffic of the three most-utilised application gateways.
fn fig07_ag_trace(results: &mut BenchResults) {
    let trace = AgTrace::generate(&AgTraceConfig::default());
    let top = trace.top_utilised(3);
    let rows: Vec<Vec<String>> = (0..trace.minutes())
        .step_by(5)
        .map(|m| {
            let mut row = vec![m.to_string()];
            for &g in &top {
                row.push(f(trace.rates[g][m], 1));
            }
            row
        })
        .collect();
    print_table(
        "Figure 7: normalised RPS of the three most-utilised AGs (1-min bins, 5-min samples)",
        &["minute", "AG1", "AG2", "AG3"],
        &rows,
    );
    let record = results.experiment("fig07");
    for (i, &g) in top.iter().enumerate() {
        println!(
            "AG{}: mean {:.1}, peak {:.1}, utilisation {:.0}%",
            i + 1,
            trace.mean_of(g),
            trace.peak_of(g),
            100.0 * trace.mean_of(g) / trace.peak_rps
        );
        record
            .metric(&format!("ag{}_mean_rps", i + 1), "rps", trace.mean_of(g))
            .metric(&format!("ag{}_peak_rps", i + 1), "rps", trace.peak_of(g));
    }
}

/// Figure 8 + Table 2: multiplexing bursty AGs onto a shared NSM.
fn fig08_tab02_multiplexing(model: &PerfModel, results: &mut BenchResults) {
    let trace = AgTrace::generate(&AgTraceConfig::default());
    let top = trace.top_utilised(3);

    // Baseline: each of the 3 AGs is provisioned for its own peak: 4 cores
    // each (stack + app), 12 cores total. NetKernel: each AG keeps 1 core for
    // application logic, a shared 5-core kernel-stack NSM absorbs the
    // aggregate, plus 1 CoreEngine core: 9 cores total.
    let baseline_cores = 12.0;
    let netkernel_cores = 9.0;
    let aggregate_mean: f64 = top.iter().map(|&g| trace.mean_of(g)).sum();
    let aggregate_peak = trace.aggregate_peak(&top);
    let rows = vec![
        vec![
            "Baseline (peak-provisioned)".into(),
            f(baseline_cores, 0),
            f(aggregate_mean / baseline_cores, 2),
        ],
        vec![
            "NetKernel (shared 5-core NSM)".into(),
            f(netkernel_cores, 0),
            f(aggregate_mean / netkernel_cores, 2),
        ],
    ];
    print_table(
        "Figure 8: per-core RPS serving the 3 most-utilised AGs (normalised units)",
        &["configuration", "cores", "RPS per core"],
        &rows,
    );
    println!(
        "per-core RPS improvement: {:.0}%  (aggregate peak {:.1} fits in the shared NSM)",
        100.0 * (baseline_cores / netkernel_cores - 1.0),
        aggregate_peak
    );

    // Table 2: a 32-core machine. Baseline reserves 2 cores per AG → 16 AGs.
    // NetKernel: 1 core CoreEngine + 2-core kernel-stack NSM + 1 core per AG.
    let machine_cores = 32usize;
    let baseline_ags = machine_cores / 2;
    let nsm_cores = 2usize;
    let ce_cores = 1usize;
    let ag_budget = machine_cores - nsm_cores - ce_cores;
    // The NSM must stay under 60% utilisation for ~97% of minutes; its
    // capacity is what two dedicated stack cores can serve.
    let nsm_capacity_rps = 2.0 * model.rps(StackKind::Kernel, 1, 64, true, 1);
    // Express AG load in the same units: an AG's provisioned peak equals a
    // tenth of one core's stack capacity (the trace's point is precisely
    // that per-AG utilisation is far below what its reserved cores could do).
    let scale = model.rps(StackKind::Kernel, 1, 64, true, 1) * 0.10 / 100.0;
    let big_trace = AgTrace::generate(&AgTraceConfig {
        gateways: 64,
        ..AgTraceConfig::default()
    });
    // Scale rates into RPS and pack under the 60%/97% constraint.
    let mut scaled = big_trace.clone();
    for series in scaled.rates.iter_mut() {
        for v in series.iter_mut() {
            *v *= scale;
        }
    }
    let packable = scaled.packable_ags(nsm_capacity_rps, 0.6, 0.97);
    let netkernel_ags = packable.min(ag_budget);
    let rows = vec![
        vec!["Total cores".into(), "32".into(), "32".into()],
        vec!["NSM cores".into(), "0".into(), nsm_cores.to_string()],
        vec!["CoreEngine cores".into(), "0".into(), ce_cores.to_string()],
        vec![
            "# AGs hosted".into(),
            baseline_ags.to_string(),
            netkernel_ags.to_string(),
        ],
    ];
    print_table(
        "Table 2: AGs per 32-core machine (Baseline vs NetKernel)",
        &["", "Baseline", "NetKernel"],
        &rows,
    );
    // Hosting the same number of AGs on Baseline would need 2 cores each.
    let baseline_cores_for_same = netkernel_ags as f64 * 2.0;
    println!(
        "NetKernel hosts {:.0}% more AGs per machine; cores saved for this workload: {:.0}%",
        100.0 * (netkernel_ags as f64 / baseline_ags as f64 - 1.0),
        100.0 * (1.0 - machine_cores as f64 / baseline_cores_for_same).max(0.0)
    );
    results
        .experiment("fig08_tab02")
        .metric(
            "rps_per_core_baseline",
            "rps",
            aggregate_mean / baseline_cores,
        )
        .metric(
            "rps_per_core_netkernel",
            "rps",
            aggregate_mean / netkernel_cores,
        )
        .metric("ags_hosted_baseline", "count", baseline_ags as f64)
        .metric("ags_hosted_netkernel", "count", netkernel_ags as f64);
}

/// Figure 9: VM-level fair bandwidth sharing.
fn fig09_fair_sharing(results: &mut BenchResults) {
    // A well-behaved VM A always uses 8 connections; a selfish VM B uses 8,
    // 16 and 24. Baseline TCP divides the bottleneck per *flow*; the
    // fair-share NSM divides it per *VM* via the shared congestion window
    // (nk-netstack::cc::VmSharedCc).
    let rows: Vec<Vec<String>> = [8usize, 16, 24]
        .iter()
        .map(|&b_flows| {
            let a_flows = 8usize;
            let baseline_a = 100.0 * a_flows as f64 / (a_flows + b_flows) as f64;
            let netkernel_a = 50.0;
            vec![
                format!("8 : {b_flows}"),
                format!("{:.0}% / {:.0}%", baseline_a, 100.0 - baseline_a),
                format!("{:.0}% / {:.0}%", netkernel_a, 100.0 - netkernel_a),
            ]
        })
        .collect();
    print_table(
        "Figure 9: share of aggregate throughput (VM A / VM B)",
        &[
            "connections A:B",
            "Baseline (flow-level)",
            "NetKernel fair-share NSM (VM-level)",
        ],
        &rows,
    );
    results
        .experiment("fig09")
        .metric("baseline_a_share_8_24", "pct", 100.0 * 8.0 / 32.0)
        .metric("netkernel_a_share_8_24", "pct", 50.0);
}

/// Table 3: unmodified nginx served by the kernel-stack vs mTCP NSM.
fn tab03_mtcp_nginx(model: &PerfModel, results: &mut BenchResults) {
    let record = results.experiment("tab03");
    let rows: Vec<Vec<String>> = [1usize, 2, 4]
        .iter()
        .map(|&cores| {
            let kernel = model.rps(StackKind::Kernel, cores, 64, true, 1);
            let mtcp = model.rps(StackKind::Mtcp, cores, 64, true, 1);
            record
                .metric(&format!("kernel_rps_{cores}c"), "rps", kernel)
                .metric(&format!("mtcp_rps_{cores}c"), "rps", mtcp);
            vec![
                cores.to_string(),
                f(kernel / 1e3, 1),
                f(mtcp / 1e3, 1),
                f(mtcp / kernel, 2),
            ]
        })
        .collect();
    print_table(
        "Table 3: RPS (x1000) of an unmodified web server, 64B responses, concurrency 100",
        &["vCPUs", "kernel-stack NSM", "mTCP NSM", "speed-up"],
        &rows,
    );
}

/// Figure 10: shared-memory NSM for colocated VMs.
fn fig10_shared_memory(model: &PerfModel, results: &mut BenchResults) {
    let sizes = [64usize, 128, 256, 512, 1024, 2048, 4096, 8192];
    let rows: Vec<Vec<String>> = sizes
        .iter()
        .map(|&msg| {
            // Baseline: TCP through the full stack between two colocated VMs
            // (sender 2 cores, receiver is the more expensive side).
            let baseline = model
                .bulk_throughput_gbps(
                    StackKind::Kernel,
                    TrafficDirection::Receive,
                    msg,
                    8,
                    5,
                    false,
                    1,
                )
                .min(model.bulk_throughput_gbps(
                    StackKind::Kernel,
                    TrafficDirection::Send,
                    msg,
                    8,
                    2,
                    false,
                    1,
                ));
            // NetKernel shared-memory NSM: two hugepage copy engines (2 NSM
            // cores), no TCP processing, capped by the 100G fabric.
            let shm = (2.0 * model.memcopy_gbps(msg)).min(100.0);
            vec![msg.to_string(), f(baseline, 1), f(shm, 1)]
        })
        .collect();
    print_table(
        "Figure 10: colocated-VM throughput (Gbps), Baseline TCP vs shared-memory NSM",
        &["msg size (B)", "Baseline", "NetKernel shm NSM"],
        &rows,
    );
    results
        .experiment("fig10")
        .metric(
            "shm_gbps_64",
            "Gbps",
            (2.0 * model.memcopy_gbps(64)).min(100.0),
        )
        .metric(
            "shm_gbps_8k",
            "Gbps",
            (2.0 * model.memcopy_gbps(8192)).min(100.0),
        );
}

/// Figure 11: CoreEngine NQE switching throughput vs batch size.
fn fig11_nqe_switching(model: &PerfModel, results: &mut BenchResults) {
    let rows: Vec<Vec<String>> = [1usize, 2, 4, 8, 16, 32, 64, 128, 256]
        .iter()
        .map(|&batch| vec![batch.to_string(), f(model.nqe_switch_rate(batch) / 1e6, 1)])
        .collect();
    print_table(
        "Figure 11: CoreEngine switching throughput (million NQEs/s, one core)",
        &["batch size", "M NQEs/s"],
        &rows,
    );
    results
        .experiment("fig11")
        .metric("switch_mnqes_b1", "M/s", model.nqe_switch_rate(1) / 1e6)
        .metric("switch_mnqes_b256", "M/s", model.nqe_switch_rate(256) / 1e6);
}

/// Figure 12: hugepage copy-path throughput vs message size.
fn fig12_memcopy(model: &PerfModel, results: &mut BenchResults) {
    let rows: Vec<Vec<String>> = [64usize, 128, 256, 512, 1024, 2048, 4096, 8192]
        .iter()
        .map(|&msg| vec![msg.to_string(), f(model.memcopy_gbps(msg), 1)])
        .collect();
    print_table(
        "Figure 12: hugepage message-copy throughput (Gbps, one core)",
        &["msg size (B)", "Gbps"],
        &rows,
    );
    results
        .experiment("fig12")
        .metric("memcopy_gbps_64", "Gbps", model.memcopy_gbps(64))
        .metric("memcopy_gbps_8k", "Gbps", model.memcopy_gbps(8192));
}

fn bulk_rows(
    model: &PerfModel,
    dir: TrafficDirection,
    streams: usize,
    cores: usize,
) -> Vec<Vec<String>> {
    [64usize, 128, 256, 512, 1024, 2048, 4096, 8192, 16384]
        .iter()
        .map(|&msg| {
            let baseline =
                model.bulk_throughput_gbps(StackKind::Kernel, dir, msg, streams, cores, false, 1);
            let netkernel =
                model.bulk_throughput_gbps(StackKind::Kernel, dir, msg, streams, cores, true, 1);
            vec![msg.to_string(), f(baseline, 1), f(netkernel, 1)]
        })
        .collect()
}

/// Record the 16 KiB-message headline numbers of one bulk figure.
fn record_bulk(
    results: &mut BenchResults,
    model: &PerfModel,
    name: &str,
    dir: TrafficDirection,
    streams: usize,
) {
    let baseline = model.bulk_throughput_gbps(StackKind::Kernel, dir, 16384, streams, 1, false, 1);
    let netkernel = model.bulk_throughput_gbps(StackKind::Kernel, dir, 16384, streams, 1, true, 1);
    results
        .experiment(name)
        .metric("baseline_gbps_16k", "Gbps", baseline)
        .metric("netkernel_gbps_16k", "Gbps", netkernel);
}

/// Figures 13 and 14: single-stream send/receive, 1-vCPU VM and NSM.
fn fig13_14_single_stream(model: &PerfModel, results: &mut BenchResults) {
    print_table(
        "Figure 13: single-stream TCP send throughput (Gbps), kernel-stack NSM, 1 vCPU",
        &["msg size (B)", "Baseline", "NetKernel"],
        &bulk_rows(model, TrafficDirection::Send, 1, 1),
    );
    print_table(
        "Figure 14: single-stream TCP receive throughput (Gbps), kernel-stack NSM, 1 vCPU",
        &["msg size (B)", "Baseline", "NetKernel"],
        &bulk_rows(model, TrafficDirection::Receive, 1, 1),
    );
    record_bulk(results, model, "fig13", TrafficDirection::Send, 1);
    record_bulk(results, model, "fig14", TrafficDirection::Receive, 1);
}

/// Figures 15 and 16: 8-stream send/receive, 1-vCPU VM and NSM.
fn fig15_16_multi_stream(model: &PerfModel, results: &mut BenchResults) {
    print_table(
        "Figure 15: 8-stream TCP send throughput (Gbps), kernel-stack NSM, 1 vCPU",
        &["msg size (B)", "Baseline", "NetKernel"],
        &bulk_rows(model, TrafficDirection::Send, 8, 1),
    );
    print_table(
        "Figure 16: 8-stream TCP receive throughput (Gbps), kernel-stack NSM, 1 vCPU",
        &["msg size (B)", "Baseline", "NetKernel"],
        &bulk_rows(model, TrafficDirection::Receive, 8, 1),
    );
    record_bulk(results, model, "fig15", TrafficDirection::Send, 8);
    record_bulk(results, model, "fig16", TrafficDirection::Receive, 8);
}

/// Figure 17: short TCP connections vs message size.
fn fig17_short_connections(model: &PerfModel, results: &mut BenchResults) {
    let rows: Vec<Vec<String>> = [64usize, 128, 256, 512, 1024, 2048, 4096, 8192]
        .iter()
        .map(|&msg| {
            let baseline = model.rps(StackKind::Kernel, 1, msg, false, 1);
            let netkernel = model.rps(StackKind::Kernel, 1, msg, true, 1);
            let gbps = netkernel * msg as f64 * 8.0 / 1e9;
            vec![
                msg.to_string(),
                f(baseline / 1e3, 1),
                f(netkernel / 1e3, 1),
                f(gbps, 2),
            ]
        })
        .collect();
    print_table(
        "Figure 17: short-connection RPS (x1000) and goodput, kernel-stack NSM, 1 vCPU",
        &[
            "msg size (B)",
            "Baseline RPS",
            "NetKernel RPS",
            "NetKernel Gbps",
        ],
        &rows,
    );
    results
        .experiment("fig17")
        .metric(
            "baseline_rps_64",
            "rps",
            model.rps(StackKind::Kernel, 1, 64, false, 1),
        )
        .metric(
            "netkernel_rps_64",
            "rps",
            model.rps(StackKind::Kernel, 1, 64, true, 1),
        );
}

/// Figures 18 and 19: bulk throughput scaling with vCPUs (8 KB messages).
fn fig18_19_stack_scaling(model: &PerfModel, results: &mut BenchResults) {
    let rows: Vec<Vec<String>> = (1usize..=8)
        .map(|cores| {
            let bs = model.bulk_throughput_gbps(
                StackKind::Kernel,
                TrafficDirection::Send,
                8192,
                8,
                cores,
                false,
                1,
            );
            let ns = model.bulk_throughput_gbps(
                StackKind::Kernel,
                TrafficDirection::Send,
                8192,
                8,
                cores,
                true,
                1,
            );
            let br = model.bulk_throughput_gbps(
                StackKind::Kernel,
                TrafficDirection::Receive,
                8192,
                8,
                cores,
                false,
                1,
            );
            let nr = model.bulk_throughput_gbps(
                StackKind::Kernel,
                TrafficDirection::Receive,
                8192,
                8,
                cores,
                true,
                1,
            );
            vec![cores.to_string(), f(bs, 1), f(ns, 1), f(br, 1), f(nr, 1)]
        })
        .collect();
    print_table(
        "Figures 18/19: 8-stream throughput (Gbps) vs vCPUs, 8KB messages",
        &[
            "vCPUs",
            "send Baseline",
            "send NetKernel",
            "recv Baseline",
            "recv NetKernel",
        ],
        &rows,
    );
    results
        .experiment("fig18_19")
        .metric(
            "netkernel_send_gbps_8c",
            "Gbps",
            model.bulk_throughput_gbps(
                StackKind::Kernel,
                TrafficDirection::Send,
                8192,
                8,
                8,
                true,
                1,
            ),
        )
        .metric(
            "netkernel_recv_gbps_8c",
            "Gbps",
            model.bulk_throughput_gbps(
                StackKind::Kernel,
                TrafficDirection::Receive,
                8192,
                8,
                8,
                true,
                1,
            ),
        );
}

/// Figure 20: short-connection scaling with vCPUs, kernel vs mTCP NSM.
fn fig20_rps_scaling(model: &PerfModel, results: &mut BenchResults) {
    let rows: Vec<Vec<String>> = [1usize, 2, 3, 4, 5, 6, 7, 8]
        .iter()
        .map(|&cores| {
            let baseline = model.rps(StackKind::Kernel, cores, 64, false, 1);
            let kernel = model.rps(StackKind::Kernel, cores, 64, true, 1);
            let mtcp = model.rps(StackKind::Mtcp, cores, 64, true, 1);
            vec![
                cores.to_string(),
                f(baseline / 1e3, 0),
                f(kernel / 1e3, 0),
                f(mtcp / 1e3, 0),
            ]
        })
        .collect();
    print_table(
        "Figure 20: short-connection RPS (x1000) vs vCPUs, 64B messages",
        &[
            "vCPUs",
            "Baseline",
            "NetKernel (kernel NSM)",
            "NetKernel (mTCP NSM)",
        ],
        &rows,
    );
    results
        .experiment("fig20")
        .metric(
            "kernel_rps_8c",
            "rps",
            model.rps(StackKind::Kernel, 8, 64, true, 1),
        )
        .metric(
            "mtcp_rps_8c",
            "rps",
            model.rps(StackKind::Mtcp, 8, 64, true, 1),
        );
}

/// Table 4: scaling with the number of 2-vCPU NSMs serving one VM.
fn tab04_nsm_scaling(model: &PerfModel, results: &mut BenchResults) {
    let record = results.experiment("tab04");
    let rows: Vec<Vec<String>> = (1usize..=4)
        .map(|nsms| {
            let send = model.bulk_throughput_gbps(
                StackKind::Kernel,
                TrafficDirection::Send,
                8192,
                8,
                2,
                true,
                nsms,
            );
            let recv = model.bulk_throughput_gbps(
                StackKind::Kernel,
                TrafficDirection::Receive,
                8192,
                8,
                2,
                true,
                nsms,
            );
            let rps = model.rps(StackKind::Kernel, 2, 64, true, nsms);
            record
                .metric(&format!("send_gbps_{nsms}nsm"), "Gbps", send)
                .metric(&format!("recv_gbps_{nsms}nsm"), "Gbps", recv);
            vec![nsms.to_string(), f(send, 1), f(recv, 1), f(rps / 1e3, 1)]
        })
        .collect();
    print_table(
        "Table 4: scaling with the number of 2-vCPU kernel-stack NSMs",
        &["# NSMs", "send Gbps", "recv Gbps", "RPS (x1000)"],
        &rows,
    );
}

/// Figure 21: per-VM bandwidth isolation on a shared 10G NSM.
fn fig21_isolation(results: &mut BenchResults) {
    // VM1 capped at 1 Gbps (t=0..25s), VM2 at 500 Mbps (t=4.5..21s), VM3
    // uncapped (t=9..30s); the NSM's vNIC is 10 Gbps and VM3 is
    // work-conserving over whatever the caps leave.
    let nsm_capacity = 10.0;
    let mut vm1 = TokenBucket::for_gbps(1.0, 0);
    let mut vm2 = TokenBucket::for_gbps(0.5, 0);
    let mut rows = Vec::new();
    let mut vm3_peak: f64 = 0.0;
    let step_ms = 100u64;
    for t_ms in (0..30_000).step_by(step_ms as usize) {
        let now_ns = t_ms * 1_000_000;
        let t = t_ms as f64 / 1000.0;
        let vm1_active = t < 25.0;
        let vm2_active = (4.5..21.0).contains(&t);
        let vm3_active = t >= 9.0;
        // Demand is unlimited; caps and the NSM capacity shape the outcome.
        let window_bytes = nsm_capacity * 1e9 / 8.0 * (step_ms as f64 / 1000.0);
        let vm1_bytes = if vm1_active {
            vm1.consume_up_to(window_bytes, now_ns)
        } else {
            0.0
        };
        let vm2_bytes = if vm2_active {
            vm2.consume_up_to(window_bytes, now_ns)
        } else {
            0.0
        };
        let to_gbps = |bytes: f64| bytes * 8.0 / (step_ms as f64 / 1000.0) / 1e9;
        let vm1_g = to_gbps(vm1_bytes);
        let vm2_g = to_gbps(vm2_bytes);
        let vm3_g = if vm3_active {
            (nsm_capacity - vm1_g - vm2_g).max(0.0)
        } else {
            0.0
        };
        vm3_peak = vm3_peak.max(vm3_g);
        if t_ms % 2_000 == 0 {
            rows.push(vec![f(t, 1), f(vm1_g, 2), f(vm2_g, 2), f(vm3_g, 2)]);
        }
    }
    print_table(
        "Figure 21: per-VM throughput (Gbps) under CoreEngine token-bucket isolation",
        &[
            "time (s)",
            "VM1 (cap 1G)",
            "VM2 (cap 0.5G)",
            "VM3 (uncapped)",
        ],
        &rows,
    );
    results
        .experiment("fig21")
        .metric("vm1_cap_gbps", "Gbps", 1.0)
        .metric("vm2_cap_gbps", "Gbps", 0.5)
        .metric("vm3_peak_gbps", "Gbps", vm3_peak);
}

/// Table 5: response-time distribution at concurrency 1000.
fn tab05_latency(model: &PerfModel, results: &mut BenchResults) {
    let kernel_rps = model.rps(StackKind::Kernel, 1, 64, true, 1);
    let baseline_rps = model.rps(StackKind::Kernel, 1, 64, false, 1);
    let mtcp_rps = model.rps(StackKind::Mtcp, 1, 64, true, 1);
    results
        .experiment("tab05")
        .metric(
            "baseline_mean_ms",
            "ms",
            model.closed_loop_latency_ms(1000, baseline_rps),
        )
        .metric(
            "kernel_mean_ms",
            "ms",
            model.closed_loop_latency_ms(1000, kernel_rps),
        )
        .metric(
            "mtcp_mean_ms",
            "ms",
            model.closed_loop_latency_ms(1000, mtcp_rps),
        );
    let rows = vec![
        vec![
            "Baseline".into(),
            f(model.closed_loop_latency_ms(1000, baseline_rps), 0),
        ],
        vec![
            "NetKernel (kernel NSM)".into(),
            f(model.closed_loop_latency_ms(1000, kernel_rps), 0),
        ],
        vec![
            "NetKernel (mTCP NSM)".into(),
            f(model.closed_loop_latency_ms(1000, mtcp_rps), 0),
        ],
    ];
    print_table(
        "Table 5: mean response time (ms) for 64B messages, concurrency 1000 (Little's law)",
        &["configuration", "mean (ms)"],
        &rows,
    );
}

/// Table 6: CPU overhead at matched bulk throughput.
fn tab06_cpu_overhead_throughput(model: &PerfModel, results: &mut BenchResults) {
    let rows: Vec<Vec<String>> = [20.0f64, 40.0, 60.0, 80.0, 100.0]
        .iter()
        .map(|&gbps| vec![f(gbps, 0), f(model.cpu_overhead_throughput(8192), 2)])
        .collect();
    print_table(
        "Table 6: normalised CPU usage (NetKernel / Baseline) at matched throughput, 8KB messages",
        &["throughput (Gbps)", "normalised CPU"],
        &rows,
    );
    results.experiment("tab06").metric(
        "normalised_cpu_8k",
        "ratio",
        model.cpu_overhead_throughput(8192),
    );
}

/// Table 7: CPU overhead at matched request rate.
fn tab07_cpu_overhead_rps(model: &PerfModel, results: &mut BenchResults) {
    let rows: Vec<Vec<String>> = [100u32, 200, 300, 400, 500]
        .iter()
        .map(|&krps| vec![format!("{krps}K"), f(model.cpu_overhead_rps(64), 2)])
        .collect();
    print_table(
        "Table 7: normalised CPU usage (NetKernel / Baseline) at matched RPS, 64B messages",
        &["requests/s", "normalised CPU"],
        &rows,
    );
    results
        .experiment("tab07")
        .metric("normalised_cpu_64", "ratio", model.cpu_overhead_rps(64));
}

/// Control-plane observability: the ramping multi-tenant scenario of the
/// control tests, with the decision log and the per-epoch utilisation time
/// series surfaced as part of the perf trajectory.
fn ctrl01_control_plane(results: &mut BenchResults) {
    use nk_types::{
        ControlAction, ControlPolicy, HostConfig, NsmConfig, NsmId, VmConfig, VmId, VmToNsmPolicy,
    };
    use nk_workload::{BurstyClient, BurstyConfig, BurstyScenario};

    let policy = ControlPolicy::new()
        .with_epoch_ns(1_000_000)
        .with_window(2)
        .with_watermarks(0.10, 0.60)
        .with_core_bounds(1, 2)
        .with_cooldown(1)
        .with_rebalance(0.50, 1)
        .with_pool_clock_hz(1_000_000);
    let host = HostConfig::new()
        .with_vm(VmConfig::new(VmId(1)))
        .with_vm(VmConfig::new(VmId(2)))
        .with_vm(VmConfig::new(VmId(3)))
        .with_nsm(NsmConfig::kernel(NsmId(1)))
        .with_nsm(NsmConfig::kernel(NsmId(2)))
        .with_mapping(VmToNsmPolicy::Static(vec![
            (VmId(1), NsmId(1)),
            (VmId(2), NsmId(1)),
            (VmId(3), NsmId(1)),
        ]))
        .with_control(policy);
    let report = BurstyScenario::new(
        BurstyConfig::new(host)
            .with_seed(11)
            .with_client(BurstyClient::new(VmId(1), 0).with_total_bytes(96 * 1024))
            .with_client(BurstyClient::new(VmId(2), 1_000_000).with_total_bytes(96 * 1024))
            .with_client(BurstyClient::new(VmId(3), 2_000_000).with_total_bytes(96 * 1024)),
    )
    .run()
    .expect("control scenario runs");
    assert!(report.completed, "control scenario must complete");

    let count = |pred: fn(&ControlAction) -> bool| {
        report.control.iter().filter(|e| pred(&e.action)).count() as f64
    };
    let scale_ups = count(|a| matches!(a, ControlAction::ScaleUp { .. }));
    let scale_downs = count(|a| matches!(a, ControlAction::ScaleDown { .. }));
    let rebalances = count(|a| matches!(a, ControlAction::Rebalance { .. }));
    let nsm1 = report
        .telemetry
        .nsm_utilisation
        .get(&NsmId(1))
        .cloned()
        .unwrap_or_default();
    let rows: Vec<Vec<String>> = report
        .control
        .iter()
        .map(|e| {
            vec![
                format!("{}", e.at_ns / 1_000_000),
                e.epoch.to_string(),
                format!("{:?}", e.action),
            ]
        })
        .collect();
    print_table(
        "Control plane: decision log of the ramping 3-tenant scenario",
        &["t (ms)", "epoch", "action"],
        &rows,
    );
    println!(
        "epochs sampled {} · NSM1 utilisation mean {:.2} / max {:.2} · actions/epoch mean {:.2}",
        nsm1.len(),
        nsm1.mean(),
        nsm1.max(),
        report.telemetry.actions_per_epoch.mean(),
    );
    results
        .experiment("ctrl01")
        .metric("control_events", "count", report.control.len() as f64)
        .metric("scale_ups", "count", scale_ups)
        .metric("scale_downs", "count", scale_downs)
        .metric("rebalances", "count", rebalances)
        .metric("epochs_sampled", "count", nsm1.len() as f64)
        .metric("nsm1_util_mean", "ratio", nsm1.mean())
        .metric("nsm1_util_max", "ratio", nsm1.max())
        .metric("bytes_verified", "bytes", report.bytes_verified as f64);
}

/// Cluster fabric: a drained cross-host migration under byte-verified
/// cross-host traffic, with the event log and digest as the determinism
/// fingerprint.
fn clu01_cluster_migration(results: &mut BenchResults) {
    use nk_types::{
        ClusterConfig, HostConfig, HostId, NsmConfig, NsmId, VmConfig, VmId, VmToNsmPolicy,
    };
    use nk_workload::{ClusterScenario, ClusterScenarioConfig, ClusterTenant};

    let host = |id: u8, vms: &[u8]| {
        let mut cfg = HostConfig::new()
            .with_host_id(HostId(id))
            .with_nsm(NsmConfig::kernel(NsmId(1)))
            .with_mapping(VmToNsmPolicy::All(NsmId(1)));
        for vm in vms {
            cfg = cfg.with_vm(VmConfig::new(VmId(*vm)));
        }
        cfg
    };
    let cluster = ClusterConfig::new()
        .with_host(host(1, &[1]))
        .with_host(host(2, &[2]))
        .with_uplink_latency_us(2);
    let report = ClusterScenario::new(
        ClusterScenarioConfig::new(cluster)
            .with_seed(11)
            .with_tenant(ClusterTenant::new(VmId(1), 0).with_total_bytes(96 * 1024))
            .with_tenant(ClusterTenant::new(VmId(2), 500_000).with_total_bytes(64 * 1024))
            .with_migration(2_000_000, VmId(1), HostId(2)),
    )
    .run()
    .expect("cluster scenario runs");
    assert!(report.completed, "cluster scenario must complete");

    let rows: Vec<Vec<String>> = report
        .events
        .iter()
        .map(|e| {
            vec![
                format!("{}", e.at_ns / 1_000_000),
                e.epoch.to_string(),
                format!("{:?}", e.action),
            ]
        })
        .collect();
    print_table(
        "Cluster: drained cross-host migration event log",
        &["t (ms)", "epoch", "action"],
        &rows,
    );
    println!(
        "bytes verified {} · steps {} · event-log digest {:#018x}",
        report.bytes_verified, report.steps, report.event_digest
    );
    results
        .experiment("clu01")
        .metric("bytes_verified", "bytes", report.bytes_verified as f64)
        .metric("steps", "count", report.steps as f64)
        .metric("migrations", "count", report.stats.migrations as f64)
        .metric(
            "drains_completed",
            "count",
            report.stats.drains_completed as f64,
        )
        .metric(
            "shares_retired",
            "count",
            report.stats.shares_retired as f64,
        )
        .metric("cluster_events", "count", report.events.len() as f64)
        .metric(
            "rounds_per_step",
            "ratio",
            report.stats.rounds as f64 / report.stats.steps.max(1) as f64,
        );
}

/// wm01: drained vs warm migration — how long a long-running tenant keeps
/// the source share pinned. The drained mode waits for the connection's
/// next rotation point; the warm mode transplants the connection and
/// retires the share in the same instant.
fn wm01_warm_vs_drained(results: &mut BenchResults) {
    use nk_obs::MigrationPhase;
    use nk_types::{
        ClusterAction, ClusterConfig, HostConfig, HostId, NsmConfig, NsmId, VmConfig, VmId,
        VmToNsmPolicy,
    };
    use nk_workload::{ClusterScenario, ClusterScenarioConfig, ClusterTenant};

    let host = |id: u8, vms: &[u8]| {
        let mut cfg = HostConfig::new()
            .with_host_id(HostId(id))
            .with_nsm(NsmConfig::kernel(NsmId(1)))
            .with_mapping(VmToNsmPolicy::All(NsmId(1)));
        for vm in vms {
            cfg = cfg.with_vm(VmConfig::new(VmId(*vm)));
        }
        cfg
    };
    let cluster = || {
        ClusterConfig::new()
            .with_host(host(1, &[1]))
            .with_host(host(2, &[]))
            .with_uplink_latency_us(2)
    };

    // Drained: the tenant rotates its connection every 4 chunks, so the
    // drain waits for the rotation point.
    let drained = ClusterScenario::new(
        ClusterScenarioConfig::new(cluster())
            .with_seed(11)
            .with_tenant(ClusterTenant::new(VmId(1), 0).with_total_bytes(96 * 1024))
            .with_migration(2_000_000, VmId(1), HostId(2)),
    )
    .run()
    .expect("drained scenario runs");
    assert!(drained.completed, "drained scenario must complete");
    let at = |events: &[nk_types::ClusterEvent], pick: &dyn Fn(&ClusterAction) -> bool| {
        events
            .iter()
            .find(|e| pick(&e.action))
            .map(|e| e.at_ns)
            .expect("event present")
    };
    let drained_start = at(&drained.events, &|a| {
        matches!(a, ClusterAction::MigrateVm { .. })
    });
    let drained_done = at(&drained.events, &|a| {
        matches!(a, ClusterAction::DrainComplete { .. })
    });
    let drained_wait_ns = drained_done - drained_start;

    // Warm: the same transfer over one long-lived connection (a drained
    // migration would stall until the transfer ends); the share retires in
    // the same instant the handover lands.
    let warm = ClusterScenario::new(
        ClusterScenarioConfig::new(cluster())
            .with_seed(11)
            .with_tenant(
                ClusterTenant::new(VmId(1), 0)
                    .with_total_bytes(96 * 1024)
                    .long_lived(),
            )
            .with_warm_migration(2_000_000, VmId(1), HostId(2)),
    )
    .run()
    .expect("warm scenario runs");
    assert!(warm.completed, "warm scenario must complete");
    // The warm side is timed from the flight recorder's phase timeline
    // rather than event-log archaeology: the handover spans the freeze
    // window's opening to the thaw.
    let phase = |p: MigrationPhase| {
        warm.obs
            .phases
            .iter()
            .find(|w| w.vm == Some(VmId(1)) && w.phase == p)
            .copied()
            .expect("warm phase recorded")
    };
    let freeze = phase(MigrationPhase::Freeze);
    let thaw = phase(MigrationPhase::Thaw);
    let warm_wait_ns = thaw.end_ns - freeze.start_ns;
    assert!(
        warm.obs.phases.iter().all(|w| w.ok),
        "every warm phase must succeed: {:?}",
        warm.obs.phases
    );

    print_table(
        "wm01: source-share handover time, drained vs warm migration",
        &["mode", "handover (ms)", "reconnects", "bytes verified"],
        &[
            vec![
                "drained".into(),
                f(drained_wait_ns as f64 / 1e6, 3),
                drained.reconnects.to_string(),
                drained.bytes_verified.to_string(),
            ],
            vec![
                "warm".into(),
                f(warm_wait_ns as f64 / 1e6, 3),
                warm.reconnects.to_string(),
                warm.bytes_verified.to_string(),
            ],
        ],
    );
    println!(
        "warm handover: {} connection(s) transplanted in {} freeze step(s); drained waited {:.3} ms",
        warm.stats.conns_transplanted,
        warm.stats.freeze_steps,
        drained_wait_ns as f64 / 1e6
    );
    println!("recorder timeline of the warm handover:");
    for w in warm.obs.phases.iter().filter(|w| w.vm == Some(VmId(1))) {
        println!(
            "  {:>7?} [{:>9} .. {:>9}]ns width {:>6}ns",
            w.phase,
            w.start_ns,
            w.end_ns,
            w.width_ns()
        );
    }
    results
        .experiment("wm01")
        .metric("drained_drain_wait_ms", "ms", drained_wait_ns as f64 / 1e6)
        .metric("warm_handover_ms", "ms", warm_wait_ns as f64 / 1e6)
        .metric(
            "warm_freeze_window_ms",
            "ms",
            freeze.width_ns() as f64 / 1e6,
        )
        .metric("warm_freeze_steps", "count", warm.stats.freeze_steps as f64)
        .metric(
            "conns_transplanted",
            "count",
            warm.stats.conns_transplanted as f64,
        )
        .metric("warm_reconnects", "count", warm.reconnects as f64)
        .metric(
            "bytes_verified_total",
            "bytes",
            (drained.bytes_verified + warm.bytes_verified) as f64,
        );
}

/// ev01: planned host evacuation vs a naive serial drain — wall-clock to
/// clear a two-VM host and connections broken while doing it.
///
/// The evacuation arm compiles one plan (both VMs warm, paced waves,
/// shares retired at the tail) and lands in a single control epoch with
/// zero reconnects. The naive arm drains the VMs one at a time — each
/// scripted drained migration waits for its tenant's next connection
/// rotation — so the clear-out takes orders of magnitude longer.
fn ev01_evacuation(results: &mut BenchResults) {
    use nk_ctrl::PlanEventKind;
    use nk_obs::{EventClass, MigrationPhase, ObsEventKind, ObsFilter};
    use nk_types::{
        ClusterAction, ClusterConfig, HostConfig, HostId, NsmConfig, NsmId, VmConfig, VmId,
        VmToNsmPolicy,
    };
    use nk_workload::{ClusterScenario, ClusterScenarioConfig, ClusterTenant};

    let empty_host = |id: u8| {
        HostConfig::new()
            .with_host_id(HostId(id))
            .with_nsm(NsmConfig::kernel(NsmId(1)))
            .with_mapping(VmToNsmPolicy::All(NsmId(1)))
    };
    // Host 1 maps each VM to its own NSM, so both evacuation moves take
    // the warm path.
    let cluster = || {
        ClusterConfig::new()
            .with_host(
                HostConfig::new()
                    .with_host_id(HostId(1))
                    .with_nsm(NsmConfig::kernel(NsmId(1)))
                    .with_nsm(NsmConfig::kernel(NsmId(2)))
                    .with_mapping(VmToNsmPolicy::Static(vec![
                        (VmId(1), NsmId(1)),
                        (VmId(2), NsmId(2)),
                    ]))
                    .with_vm(VmConfig::new(VmId(1)))
                    .with_vm(VmConfig::new(VmId(2))),
            )
            .with_host(empty_host(2))
            .with_host(empty_host(3))
            .with_uplink_latency_us(2)
    };

    // Planned evacuation: both tenants hold long-lived connections (the
    // worst case for draining) and the whole host clears in one plan.
    let evac = ClusterScenario::new(
        ClusterScenarioConfig::new(cluster())
            .with_seed(11)
            .with_tenant(
                ClusterTenant::new(VmId(1), 0)
                    .with_total_bytes(96 * 1024)
                    .long_lived(),
            )
            .with_tenant(
                ClusterTenant::new(VmId(2), 0)
                    .with_total_bytes(96 * 1024)
                    .long_lived(),
            )
            .with_evacuation(2_000_000, HostId(1), 2),
    )
    .run()
    .expect("evacuation scenario runs");
    assert!(evac.completed, "evacuation scenario must complete");
    assert_eq!(evac.stats.evac_commits, 1, "the plan must commit");
    // Timing comes from the flight recorder: the plan events mirrored into
    // the event ring bracket the plan, and the per-step phase windows give
    // the share retirements and the phase breakdown.
    let plan_filter = ObsFilter::new().with_class(EventClass::Plan);
    let plan_at = |pick: &dyn Fn(&PlanEventKind) -> bool| {
        evac.obs
            .events
            .iter()
            .filter(|e| plan_filter.matches(e))
            .find(|e| matches!(&e.kind, ObsEventKind::Plan(k) if pick(k)))
            .map(|e| e.at_ns)
            .expect("plan event recorded")
    };
    let evac_start = plan_at(&|k| matches!(k, PlanEventKind::PlanStarted { .. }));
    let evac_done = plan_at(&|k| matches!(k, PlanEventKind::PlanCommitted { .. }));
    let retired_at = evac
        .obs
        .phases
        .iter()
        .filter(|w| w.phase == MigrationPhase::Retire)
        .map(|w| w.end_ns)
        .max()
        .expect("both shares retire");
    assert_eq!(
        retired_at,
        evac.events
            .iter()
            .filter(|e| matches!(e.action, ClusterAction::ScaleToZero { .. }))
            .map(|e| e.at_ns)
            .max()
            .expect("both shares retire"),
        "recorder and event log must agree on retirement time"
    );
    let evac_wall_ns = evac_done - evac_start;
    let evac_retire_ns = retired_at - evac_start;

    // Naive serial drain: the same host cleared one drained migration at
    // a time; rotating tenants so the drains can actually complete.
    let naive = ClusterScenario::new(
        ClusterScenarioConfig::new(cluster())
            .with_seed(11)
            .with_tenant(ClusterTenant::new(VmId(1), 0).with_total_bytes(96 * 1024))
            .with_tenant(ClusterTenant::new(VmId(2), 0).with_total_bytes(96 * 1024))
            .with_migration(2_000_000, VmId(1), HostId(2))
            .with_migration(6_000_000, VmId(2), HostId(3)),
    )
    .run()
    .expect("naive drain scenario runs");
    assert!(naive.completed, "naive drain scenario must complete");
    let naive_done = naive
        .events
        .iter()
        .filter(|e| matches!(e.action, ClusterAction::DrainComplete { .. }))
        .map(|e| e.at_ns)
        .max()
        .expect("both drains complete");
    let naive_wall_ns = naive_done - 2_000_000;

    print_table(
        "ev01: clearing a two-VM host, planned evacuation vs serial drain",
        &["mode", "wall-clock (ms)", "reconnects", "bytes verified"],
        &[
            vec![
                "evacuation".into(),
                f(evac_wall_ns as f64 / 1e6, 3),
                evac.reconnects.to_string(),
                evac.bytes_verified.to_string(),
            ],
            vec![
                "serial drain".into(),
                f(naive_wall_ns as f64 / 1e6, 3),
                naive.reconnects.to_string(),
                naive.bytes_verified.to_string(),
            ],
        ],
    );
    println!(
        "evacuation: {} warm move(s), {} connection(s) transplanted, both shares retired {:.3} ms after plan start",
        evac.stats.warm_migrations,
        evac.stats.conns_transplanted,
        evac_retire_ns as f64 / 1e6
    );
    // Recorder phase breakdown: total virtual time per phase. The freeze
    // pause is recorded per VM at the wave's shared freeze window (step
    // `None`); every other phase is a plan-step coordinator action, so its
    // windows come from the per-step captures (step `Some`).
    println!("recorder phase totals:");
    let record = results.experiment("ev01");
    for p in [
        MigrationPhase::Freeze,
        MigrationPhase::Export,
        MigrationPhase::Reroute,
        MigrationPhase::Install,
        MigrationPhase::Thaw,
        MigrationPhase::Retire,
    ] {
        let windows: Vec<_> = evac
            .obs
            .phases
            .iter()
            .filter(|w| {
                w.phase == p
                    && if p == MigrationPhase::Freeze {
                        w.step.is_none()
                    } else {
                        w.step.is_some()
                    }
            })
            .collect();
        if windows.is_empty() {
            continue;
        }
        let total: u64 = windows.iter().map(|w| w.width_ns()).sum();
        println!(
            "  {:>7?}: {} window(s), {:.3} ms total",
            p,
            windows.len(),
            total as f64 / 1e6
        );
        record.metric(
            &format!("phase_{}_total_ms", format!("{p:?}").to_lowercase()),
            "ms",
            total as f64 / 1e6,
        );
    }
    record
        .metric("evac_wall_ms", "ms", evac_wall_ns as f64 / 1e6)
        .metric("evac_retire_ms", "ms", evac_retire_ns as f64 / 1e6)
        .metric("evac_reconnects", "count", evac.reconnects as f64)
        .metric(
            "conns_transplanted",
            "count",
            evac.stats.conns_transplanted as f64,
        )
        .metric("naive_drain_wall_ms", "ms", naive_wall_ns as f64 / 1e6)
        .metric("naive_reconnects", "count", naive.reconnects as f64);
}

/// par01: the sharded cluster datapath — steps/sec vs worker threads at
/// 2, 8 and 16 hosts.
///
/// Every host runs a tenant streaming 4 KiB chunks to a host-local echo
/// server (datapath work that lives inside one shard), and the edge hosts
/// additionally stream to a ToR-attached server (cross-shard traffic over
/// the uplink channels). Two rates are reported per thread count:
///
/// * **modeled** — the serial wall rate scaled by `serial_work /
///   critical_work` from the executor (per round: the largest shard plus
///   the serial hub). This is the schedule's speedup and is what the
///   acceptance gate checks, because CI containers frequently pin the
///   whole process to a single core, where parallel wall clock measures
///   contention rather than the sharding.
/// * **wall** — what this machine actually did, for honesty.
///
/// The run also asserts the determinism contract: cluster stats, guest
/// byte counts and the event digest are identical for every thread count.
fn par01_parallel_datapath(results: &mut BenchResults) {
    use nk_cluster::Cluster;
    use nk_types::addr::host_prefix;
    use nk_types::{
        ClusterConfig, HostConfig, HostId, NsmConfig, NsmId, SockAddr, SocketApi, VmConfig, VmId,
        VmToNsmPolicy,
    };

    const STEPS: usize = 60;
    const DT_NS: u64 = 100_000;
    const CHUNK: usize = 4096;
    const ECHO_PORT: u16 = 7;
    const TOR_IP: u32 = 0xC0A8_0001; // 192.168.0.1, outside every host block
    const TOR_PORT: u16 = 9;

    struct RunOut {
        wall_steps_per_s: f64,
        modeled_speedup: f64,
        hub_share: f64,
        barrier_frames: u64,
        threads_used: usize,
        stats: nk_cluster::ClusterStats,
        digest: u64,
        guest_bytes: u64,
    }

    let run = |hosts: u8, threads: usize| -> RunOut {
        let mut cfg = ClusterConfig::new()
            .with_uplink_latency_us(2)
            .with_threads(threads);
        for h in 1..=hosts {
            cfg = cfg.with_host(
                HostConfig::new()
                    .with_host_id(HostId(h))
                    .with_nsm(NsmConfig::kernel(NsmId(1)))
                    .with_mapping(VmToNsmPolicy::All(NsmId(1)))
                    .with_vm(VmConfig::new(VmId(h))),
            );
        }
        let mut cluster = Cluster::new(cfg).expect("valid par01 cluster");

        // The ToR server the edge hosts stream to (cross-shard traffic).
        let tor = cluster.add_remote(TOR_IP);
        let tor_ls = tor.socket();
        tor.bind(tor_ls, SockAddr::new(0, TOR_PORT)).unwrap();
        tor.listen(tor_ls, 64).unwrap();

        // Per host: a local echo server plus one tenant connection to it.
        let local_ip = |h: u8| host_prefix(HostId(h)) | 0xFF;
        let mut guest_socks = Vec::new();
        let mut local_ls = Vec::new();
        for h in 1..=hosts {
            let host = cluster.host_mut(HostId(h)).unwrap();
            let echo = host.add_remote(local_ip(h));
            let ls = echo.socket();
            echo.bind(ls, SockAddr::new(0, ECHO_PORT)).unwrap();
            echo.listen(ls, 16).unwrap();
            local_ls.push(ls);
            let guest = cluster.guest_on(HostId(h), VmId(h)).unwrap();
            let s = guest.socket().unwrap();
            guest
                .connect(s, SockAddr::new(local_ip(h), ECHO_PORT))
                .unwrap();
            guest_socks.push(s);
        }
        // The edge tenants (first and last host) also talk across the ToR.
        let mut tor_socks = Vec::new();
        for h in [1, hosts] {
            let guest = cluster.guest_on(HostId(h), VmId(h)).unwrap();
            let s = guest.socket().unwrap();
            guest.connect(s, SockAddr::new(TOR_IP, TOR_PORT)).unwrap();
            tor_socks.push((h, s));
        }
        cluster.run(5, DT_NS); // handshakes

        let chunk = [0x5Au8; CHUNK];
        let mut buf = [0u8; CHUNK];
        let mut guest_bytes = 0u64;
        let mut echo_conns: Vec<Vec<_>> = vec![Vec::new(); hosts as usize];
        let mut tor_conns = Vec::new();
        let start = std::time::Instant::now();
        for _ in 0..STEPS {
            // Tenants: keep a chunk in flight, drain the echoes.
            for (i, &s) in guest_socks.iter().enumerate() {
                let h = i as u8 + 1;
                let guest = cluster.guest_on(HostId(h), VmId(h)).unwrap();
                if guest.poll(s).writable() {
                    let _ = guest.send(s, &chunk);
                }
                while let Ok(n) = guest.recv(s, &mut buf) {
                    if n == 0 {
                        break;
                    }
                    guest_bytes += n as u64;
                }
            }
            for &(h, s) in &tor_socks {
                let guest = cluster.guest_on(HostId(h), VmId(h)).unwrap();
                if guest.poll(s).writable() {
                    let _ = guest.send(s, &chunk[..256]);
                }
                while let Ok(n) = guest.recv(s, &mut buf) {
                    if n == 0 {
                        break;
                    }
                    guest_bytes += n as u64;
                }
            }
            // Echo servers: accept whatever arrived, echo whatever is read.
            for h in 1..=hosts {
                let i = h as usize - 1;
                let echo = cluster
                    .host_mut(HostId(h))
                    .unwrap()
                    .remote_mut(local_ip(h))
                    .unwrap();
                while let Ok((c, _)) = echo.accept(local_ls[i]) {
                    echo_conns[i].push(c);
                }
                for &c in &echo_conns[i] {
                    while let Ok(n) = echo.recv(c, &mut buf) {
                        if n == 0 {
                            break;
                        }
                        let _ = echo.send(c, &buf[..n]);
                    }
                }
            }
            let tor = cluster.remote_mut(TOR_IP).unwrap();
            while let Ok((c, _)) = tor.accept(tor_ls) {
                tor_conns.push(c);
            }
            for &c in &tor_conns {
                while let Ok(n) = tor.recv(c, &mut buf) {
                    if n == 0 {
                        break;
                    }
                    let _ = tor.send(c, &buf[..n]);
                }
            }
            cluster.step(DT_NS);
        }
        let elapsed = start.elapsed().as_secs_f64().max(1e-9);

        let exec = cluster.exec_stats();
        RunOut {
            wall_steps_per_s: STEPS as f64 / elapsed,
            modeled_speedup: exec.modeled_speedup(),
            hub_share: exec.hub_work as f64 / exec.serial_work.max(1) as f64,
            barrier_frames: exec.barrier_frames,
            threads_used: exec.threads,
            stats: cluster.stats(),
            digest: cluster.event_digest(),
            guest_bytes,
        }
    };

    let record = results.experiment("par01");
    let mut rows = Vec::new();
    let mut speedup_h16_t4 = 0.0;
    for &hosts in &[2u8, 8, 16] {
        let base = run(hosts, 1);
        assert!(base.guest_bytes > 0, "h{hosts}: the workload must flow");
        for &threads in &[1usize, 2, 4, 8] {
            let parallel;
            let out = if threads == 1 {
                &base
            } else {
                parallel = run(hosts, threads);
                &parallel
            };
            // The determinism contract: thread count changes nothing
            // observable.
            assert_eq!(out.stats, base.stats, "h{hosts} t{threads}: stats");
            assert_eq!(out.digest, base.digest, "h{hosts} t{threads}: digest");
            assert_eq!(
                out.guest_bytes, base.guest_bytes,
                "h{hosts} t{threads}: bytes"
            );
            let modeled = base.wall_steps_per_s * out.modeled_speedup;
            if hosts == 16 && threads == 4 {
                speedup_h16_t4 = out.modeled_speedup;
            }
            rows.push(vec![
                hosts.to_string(),
                format!("{threads} ({})", out.threads_used),
                f(modeled, 0),
                f(out.modeled_speedup, 2),
                f(out.wall_steps_per_s, 0),
                format!("{:.0}%", 100.0 * out.hub_share),
                out.barrier_frames.to_string(),
            ]);
            record
                .metric(
                    &format!("modeled_steps_per_s_h{hosts}_t{threads}"),
                    "steps/s",
                    modeled,
                )
                .metric(
                    &format!("modeled_speedup_h{hosts}_t{threads}"),
                    "x",
                    out.modeled_speedup,
                )
                .metric(
                    &format!("wall_steps_per_s_h{hosts}_t{threads}"),
                    "steps/s",
                    out.wall_steps_per_s,
                );
        }
    }
    record.metric("speedup_h16_t4", "x", speedup_h16_t4);
    print_table(
        "par01: sharded datapath — steps/sec vs worker threads (modeled = serial rate x schedule speedup)",
        &[
            "hosts",
            "threads (used)",
            "modeled steps/s",
            "speedup",
            "wall steps/s",
            "hub share",
            "barrier frames",
        ],
        &rows,
    );
    println!(
        "16 hosts @ 4 threads: modeled speedup {speedup_h16_t4:.2}x over the serial walk \
         (per-round critical path = max shard + hub; wall clock on this machine depends on \
         available cores)"
    );
    assert!(
        speedup_h16_t4 >= 2.0,
        "acceptance: 16-host workload must model >= 2x at 4 threads, got {speedup_h16_t4:.2}"
    );
}

/// par02: intra-host sharding — steps/sec and modeled speedup for 1-host
/// and 2-host topologies of 8 NSM shares each, at 1/2/4 worker threads.
///
/// This is the shape host-granularity sharding cannot help: par01's unit
/// is the host, so a single host models 1.0x at any thread count. With
/// [`nk_types::ClusterConfig::shard_within_hosts`] each share lane (engine
/// slice + service + stack) is dealt onto threads separately and only the
/// host hub — resident engine, ledger charges, vNIC switch — stays serial
/// at the round barrier.
///
/// The workload keeps the datapath inside the lanes: shares are paired on
/// each host and the VM on one share streams 4 KiB chunks over TCP to a VM
/// on its partner share, which echoes. Stack, service and engine work all
/// happen lane-side; the hub only forwards the frames between the paired
/// vNICs. As in par01, the **modeled** rate (serial wall rate x
/// `serial_work / critical_work`) is the gate — CI containers often pin
/// the process to one core — and the wall rate is reported for honesty.
///
/// The determinism contract is asserted three ways per topology: cluster
/// stats, event digest and echoed bytes are identical across thread
/// counts, and identical again between shard-mode on and off for the
/// serial run.
fn par02_intra_host_sharding(results: &mut BenchResults) {
    use nk_cluster::Cluster;
    use nk_types::{
        ClusterConfig, HostConfig, HostId, NsmConfig, NsmId, SockAddr, SocketApi, VmConfig, VmId,
        VmToNsmPolicy,
    };

    const STEPS: usize = 60;
    const DT_NS: u64 = 100_000;
    const CHUNK: usize = 4096;
    const SHARES: u8 = 8;
    const PORT: u16 = 7;

    struct RunOut {
        wall_steps_per_s: f64,
        modeled_speedup: f64,
        hub_share: f64,
        threads_used: usize,
        stats: nk_cluster::ClusterStats,
        digest: u64,
        guest_bytes: u64,
    }

    let vm_of = |h: u8, n: u8| VmId((h - 1) * SHARES + n);

    let run = |hosts: u8, threads: usize, shard: bool| -> RunOut {
        let mut cfg = ClusterConfig::new()
            .with_uplink_latency_us(2)
            .with_threads(threads)
            .with_shard_within_hosts(shard);
        for h in 1..=hosts {
            let mut host = HostConfig::new().with_host_id(HostId(h));
            let mut map = Vec::new();
            for n in 1..=SHARES {
                host = host
                    .with_nsm(NsmConfig::kernel(NsmId(n)))
                    .with_vm(VmConfig::new(vm_of(h, n)));
                map.push((vm_of(h, n), NsmId(n)));
            }
            cfg = cfg.with_host(host.with_mapping(VmToNsmPolicy::Static(map)));
        }
        let mut cluster = Cluster::new(cfg).expect("valid par02 cluster");

        // Pair the shares: the VM on share 2k-1 listens, the VM on share
        // 2k streams to it across the host's vNIC switch. Four independent
        // TCP flows per host, each touching exactly two lanes.
        let mut servers = Vec::new();
        let mut clients = Vec::new();
        for h in 1..=hosts {
            for k in 0..SHARES / 2 {
                let (sn, cn) = (2 * k + 1, 2 * k + 2);
                let addr = cluster.host(HostId(h)).unwrap().nsm_addr(NsmId(sn));
                let guest = cluster.guest_on(HostId(h), vm_of(h, sn)).unwrap();
                let ls = guest.socket().unwrap();
                guest.bind(ls, SockAddr::new(0, PORT)).unwrap();
                guest.listen(ls, 8).unwrap();
                servers.push((h, vm_of(h, sn), ls));
                let guest = cluster.guest_on(HostId(h), vm_of(h, cn)).unwrap();
                let s = guest.socket().unwrap();
                guest.connect(s, SockAddr::new(addr, PORT)).unwrap();
                clients.push((h, vm_of(h, cn), s));
            }
        }
        cluster.run(5, DT_NS); // handshakes

        let chunk = [0x5Au8; CHUNK];
        let mut buf = [0u8; CHUNK];
        let mut guest_bytes = 0u64;
        let mut server_conns = Vec::new();
        let start = std::time::Instant::now();
        for _ in 0..STEPS {
            for &(h, vm, s) in &clients {
                let guest = cluster.guest_on(HostId(h), vm).unwrap();
                if guest.poll(s).writable() {
                    let _ = guest.send(s, &chunk);
                }
                while let Ok(n) = guest.recv(s, &mut buf) {
                    if n == 0 {
                        break;
                    }
                    guest_bytes += n as u64;
                }
            }
            for &(h, vm, ls) in &servers {
                let guest = cluster.guest_on(HostId(h), vm).unwrap();
                while let Ok((c, _)) = guest.accept(ls) {
                    server_conns.push((h, vm, c));
                }
            }
            for &(h, vm, c) in &server_conns {
                let guest = cluster.guest_on(HostId(h), vm).unwrap();
                while let Ok(n) = guest.recv(c, &mut buf) {
                    if n == 0 {
                        break;
                    }
                    let _ = guest.send(c, &buf[..n]);
                }
            }
            cluster.step(DT_NS);
        }
        let elapsed = start.elapsed().as_secs_f64().max(1e-9);

        let exec = cluster.exec_stats();
        RunOut {
            wall_steps_per_s: STEPS as f64 / elapsed,
            modeled_speedup: exec.modeled_speedup(),
            hub_share: exec.hub_work as f64 / exec.serial_work.max(1) as f64,
            threads_used: exec.threads,
            stats: cluster.stats(),
            digest: cluster.event_digest(),
            guest_bytes,
        }
    };

    let record = results.experiment("par02");
    let mut rows = Vec::new();
    let mut speedup_h1_t4 = 0.0;
    for &hosts in &[1u8, 2] {
        // The shard-mode-off serial run is the reference the whole matrix
        // must match byte-for-byte.
        let reference = run(hosts, 1, false);
        assert!(
            reference.guest_bytes > 0,
            "h{hosts}: the workload must flow"
        );
        let base = run(hosts, 1, true);
        assert_eq!(base.stats, reference.stats, "h{hosts}: shard-mode stats");
        assert_eq!(base.digest, reference.digest, "h{hosts}: shard-mode digest");
        assert_eq!(
            base.guest_bytes, reference.guest_bytes,
            "h{hosts}: shard-mode bytes"
        );
        for &threads in &[1usize, 2, 4] {
            let parallel;
            let out = if threads == 1 {
                &base
            } else {
                parallel = run(hosts, threads, true);
                &parallel
            };
            assert_eq!(out.stats, reference.stats, "h{hosts} t{threads}: stats");
            assert_eq!(out.digest, reference.digest, "h{hosts} t{threads}: digest");
            assert_eq!(
                out.guest_bytes, reference.guest_bytes,
                "h{hosts} t{threads}: bytes"
            );
            let modeled = base.wall_steps_per_s * out.modeled_speedup;
            if hosts == 1 && threads == 4 {
                speedup_h1_t4 = out.modeled_speedup;
            }
            rows.push(vec![
                format!("{hosts} x {SHARES} shares"),
                format!("{threads} ({})", out.threads_used),
                f(modeled, 0),
                f(out.modeled_speedup, 2),
                f(out.wall_steps_per_s, 0),
                format!("{:.0}%", 100.0 * out.hub_share),
            ]);
            record
                .metric(
                    &format!("modeled_steps_per_s_h{hosts}s8_t{threads}"),
                    "steps/s",
                    modeled,
                )
                .metric(
                    &format!("modeled_speedup_h{hosts}s8_t{threads}"),
                    "x",
                    out.modeled_speedup,
                )
                .metric(
                    &format!("wall_steps_per_s_h{hosts}s8_t{threads}"),
                    "steps/s",
                    out.wall_steps_per_s,
                );
        }
    }
    record.metric("speedup_h1s8_t4", "x", speedup_h1_t4);
    print_table(
        "par02: intra-host sharding — one 8-share host fills the threads host-granularity left idle",
        &[
            "topology",
            "threads (used)",
            "modeled steps/s",
            "speedup",
            "wall steps/s",
            "hub share",
        ],
        &rows,
    );
    println!(
        "1 host x 8 shares @ 4 threads: modeled speedup {speedup_h1_t4:.2}x over the serial \
         walk — the same topology models 1.00x under host-granularity sharding (par01's unit \
         floor)"
    );
    assert!(
        speedup_h1_t4 >= 2.0,
        "acceptance: a single 8-share host must model >= 2x at 4 threads, got {speedup_h1_t4:.2}"
    );
}

/// obs01: flight-recorder overhead — steps/sec with the recorder on vs
/// off, same 8-host echo workload, best-of-3 per arm. The recorder's
/// capture hooks (per-VM latency sampling, the ToR flow tap, epoch
/// sealing, event mirroring) must cost no more than 10% of the datapath
/// rate; the on-arm's dump supplies the headline latency quantiles.
fn obs01_recorder_overhead(results: &mut BenchResults) {
    use nk_cluster::Cluster;
    use nk_types::addr::host_prefix;
    use nk_types::{
        ClusterConfig, HostConfig, HostId, NsmConfig, NsmId, ObsConfig, SockAddr, SocketApi,
        VmConfig, VmId, VmToNsmPolicy,
    };

    const HOSTS: u8 = 8;
    const STEPS: usize = 400;
    const DT_NS: u64 = 100_000;
    const CHUNK: usize = 2048;
    const ECHO_PORT: u16 = 7;
    const TOR_IP: u32 = 0xC0A8_0001; // 192.168.0.1, outside every host block
    const TOR_PORT: u16 = 9;

    // One arm: every host streams to a host-local echo server and the two
    // edge hosts additionally stream across the ToR, so all capture hooks
    // (host feeds, the flow tap, epoch sealing) are exercised.
    let run = |obs: ObsConfig| {
        let mut cfg = ClusterConfig::new().with_uplink_latency_us(2).with_obs(obs);
        for h in 1..=HOSTS {
            cfg = cfg.with_host(
                HostConfig::new()
                    .with_host_id(HostId(h))
                    .with_nsm(NsmConfig::kernel(NsmId(1)))
                    .with_mapping(VmToNsmPolicy::All(NsmId(1)))
                    .with_vm(VmConfig::new(VmId(h))),
            );
        }
        let mut cluster = Cluster::new(cfg).expect("valid obs01 cluster");

        let tor = cluster.add_remote(TOR_IP);
        let tor_ls = tor.socket();
        tor.bind(tor_ls, SockAddr::new(0, TOR_PORT)).unwrap();
        tor.listen(tor_ls, 64).unwrap();

        let local_ip = |h: u8| host_prefix(HostId(h)) | 0xFF;
        let mut guest_socks = Vec::new();
        let mut local_ls = Vec::new();
        for h in 1..=HOSTS {
            let host = cluster.host_mut(HostId(h)).unwrap();
            let echo = host.add_remote(local_ip(h));
            let ls = echo.socket();
            echo.bind(ls, SockAddr::new(0, ECHO_PORT)).unwrap();
            echo.listen(ls, 16).unwrap();
            local_ls.push(ls);
            let guest = cluster.guest_on(HostId(h), VmId(h)).unwrap();
            let s = guest.socket().unwrap();
            guest
                .connect(s, SockAddr::new(local_ip(h), ECHO_PORT))
                .unwrap();
            guest_socks.push(s);
        }
        let mut tor_socks = Vec::new();
        for h in [1, HOSTS] {
            let guest = cluster.guest_on(HostId(h), VmId(h)).unwrap();
            let s = guest.socket().unwrap();
            guest.connect(s, SockAddr::new(TOR_IP, TOR_PORT)).unwrap();
            tor_socks.push((h, s));
        }
        cluster.run(5, DT_NS); // handshakes

        let chunk = [0x5Au8; CHUNK];
        let mut buf = [0u8; CHUNK];
        let mut guest_bytes = 0u64;
        let mut echo_conns: Vec<Vec<_>> = vec![Vec::new(); HOSTS as usize];
        let mut tor_conns = Vec::new();
        let start = std::time::Instant::now();
        for _ in 0..STEPS {
            for (i, &s) in guest_socks.iter().enumerate() {
                let h = i as u8 + 1;
                let guest = cluster.guest_on(HostId(h), VmId(h)).unwrap();
                if guest.poll(s).writable() {
                    let _ = guest.send(s, &chunk);
                }
                while let Ok(n) = guest.recv(s, &mut buf) {
                    if n == 0 {
                        break;
                    }
                    guest_bytes += n as u64;
                }
            }
            for &(h, s) in &tor_socks {
                let guest = cluster.guest_on(HostId(h), VmId(h)).unwrap();
                if guest.poll(s).writable() {
                    let _ = guest.send(s, &chunk[..256]);
                }
                while let Ok(n) = guest.recv(s, &mut buf) {
                    if n == 0 {
                        break;
                    }
                    guest_bytes += n as u64;
                }
            }
            for h in 1..=HOSTS {
                let i = h as usize - 1;
                let echo = cluster
                    .host_mut(HostId(h))
                    .unwrap()
                    .remote_mut(local_ip(h))
                    .unwrap();
                while let Ok((c, _)) = echo.accept(local_ls[i]) {
                    echo_conns[i].push(c);
                }
                for &c in &echo_conns[i] {
                    while let Ok(n) = echo.recv(c, &mut buf) {
                        if n == 0 {
                            break;
                        }
                        let _ = echo.send(c, &buf[..n]);
                    }
                }
            }
            let tor = cluster.remote_mut(TOR_IP).unwrap();
            while let Ok((c, _)) = tor.accept(tor_ls) {
                tor_conns.push(c);
            }
            for &c in &tor_conns {
                while let Ok(n) = tor.recv(c, &mut buf) {
                    if n == 0 {
                        break;
                    }
                    let _ = tor.send(c, &buf[..n]);
                }
            }
            cluster.step(DT_NS);
        }
        let elapsed = start.elapsed().as_secs_f64().max(1e-9);
        assert!(guest_bytes > 0, "obs01: the workload must flow");
        (STEPS as f64 / elapsed, cluster.obs_dump())
    };

    // Best-of-3 per arm: wall clock in CI containers is noisy, the fastest
    // run of each arm is the fairest overhead comparison.
    let mut off_rate = 0.0f64;
    let mut on_rate = 0.0f64;
    let mut dump = None;
    for _ in 0..3 {
        let (r_off, _) = run(ObsConfig::disabled());
        off_rate = off_rate.max(r_off);
        let (r_on, d) = run(ObsConfig::new());
        on_rate = on_rate.max(r_on);
        dump = Some(d);
    }
    let dump = dump.expect("on arm ran");
    let overhead_pct = 100.0 * (off_rate / on_rate - 1.0);

    // Headline quantiles: the busiest sealed epoch of the on arm.
    let busiest = dump
        .epochs
        .iter()
        .max_by_key(|e| e.cluster.count)
        .expect("epochs sealed");
    print_table(
        "obs01: flight-recorder overhead (8-host echo workload, best of 3)",
        &["arm", "steps/s"],
        &[
            vec!["recorder off".into(), f(off_rate, 0)],
            vec!["recorder on".into(), f(on_rate, 0)],
        ],
    );
    println!(
        "overhead {overhead_pct:.1}% · captured {} events, {} epochs, {} flows · busiest epoch: \
         {} samples, p50 {}ns, p99 {}ns, max {}ns",
        dump.events_captured,
        dump.epochs.len(),
        dump.flows.len(),
        busiest.cluster.count,
        busiest.cluster.p50_ns,
        busiest.cluster.p99_ns,
        busiest.cluster.max_ns
    );
    results
        .experiment("obs01")
        .metric("steps_per_s_off", "steps/s", off_rate)
        .metric("steps_per_s_on", "steps/s", on_rate)
        .metric("overhead_pct", "pct", overhead_pct)
        .metric("events_captured", "count", dump.events_captured as f64)
        .metric("epochs_sealed", "count", dump.epochs.len() as f64)
        .metric("hot_flows", "count", dump.flows.len() as f64)
        .metric("p50_ns", "ns", busiest.cluster.p50_ns as f64)
        .metric("p99_ns", "ns", busiest.cluster.p99_ns as f64)
        .metric("max_ns", "ns", busiest.cluster.max_ns as f64);
    assert!(
        overhead_pct <= 10.0,
        "acceptance: recorder overhead must stay within 10%, got {overhead_pct:.1}%"
    );
}
