//! Formatting helpers and machine-readable results for experiment output.
//!
//! Every experiment binary prints a small table in the same layout the paper
//! uses, so `EXPERIMENTS.md` can be checked against the output directly. On
//! top of the human tables, experiments push their headline numbers (Gbps,
//! RPS, latency statistics) into a [`BenchResults`] collector which is
//! written to `BENCH_results.json` — the file CI archives per commit so the
//! perf trajectory accumulates instead of evaporating with the build log.

use serde::{Deserialize, Serialize};

/// Deserialize a field that may be absent in a file written by an older
/// schema: a missing object key reads as `Null`, which maps to the field
/// type's default instead of failing the whole file. (Dropping the file
/// would silently discard every previously recorded experiment — the
/// accumulate-don't-clobber contract of [`BenchResults::write`] depends on
/// old files staying readable.)
fn or_default<T: Deserialize + Default>(v: &serde::Value) -> Result<T, serde::Error> {
    match v {
        serde::Value::Null => Ok(T::default()),
        other => T::from_value(other),
    }
}

/// Print a table with a title, a header row and data rows, with columns
/// aligned on width.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>w$}", c, w = widths.get(i).copied().unwrap_or(c.len())))
            .collect::<Vec<_>>()
            .join("  ")
    };
    println!(
        "{}",
        fmt_row(&header.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    );
    println!(
        "{}",
        "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len())
    );
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

/// Format a float with the given number of decimals.
pub fn f(v: f64, decimals: usize) -> String {
    format!("{v:.decimals$}")
}

/// One named number of one experiment (e.g. `send_gbps_8k` in `Gbps`).
#[derive(Clone, Debug, Default, PartialEq, Serialize)]
pub struct Metric {
    /// Machine-friendly metric name.
    pub label: String,
    /// Unit the value is expressed in (`Gbps`, `rps`, `ms`, `us`, …).
    pub unit: String,
    /// The value.
    pub value: f64,
}

impl Deserialize for Metric {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        if !matches!(v, serde::Value::Object(_)) {
            return Err(serde::Error::expected("object", "Metric"));
        }
        Ok(Metric {
            label: or_default(v.get("label"))?,
            unit: or_default(v.get("unit"))?,
            value: or_default(v.get("value"))?,
        })
    }
}

/// The machine-readable record of one experiment.
#[derive(Clone, Debug, Default, PartialEq, Serialize)]
pub struct ExperimentResult {
    /// Experiment name as used on the CLI (`fig13`, `tab05`, …).
    pub name: String,
    /// Headline metrics.
    pub metrics: Vec<Metric>,
}

impl Deserialize for ExperimentResult {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        if !matches!(v, serde::Value::Object(_)) {
            return Err(serde::Error::expected("object", "ExperimentResult"));
        }
        Ok(ExperimentResult {
            name: or_default(v.get("name"))?,
            metrics: or_default(v.get("metrics"))?,
        })
    }
}

impl ExperimentResult {
    /// Append one metric (builder style, chainable).
    pub fn metric(&mut self, label: &str, unit: &str, value: f64) -> &mut Self {
        self.metrics.push(Metric {
            label: label.to_string(),
            unit: unit.to_string(),
            value,
        });
        self
    }
}

/// Collector for a whole experiments run, serialized to
/// `BENCH_results.json`.
#[derive(Clone, Debug, Default, PartialEq, Serialize)]
pub struct BenchResults {
    /// One entry per experiment that ran, in execution order.
    pub experiments: Vec<ExperimentResult>,
}

impl Deserialize for BenchResults {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        if !matches!(v, serde::Value::Object(_)) {
            return Err(serde::Error::expected("object", "BenchResults"));
        }
        Ok(BenchResults {
            experiments: or_default(v.get("experiments"))?,
        })
    }
}

impl BenchResults {
    /// An empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Open (append) the record of one experiment.
    pub fn experiment(&mut self, name: &str) -> &mut ExperimentResult {
        self.experiments.push(ExperimentResult {
            name: name.to_string(),
            metrics: Vec::new(),
        });
        self.experiments.last_mut().expect("just pushed")
    }

    /// Pretty JSON rendering of the collected results.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("results serialize")
    }

    /// Merge these results over a previous run's parsed file: experiments
    /// re-run now replace their old entry *in place* (so the file order
    /// stays stable across partial re-runs), new ones append, everything
    /// else is kept.
    pub fn merged_over(&self, mut previous: BenchResults) -> BenchResults {
        for experiment in &self.experiments {
            match previous
                .experiments
                .iter_mut()
                .find(|e| e.name == experiment.name)
            {
                Some(slot) => *slot = experiment.clone(),
                None => previous.experiments.push(experiment.clone()),
            }
        }
        previous
    }

    /// Write the results to `path`, merging with whatever is already there:
    /// a partial run (`experiments par01`) updates its own entries and
    /// keeps every other experiment's previous numbers, so
    /// `BENCH_results.json` accumulates the perf trajectory instead of
    /// clobbering it. A missing or unparseable previous file is replaced
    /// outright.
    pub fn write(&self, path: &str) -> std::io::Result<()> {
        let merged = std::fs::read_to_string(path)
            .ok()
            .and_then(|text| serde_json::from_str::<BenchResults>(&text).ok())
            .map(|previous| self.merged_over(previous))
            .unwrap_or_else(|| self.clone());
        std::fs::write(path, merged.to_json() + "\n")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn float_formatting() {
        assert_eq!(f(1.23456, 2), "1.23");
        assert_eq!(f(100.0, 1), "100.0");
    }

    #[test]
    fn print_table_does_not_panic() {
        print_table(
            "demo",
            &["a", "b"],
            &[vec!["1".into(), "2".into()], vec!["30".into(), "4".into()]],
        );
    }

    #[test]
    fn results_collect_and_serialize() {
        let mut results = BenchResults::new();
        results
            .experiment("fig13")
            .metric("send_gbps_8k", "Gbps", 31.5)
            .metric("send_gbps_64", "Gbps", 2.1);
        results.experiment("tab05").metric("mean_ms", "ms", 14.0);
        assert_eq!(results.experiments.len(), 2);
        assert_eq!(results.experiments[0].metrics.len(), 2);

        let json = results.to_json();
        assert!(json.contains("\"fig13\""));
        assert!(json.contains("\"send_gbps_8k\""));
        assert!(json.contains("\"Gbps\""));
        assert!(json.contains("\"tab05\""));
    }

    #[test]
    fn results_round_trip_to_disk() {
        let mut results = BenchResults::new();
        results
            .experiment("fig11")
            .metric("mnqes_b256", "M/s", 198.0);
        let path = std::env::temp_dir().join("nk_bench_results_test.json");
        let path = path.to_str().unwrap();
        results.write(path).unwrap();
        let text = std::fs::read_to_string(path).unwrap();
        assert!(text.contains("mnqes_b256"));
        let parsed: BenchResults = serde_json::from_str(&text).unwrap();
        assert_eq!(parsed, results, "written file parses back losslessly");
        let _ = std::fs::remove_file(path);
    }

    /// A partial re-run updates its own experiments in place and keeps the
    /// rest of the file — the accumulate-don't-clobber contract.
    #[test]
    fn writing_merges_with_the_previous_file() {
        let path = std::env::temp_dir().join("nk_bench_results_merge_test.json");
        let path = path.to_str().unwrap();
        let mut first = BenchResults::new();
        first.experiment("fig13").metric("gbps", "Gbps", 30.0);
        first.experiment("tab05").metric("mean_ms", "ms", 14.0);
        first.write(path).unwrap();

        let mut rerun = BenchResults::new();
        rerun.experiment("tab05").metric("mean_ms", "ms", 12.5);
        rerun.experiment("par01").metric("speedup", "x", 2.5);
        rerun.write(path).unwrap();

        let merged: BenchResults =
            serde_json::from_str(&std::fs::read_to_string(path).unwrap()).unwrap();
        let names: Vec<&str> = merged.experiments.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(
            names,
            ["fig13", "tab05", "par01"],
            "prior entries keep their position, new ones append"
        );
        assert_eq!(merged.experiments[1].metrics[0].value, 12.5, "re-run wins");
        assert_eq!(merged.experiments[0].metrics[0].value, 30.0, "kept as-is");

        // An unparseable previous file is replaced, not appended to.
        std::fs::write(path, "not json").unwrap();
        rerun.write(path).unwrap();
        let replaced: BenchResults =
            serde_json::from_str(&std::fs::read_to_string(path).unwrap()).unwrap();
        assert_eq!(replaced, rerun);
        let _ = std::fs::remove_file(path);
    }

    /// A results file written by an older schema — fields missing, unknown
    /// keys present — must still merge: its experiments are kept (missing
    /// fields read as defaults), not silently dropped by a failed parse.
    #[test]
    fn writing_over_an_old_schema_file_keeps_its_experiments() {
        let path = std::env::temp_dir().join("nk_bench_results_stale_test.json");
        let path = path.to_str().unwrap();
        // Hand-written stale file: `unit` is missing from the metric,
        // `schema` and `host` are keys this version has never heard of.
        std::fs::write(
            path,
            r#"{
  "experiments": [
    {
      "name": "old01",
      "metrics": [
        { "label": "gbps", "value": 12.5, "host": "ci-runner-3" }
      ]
    }
  ],
  "schema": 0
}"#,
        )
        .unwrap();

        let mut rerun = BenchResults::new();
        rerun.experiment("new01").metric("speedup", "x", 2.5);
        rerun.write(path).unwrap();

        let merged: BenchResults =
            serde_json::from_str(&std::fs::read_to_string(path).unwrap()).unwrap();
        let names: Vec<&str> = merged.experiments.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(
            names,
            ["old01", "new01"],
            "the old-schema experiment survives the merge"
        );
        assert_eq!(merged.experiments[0].metrics[0].label, "gbps");
        assert_eq!(merged.experiments[0].metrics[0].value, 12.5);
        assert_eq!(
            merged.experiments[0].metrics[0].unit, "",
            "a missing field reads as its default"
        );
        let _ = std::fs::remove_file(path);
    }
}
