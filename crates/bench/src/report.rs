//! Formatting helpers for experiment output.
//!
//! Every experiment binary prints a small table in the same layout the paper
//! uses, so `EXPERIMENTS.md` can be checked against the output directly.

/// Print a table with a title, a header row and data rows, with columns
/// aligned on width.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>w$}", c, w = widths.get(i).copied().unwrap_or(c.len())))
            .collect::<Vec<_>>()
            .join("  ")
    };
    println!(
        "{}",
        fmt_row(&header.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    );
    println!(
        "{}",
        "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len())
    );
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

/// Format a float with the given number of decimals.
pub fn f(v: f64, decimals: usize) -> String {
    format!("{v:.decimals$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn float_formatting() {
        assert_eq!(f(1.23456, 2), "1.23");
        assert_eq!(f(100.0, 1), "100.0");
    }

    #[test]
    fn print_table_does_not_panic() {
        print_table(
            "demo",
            &["a", "b"],
            &[vec!["1".into(), "2".into()], vec!["30".into(), "4".into()]],
        );
    }
}
