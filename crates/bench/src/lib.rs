//! Experiment harness library for the NetKernel reproduction.
//!
//! The binaries in `src/bin/` regenerate every table and figure of the
//! paper's evaluation; shared helpers (table formatting, experiment output)
//! live here.

pub mod report;
