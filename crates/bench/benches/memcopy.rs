//! Criterion micro-benchmark of the real hugepage copy path (the measured
//! counterpart of Figure 12).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use nk_shmem::HugepageRegion;

fn bench_hugepage_copy(c: &mut Criterion) {
    let mut group = c.benchmark_group("hugepage_copy");
    for &size in &[64usize, 512, 4096, 8192, 65536] {
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, &size| {
            let region = HugepageRegion::new(4);
            let payload = vec![0xA5u8; size];
            let mut out = vec![0u8; size];
            b.iter(|| {
                // GuestLib side: allocate + copy in; ServiceLib side: copy
                // out + free — the full per-message data path of §4.5.
                let handle = region.alloc_and_write(&payload).unwrap();
                region.read(handle, &mut out).unwrap();
                region.free(handle).unwrap();
                std::hint::black_box(&out);
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_hugepage_copy);
criterion_main!(benches);
