//! Criterion micro-benchmark of real NQE switching over the lockless queues
//! (the measured counterpart of Figure 11).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use nk_engine::CoreEngine;
use nk_queue::{queue_set_pair, WakeState};
use nk_types::{IsolationPolicy, Nqe, NsmId, OpType, QueueSetId, SocketId, VmId};

fn bench_nqe_switching(c: &mut Criterion) {
    let mut group = c.benchmark_group("coreengine_nqe_switching");
    for &batch in &[1usize, 4, 16, 64, 256] {
        group.throughput(Throughput::Elements(1024));
        group.bench_with_input(BenchmarkId::from_parameter(batch), &batch, |b, &batch| {
            let (mut guest, vm_end) = queue_set_pair(4096);
            let (nsm_switch, mut nsm) = queue_set_pair(4096);
            let mut ce = CoreEngine::new(IsolationPolicy::RoundRobin, batch);
            ce.register_vm(VmId(1), vec![vm_end], WakeState::new(), 0, None, None, 0)
                .unwrap();
            ce.register_nsm(NsmId(1), vec![nsm_switch]).unwrap();
            ce.map_vm(VmId(1), NsmId(1)).unwrap();
            let nqe = Nqe::new(OpType::Connect, VmId(1), QueueSetId(0), SocketId(1));
            let mut sink = Vec::with_capacity(1024);
            b.iter(|| {
                for _ in 0..1024 {
                    guest.submit(nqe).unwrap();
                }
                while ce.poll(0) > 0 {}
                sink.clear();
                nsm.pop_requests(&mut sink, 1024);
                assert_eq!(sink.len(), 1024);
            });
        });
    }
    group.finish();
}

fn bench_spsc_queue(c: &mut Criterion) {
    let mut group = c.benchmark_group("spsc_queue");
    group.throughput(Throughput::Elements(1024));
    group.bench_function("push_pop_1024", |b| {
        let (mut tx, mut rx) = nk_queue::channel::<u64>(2048);
        b.iter(|| {
            for i in 0..1024u64 {
                tx.push(i).unwrap();
            }
            for _ in 0..1024 {
                std::hint::black_box(rx.pop().unwrap());
            }
        });
    });
    group.finish();
}

criterion_group!(benches, bench_nqe_switching, bench_spsc_queue);
criterion_main!(benches);
