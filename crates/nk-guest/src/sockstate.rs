//! Per-socket state kept by GuestLib.

use nk_shmem::BufferBudget;
use nk_types::{DataHandle, NkError, PollEvents, QueueSetId, SockAddr, SocketId};
use std::collections::VecDeque;

/// Lifecycle of a NetKernel socket as seen from the guest.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum GuestSocketState {
    /// Created; `SocketCreate` sent to the NSM.
    Created,
    /// `bind()` has completed.
    Bound,
    /// `listen()` has completed; the socket accepts connections.
    Listening,
    /// `connect()` issued, waiting for the NSM to report completion.
    Connecting,
    /// Connection established; data may flow.
    Established,
    /// The peer closed its side (EOF pending after buffered data).
    PeerClosed,
    /// Closed locally; awaiting the NSM's confirmation.
    Closing,
    /// Fully closed.
    Closed,
    /// An unrecoverable error was reported by the NSM.
    Error(NkError),
}

/// A chunk of received data parked in the hugepages, not yet consumed by the
/// application.
#[derive(Clone, Copy, Debug)]
pub struct RxChunk {
    /// Where the payload lives in the shared region.
    pub handle: DataHandle,
    /// Total chunk length.
    pub len: usize,
    /// How much of it the application has already consumed.
    pub consumed: usize,
}

/// Guest-side bookkeeping for one NetKernel socket.
pub struct GuestSocket {
    /// Guest-visible socket id (the "fd").
    pub id: SocketId,
    /// Current state.
    pub state: GuestSocketState,
    /// Queue set this socket is pinned to (connection → queue-set affinity,
    /// paper §4.3).
    pub queue_set: QueueSetId,
    /// Local address, when bound.
    pub local: Option<SockAddr>,
    /// Remote address, when connected or accepted.
    pub remote: Option<SockAddr>,
    /// Send-buffer accounting: bytes parked in hugepages awaiting the NSM's
    /// send results (§4.5).
    pub send_budget: BufferBudget,
    /// Received chunks not yet consumed by the application.
    pub rx_chunks: VecDeque<RxChunk>,
    /// Connections accepted by the NSM and waiting for the application's
    /// `accept()` (listeners only).
    pub accept_queue: VecDeque<(SocketId, SockAddr)>,
    /// Readiness interest registered via `epoll_register`.
    pub interest: PollEvents,
    /// Listener backlog (listeners only).
    pub backlog: u32,
}

impl GuestSocket {
    /// Fresh socket in the `Created` state.
    pub fn new(id: SocketId, queue_set: QueueSetId, send_buf: usize) -> Self {
        GuestSocket {
            id,
            state: GuestSocketState::Created,
            queue_set,
            local: None,
            remote: None,
            send_budget: BufferBudget::new(send_buf),
            rx_chunks: VecDeque::new(),
            accept_queue: VecDeque::new(),
            interest: PollEvents::NONE,
            backlog: 0,
        }
    }

    /// Bytes of received data available to the application right now.
    pub fn rx_available(&self) -> usize {
        self.rx_chunks.iter().map(|c| c.len - c.consumed).sum()
    }

    /// Current readiness of the socket.
    pub fn readiness(&self) -> PollEvents {
        let mut ev = PollEvents::NONE;
        match self.state {
            GuestSocketState::Listening if !self.accept_queue.is_empty() => {
                ev |= PollEvents::READABLE;
            }
            GuestSocketState::Established | GuestSocketState::PeerClosed => {
                if self.rx_available() > 0 || matches!(self.state, GuestSocketState::PeerClosed) {
                    ev |= PollEvents::READABLE;
                }
                if matches!(self.state, GuestSocketState::Established)
                    && !self.send_budget.is_full()
                {
                    ev |= PollEvents::WRITABLE;
                }
                if matches!(self.state, GuestSocketState::PeerClosed) {
                    ev |= PollEvents::HUP;
                }
            }
            GuestSocketState::Error(_) => ev |= PollEvents::ERROR,
            GuestSocketState::Closed | GuestSocketState::Closing => ev |= PollEvents::HUP,
            _ => {}
        }
        ev
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sock() -> GuestSocket {
        GuestSocket::new(SocketId(1), QueueSetId(0), 1000)
    }

    #[test]
    fn new_socket_has_no_readiness() {
        let s = sock();
        assert_eq!(s.state, GuestSocketState::Created);
        assert!(s.readiness().is_empty());
        assert_eq!(s.rx_available(), 0);
    }

    #[test]
    fn established_socket_is_writable_until_budget_full() {
        let mut s = sock();
        s.state = GuestSocketState::Established;
        assert!(s.readiness().writable());
        s.send_budget.reserve(1000).unwrap();
        assert!(!s.readiness().writable());
    }

    #[test]
    fn rx_chunks_make_socket_readable() {
        let mut s = sock();
        s.state = GuestSocketState::Established;
        assert!(!s.readiness().readable());
        s.rx_chunks.push_back(RxChunk {
            handle: DataHandle::from_offset(0),
            len: 100,
            consumed: 40,
        });
        assert_eq!(s.rx_available(), 60);
        assert!(s.readiness().readable());
    }

    #[test]
    fn listener_readable_when_accept_queue_nonempty() {
        let mut s = sock();
        s.state = GuestSocketState::Listening;
        assert!(!s.readiness().readable());
        s.accept_queue
            .push_back((SocketId(9), SockAddr::v4(1, 2, 3, 4, 5)));
        assert!(s.readiness().readable());
    }

    #[test]
    fn peer_closed_reports_readable_and_hup() {
        let mut s = sock();
        s.state = GuestSocketState::PeerClosed;
        let ev = s.readiness();
        assert!(ev.readable());
        assert!(ev.hup());
        assert!(!ev.writable());
    }

    #[test]
    fn error_state_reports_error() {
        let mut s = sock();
        s.state = GuestSocketState::Error(NkError::ConnRefused);
        assert!(s.readiness().error());
    }
}
