//! The GuestLib socket implementation.

use crate::sockstate::{GuestSocket, GuestSocketState, RxChunk};
use nk_queue::{NkDevice, RequesterEnd};
use nk_shmem::HugepageRegion;
use nk_types::api::{EpollEvent, ShutdownHow};
use nk_types::migrate::GuestSockSnapshot;
use nk_types::{
    DataHandle, NkError, NkResult, Nqe, OpResult, OpType, PollEvents, QueueSetId, SockAddr,
    SocketApi, SocketId, VmId,
};
use std::collections::BTreeMap;

/// Guest-allocated socket ids live below this bit; ids with the bit set are
/// allocated by ServiceLib for accepted connections, so the two sides never
/// collide without a round trip (§4.6 pipelining).
pub const NSM_SOCKET_ID_BASE: u32 = 0x8000_0000;

/// Statistics exposed by GuestLib.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GuestStats {
    /// Request NQEs submitted.
    pub nqes_sent: u64,
    /// Completion / event NQEs processed.
    pub nqes_received: u64,
    /// Payload bytes copied into the hugepages by `send()`.
    pub bytes_sent: u64,
    /// Payload bytes copied out of the hugepages by `recv()`.
    pub bytes_received: u64,
    /// Asynchronous error events observed (e.g. the serving NSM crashed and
    /// the connection was reset underneath the application).
    pub errors: u64,
}

/// The guest side of NetKernel: a complete BSD-socket implementation that
/// translates every call into NQEs (paper §4.1–§4.2).
pub struct GuestLib {
    vm: VmId,
    device: NkDevice<RequesterEnd>,
    region: HugepageRegion,
    /// Ordered so `epoll_wait` reports events deterministically across runs.
    sockets: BTreeMap<SocketId, GuestSocket>,
    next_socket: u32,
    send_buf: usize,
    batch: usize,
    stats: GuestStats,
    scratch: Vec<Nqe>,
}

impl GuestLib {
    /// Build the guest library for `vm` from its NK device queue sets and the
    /// hugepage region shared with its NSM.
    pub fn new(vm: VmId, device: NkDevice<RequesterEnd>, region: HugepageRegion) -> Self {
        GuestLib {
            vm,
            device,
            region,
            sockets: BTreeMap::new(),
            next_socket: 1,
            send_buf: nk_types::constants::DEFAULT_SEND_BUF,
            batch: nk_types::constants::DEFAULT_BATCH_SIZE,
            stats: GuestStats::default(),
            scratch: Vec::new(),
        }
    }

    /// The VM this GuestLib belongs to.
    pub fn vm(&self) -> VmId {
        self.vm
    }

    /// GuestLib statistics.
    pub fn stats(&self) -> GuestStats {
        self.stats
    }

    /// Number of live guest sockets.
    pub fn socket_count(&self) -> usize {
        self.sockets.len()
    }

    /// The hugepage region shared with the NSM (used by tests and the host).
    pub fn region(&self) -> &HugepageRegion {
        &self.region
    }

    /// True when a socket with this id currently exists. After a warm
    /// migration the application's socket id reappears under the VM's new
    /// host; workload drivers use this to follow the transplant.
    pub fn has_socket(&self, id: SocketId) -> bool {
        self.sockets.contains_key(&id)
    }

    /// True when [`GuestLib::export_socket`] would accept the socket —
    /// established or half-closed, not mid-handshake or closing. A warm
    /// export pre-validates against this before tearing anything out.
    pub fn socket_transplantable(&self, id: SocketId) -> bool {
        matches!(
            self.sockets.get(&id).map(|s| s.state),
            Some(GuestSocketState::Established) | Some(GuestSocketState::PeerClosed)
        )
    }

    // ---- Warm-migration export / install ------------------------------------

    /// Tear a connected socket out of this GuestLib for a warm migration.
    ///
    /// Unconsumed receive chunks are copied out of (and freed from) the
    /// source hugepages — the snapshot owns plain bytes, not region
    /// handles, because the destination has a different region. Only
    /// established (or half-closed) connections export; listeners and
    /// embryonic sockets have no transplantable stack state.
    pub fn export_socket(&mut self, sock: SocketId) -> NkResult<GuestSockSnapshot> {
        let peer_closed = match self.sockets.get(&sock).map(|s| s.state) {
            Some(GuestSocketState::Established) => false,
            Some(GuestSocketState::PeerClosed) => true,
            Some(_) => return Err(NkError::InvalidState),
            None => return Err(NkError::BadSocket),
        };
        let s = self.sockets.remove(&sock).expect("state checked above");
        let mut rx_bytes = Vec::new();
        for chunk in &s.rx_chunks {
            let mut tmp = vec![0u8; chunk.len];
            self.region.read(chunk.handle, &mut tmp)?;
            rx_bytes.extend_from_slice(&tmp[chunk.consumed..]);
            let _ = self.region.free(chunk.handle);
        }
        Ok(GuestSockSnapshot {
            id: s.id,
            queue_set: s.queue_set,
            local: s.local,
            remote: s.remote,
            peer_closed,
            send_buf_cap: s.send_budget.capacity(),
            send_reserved: s.send_budget.used(),
            rx_bytes,
            interest: s.interest.0,
        })
    }

    /// Recreate a warm-migrated socket under its original id. Unread
    /// payload is re-parked in *this* GuestLib's hugepages; the send budget
    /// resumes with the snapshot's reservation so in-flight send credit
    /// accounting stays balanced when the transplanted NSM state flushes.
    pub fn install_socket(&mut self, snap: &GuestSockSnapshot) -> NkResult<()> {
        if self.sockets.contains_key(&snap.id) {
            return Err(NkError::AlreadyRegistered);
        }
        let mut s = GuestSocket::new(snap.id, snap.queue_set, snap.send_buf_cap);
        s.state = if snap.peer_closed {
            GuestSocketState::PeerClosed
        } else {
            GuestSocketState::Established
        };
        s.local = snap.local;
        s.remote = snap.remote;
        s.interest = PollEvents(snap.interest);
        s.send_budget.reserve_up_to(snap.send_reserved);
        if !snap.rx_bytes.is_empty() {
            let handle = self.region.alloc_and_write(&snap.rx_bytes)?;
            s.rx_chunks.push_back(RxChunk {
                handle,
                len: snap.rx_bytes.len(),
                consumed: 0,
            });
        }
        // Keep fresh ids clear of the transplanted one (ids allocated by
        // the NSM side live in their own range and need no bump).
        if snap.id.raw() < NSM_SOCKET_ID_BASE {
            self.next_socket = self.next_socket.max(snap.id.raw() + 1);
        }
        self.sockets.insert(snap.id, s);
        Ok(())
    }

    fn queue_set_for(&self, id: SocketId) -> QueueSetId {
        let sets = self.device.queue_sets().max(1) as u32;
        QueueSetId((id.raw() % sets) as u8)
    }

    fn submit(&mut self, qs: QueueSetId, nqe: Nqe) -> NkResult<()> {
        let end = self
            .device
            .queue_set(qs.raw() as usize)
            .ok_or(NkError::BadConfig)?;
        end.submit(nqe)?;
        self.stats.nqes_sent += 1;
        Ok(())
    }

    fn request(&mut self, op: OpType, sock: SocketId) -> Nqe {
        let qs = self
            .sockets
            .get(&sock)
            .map(|s| s.queue_set)
            .unwrap_or_else(|| self.queue_set_for(sock));
        Nqe::new(op, self.vm, qs, sock)
    }

    fn sock(&self, id: SocketId) -> NkResult<&GuestSocket> {
        self.sockets.get(&id).ok_or(NkError::BadSocket)
    }

    fn sock_mut(&mut self, id: SocketId) -> NkResult<&mut GuestSocket> {
        self.sockets.get_mut(&id).ok_or(NkError::BadSocket)
    }

    // ---- Completion processing ----------------------------------------------

    fn process_response(&mut self, nqe: Nqe) {
        self.stats.nqes_received += 1;
        match nqe.op {
            OpType::SocketCreated
            | OpType::BindComplete
            | OpType::ListenComplete
            | OpType::SetSockOptComplete
            | OpType::GetSockOptComplete
            | OpType::ShutdownComplete => {
                if let OpResult::Err(e) = nqe.result() {
                    if let Some(s) = self.sockets.get_mut(&nqe.socket) {
                        s.state = GuestSocketState::Error(e);
                    }
                }
            }
            OpType::ConnectComplete => {
                // Only a socket still connecting transitions: a late
                // completion drained after the application already moved on
                // (closed the socket, observed an error) must not resurrect
                // it into the established state.
                if let Some(s) = self.sockets.get_mut(&nqe.socket) {
                    if matches!(s.state, GuestSocketState::Connecting) {
                        match nqe.result() {
                            OpResult::Ok => s.state = GuestSocketState::Established,
                            OpResult::Err(e) => s.state = GuestSocketState::Error(e),
                        }
                    }
                }
            }
            OpType::Accepted => {
                // aux carries the ServiceLib-allocated guest socket id for the
                // new connection; the data-handle field carries the packed
                // peer address.
                let new_id = SocketId(nqe.aux());
                let peer = SockAddr::unpack(nqe.data.0);
                let qs = nqe.queue_set;
                if nqe.result().is_ok() {
                    let mut conn = GuestSocket::new(new_id, qs, self.send_buf);
                    conn.state = GuestSocketState::Established;
                    conn.remote = Some(peer);
                    self.sockets.insert(new_id, conn);
                    if let Some(listener) = self.sockets.get_mut(&nqe.socket) {
                        listener.accept_queue.push_back((new_id, peer));
                    }
                }
            }
            OpType::SendComplete => {
                if let Some(s) = self.sockets.get_mut(&nqe.socket) {
                    s.send_budget.release(nqe.size as usize);
                    if let OpResult::Err(e) = nqe.result() {
                        s.state = GuestSocketState::Error(e);
                    }
                }
            }
            OpType::DataReceived => {
                if let Some(s) = self.sockets.get_mut(&nqe.socket) {
                    s.rx_chunks.push_back(RxChunk {
                        handle: nqe.data,
                        len: nqe.size as usize,
                        consumed: 0,
                    });
                }
            }
            OpType::PeerClosed => {
                if let Some(s) = self.sockets.get_mut(&nqe.socket) {
                    // Only an established connection transitions to the
                    // half-closed state; errors and closed sockets keep their
                    // state so the application still observes the failure.
                    if matches!(s.state, GuestSocketState::Established) {
                        s.state = GuestSocketState::PeerClosed;
                    }
                }
            }
            OpType::CloseComplete => {
                if let Some(s) = self.sockets.remove(&nqe.socket) {
                    // Release any unread payload still parked in the region.
                    for chunk in s.rx_chunks {
                        let _ = self.region.free(chunk.handle);
                    }
                }
            }
            OpType::ErrorEvent => {
                self.stats.errors += 1;
                if let Some(s) = self.sockets.get_mut(&nqe.socket) {
                    let err = match nqe.result() {
                        OpResult::Err(e) => e,
                        OpResult::Ok => NkError::InvalidState,
                    };
                    s.state = GuestSocketState::Error(err);
                }
            }
            OpType::Writable => {}
            _ => {}
        }
    }
}

impl SocketApi for GuestLib {
    fn socket(&mut self) -> NkResult<SocketId> {
        let id = SocketId(self.next_socket);
        self.next_socket += 1;
        let qs = self.queue_set_for(id);
        self.sockets
            .insert(id, GuestSocket::new(id, qs, self.send_buf));
        let nqe = Nqe::new(OpType::SocketCreate, self.vm, qs, id);
        self.submit(qs, nqe)?;
        Ok(id)
    }

    fn bind(&mut self, sock: SocketId, addr: SockAddr) -> NkResult<()> {
        let qs = self.sock(sock)?.queue_set;
        let nqe = self.request(OpType::Bind, sock).with_op_data(addr.pack());
        self.submit(qs, nqe)?;
        let s = self.sock_mut(sock)?;
        s.local = Some(addr);
        s.state = GuestSocketState::Bound;
        Ok(())
    }

    fn listen(&mut self, sock: SocketId, backlog: u32) -> NkResult<()> {
        let qs = self.sock(sock)?.queue_set;
        let nqe = self
            .request(OpType::Listen, sock)
            .with_op_data(u64::from(backlog));
        self.submit(qs, nqe)?;
        let s = self.sock_mut(sock)?;
        s.backlog = backlog;
        s.state = GuestSocketState::Listening;
        Ok(())
    }

    fn accept(&mut self, sock: SocketId) -> NkResult<(SocketId, SockAddr)> {
        self.drive();
        let s = self.sock_mut(sock)?;
        if !matches!(s.state, GuestSocketState::Listening) {
            return Err(NkError::InvalidState);
        }
        s.accept_queue.pop_front().ok_or(NkError::WouldBlock)
    }

    fn connect(&mut self, sock: SocketId, addr: SockAddr) -> NkResult<()> {
        let qs = self.sock(sock)?.queue_set;
        let nqe = self
            .request(OpType::Connect, sock)
            .with_op_data(addr.pack());
        self.submit(qs, nqe)?;
        let s = self.sock_mut(sock)?;
        s.remote = Some(addr);
        s.state = GuestSocketState::Connecting;
        Ok(())
    }

    fn send(&mut self, sock: SocketId, data: &[u8]) -> NkResult<usize> {
        let (qs, granted) = {
            let s = self.sock_mut(sock)?;
            match s.state {
                GuestSocketState::Established | GuestSocketState::Connecting => {}
                GuestSocketState::PeerClosed => {}
                GuestSocketState::Error(e) => return Err(e),
                GuestSocketState::Closed | GuestSocketState::Closing => {
                    return Err(NkError::Closed)
                }
                _ => return Err(NkError::NotConnected),
            }
            let granted = s.send_budget.reserve_up_to(data.len());
            (s.queue_set, granted)
        };
        if granted == 0 {
            return Err(NkError::WouldBlock);
        }
        // Copy the payload into the shared hugepages and describe it in the
        // NQE (§4.5 "Sending Data").
        let handle = match self.region.alloc_and_write(&data[..granted]) {
            Ok(h) => h,
            Err(e) => {
                self.sock_mut(sock)?.send_budget.release(granted);
                return Err(e);
            }
        };
        let nqe = self
            .request(OpType::Send, sock)
            .with_data(handle, granted as u32);
        match self.submit(qs, nqe) {
            Ok(()) => {
                self.stats.bytes_sent += granted as u64;
                Ok(granted)
            }
            Err(e) => {
                let _ = self.region.free(handle);
                self.sock_mut(sock)?.send_budget.release(granted);
                Err(e)
            }
        }
    }

    fn recv(&mut self, sock: SocketId, buf: &mut [u8]) -> NkResult<usize> {
        self.drive();
        let region = self.region.clone();
        let vm = self.vm;
        let mut consumed_chunks: Vec<(DataHandle, usize)> = Vec::new();
        let (qs, copied, state) = {
            let s = self.sock_mut(sock)?;
            let mut copied = 0usize;
            while copied < buf.len() {
                let Some(chunk) = s.rx_chunks.front_mut() else {
                    break;
                };
                let remaining = chunk.len - chunk.consumed;
                let take = remaining.min(buf.len() - copied);
                let mut tmp = vec![0u8; chunk.len];
                region.read(chunk.handle, &mut tmp)?;
                buf[copied..copied + take]
                    .copy_from_slice(&tmp[chunk.consumed..chunk.consumed + take]);
                chunk.consumed += take;
                copied += take;
                if chunk.consumed == chunk.len {
                    consumed_chunks.push((chunk.handle, chunk.len));
                    s.rx_chunks.pop_front();
                }
            }
            (s.queue_set, copied, s.state)
        };
        // Free fully consumed chunks and return receive credit to the NSM.
        for (handle, len) in consumed_chunks {
            let _ = region.free(handle);
            let credit = Nqe::new(OpType::RecvConsumed, vm, qs, sock)
                .with_data(DataHandle::NULL, len as u32);
            let _ = self.submit(qs, credit);
        }
        if copied > 0 {
            self.stats.bytes_received += copied as u64;
            return Ok(copied);
        }
        match state {
            GuestSocketState::PeerClosed | GuestSocketState::Closed => Ok(0),
            GuestSocketState::Error(e) => Err(e),
            _ => Err(NkError::WouldBlock),
        }
    }

    fn set_sockopt(&mut self, sock: SocketId, opt: u32, value: u32) -> NkResult<()> {
        let qs = self.sock(sock)?.queue_set;
        let nqe = self
            .request(OpType::SetSockOpt, sock)
            .with_op_data(nk_types::ops::op_data::pack_sockopt(opt, value));
        self.submit(qs, nqe)
    }

    fn shutdown(&mut self, sock: SocketId, how: ShutdownHow) -> NkResult<()> {
        let qs = self.sock(sock)?.queue_set;
        let nqe = self
            .request(OpType::Shutdown, sock)
            .with_op_data(how.encode());
        self.submit(qs, nqe)
    }

    fn close(&mut self, sock: SocketId) -> NkResult<()> {
        let qs = self.sock(sock)?.queue_set;
        let nqe = self.request(OpType::Close, sock);
        self.submit(qs, nqe)?;
        if let Some(s) = self.sockets.get_mut(&sock) {
            s.state = GuestSocketState::Closing;
        }
        Ok(())
    }

    fn epoll_register(&mut self, sock: SocketId, interest: PollEvents) -> NkResult<()> {
        self.sock_mut(sock)?.interest = interest;
        Ok(())
    }

    fn epoll_unregister(&mut self, sock: SocketId) -> NkResult<()> {
        self.sock_mut(sock)?.interest = PollEvents::NONE;
        Ok(())
    }

    fn epoll_wait(&mut self, max_events: usize) -> Vec<EpollEvent> {
        self.drive();
        let mut out = Vec::new();
        for (id, s) in self.sockets.iter() {
            if out.len() >= max_events {
                break;
            }
            if s.interest.is_empty() {
                continue;
            }
            let ready = s.readiness();
            let masked =
                PollEvents(ready.0 & (s.interest.0 | PollEvents::HUP.0 | PollEvents::ERROR.0));
            if !masked.is_empty() {
                out.push(EpollEvent {
                    socket: *id,
                    events: masked,
                });
            }
        }
        out
    }

    fn poll(&mut self, sock: SocketId) -> PollEvents {
        self.drive();
        match self.sockets.get(&sock) {
            Some(s) => s.readiness(),
            None => PollEvents::ERROR,
        }
    }

    fn drive(&mut self) -> usize {
        let mut processed = 0;
        let batch = self.batch.max(1);
        let sets = self.device.queue_sets();
        for idx in 0..sets {
            loop {
                self.scratch.clear();
                let n = {
                    let Some(end) = self.device.queue_set(idx) else {
                        break;
                    };
                    end.pop_responses(&mut self.scratch, batch)
                };
                if n == 0 {
                    break;
                }
                let drained: Vec<Nqe> = self.scratch.drain(..).collect();
                for nqe in drained {
                    self.process_response(nqe);
                    processed += 1;
                }
            }
        }
        processed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nk_queue::{queue_set_pair, ResponderEnd, WakeState};
    use nk_types::ops::op_data;

    /// Build a GuestLib with `sets` queue sets plus the matching responder
    /// ends, playing the role of CoreEngine+ServiceLib in the tests.
    fn guest_with_responders(sets: usize) -> (GuestLib, Vec<ResponderEnd>, HugepageRegion) {
        let mut requesters = Vec::new();
        let mut responders = Vec::new();
        for _ in 0..sets {
            let (req, resp) = queue_set_pair(256);
            requesters.push(req);
            responders.push(resp);
        }
        let region = HugepageRegion::with_capacity(1 << 20);
        let device = NkDevice::new(requesters, WakeState::new());
        (
            GuestLib::new(VmId(1), device, region.clone()),
            responders,
            region,
        )
    }

    fn pop_request(responders: &mut [ResponderEnd]) -> Option<Nqe> {
        for r in responders.iter_mut() {
            let mut v = Vec::new();
            if r.pop_requests(&mut v, 1) > 0 {
                return Some(v[0]);
            }
        }
        None
    }

    fn respond(responders: &mut [ResponderEnd], nqe: Nqe) {
        let idx = nqe.queue_set.raw() as usize;
        responders[idx].respond(nqe).unwrap();
    }

    #[test]
    fn socket_creation_emits_socket_create_nqe() {
        let (mut guest, mut resp, _region) = guest_with_responders(2);
        let s = guest.socket().unwrap();
        let nqe = pop_request(&mut resp).unwrap();
        assert_eq!(nqe.op, OpType::SocketCreate);
        assert_eq!(nqe.socket, s);
        assert_eq!(nqe.vm, VmId(1));
        assert_eq!(guest.socket_count(), 1);
    }

    #[test]
    fn connect_completion_makes_socket_writable() {
        let (mut guest, mut resp, _region) = guest_with_responders(1);
        let s = guest.socket().unwrap();
        let _ = pop_request(&mut resp); // SocketCreate
        guest.connect(s, SockAddr::v4(10, 0, 0, 2, 80)).unwrap();
        let connect_req = pop_request(&mut resp).unwrap();
        assert_eq!(connect_req.op, OpType::Connect);
        assert_eq!(connect_req.addr(), SockAddr::v4(10, 0, 0, 2, 80));
        assert!(!guest.poll(s).writable());

        let comp = Nqe::completion_for(&connect_req, OpResult::Ok, 0).unwrap();
        respond(&mut resp, comp);
        assert!(guest.poll(s).writable());
    }

    #[test]
    fn failed_connect_reports_error() {
        let (mut guest, mut resp, _region) = guest_with_responders(1);
        let s = guest.socket().unwrap();
        let _ = pop_request(&mut resp);
        guest.connect(s, SockAddr::v4(10, 0, 0, 2, 81)).unwrap();
        let req = pop_request(&mut resp).unwrap();
        let comp = Nqe::completion_for(&req, OpResult::Err(NkError::ConnRefused), 0).unwrap();
        respond(&mut resp, comp);
        assert!(guest.poll(s).error());
        assert_eq!(guest.recv(s, &mut [0u8; 4]), Err(NkError::ConnRefused));
    }

    #[test]
    fn send_copies_payload_into_hugepages_and_tracks_budget() {
        let (mut guest, mut resp, region) = guest_with_responders(1);
        let s = guest.socket().unwrap();
        let _ = pop_request(&mut resp);
        guest.connect(s, SockAddr::v4(10, 0, 0, 2, 80)).unwrap();
        let req = pop_request(&mut resp).unwrap();
        respond(
            &mut resp,
            Nqe::completion_for(&req, OpResult::Ok, 0).unwrap(),
        );
        guest.drive();

        let n = guest.send(s, b"payload through hugepages").unwrap();
        assert_eq!(n, 25);
        let send_nqe = pop_request(&mut resp).unwrap();
        assert_eq!(send_nqe.op, OpType::Send);
        assert_eq!(send_nqe.size, 25);
        // The NSM side can read the payload straight out of the region.
        let mut out = vec![0u8; 25];
        region.read(send_nqe.data, &mut out).unwrap();
        assert_eq!(&out, b"payload through hugepages");

        // Send-buffer budget is held until the SendComplete returns it.
        let mut comp = Nqe::completion_for(&send_nqe, OpResult::Ok, 0).unwrap();
        comp.size = 25;
        assert_eq!(guest.stats().bytes_sent, 25);
        respond(&mut resp, comp);
        guest.drive();
        assert!(guest.poll(s).writable());
    }

    #[test]
    fn send_budget_exhaustion_returns_wouldblock() {
        let (mut guest, mut resp, _region) = guest_with_responders(1);
        guest.send_buf = 64;
        let s = guest.socket().unwrap();
        let _ = pop_request(&mut resp);
        guest.connect(s, SockAddr::v4(10, 0, 0, 2, 80)).unwrap();
        let req = pop_request(&mut resp).unwrap();
        respond(
            &mut resp,
            Nqe::completion_for(&req, OpResult::Ok, 0).unwrap(),
        );
        guest.drive();

        assert_eq!(guest.send(s, &[0u8; 64]).unwrap(), 64);
        assert_eq!(guest.send(s, &[0u8; 16]), Err(NkError::WouldBlock));
    }

    #[test]
    fn data_received_nqe_is_readable_and_returns_credit() {
        let (mut guest, mut resp, region) = guest_with_responders(1);
        let s = guest.socket().unwrap();
        let create = pop_request(&mut resp).unwrap();
        guest.connect(s, SockAddr::v4(10, 0, 0, 2, 80)).unwrap();
        let req = pop_request(&mut resp).unwrap();
        respond(
            &mut resp,
            Nqe::completion_for(&req, OpResult::Ok, 0).unwrap(),
        );
        guest.drive();

        // ServiceLib parks received payload in the region and announces it.
        let handle = region.alloc_and_write(b"hello guest").unwrap();
        let data_nqe =
            Nqe::new(OpType::DataReceived, VmId(1), create.queue_set, s).with_data(handle, 11);
        respond(&mut resp, data_nqe);

        assert!(guest.poll(s).readable());
        let mut buf = [0u8; 6];
        assert_eq!(guest.recv(s, &mut buf).unwrap(), 6);
        assert_eq!(&buf, b"hello ");
        let mut buf = [0u8; 16];
        assert_eq!(guest.recv(s, &mut buf).unwrap(), 5);
        assert_eq!(&buf[..5], b"guest");
        // The chunk was fully consumed: credit goes back to the NSM.
        let credit = pop_request(&mut resp).unwrap();
        assert_eq!(credit.op, OpType::RecvConsumed);
        assert_eq!(credit.size, 11);
        assert_eq!(guest.recv(s, &mut buf), Err(NkError::WouldBlock));
    }

    #[test]
    fn accepted_event_populates_listener_queue() {
        let (mut guest, mut resp, _region) = guest_with_responders(1);
        let ls = guest.socket().unwrap();
        let _ = pop_request(&mut resp);
        guest.bind(ls, SockAddr::new(0, 80)).unwrap();
        let _ = pop_request(&mut resp);
        guest.listen(ls, 64).unwrap();
        let listen_req = pop_request(&mut resp).unwrap();
        assert_eq!(listen_req.op, OpType::Listen);
        assert_eq!(listen_req.op_data, 64);

        assert_eq!(guest.accept(ls), Err(NkError::WouldBlock));

        // ServiceLib accepted a connection: new guest socket id allocated
        // from the NSM range, peer address in the data field.
        let new_id = NSM_SOCKET_ID_BASE | 1;
        let peer = SockAddr::v4(10, 0, 0, 9, 5555);
        let accepted = Nqe::new(OpType::Accepted, VmId(1), listen_req.queue_set, ls)
            .with_op_data(op_data::pack(OpResult::Ok, new_id))
            .with_data(DataHandle(peer.pack()), 0);
        respond(&mut resp, accepted);

        assert!(guest.poll(ls).readable());
        let (conn, got_peer) = guest.accept(ls).unwrap();
        assert_eq!(conn, SocketId(new_id));
        assert_eq!(got_peer, peer);
        assert!(guest.poll(conn).writable());
    }

    #[test]
    fn peer_close_gives_eof_then_epoll_hup() {
        let (mut guest, mut resp, _region) = guest_with_responders(1);
        let s = guest.socket().unwrap();
        let create = pop_request(&mut resp).unwrap();
        guest.connect(s, SockAddr::v4(10, 0, 0, 2, 80)).unwrap();
        let req = pop_request(&mut resp).unwrap();
        respond(
            &mut resp,
            Nqe::completion_for(&req, OpResult::Ok, 0).unwrap(),
        );
        guest.drive();

        guest
            .epoll_register(s, PollEvents::READABLE | PollEvents::WRITABLE)
            .unwrap();
        let hup = Nqe::new(OpType::PeerClosed, VmId(1), create.queue_set, s);
        respond(&mut resp, hup);
        let events = guest.epoll_wait(16);
        assert_eq!(events.len(), 1);
        assert!(events[0].events.hup());
        assert_eq!(guest.recv(s, &mut [0u8; 4]).unwrap(), 0, "EOF");
    }

    #[test]
    fn close_sends_nqe_and_completion_reaps_socket() {
        let (mut guest, mut resp, _region) = guest_with_responders(1);
        let s = guest.socket().unwrap();
        let _ = pop_request(&mut resp);
        guest.close(s).unwrap();
        let close_req = pop_request(&mut resp).unwrap();
        assert_eq!(close_req.op, OpType::Close);
        respond(
            &mut resp,
            Nqe::completion_for(&close_req, OpResult::Ok, 0).unwrap(),
        );
        guest.drive();
        assert_eq!(guest.socket_count(), 0);
        assert_eq!(guest.send(s, b"x"), Err(NkError::BadSocket));
    }

    #[test]
    fn sockets_spread_over_queue_sets() {
        let (mut guest, mut resp, _region) = guest_with_responders(4);
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..16 {
            guest.socket().unwrap();
        }
        while let Some(nqe) = pop_request(&mut resp) {
            seen.insert(nqe.queue_set);
        }
        assert!(
            seen.len() >= 3,
            "sockets pinned to too few queue sets: {seen:?}"
        );
    }

    /// Export pulls unread payload out of the source region; install parks
    /// it in the destination region and the application reads on under the
    /// same socket id.
    #[test]
    fn export_install_moves_a_socket_between_guestlibs() {
        let (mut guest, mut resp, region) = guest_with_responders(1);
        let s = guest.socket().unwrap();
        let create = pop_request(&mut resp).unwrap();
        guest.connect(s, SockAddr::v4(10, 0, 0, 2, 80)).unwrap();
        let req = pop_request(&mut resp).unwrap();
        respond(
            &mut resp,
            Nqe::completion_for(&req, OpResult::Ok, 0).unwrap(),
        );
        guest.drive();

        // Unread data parked in the source region, partially consumed.
        let handle = region.alloc_and_write(b"warm migration payload").unwrap();
        let data =
            Nqe::new(OpType::DataReceived, VmId(1), create.queue_set, s).with_data(handle, 22);
        respond(&mut resp, data);
        let mut buf = [0u8; 5];
        assert_eq!(guest.recv(s, &mut buf).unwrap(), 5);
        let free_before = region.available();

        let snap = guest.export_socket(s).unwrap();
        assert_eq!(snap.id, s);
        assert_eq!(snap.rx_bytes, b"migration payload");
        assert!(!guest.has_socket(s));
        assert!(
            region.available() > free_before,
            "export must free the source chunks"
        );
        assert_eq!(guest.export_socket(s), Err(NkError::BadSocket));

        // Install into a fresh GuestLib (the destination instance).
        let (mut dest, _dresp, _dregion) = guest_with_responders(1);
        dest.install_socket(&snap).unwrap();
        assert!(dest.has_socket(s));
        assert!(dest.poll(s).readable());
        let mut rest = [0u8; 32];
        assert_eq!(dest.recv(s, &mut rest).unwrap(), 17);
        assert_eq!(&rest[..17], b"migration payload");
        assert_eq!(dest.install_socket(&snap), Err(NkError::AlreadyRegistered));
        // A fresh socket id never collides with the transplanted one.
        let fresh = dest.socket().unwrap();
        assert_ne!(fresh, s);
    }

    #[test]
    fn operations_on_unknown_socket_fail() {
        let (mut guest, _resp, _region) = guest_with_responders(1);
        let bogus = SocketId(777);
        assert_eq!(guest.bind(bogus, SockAddr::ANY), Err(NkError::BadSocket));
        assert_eq!(guest.send(bogus, b"x"), Err(NkError::BadSocket));
        assert_eq!(guest.close(bogus), Err(NkError::BadSocket));
        assert!(guest.poll(bogus).error());
    }
}
