//! GuestLib: transparent BSD socket redirection inside the tenant VM.
//!
//! GuestLib is "the only change we make to the user VM" (paper §4): it
//! registers a new socket type (`SOCK_NETKERNEL`) whose operations are
//! translated into NQEs and shipped to the Network Stack Module over the NK
//! device queues, while application payload travels through the shared
//! hugepages. The [`GuestLib`] type implements the same
//! [`SocketApi`](nk_types::SocketApi) trait as the baseline in-guest stack,
//! so unmodified applications (and workload generators) run on either.

pub mod guestlib;
pub mod sockstate;

pub use guestlib::{GuestLib, GuestStats};
pub use sockstate::{GuestSocket, GuestSocketState};
