//! The determinism matrix: every cluster scenario must be byte-identical at
//! any `ClusterConfig::threads` value.
//!
//! The sharded executor's whole contract is that parallelism is invisible:
//! the event-log digest, the cluster stats (including the per-phase work
//! counters), the merged control-event view and every tenant's byte stream
//! must not change when the datapath runs on 1, 2 or 4 worker threads.
//! These tests replay three full scenarios — a fault-injected multi-tenant
//! run, the drained-migration cluster scenario and the warm-migration
//! handover — across that thread matrix and diff the complete reports.
//!
//! (`NK_CLUSTER_THREADS` deliberately overrides the configured value, so a
//! CI job can run this whole suite under a forced thread count; equality
//! still holds because every run then uses the same override.)

use nk_cluster::{Cluster, ClusterStats, ControlLogEntry, EvacFault, EvacFaultKind};
use nk_ctrl::{EvacAction, PlanEvent};
use nk_types::{
    ClusterConfig, ControlEvent, ControlPolicy, FaultAction, FaultPlan, HostConfig, HostId,
    LinkFault, NkError, NsmConfig, NsmId, SockAddr, SocketApi, VmConfig, VmId, VmToNsmPolicy,
};
use nk_workload::{ClusterScenario, ClusterScenarioConfig, ClusterScenarioReport, ClusterTenant};

const SERVER_IP: u32 = 0xC0A8_0001; // 192.168.0.1, outside every host block
const THREAD_MATRIX: [usize; 3] = [1, 2, 4];

fn host(id: u8, vms: &[u8]) -> HostConfig {
    let mut cfg = HostConfig::new()
        .with_host_id(HostId(id))
        .with_nsm(NsmConfig::kernel(NsmId(1)))
        .with_mapping(VmToNsmPolicy::All(NsmId(1)));
    for vm in vms {
        cfg = cfg.with_vm(VmConfig::new(VmId(*vm)));
    }
    cfg
}

/// The drained-migration scenario at a given thread count.
fn cluster_scenario(threads: usize) -> ClusterScenarioReport {
    let cluster = ClusterConfig::new()
        .with_host(host(1, &[1]))
        .with_host(host(2, &[2]))
        .with_uplink_latency_us(2)
        .with_threads(threads);
    ClusterScenario::new(
        ClusterScenarioConfig::new(cluster)
            .with_seed(11)
            .with_tenant(ClusterTenant::new(VmId(1), 0).with_total_bytes(96 * 1024))
            .with_tenant(ClusterTenant::new(VmId(2), 500_000).with_total_bytes(64 * 1024))
            .with_migration(2_000_000, VmId(1), HostId(2)),
    )
    .run()
    .expect("cluster scenario runs")
}

/// The warm-migration scenario (freeze window, connection transplant,
/// mid-step reroute) at a given thread count.
fn warm_scenario(threads: usize) -> ClusterScenarioReport {
    let cluster = ClusterConfig::new()
        .with_host(host(1, &[1]))
        .with_host(host(2, &[2]))
        .with_uplink_latency_us(2)
        .with_threads(threads);
    ClusterScenario::new(
        ClusterScenarioConfig::new(cluster)
            .with_seed(11)
            .with_tenant(
                ClusterTenant::new(VmId(1), 0)
                    .with_total_bytes(96 * 1024)
                    .long_lived(),
            )
            .with_tenant(ClusterTenant::new(VmId(2), 500_000).with_total_bytes(64 * 1024))
            .with_warm_migration(2_000_000, VmId(1), HostId(2)),
    )
    .run()
    .expect("warm scenario runs")
}

/// Everything observable from the fault run, for whole-value comparison.
#[derive(Debug, PartialEq)]
struct FaultRunReport {
    digest: u64,
    stats: ClusterStats,
    bytes_per_host: Vec<u64>,
    reconnects: u64,
    control: Vec<(HostId, ControlEvent)>,
    events: usize,
}

/// A fault-injected multi-tenant run: three hosts stream to a ToR server
/// while host 1 crashes an NSM mid-flight (remapping its VM to a spare),
/// restarts it, then degrades the spare's vNIC link — plus a drained
/// migration so the cluster event log is non-trivial. Tenant reconnects
/// on reset are part of the observed behavior.
fn fault_run(threads: usize) -> FaultRunReport {
    let policy = ControlPolicy::new()
        .with_epoch_ns(500_000)
        .with_window(2)
        .with_watermarks(0.10, 0.60)
        .with_core_bounds(1, 2)
        .with_cooldown(1)
        .with_pool_clock_hz(1_000_000);
    let mut cfg = ClusterConfig::new()
        .with_uplink_latency_us(2)
        .with_threads(threads);
    for id in 1u8..=3 {
        cfg = cfg.with_host(
            HostConfig::new()
                .with_host_id(HostId(id))
                .with_nsm(NsmConfig::kernel(NsmId(1)))
                .with_nsm(NsmConfig::kernel(NsmId(2)))
                .with_mapping(VmToNsmPolicy::All(NsmId(1)))
                .with_vm(VmConfig::new(VmId(id)))
                .with_control(policy.clone()),
        );
    }
    let mut cluster = Cluster::new(cfg).expect("valid fault cluster");
    let server = cluster.add_remote(SERVER_IP);
    let ls = server.socket();
    server.bind(ls, SockAddr::new(0, 7)).unwrap();
    server.listen(ls, 32).unwrap();

    let plan = FaultPlan::new()
        .at(800_000, FaultAction::CrashNsm(NsmId(1)))
        .at(
            800_000,
            FaultAction::MigrateVm {
                vm: VmId(1),
                to: NsmId(2),
            },
        )
        .at(1_600_000, FaultAction::RestartNsm(NsmId(1)))
        .at(
            2_400_000,
            FaultAction::DegradeLink {
                nsm: NsmId(2),
                link: LinkFault::healthy().with_latency_us(50),
            },
        );
    cluster
        .host_mut(HostId(1))
        .unwrap()
        .install_fault_plan(&plan)
        .unwrap();

    let chunk = [0xA5u8; 1024];
    let mut buf = [0u8; 2048];
    let mut socks = [None; 3];
    let mut bytes_per_host = vec![0u64; 3];
    let mut reconnects = 0u64;
    let mut server_conns = Vec::new();
    for step in 0..40 {
        if step == 20 {
            cluster.migrate_vm(VmId(2), HostId(2), HostId(3)).unwrap();
        }
        for h in 1u8..=3 {
            let i = h as usize - 1;
            // During the drain VM 2 keeps serving its pinned connection on
            // host 2 while its home moves to host 3 — follow the socket.
            let serving = if socks[i].is_some() {
                HostId(h)
            } else {
                cluster.home_of(VmId(h)).unwrap_or(HostId(h))
            };
            let Some(guest) = cluster.guest_on(serving, VmId(h)) else {
                socks[i] = None;
                continue;
            };
            if let Some(s) = socks[i] {
                let mut dead = false;
                if guest.poll(s).writable() && guest.send(s, &chunk).is_err() {
                    dead = true;
                }
                loop {
                    match guest.recv(s, &mut buf) {
                        Ok(0) => break,
                        Ok(n) => bytes_per_host[i] += n as u64,
                        Err(NkError::WouldBlock) => break,
                        Err(_) => {
                            dead = true;
                            break;
                        }
                    }
                }
                if dead {
                    let _ = guest.close(s);
                    socks[i] = None;
                    reconnects += 1;
                }
            }
            if socks[i].is_none() {
                if let Ok(s) = guest.socket() {
                    if guest.connect(s, SockAddr::new(SERVER_IP, 7)).is_ok() {
                        socks[i] = Some(s);
                    }
                }
            }
        }
        let server = cluster.remote_mut(SERVER_IP).unwrap();
        while let Ok((c, _)) = server.accept(ls) {
            server_conns.push(c);
        }
        for &c in &server_conns {
            while let Ok(n) = server.recv(c, &mut buf) {
                if n == 0 {
                    break;
                }
                let _ = server.send(c, &buf[..n]);
            }
        }
        cluster.step(100_000);
    }
    FaultRunReport {
        digest: cluster.event_digest(),
        stats: cluster.stats(),
        bytes_per_host,
        reconnects,
        control: cluster.control_events(),
        events: cluster.events().len(),
    }
}

/// Everything observable from the evacuation run, for whole-value
/// comparison: the event digest, the stats, the full plan event log, the
/// merged control view, the final placement and every echoed byte stream.
#[derive(Debug, PartialEq)]
struct EvacRunReport {
    digest: u64,
    stats: ClusterStats,
    plan_events: Vec<PlanEvent>,
    control: Vec<ControlLogEntry>,
    homes: Vec<(VmId, HostId)>,
    streams: Vec<Vec<u8>>,
}

/// A fault-injected evacuation: host 1 holds two warm-eligible VMs with
/// pinned connections; the first evacuation attempt loses destination
/// host 3 right before its install (killed mid-plan) and must roll back
/// completely, then a retry packs both VMs onto the surviving host 2 and
/// commits. Both the rollback and the commit are part of the replayed,
/// thread-invariant history.
fn evacuation_run(threads: usize) -> EvacRunReport {
    let cfg = ClusterConfig::new()
        .with_uplink_latency_us(2)
        .with_threads(threads)
        .with_host(
            HostConfig::new()
                .with_host_id(HostId(1))
                .with_nsm(NsmConfig::kernel(NsmId(1)))
                .with_nsm(NsmConfig::kernel(NsmId(2)))
                .with_mapping(VmToNsmPolicy::Static(vec![
                    (VmId(1), NsmId(1)),
                    (VmId(2), NsmId(2)),
                ]))
                .with_vm(VmConfig::new(VmId(1)))
                .with_vm(VmConfig::new(VmId(2))),
        )
        .with_host(host(2, &[]))
        .with_host(host(3, &[]));
    let mut cluster = Cluster::new(cfg).expect("valid evacuation cluster");
    let server = cluster.add_remote(SERVER_IP);
    let ls = server.socket();
    server.bind(ls, SockAddr::new(0, 7)).unwrap();
    server.listen(ls, 16).unwrap();
    let mut socks = Vec::new();
    for vm in [VmId(1), VmId(2)] {
        let guest = cluster.guest_on(HostId(1), vm).unwrap();
        let s = guest.socket().unwrap();
        guest.connect(s, SockAddr::new(SERVER_IP, 7)).unwrap();
        socks.push((vm, s));
    }
    cluster.run(20, 100_000);
    for &(vm, s) in &socks {
        let guest = cluster.guest_on(HostId(1), vm).unwrap();
        guest.send(s, b"pinned").unwrap();
    }
    cluster.run(10, 100_000);

    // Kill the second destination right before its install step: the
    // whole plan reverts and both VMs stay home on host 1.
    let probe = cluster
        .plan_evacuation(HostId(1), 2)
        .expect("plan compiles");
    let install = probe
        .steps
        .iter()
        .find(|s| matches!(s.action, EvacAction::Install { to: HostId(3), .. }))
        .expect("the plan installs a VM on host 3")
        .id;
    let rolled_back = cluster
        .evacuate_host_with_faults(
            HostId(1),
            2,
            &[EvacFault {
                before_step: install,
                kind: EvacFaultKind::KillHost(HostId(3)),
            }],
        )
        .expect("faulted evacuation reports instead of erroring");
    assert!(!rolled_back.committed, "{rolled_back:?}");

    // With host 3 gone the retry packs everything onto host 2 and commits;
    // the pinned connections ride along.
    let retried = cluster.evacuate_host(HostId(1), 2).expect("retry runs");
    assert!(retried.committed, "{retried:?}");
    for &(vm, s) in &socks {
        let guest = cluster.guest_on(HostId(2), vm).unwrap();
        guest.send(s, b"after").unwrap();
    }
    cluster.run(20, 100_000);

    let server = cluster.remote_mut(SERVER_IP).unwrap();
    let mut streams = Vec::new();
    while let Ok((conn, _)) = server.accept(ls) {
        let mut got = Vec::new();
        let mut buf = [0u8; 64];
        while let Ok(n) = server.recv(conn, &mut buf) {
            if n == 0 {
                break;
            }
            got.extend_from_slice(&buf[..n]);
        }
        streams.push(got);
    }
    let homes = [VmId(1), VmId(2)]
        .iter()
        .map(|&vm| (vm, cluster.home_of(vm).expect("evacuated VM has a home")))
        .collect();
    EvacRunReport {
        digest: cluster.event_digest(),
        stats: cluster.stats(),
        plan_events: cluster.plan_events().to_vec(),
        control: cluster.control_log(),
        homes,
        streams,
    }
}

#[test]
fn cluster_scenario_is_identical_at_any_thread_count() {
    let reference = cluster_scenario(THREAD_MATRIX[0]);
    assert!(reference.completed, "{reference:?}");
    assert!(!reference.events.is_empty(), "migration must be logged");
    for &threads in &THREAD_MATRIX[1..] {
        let report = cluster_scenario(threads);
        assert_eq!(report, reference, "threads={threads} diverged");
    }
}

#[test]
fn warm_migration_scenario_is_identical_at_any_thread_count() {
    let reference = warm_scenario(THREAD_MATRIX[0]);
    assert!(reference.completed, "{reference:?}");
    assert_eq!(reference.stats.warm_migrations, 1);
    assert!(
        reference.stats.freeze_steps > 0,
        "the freeze window must run mini-steps through the executor"
    );
    for &threads in &THREAD_MATRIX[1..] {
        let report = warm_scenario(threads);
        assert_eq!(report, reference, "threads={threads} diverged");
    }
}

#[test]
fn fault_scenario_is_identical_at_any_thread_count() {
    let reference = fault_run(THREAD_MATRIX[0]);
    assert!(
        reference.bytes_per_host.iter().all(|&b| b > 0),
        "every tenant must move bytes: {reference:?}"
    );
    assert!(
        reference.reconnects > 0,
        "the NSM crash must reset the pinned connection"
    );
    assert!(reference.events > 0, "the drained migration must be logged");
    for &threads in &THREAD_MATRIX[1..] {
        let report = fault_run(threads);
        assert_eq!(report, reference, "threads={threads} diverged");
    }
}

/// The evacuation path joins the determinism matrix: a run containing a
/// mid-plan host kill, the resulting full rollback and a committing retry
/// replays byte-identically — digest, stats, plan event log, merged
/// control view and every tenant byte — at 1, 2 and 4 worker threads.
#[test]
fn faulted_evacuation_is_identical_at_any_thread_count() {
    let reference = evacuation_run(THREAD_MATRIX[0]);
    assert_eq!(reference.stats.evac_plans, 2, "{reference:?}");
    assert_eq!(reference.stats.evac_rollbacks, 1);
    assert_eq!(reference.stats.evac_commits, 1);
    assert_eq!(reference.stats.hosts_killed, 1);
    assert_eq!(reference.stats.warm_migrations, 2);
    assert_eq!(
        reference.homes,
        [(VmId(1), HostId(2)), (VmId(2), HostId(2))]
    );
    assert_eq!(
        reference.streams,
        vec![b"pinnedafter".to_vec(), b"pinnedafter".to_vec()],
        "both connections stay byte-contiguous across rollback and retry"
    );
    assert!(!reference.plan_events.is_empty());
    for &threads in &THREAD_MATRIX[1..] {
        let report = evacuation_run(threads);
        assert_eq!(report, reference, "threads={threads} diverged");
    }
}

/// Everything observable from the uneven-share-count run, for whole-value
/// comparison across the (threads × shard-mode) matrix.
#[derive(Debug, PartialEq)]
struct UnevenRunReport {
    digest: u64,
    stats: ClusterStats,
    control: Vec<(HostId, ControlEvent)>,
    homes: Vec<(VmId, HostId)>,
    streams: Vec<Vec<u8>>,
    obs: String,
    plan_events: Vec<PlanEvent>,
}

/// A cluster with hosts of 1, 3 and 8 NSM shares — the shape intra-host
/// sharding exists for — running a warm migration out of the 8-share host
/// and a mid-plan evacuation rollback of the 3-share host, both crossing
/// lane boundaries. Every observable, including the serialized `ObsDump`,
/// must be identical for any thread count and for lane mode on or off.
fn uneven_run(threads: usize, shard: bool) -> UnevenRunReport {
    let mut host3 = HostConfig::new().with_host_id(HostId(2));
    let mut host8 = HostConfig::new().with_host_id(HostId(3));
    let mut map3 = Vec::new();
    let mut map8 = Vec::new();
    for n in 1u8..=3 {
        host3 = host3
            .with_nsm(NsmConfig::kernel(NsmId(n)))
            .with_vm(VmConfig::new(VmId(1 + n)));
        map3.push((VmId(1 + n), NsmId(n)));
    }
    for n in 1u8..=8 {
        host8 = host8
            .with_nsm(NsmConfig::kernel(NsmId(n)))
            .with_vm(VmConfig::new(VmId(4 + n)));
        map8.push((VmId(4 + n), NsmId(n)));
    }
    let cfg = ClusterConfig::new()
        .with_uplink_latency_us(2)
        .with_threads(threads)
        .with_shard_within_hosts(shard)
        .with_host(host(1, &[1]))
        .with_host(host3.with_mapping(VmToNsmPolicy::Static(map3)))
        .with_host(host8.with_mapping(VmToNsmPolicy::Static(map8)));
    let mut cluster = Cluster::new(cfg).expect("valid uneven cluster");
    let server = cluster.add_remote(SERVER_IP);
    let ls = server.socket();
    server.bind(ls, SockAddr::new(0, 7)).unwrap();
    server.listen(ls, 32).unwrap();

    let vms: Vec<VmId> = (1u8..=12).map(VmId).collect();
    let mut socks = Vec::new();
    for &vm in &vms {
        let home = cluster.home_of(vm).unwrap();
        let guest = cluster.guest_on(home, vm).unwrap();
        let s = guest.socket().unwrap();
        guest.connect(s, SockAddr::new(SERVER_IP, 7)).unwrap();
        socks.push((vm, s));
    }
    cluster.run(15, 100_000);
    for &(vm, s) in &socks {
        let home = cluster.home_of(vm).unwrap();
        let guest = cluster.guest_on(home, vm).unwrap();
        guest.send(s, b"seed").unwrap();
    }
    cluster.run(10, 100_000);

    // A warm migration out of the 8-share host: the pinned connection
    // leaves its lane on host 3 and lands in host 1's single lane.
    cluster
        .migrate_vm_warm(VmId(5), HostId(3), HostId(1))
        .expect("warm migration runs");
    cluster.run(10, 100_000);

    // A mid-plan evacuation rollback of the 3-share host: the last planned
    // step refuses, every completed action reverts across lane boundaries.
    let probe = cluster
        .plan_evacuation(HostId(2), 2)
        .expect("plan compiles");
    let last = probe.steps.last().expect("plan has steps").id;
    let rolled_back = cluster
        .evacuate_host_with_faults(
            HostId(2),
            2,
            &[EvacFault {
                before_step: last,
                kind: EvacFaultKind::FailAction,
            }],
        )
        .expect("faulted evacuation reports instead of erroring");
    assert!(!rolled_back.committed, "{rolled_back:?}");

    for &(vm, s) in &socks {
        let home = cluster.home_of(vm).unwrap();
        let guest = cluster.guest_on(home, vm).unwrap();
        guest.send(s, b"tail").unwrap();
    }
    cluster.run(15, 100_000);

    let server = cluster.remote_mut(SERVER_IP).unwrap();
    let mut streams = Vec::new();
    while let Ok((conn, _)) = server.accept(ls) {
        let mut got = Vec::new();
        let mut buf = [0u8; 64];
        while let Ok(n) = server.recv(conn, &mut buf) {
            if n == 0 {
                break;
            }
            got.extend_from_slice(&buf[..n]);
        }
        streams.push(got);
    }
    let homes = vms
        .iter()
        .map(|&vm| (vm, cluster.home_of(vm).expect("VM has a home")))
        .collect();
    UnevenRunReport {
        digest: cluster.event_digest(),
        stats: cluster.stats(),
        control: cluster.control_events(),
        homes,
        streams,
        obs: serde_json::to_string(&cluster.obs_dump()).expect("dump serializes"),
        plan_events: cluster.plan_events().to_vec(),
    }
}

/// Hosts with 1, 3 and 8 shares in one cluster: digests, stats, the
/// serialized `ObsDump`, the merged control view and every tenant byte
/// stream are identical at threads 1/2/4 — and identical again with
/// intra-host sharding on or off, including the serial (1-thread) runs the
/// acceptance criteria single out.
#[test]
fn uneven_share_counts_are_identical_across_threads_and_shard_modes() {
    let reference = uneven_run(1, false);
    assert_eq!(reference.stats.warm_migrations, 1, "{:?}", reference.stats);
    assert_eq!(reference.stats.evac_plans, 1);
    assert_eq!(reference.stats.evac_rollbacks, 1);
    assert_eq!(reference.stats.evac_commits, 0);
    // The rollback left every VM home except the explicit warm migration.
    for &(vm, home) in &reference.homes {
        let expected = match vm {
            VmId(1) | VmId(5) => HostId(1),
            VmId(v) if v <= 4 => HostId(2),
            _ => HostId(3),
        };
        assert_eq!(home, expected, "vm {vm:?}");
    }
    assert_eq!(reference.streams.len(), 12);
    for stream in &reference.streams {
        assert_eq!(stream, b"seedtail", "streams stay byte-contiguous");
    }
    for &threads in &THREAD_MATRIX {
        for shard in [false, true] {
            if threads == 1 && !shard {
                continue;
            }
            let report = uneven_run(threads, shard);
            assert_eq!(
                report, reference,
                "threads={threads} shard_within_hosts={shard} diverged"
            );
        }
    }
}

/// The flight recorder's serialized dump is the CI determinism
/// fingerprint: byte-identical across repeated runs of the same
/// configuration and across every thread count. (The structural
/// comparisons above already cover `ObsDump` equality via the report's
/// `PartialEq`; this pins the *bytes*, which is what the CI job diffs.)
#[test]
fn serialized_obs_dump_is_byte_identical_across_runs_and_threads() {
    let reference =
        serde_json::to_string(&warm_scenario(THREAD_MATRIX[0]).obs).expect("dump serializes");
    assert!(
        reference.contains("WarmMigrateVm"),
        "the warm migration must land in the ring: {reference}"
    );
    let rerun =
        serde_json::to_string(&warm_scenario(THREAD_MATRIX[0]).obs).expect("dump serializes");
    assert_eq!(reference, rerun, "same configuration, same bytes");
    for &threads in &THREAD_MATRIX[1..] {
        let dump = serde_json::to_string(&warm_scenario(threads).obs).expect("dump serializes");
        assert_eq!(dump, reference, "threads={threads} diverged");
    }
}

/// The per-phase work counters in [`ClusterStats`] are part of the
/// equality contract above; this pins that they actually count.
#[test]
fn per_phase_counters_accumulate() {
    let report = fault_run(1);
    assert!(report.stats.poll_work > 0, "rounds must do datapath work");
    assert!(
        report.stats.begin_work > 0,
        "fault events count as begin work"
    );
    assert!(
        report.stats.barrier_frames > 0,
        "cross-host traffic must cross the ToR at the barrier"
    );
}
