//! Application state machines written against [`SocketApi`].
//!
//! These are the "unmodified applications" of the evaluation: because they
//! only use the BSD-style socket trait, the *same code* runs inside a
//! NetKernel guest (GuestLib) and inside a baseline VM (in-guest stack), and
//! switching the NSM under a NetKernel guest requires no change at all
//! (use case 3, §6.3).

use nk_types::{NkError, NkResult, PollEvents, SockAddr, SocketApi, SocketId};
use std::collections::BTreeSet;

/// An epoll-driven echo server: accepts connections, reads requests and
/// echoes them back — the shape of the multi-threaded epoll servers used
/// throughout §7.
pub struct EchoServer {
    listener: SocketId,
    /// Ordered, per the workspace determinism rule.
    connections: BTreeSet<SocketId>,
    /// Requests served (one per message echoed).
    pub requests: u64,
    /// Bytes echoed back.
    pub bytes: u64,
    buf: Vec<u8>,
}

impl EchoServer {
    /// Create the server: socket + bind + listen on `addr`.
    pub fn start(api: &mut dyn SocketApi, addr: SockAddr, backlog: u32) -> NkResult<Self> {
        let listener = api.socket()?;
        api.bind(listener, addr)?;
        api.listen(listener, backlog)?;
        api.epoll_register(listener, PollEvents::READABLE)?;
        Ok(EchoServer {
            listener,
            connections: BTreeSet::new(),
            requests: 0,
            bytes: 0,
            buf: vec![0u8; 64 * 1024],
        })
    }

    /// The listening socket.
    pub fn listener(&self) -> SocketId {
        self.listener
    }

    /// Number of live connections.
    pub fn connections(&self) -> usize {
        self.connections.len()
    }

    /// One event-loop iteration: accept new connections, echo available data.
    /// Returns the number of events handled.
    pub fn poll(&mut self, api: &mut dyn SocketApi) -> usize {
        let mut handled = 0;
        // Accept everything pending.
        loop {
            match api.accept(self.listener) {
                Ok((conn, _peer)) => {
                    let _ = api.epoll_register(conn, PollEvents::READABLE);
                    self.connections.insert(conn);
                    handled += 1;
                }
                Err(NkError::WouldBlock) => break,
                Err(_) => break,
            }
        }
        // Serve readable connections.
        let events = api.epoll_wait(64);
        for ev in events {
            if ev.socket == self.listener {
                continue;
            }
            if ev.events.readable() {
                loop {
                    match api.recv(ev.socket, &mut self.buf) {
                        Ok(0) => {
                            let _ = api.close(ev.socket);
                            self.connections.remove(&ev.socket);
                            break;
                        }
                        Ok(n) => {
                            let _ = api.send(ev.socket, &self.buf[..n]);
                            self.requests += 1;
                            self.bytes += n as u64;
                            handled += 1;
                        }
                        Err(_) => break,
                    }
                }
            }
            if ev.events.hup() || ev.events.error() {
                let _ = api.close(ev.socket);
                self.connections.remove(&ev.socket);
            }
        }
        handled
    }
}

/// A closed-loop `ab`-style client: keeps `concurrency` requests outstanding
/// against a server, counting completed request/response pairs.
pub struct ClosedLoopClient {
    server: SockAddr,
    message: Vec<u8>,
    concurrency: usize,
    /// Connections with a request in flight (ordered, per the workspace
    /// determinism rule).
    in_flight: BTreeSet<SocketId>,
    /// Completed request/response exchanges.
    pub completed: u64,
    /// Responses bytes received.
    pub bytes_received: u64,
    buf: Vec<u8>,
}

impl ClosedLoopClient {
    /// A client issuing `message`-sized requests with the given concurrency.
    pub fn new(server: SockAddr, message_size: usize, concurrency: usize) -> Self {
        ClosedLoopClient {
            server,
            message: vec![0x42u8; message_size.max(1)],
            concurrency,
            in_flight: BTreeSet::new(),
            completed: 0,
            bytes_received: 0,
            buf: vec![0u8; 64 * 1024],
        }
    }

    /// One event-loop iteration: top up connections to the target
    /// concurrency, send requests on writable connections, and consume
    /// responses. Returns the number of responses completed this round.
    pub fn poll(&mut self, api: &mut dyn SocketApi) -> u64 {
        // Open new connections until the concurrency target is met.
        while self.in_flight.len() < self.concurrency {
            let Ok(sock) = api.socket() else { break };
            if api.connect(sock, self.server).is_err() {
                let _ = api.close(sock);
                break;
            }
            let _ = api.epoll_register(sock, PollEvents::READABLE | PollEvents::WRITABLE);
            self.in_flight.insert(sock);
        }
        // Drive I/O.
        let mut done = 0;
        let events = api.epoll_wait(256);
        for ev in events {
            if !self.in_flight.contains(&ev.socket) {
                continue;
            }
            if ev.events.error() || ev.events.hup() {
                let _ = api.close(ev.socket);
                self.in_flight.remove(&ev.socket);
                continue;
            }
            if ev.events.writable() {
                let _ = api.send(ev.socket, &self.message);
                // Only send the request once per connection: deregister the
                // writable interest afterwards.
                let _ = api.epoll_register(ev.socket, PollEvents::READABLE);
            }
            if ev.events.readable() {
                if let Ok(n) = api.recv(ev.socket, &mut self.buf) {
                    if n > 0 {
                        self.bytes_received += n as u64;
                        self.completed += 1;
                        done += 1;
                        // Non-keepalive: close and let the loop reopen.
                        let _ = api.close(ev.socket);
                        self.in_flight.remove(&ev.socket);
                    }
                }
            }
        }
        done
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nk_fabric::switch::VirtualSwitch;
    use nk_host::BaselineVm;

    /// The workload code knows nothing about which stack it runs on: here it
    /// runs over two baseline VMs connected by a switch.
    #[test]
    fn echo_server_and_client_complete_requests_over_baseline_stacks() {
        let mut switch = VirtualSwitch::new();
        let mut server_vm = BaselineVm::new(1, &mut switch);
        let mut client_vm = BaselineVm::new(2, &mut switch);

        let mut server = EchoServer::start(&mut server_vm, SockAddr::new(0, 80), 64).unwrap();
        let mut client = ClosedLoopClient::new(SockAddr::new(1, 80), 64, 4);

        for i in 1..400u64 {
            let now = i * 100_000;
            client.poll(&mut client_vm);
            server.poll(&mut server_vm);
            client_vm.step(now);
            server_vm.step(now);
            switch.step(now);
            if client.completed >= 20 {
                break;
            }
        }
        assert!(
            client.completed >= 20,
            "only {} requests completed",
            client.completed
        );
        assert!(server.requests >= 20);
        assert_eq!(client.bytes_received, client.completed * 64);
    }
}
